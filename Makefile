# Standard developer entry points. Everything is stdlib Go; no tools
# beyond the Go toolchain are required.

GO ?= go

.PHONY: all build vet test race cover bench bench-figures bench-json bench-kernels experiments jobs-smoke store-smoke cluster-smoke drift-smoke continuous-smoke optimize-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The complete benchmark suite (all paper figures, the org audit, and
# the ablations). Expect ~10-20 minutes; the float64-baseline points
# are intentionally slow — they are the paper's argument.
bench:
	$(GO) test -bench=. -benchmem ./...

# Only the paper-figure benchmark families, one iteration each.
bench-figures:
	$(GO) test -bench 'Figure2|Figure3$$|OrgScale' -benchtime 1x .

# Figures + ablations + arena kernels with -benchmem, median-of-5 per
# point, converted to a committed JSON snapshot (BENCH_PR9.json) via
# cmd/benchjson, with a non-blocking regression diff against the
# previous snapshot. BENCH_TIME, BENCH_COUNT and BENCH_CPU tune the
# runs; see scripts/bench_json.sh.
bench-json:
	sh scripts/bench_json.sh

# Arena kernel micro-benchmarks only (internal/bitmat), median-of-5,
# diffed against the committed BENCH_PR9.json; >25% ns/op kernel
# regressions emit non-blocking ::warning:: annotations (see
# scripts/bench_kernels.sh). Fast enough for per-push CI.
bench-kernels:
	sh scripts/bench_kernels.sh

# Regenerate the recorded evaluation outputs under results/.
experiments:
	$(GO) run ./cmd/rolediet sweep -axis users -fixed 1000 \
		-values 1000,2000,4000,7000,10000 -runs 5 > results/figure2.txt
	$(GO) run ./cmd/rolediet sweep -axis roles -fixed 1000 \
		-values 1000,2000,4000,7000,10000 -runs 5 > results/figure3.txt
	$(GO) run ./examples/orgaudit > results/orgaudit_full.txt
	$(GO) run ./cmd/rolediet recall > results/recall.txt

# End-to-end smoke of the async jobs API: starts roledietd and drives
# submit -> poll -> result -> cancel with curl (see scripts/jobs_smoke.sh).
jobs-smoke:
	sh scripts/jobs_smoke.sh

# End-to-end smoke of the dataset registry and result cache: upload ->
# analyze by reference (miss then hit) -> diff two refs -> restart
# persistence (see scripts/store_smoke.sh).
store-smoke:
	sh scripts/store_smoke.sh

# Fault-injection smoke of the sharded fleet: 3 nodes + oracle, kill
# one mid-audit, verify routed reads, graceful degradation, the 503
# peer_unavailable contract, breaker visibility, and retry through
# injected transport faults (see scripts/cluster_smoke.sh).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# End-to-end smoke of streaming ingest + mutation sessions + drift:
# upload a base, apply a 3-event log, require the session audit to be
# byte-identical to a standalone full re-analysis after normalization,
# then exercise /v1/drift caching and the event-log bomb contract
# (see scripts/drift_smoke.sh).
drift-smoke:
	sh scripts/drift_smoke.sh

# End-to-end smoke of the continuous-audit subsystem: register a
# dataset, point a tight-interval schedule at a live session, mutate
# the session, and assert the drift alert reaches a webhook, the
# decision log records both runs, and /metrics counted the loop
# (see scripts/continuous_smoke.sh).
continuous-smoke:
	sh scripts/continuous_smoke.sh

# End-to-end smoke of the optimization subsystem: upload a dataset,
# optimize by reference (cache miss then byte-identical hit), replay
# the plan with the CLI, and require the applied dataset to re-analyze
# with zero class-4 duplicate groups (see scripts/optimize_smoke.sh).
optimize-smoke:
	sh scripts/optimize_smoke.sh

clean:
	rm -f rolediet roledietd
