#!/bin/sh
# Smoke test for streaming ingest + mutation sessions + drift audits:
# build roledietd, upload an org-scale base dataset, open a session,
# apply a generated 3-event log, and require the session audit to match
# a standalone full re-analysis byte-for-byte after normalization. Then
# drive /v1/drift (cache miss -> hit, byte-identical) and the event-log
# bomb contract (400 payload_too_large). Stdlib + curl + sed only.
#
# Usage: scripts/drift_smoke.sh [port]   (default 18083)
set -eu

PORT="${1:-18083}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "drift-smoke: FAIL: $*" >&2
	[ -f "$TMP/daemon.log" ] && tail -20 "$TMP/daemon.log" >&2
	exit 1
}

echo "drift-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go build -o "$TMP/rolediet" ./cmd/rolediet

echo "drift-smoke: generating base dataset and a 3-event churn log"
"$TMP/rolediet" generate -org -scale 400 -out "$TMP/base.json" >/dev/null
"$TMP/rolediet" drift -gen-base "$TMP/base.json" -gen-events 3 -seed 7 -out "$TMP/events.jsonl"
[ "$(wc -l <"$TMP/events.jsonl")" = "3" ] || fail "generated log is not 3 events"

echo "drift-smoke: starting roledietd on :$PORT"
"$TMP/roledietd" -addr "127.0.0.1:$PORT" -store-dir "$TMP/store" >>"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	sleep 0.1
done

echo "drift-smoke: uploading base dataset (streaming ingest)"
UPLOAD="$(curl -fsS -X POST --data-binary @"$TMP/base.json" "$BASE/v1/datasets")" ||
	fail "upload rejected"
DIGEST="$(printf '%s' "$UPLOAD" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST" ] || fail "no digest in upload response: $UPLOAD"

echo "drift-smoke: opening a mutation session over $DIGEST"
printf '{"base_ref":"%s"}' "$DIGEST" >"$TMP/create.json"
CREATED="$(curl -fsS -X POST --data-binary @"$TMP/create.json" "$BASE/v1/sessions")" ||
	fail "session create rejected"
SID="$(printf '%s' "$CREATED" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$SID" ] || fail "no session id in create response: $CREATED"

echo "drift-smoke: applying the event log to session $SID"
APPLIED="$(curl -fsS -X POST --data-binary @"$TMP/events.jsonl" "$BASE/v1/sessions/$SID/events")" ||
	fail "event batch rejected"
case "$APPLIED" in
*'"applied":3'*) ;;
*) fail "batch did not apply 3 events: $APPLIED" ;;
esac

echo "drift-smoke: session audit vs standalone full re-analysis"
curl -fsS "$BASE/v1/sessions/$SID/audit" >"$TMP/audit.json" || fail "audit rejected"
"$TMP/rolediet" drift -normalize "$TMP/audit.json" -out "$TMP/audit.norm.json"
"$TMP/rolediet" replay -base "$TMP/base.json" -log "$TMP/events.jsonl" -out "$TMP/after.json" >/dev/null
"$TMP/rolediet" analyze -data "$TMP/after.json" -format json >"$TMP/report.json"
"$TMP/rolediet" drift -normalize "$TMP/report.json" -out "$TMP/report.norm.json"
cmp -s "$TMP/audit.norm.json" "$TMP/report.norm.json" || {
	echo "audit:  $(head -c 400 "$TMP/audit.norm.json")" >&2
	echo "report: $(head -c 400 "$TMP/report.norm.json")" >&2
	fail "incremental session audit differs from full re-analysis"
}
echo "drift-smoke: audit is byte-identical to full re-analysis after normalization"

echo "drift-smoke: drift endpoint between the two snapshots"
UPLOAD2="$(curl -fsS -X POST --data-binary @"$TMP/after.json" "$BASE/v1/datasets")"
DIGEST2="$(printf '%s' "$UPLOAD2" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST2" ] || fail "no digest in after upload: $UPLOAD2"
printf '{"before_ref":"%s","after_ref":"%s"}' "$DIGEST" "$DIGEST2" >"$TMP/driftreq.json"
CACHE1="$(curl -fsS -D - -o "$TMP/drift1.json" -X POST --data-binary @"$TMP/driftreq.json" \
	"$BASE/v1/drift" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE1" = "miss" ] || fail "first drift X-Cache = '$CACHE1', want miss"
case "$(cat "$TMP/drift1.json")" in
*'"events":3'*) ;;
*) fail "drift report does not carry the 3-event delta: $(head -c 300 "$TMP/drift1.json")" ;;
esac
CACHE2="$(curl -fsS -D - -o "$TMP/drift2.json" -X POST --data-binary @"$TMP/driftreq.json" \
	"$BASE/v1/drift" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE2" = "hit" ] || fail "repeat drift X-Cache = '$CACHE2', want hit"
cmp -s "$TMP/drift1.json" "$TMP/drift2.json" ||
	fail "cached drift body differs from computed one"
echo "drift-smoke: drift served and cached, byte-identical"

echo "drift-smoke: event-log bomb is refused"
{
	printf '{"op":"add-role","role":"'
	i=0
	while [ "$i" -lt 20000 ]; do
		printf 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx'
		i=$((i + 1))
	done
	printf '"}\n'
} >"$TMP/bomb.jsonl"
CODE="$(curl -s -o "$TMP/bomb_resp.json" -w '%{http_code}' -X POST \
	--data-binary @"$TMP/bomb.jsonl" "$BASE/v1/sessions/$SID/events")"
[ "$CODE" = "400" ] || fail "event bomb returned $CODE, want 400"
case "$(cat "$TMP/bomb_resp.json")" in
*'"code":"payload_too_large"'*) ;;
*) fail "event bomb missing payload_too_large code: $(cat "$TMP/bomb_resp.json")" ;;
esac

echo "drift-smoke: closing session"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/sessions/$SID")"
[ "$CODE" = "200" ] || fail "session delete returned $CODE"

echo "drift-smoke: PASS"
