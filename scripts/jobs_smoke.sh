#!/bin/sh
# Smoke test for the async jobs API: build roledietd, start it, drive
# submit -> poll -> result -> cancel-after-finish with curl, and fail
# non-zero on any contract violation. Stdlib + curl + sed only (no jq).
#
# Usage: scripts/jobs_smoke.sh [port]   (default 18080)
set -eu

PORT="${1:-18080}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "jobs-smoke: FAIL: $*" >&2
	exit 1
}

echo "jobs-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go run ./cmd/rolediet generate -org -scale 400 -out "$TMP/org.json" >/dev/null

echo "jobs-smoke: starting roledietd on :$PORT"
"$TMP/roledietd" -addr "127.0.0.1:$PORT" -job-result-ttl 5m >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { cat "$TMP/daemon.log" >&2; fail "daemon never became healthy"; }
	sleep 0.1
done

echo "jobs-smoke: submitting analyze job"
{
	printf '{"kind":"analyze","options":{"method":"rolediet","threshold":1},"dataset":'
	cat "$TMP/org.json"
	printf '}'
} >"$TMP/body.json"

SUBMIT="$(curl -fsS -X POST --data-binary @"$TMP/body.json" "$BASE/v1/jobs")" ||
	fail "submit rejected"
ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
echo "jobs-smoke: job $ID accepted"

i=0
while :; do
	SNAP="$(curl -fsS "$BASE/v1/jobs/$ID")" || fail "status poll failed"
	case "$SNAP" in
	*'"status":"done"'*) break ;;
	*'"status":"failed"'* | *'"status":"canceled"'*) fail "job ended badly: $SNAP" ;;
	esac
	i=$((i + 1))
	[ "$i" -gt 600 ] && fail "job never finished: $SNAP"
	sleep 0.1
done
case "$SNAP" in
*'"fraction":1'*) ;;
*) fail "finished job did not report fraction 1: $SNAP" ;;
esac
echo "jobs-smoke: job done with progress 1"

RESULT="$(curl -fsS "$BASE/v1/jobs/$ID/result")" || fail "result fetch failed"
case "$RESULT" in
*linearScanDurationNanos*) ;;
*) fail "result does not look like an analyze report: $RESULT" ;;
esac
echo "jobs-smoke: result fetched"

# Cancelling a finished job must be a 409 conflict.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/jobs/$ID")"
[ "$CODE" = "409" ] || fail "DELETE on finished job returned $CODE, want 409"

# Unknown ids must be 404 with the not_found code.
MISS="$(curl -s "$BASE/v1/jobs/doesnotexist")"
case "$MISS" in
*'"code":"not_found"'*) ;;
*) fail "unknown id response missing not_found code: $MISS" ;;
esac

echo "jobs-smoke: PASS"
