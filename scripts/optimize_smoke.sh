#!/bin/sh
# Smoke test for the role-set optimization subsystem: build roledietd,
# upload an org-scale dataset, run POST /v1/optimize by dataset_ref
# (cache miss -> hit, byte-identical), fetch the paginated plan view
# from the same cache line, replay the plan locally with the CLI, and
# require the applied dataset to re-analyze with zero class-4 duplicate
# groups. Finally the decision log must show both optimize runs.
# Stdlib + curl + sed only.
#
# Usage: scripts/optimize_smoke.sh [port]   (default 18084)
set -eu

PORT="${1:-18084}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "optimize-smoke: FAIL: $*" >&2
	[ -f "$TMP/daemon.log" ] && tail -20 "$TMP/daemon.log" >&2
	exit 1
}

echo "optimize-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go build -o "$TMP/rolediet" ./cmd/rolediet

echo "optimize-smoke: generating org-scale dataset"
"$TMP/rolediet" generate -org -scale 400 -out "$TMP/base.json" >/dev/null

echo "optimize-smoke: starting roledietd on :$PORT"
"$TMP/roledietd" -addr "127.0.0.1:$PORT" -store-dir "$TMP/store" >>"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	sleep 0.1
done

echo "optimize-smoke: uploading dataset"
UPLOAD="$(curl -fsS -X POST --data-binary @"$TMP/base.json" "$BASE/v1/datasets")" ||
	fail "upload rejected"
DIGEST="$(printf '%s' "$UPLOAD" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST" ] || fail "no digest in upload response: $UPLOAD"

echo "optimize-smoke: POST /v1/optimize by dataset_ref (expect cache miss)"
printf '{"dataset_ref":"%s"}' "$DIGEST" >"$TMP/optreq.json"
CACHE1="$(curl -fsS -D - -o "$TMP/opt1.json" -X POST --data-binary @"$TMP/optreq.json" \
	"$BASE/v1/optimize" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE1" = "miss" ] || fail "first optimize X-Cache = '$CACHE1', want miss"
case "$(head -c 200 "$TMP/opt1.json")" in
*'"plan"'*) ;;
*) fail "optimize response carries no plan: $(head -c 300 "$TMP/opt1.json")" ;;
esac

echo "optimize-smoke: repeat request (expect cache hit, byte-identical)"
CACHE2="$(curl -fsS -D - -o "$TMP/opt2.json" -X POST --data-binary @"$TMP/optreq.json" \
	"$BASE/v1/optimize" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE2" = "hit" ] || fail "repeat optimize X-Cache = '$CACHE2', want hit"
cmp -s "$TMP/opt1.json" "$TMP/opt2.json" ||
	fail "cached optimize body differs from computed one"

echo "optimize-smoke: paginated plan view matches the POST plan"
curl -fsS -o "$TMP/plan_page.json" "$BASE/v1/optimize/$DIGEST/plan?page_size=1000" ||
	fail "plan view rejected"
"$TMP/rolediet" optimize -normalize "$TMP/opt1.json" >"$TMP/plan_post.norm.json"
"$TMP/rolediet" optimize -normalize "$TMP/plan_page.json" >"$TMP/plan_page.norm.json"
cmp -s "$TMP/plan_post.norm.json" "$TMP/plan_page.norm.json" || {
	echo "post: $(head -c 300 "$TMP/plan_post.norm.json")" >&2
	echo "page: $(head -c 300 "$TMP/plan_page.norm.json")" >&2
	fail "plan view differs from the POST plan after normalization"
}

echo "optimize-smoke: replaying the plan locally with the CLI"
"$TMP/rolediet" optimize -data "$TMP/base.json" -apply "$TMP/plan_post.norm.json" \
	-out "$TMP/applied.json" >"$TMP/apply.out"
grep -q 'replayed' "$TMP/apply.out" || fail "apply produced no replay summary"

echo "optimize-smoke: applied dataset re-analyzes with zero class-4 groups"
"$TMP/rolediet" analyze -data "$TMP/applied.json" -format json >"$TMP/post.json"
case "$(cat "$TMP/post.json")" in
*'"sameUserGroups":[{'*) fail "applied dataset still has same-user duplicate groups" ;;
esac
case "$(cat "$TMP/post.json")" in
*'"samePermissionGroups":[{'*) fail "applied dataset still has same-permission duplicate groups" ;;
esac

echo "optimize-smoke: decision log shows both optimize runs"
curl -fsS -o "$TMP/decisions.json" "$BASE/v1/decisions?page_size=1000" ||
	fail "decision listing rejected"
COUNT="$(grep -o '"kind":"optimize"' "$TMP/decisions.json" | wc -l | tr -d ' ')"
[ "$COUNT" -ge 2 ] || fail "decision log has $COUNT optimize runs, want >= 2"
grep -q '"cache_hit":true' "$TMP/decisions.json" ||
	fail "decision log never recorded the cache hit"

echo "optimize-smoke: PASS"
