#!/bin/sh
# bench_kernels.sh — run only the arena kernel micro-benchmarks
# (internal/bitmat BenchmarkKernel*), fold the -count repeats into a
# median-of-N JSON snapshot, and diff it against the committed
# BENCH_PR9.json. Kernel regressions beyond 25% ns/op emit non-blocking
# ::warning:: annotations; the exit status is always 0 on a successful
# run, so this is a tripwire for review, not a merge gate.
#
# Knobs:
#   $1           output path       (default bench_kernels.json,
#                uncommitted: CI uploads it as an artifact)
#   BENCH_COUNT  -count            (default 5: median-of-5)
#   BENCH_KERNEL_TIME  -benchtime  (default 1s)
#   BENCH_BASELINE     baseline snapshot (default BENCH_PR9.json)
set -eu

out="${1:-bench_kernels.json}"
count="${BENCH_COUNT:-5}"
ktime="${BENCH_KERNEL_TIME:-1s}"
baseline="${BENCH_BASELINE:-BENCH_PR9.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'Kernel' -count "$count" \
	-benchtime "$ktime" -benchmem ./internal/bitmat | tee "$tmp"

go run ./cmd/benchjson -against "$baseline" < "$tmp" > "$out"
echo "wrote $out"
