#!/bin/sh
# bench_json.sh — run the paper-figure benchmark families and the
# ablations with -benchmem, then convert the transcript into a
# machine-readable JSON snapshot (default BENCH_PR4.json) via
# cmd/benchjson. The snapshot is meant to be committed so benchmark
# regressions show up in review as a diff, not a vibe.
#
# Knobs:
#   $1          output path                (default BENCH_PR4.json)
#   BENCH_TIME  -benchtime for every run   (default 1x: one honest
#               iteration per point; raise for lower-variance numbers)
#   BENCH_CPU   -cpu list for the ablation runs (default 1,4), showing
#               the serial baseline next to the fan-out on the same
#               hardware. Figure runs stay at the host's GOMAXPROCS.
set -eu

out="${1:-BENCH_PR4.json}"
time="${BENCH_TIME:-1x}"
cpus="${BENCH_CPU:-1,4}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Paper figures + org-scale audit (Figure3$ excludes the deliberately
# slow float64-baseline family; run `make bench` for the full suite).
go test -run '^$' -bench 'Figure2|Figure3$|OrgScale' \
	-benchtime "$time" -benchmem . | tee "$tmp"

# Ablations, including the serial-vs-workers parallel families, under
# -cpu so single-core overhead and multi-core scaling are both on
# record.
go test -run '^$' -bench 'Ablation' -cpu "$cpus" \
	-benchtime "$time" -benchmem . | tee -a "$tmp"

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
