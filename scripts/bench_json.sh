#!/bin/sh
# bench_json.sh — run the paper-figure benchmark families, the
# ablations, and the arena kernel micro-benchmarks with -benchmem, then
# convert the transcript into a machine-readable JSON snapshot (default
# BENCH_PR9.json) via cmd/benchjson. Every family runs -count times and
# benchjson folds the repeats into per-metric medians with min/max
# spread, so the committed snapshot is stable under scheduler noise.
# When the output file already exists (the committed baseline), the new
# snapshot is diffed against it and >25% ns/op regressions surface as
# non-blocking ::warning:: annotations before the file is replaced.
#
# Knobs:
#   $1           output path               (default BENCH_PR9.json)
#   BENCH_TIME   -benchtime for the figure/ablation runs (default 1x:
#                one honest iteration per sample; the -count repeats
#                supply the variance estimate)
#   BENCH_COUNT  -count per family         (default 5: median-of-5)
#   BENCH_CPU    -cpu list for the ablation runs (default 1,4), showing
#                the serial baseline next to the fan-out on the same
#                hardware. Figure runs stay at the host's GOMAXPROCS.
#   BENCH_KERNEL_TIME  -benchtime for the kernel family (default 1s:
#                microsecond kernels need real iteration counts)
set -eu

out="${1:-BENCH_PR9.json}"
time="${BENCH_TIME:-1x}"
count="${BENCH_COUNT:-5}"
cpus="${BENCH_CPU:-1,4}"
ktime="${BENCH_KERNEL_TIME:-1s}"
tmp="$(mktemp)"
baseline="$(mktemp)"
trap 'rm -f "$tmp" "$baseline"' EXIT

have_baseline=0
if [ -f "$out" ]; then
	cp "$out" "$baseline"
	have_baseline=1
fi

# Paper figures + org-scale audit (Figure3$ excludes the deliberately
# slow float64-baseline family; run `make bench` for the full suite).
go test -run '^$' -bench 'Figure2|Figure3$|OrgScale' -count "$count" \
	-benchtime "$time" -benchmem . | tee "$tmp"

# Ablations, including the serial-vs-workers parallel families, under
# -cpu so single-core overhead and multi-core scaling are both on
# record.
go test -run '^$' -bench 'Ablation' -cpu "$cpus" -count "$count" \
	-benchtime "$time" -benchmem . | tee -a "$tmp"

# Arena kernel micro-benchmarks: the bit-matrix inner loops every
# backend now runs on, next to their pre-arena reference paths.
go test -run '^$' -bench 'Kernel' -count "$count" \
	-benchtime "$ktime" -benchmem ./internal/bitmat | tee -a "$tmp"

if [ "$have_baseline" = 1 ]; then
	go run ./cmd/benchjson -against "$baseline" < "$tmp" > "$out"
else
	go run ./cmd/benchjson < "$tmp" > "$out"
fi
echo "wrote $out"
