#!/bin/sh
# Fault-injection smoke test for the sharded roledietd fleet: build
# roledietd, start three fleet nodes plus a standalone oracle, then
# drive the full failure story with curl — upload routes to the
# rendezvous owner and replicates; analyze-by-ref on a non-holder
# fetches through the fleet and matches the oracle byte for byte
# (wall-clock fields normalized); a node killed mid-audit does not lose
# the job; reads degrade to replicas; a fully partitioned digest
# answers a fast 503 + Retry-After with the peer_unavailable code; and
# /v1/fleet/stats exposes the open breaker and the skipped peers.
# Stdlib + curl + sed only (no jq).
#
# Usage: scripts/cluster_smoke.sh [baseport]   (default 18091; uses
# baseport..baseport+4). Daemon logs land in $TMP and are printed on
# failure; set CLUSTER_SMOKE_LOG_DIR to also copy them out (CI grabs
# them as artifacts).
set -eu

BASEPORT="${1:-18091}"
P1=$BASEPORT
P2=$((BASEPORT + 1))
P3=$((BASEPORT + 2))
PORACLE=$((BASEPORT + 3))
PFAULT=$((BASEPORT + 4))
PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
TMP="$(mktemp -d)"
PIDS=""

cleanup() {
	[ -n "${CLUSTER_SMOKE_LOG_DIR:-}" ] && {
		mkdir -p "$CLUSTER_SMOKE_LOG_DIR"
		cp "$TMP"/*.log "$CLUSTER_SMOKE_LOG_DIR"/ 2>/dev/null || true
	}
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	echo "--- daemon logs ---" >&2
	tail -n 40 "$TMP"/*.log >&2 2>/dev/null || true
	exit 1
}

# start_node name port: one fleet member with its own store dir.
start_node() {
	"$TMP/roledietd" -addr "127.0.0.1:$2" -node-id "$1" -store-dir "$TMP/store-$1" \
		-peers "$PEERS" -self "http://127.0.0.1:$2" \
		-peer-timeout 1s -peer-retries 2 -peer-probe-interval 200ms \
		-peer-breaker-threshold 2 -peer-breaker-cooldown 30s \
		>>"$TMP/$1.log" 2>&1 &
	PIDS="$PIDS $!"
	eval "PID_$1=$!"
}

wait_healthy() {
	i=0
	until curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "daemon on :$1 never became healthy"
		sleep 0.1
	done
}

# normalize file: strip the only legitimately nondeterministic report
# fields (wall-clock duration measurements) so runs compare bytewise.
normalize() {
	sed 's/"[a-zA-Z]*DurationNanos":[0-9]*/"durationNanos":0/g' "$1" >"$1.norm"
}

echo "cluster-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go run ./cmd/rolediet generate -org -scale 400 -out "$TMP/org.json" >/dev/null

echo "cluster-smoke: starting 3 fleet nodes on :$P1-:$P3 and an oracle on :$PORACLE"
start_node node1 "$P1"
start_node node2 "$P2"
start_node node3 "$P3"
"$TMP/roledietd" -addr "127.0.0.1:$PORACLE" >>"$TMP/oracle.log" 2>&1 &
PIDS="$PIDS $!"
for p in "$P1" "$P2" "$P3" "$PORACLE"; do wait_healthy "$p"; done

HEALTH="$(curl -fsS "http://127.0.0.1:$P1/healthz")"
case "$HEALTH" in
*'"node":"node1"'*'"state":"ready"'* | *'"state":"ready"'*'"node":"node1"'*) ;;
*) fail "healthz missing node identity/state: $HEALTH" ;;
esac

echo "cluster-smoke: uploading dataset via node1"
UPLOAD="$(curl -fsS -X POST --data-binary @"$TMP/org.json" "http://127.0.0.1:$P1/v1/datasets")" ||
	fail "upload rejected"
DIGEST="$(printf '%s' "$UPLOAD" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
OWNER="$(printf '%s' "$UPLOAD" | sed -n 's/.*"owner":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST" ] || fail "no digest in upload response: $UPLOAD"
[ -n "$OWNER" ] || fail "no owner in upload response: $UPLOAD"
OWNER_PORT="${OWNER##*:}"
echo "cluster-smoke: $DIGEST owned by $OWNER"

echo "cluster-smoke: waiting for owner + replica to hold the dataset"
i=0
while :; do
	HOLDERS=""
	for p in "$P1" "$P2" "$P3"; do
		CODE="$(curl -s -o /dev/null -w '%{http_code}' \
			"http://127.0.0.1:$p/v1/datasets/$DIGEST/raw")"
		[ "$CODE" = "200" ] && HOLDERS="$HOLDERS $p"
	done
	N="$(echo "$HOLDERS" | wc -w)"
	[ "$N" -ge 2 ] && break
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "replication never completed (holders:$HOLDERS)"
	sleep 0.1
done
echo "cluster-smoke: held by$HOLDERS"
case "$HOLDERS" in
*"$OWNER_PORT"*) ;;
*) fail "owner :$OWNER_PORT does not hold its own dataset" ;;
esac

# Pick the node that is NOT a holder (fetch-through candidate) and a
# holder that is not the owner (the replica).
OUTSIDER=""
REPLICA=""
for p in "$P1" "$P2" "$P3"; do
	case "$HOLDERS" in
	*"$p"*) [ "$p" != "$OWNER_PORT" ] && REPLICA="$p" ;;
	*) OUTSIDER="$p" ;;
	esac
done
[ -n "$OUTSIDER" ] && [ -n "$REPLICA" ] || fail "could not classify nodes (holders:$HOLDERS)"

echo "cluster-smoke: fleet-routed analyze on non-holder :$OUTSIDER vs oracle"
printf '{"dataset_ref":"%s"}' "$DIGEST" >"$TMP/byref.json"
ORACLE_UP="$(curl -fsS -X POST --data-binary @"$TMP/org.json" "http://127.0.0.1:$PORACLE/v1/datasets")"
case "$ORACLE_UP" in
*"$DIGEST"*) ;;
*) fail "oracle computed a different digest: $ORACLE_UP" ;;
esac
curl -fsS -X POST --data-binary @"$TMP/byref.json" \
	"http://127.0.0.1:$PORACLE/v1/analyze" -o "$TMP/oracle.json" || fail "oracle analyze failed"
curl -fsS -m 30 -X POST --data-binary @"$TMP/byref.json" \
	"http://127.0.0.1:$OUTSIDER/v1/analyze" -o "$TMP/fleet.json" ||
	fail "fleet-routed analyze on non-holder failed"
normalize "$TMP/oracle.json"
normalize "$TMP/fleet.json"
cmp -s "$TMP/oracle.json.norm" "$TMP/fleet.json.norm" ||
	fail "fleet-routed analyze differs from the single-node oracle"
echo "cluster-smoke: fleet-routed analyze byte-identical to the oracle"

echo "cluster-smoke: submitting async audit on replica :$REPLICA, then killing the owner mid-audit"
{
	printf '{"kind":"analyze","dataset_ref":"%s","options":{"method":"rolediet","threshold":1}}' "$DIGEST"
} >"$TMP/job.json"
SUBMIT="$(curl -fsS -X POST --data-binary @"$TMP/job.json" "http://127.0.0.1:$REPLICA/v1/jobs")" ||
	fail "job submit rejected"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "no job id in submit response: $SUBMIT"

case "$OWNER_PORT" in
"$P1") OWNER_PID="$PID_node1" ;;
"$P2") OWNER_PID="$PID_node2" ;;
"$P3") OWNER_PID="$PID_node3" ;;
*) fail "owner port $OWNER_PORT is not a fleet node" ;;
esac
kill -9 "$OWNER_PID" || fail "could not kill owner"
echo "cluster-smoke: owner :$OWNER_PORT killed"

i=0
while :; do
	SNAP="$(curl -fsS "http://127.0.0.1:$REPLICA/v1/jobs/$JOB")" || fail "job poll failed"
	case "$SNAP" in
	*'"status":"done"'*) break ;;
	*'"status":"failed"'* | *'"status":"canceled"'*) fail "audit died with the owner: $SNAP" ;;
	esac
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "audit never finished after owner kill: $SNAP"
	sleep 0.1
done
curl -fsS "http://127.0.0.1:$REPLICA/v1/jobs/$JOB/result" >/dev/null ||
	fail "job result not fetchable after owner kill"
echo "cluster-smoke: audit survived the owner kill"

echo "cluster-smoke: replica keeps serving reads with the owner dead"
curl -fsS -m 30 -X POST --data-binary @"$TMP/byref.json" \
	"http://127.0.0.1:$REPLICA/v1/analyze" >/dev/null ||
	fail "replica-served analyze failed after owner kill"

echo "cluster-smoke: partitioning the digest entirely"
# Kill the remaining holder too, and drop the outsider's fetched copy;
# now the only copies live on dead nodes and the contract is a fast,
# structured 503 — never a hang.
case "$REPLICA" in
"$P1") kill -9 "$PID_node1" ;;
"$P2") kill -9 "$PID_node2" ;;
"$P3") kill -9 "$PID_node3" ;;
esac
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE \
	"http://127.0.0.1:$OUTSIDER/v1/datasets/$DIGEST")"
[ "$CODE" = "200" ] || fail "local delete on :$OUTSIDER returned $CODE"

# New options => new result-cache fingerprint, so the node must resolve
# the ref again and discover every holder is gone. -m bounds the wait:
# the daemon must answer well inside it.
HDRS="$(curl -s -m 15 -D - -o "$TMP/unavail.json" -X POST --data-binary @"$TMP/byref.json" \
	"http://127.0.0.1:$OUTSIDER/v1/analyze?threshold=2")" ||
	fail "analyze against partitioned digest hung past the curl deadline"
case "$HDRS" in
*"503"*) ;;
*) fail "partitioned analyze did not answer 503: $HDRS $(cat "$TMP/unavail.json")" ;;
esac
case "$HDRS" in
*[Rr]etry-[Aa]fter:*) ;;
*) fail "503 missing Retry-After header: $HDRS" ;;
esac
case "$(cat "$TMP/unavail.json")" in
*'"code":"peer_unavailable"'*) ;;
*) fail "error body missing peer_unavailable code: $(cat "$TMP/unavail.json")" ;;
esac
echo "cluster-smoke: partitioned digest answered 503 + Retry-After + peer_unavailable"

echo "cluster-smoke: checking breaker visibility in /v1/fleet/stats"
STATS="$(curl -fsS -m 15 "http://127.0.0.1:$OUTSIDER/v1/fleet/stats")" ||
	fail "fleet stats unreachable"
case "$STATS" in
*'"state":"open"'*) ;;
*) fail "no open breaker in fleet stats: $STATS" ;;
esac
case "$STATS" in
*'"skipped":[{'*) ;;
*) fail "dead peers not reported as skipped: $STATS" ;;
esac
echo "cluster-smoke: dead peers skipped, breaker open and visible"

echo "cluster-smoke: fault-injected node on :$PFAULT (ROLEDIET_FAULT=drop:2)"
# A two-node fleet of the oracle and a fresh node whose outbound peer
# transport drops its first two requests (the deterministic injection
# seam, via the env fallback). Probing is off so the drops hit the
# upload's peer calls; with 3 attempts per call the retry/backoff layer
# must absorb both faults and still place the dataset on the oracle.
go run ./cmd/rolediet generate -org -scale 300 -out "$TMP/org2.json" >/dev/null
ROLEDIET_FAULT=drop:2 "$TMP/roledietd" -addr "127.0.0.1:$PFAULT" -node-id faulty \
	-peers "http://127.0.0.1:$PFAULT,http://127.0.0.1:$PORACLE" \
	-self "http://127.0.0.1:$PFAULT" \
	-peer-timeout 1s -peer-retries 3 -peer-probe-interval -1s \
	>>"$TMP/faulty.log" 2>&1 &
PIDS="$PIDS $!"
wait_healthy "$PFAULT"
UPLOAD2="$(curl -fsS -m 30 -X POST --data-binary @"$TMP/org2.json" \
	"http://127.0.0.1:$PFAULT/v1/datasets")" ||
	fail "upload through faulty transport rejected"
case "$UPLOAD2" in
*'"degraded":true'*) fail "retries did not absorb the injected faults: $UPLOAD2" ;;
esac
DIGEST2="$(printf '%s' "$UPLOAD2" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST2" ] || fail "no digest in faulty upload response: $UPLOAD2"
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' \
	"http://127.0.0.1:$PORACLE/v1/datasets/$DIGEST2/raw")" = "200" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "dataset never reached the peer through the faulty transport"
	sleep 0.1
done
echo "cluster-smoke: injected drops absorbed by retry; dataset placed through the faults"

echo "cluster-smoke: PASS"
