#!/bin/sh
# Smoke test for the continuous-audit subsystem: build roledietd and
# the rolediet webhook receiver, register the paper's Figure 1 dataset,
# point a tight-interval schedule at a live mutation session, then
# mutate the session so the next fire observes duplicate-group drift.
# Asserts the whole loop end to end: the webhook receives the drift
# alert, GET /v1/decisions recorded both scheduled runs (distinct
# digests), /metrics counted the fires/trips/deliveries, DELETE on
# the schedule is idempotent, and a graceful restart replays the
# flushed decision log. Stdlib + curl + sed only.
#
# Usage: scripts/continuous_smoke.sh [port] [hook-port]  (defaults 18085/18086)
set -eu

PORT="${1:-18085}"
HOOKPORT="${2:-18086}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""
HOOK_PID=""

cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	[ -n "$HOOK_PID" ] && kill "$HOOK_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "continuous-smoke: FAIL: $*" >&2
	[ -f "$TMP/daemon.log" ] && tail -20 "$TMP/daemon.log" >&2
	exit 1
}

# jfield RESPONSE KEY -> first string value of "KEY" in RESPONSE.
jfield() {
	printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p"
}

echo "continuous-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go build -o "$TMP/rolediet" ./cmd/rolediet

echo "continuous-smoke: starting webhook receiver on :$HOOKPORT"
"$TMP/rolediet" webhook -addr "127.0.0.1:$HOOKPORT" -out "$TMP/hooks.jsonl" \
	-count 1 -timeout 60s 2>"$TMP/webhook.log" &
HOOK_PID=$!

echo "continuous-smoke: starting roledietd on :$PORT (200ms schedule floor)"
"$TMP/roledietd" -addr "127.0.0.1:$PORT" -store-dir "$TMP/store" \
	-schedule-min-interval 200ms >>"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	sleep 0.1
done

echo "continuous-smoke: registering the Figure 1 dataset"
UPLOAD="$(curl -fsS -X POST --data-binary @testdata/figure1.json "$BASE/v1/datasets")" ||
	fail "upload rejected"
DIGEST="$(jfield "$UPLOAD" digest)"
[ -n "$DIGEST" ] || fail "no digest in upload response: $UPLOAD"

echo "continuous-smoke: opening a mutation session over $DIGEST"
printf '{"base_ref":"%s"}' "$DIGEST" >"$TMP/create.json"
CREATED="$(curl -fsS -X POST --data-binary @"$TMP/create.json" "$BASE/v1/sessions")" ||
	fail "session create rejected"
SID="$(jfield "$CREATED" id)"
[ -n "$SID" ] || fail "no session id: $CREATED"

echo "continuous-smoke: creating sink -> webhook, drift alert rule, schedule"
printf '{"url":"http://127.0.0.1:%s/hook","name":"smoke"}' "$HOOKPORT" >"$TMP/sink.json"
SINK="$(curl -fsS -X POST --data-binary @"$TMP/sink.json" "$BASE/v1/sinks")" ||
	fail "sink create rejected"
SINKID="$(jfield "$SINK" id)"
[ -n "$SINKID" ] || fail "no sink id: $SINK"

printf '{"type":"drift","threshold":1,"sink_ids":["%s"]}' "$SINKID" >"$TMP/rule.json"
RULE="$(curl -fsS -X POST --data-binary @"$TMP/rule.json" "$BASE/v1/alerts")" ||
	fail "alert create rejected"
RULEID="$(jfield "$RULE" id)"
[ -n "$RULEID" ] || fail "no rule id: $RULE"

# The schedule snapshots the live session each fire, so mutating the
# session changes the digest the next run analyses.
printf '{"dataset_ref":"%s","session_id":"%s","interval":"300ms"}' \
	"$DIGEST" "$SID" >"$TMP/sched.json"
CODE="$(curl -s -o "$TMP/sched_resp.json" -w '%{http_code}' -X POST \
	--data-binary @"$TMP/sched.json" "$BASE/v1/schedules")"
[ "$CODE" = "201" ] || fail "schedule create returned $CODE: $(cat "$TMP/sched_resp.json")"
SCHEDID="$(jfield "$(cat "$TMP/sched_resp.json")" id)"
[ -n "$SCHEDID" ] || fail "no schedule id"

echo "continuous-smoke: waiting for the first scheduled run"
i=0
until curl -fsS "$BASE/v1/decisions" | grep -q '"source":"schedule:'; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "no scheduled decision appeared"
	sleep 0.1
done

echo "continuous-smoke: mutating the session (R06 duplicates R01's user set)"
cat >"$TMP/events.jsonl" <<'EOF'
{"op":"add-role","role":"R06"}
{"op":"assign-user","role":"R06","user":"U03"}
EOF
APPLIED="$(curl -fsS -X POST --data-binary @"$TMP/events.jsonl" \
	"$BASE/v1/sessions/$SID/events")" || fail "event batch rejected"
case "$APPLIED" in
*'"applied":2'*) ;;
*) fail "batch did not apply 2 events: $APPLIED" ;;
esac

echo "continuous-smoke: waiting for the drift alert to reach the webhook"
if ! wait "$HOOK_PID"; then
	HOOK_PID=""
	fail "webhook receiver exited without a delivery: $(cat "$TMP/webhook.log")"
fi
HOOK_PID=""
grep -q '"type":"drift"' "$TMP/hooks.jsonl" ||
	fail "delivered alert is not a drift alert: $(cat "$TMP/hooks.jsonl")"
grep -q "\"rule_id\":\"$RULEID\"" "$TMP/hooks.jsonl" ||
	fail "alert does not name rule $RULEID: $(cat "$TMP/hooks.jsonl")"
echo "continuous-smoke: webhook received the drift alert"

echo "continuous-smoke: decision log recorded both runs with distinct digests"
DECISIONS="$(curl -fsS "$BASE/v1/decisions?page_size=1000")"
SCHED_DIGESTS="$(printf '%s' "$DECISIONS" | tr '{' '\n' | grep '"source":"schedule:' |
	sed -n 's/.*"dataset":"\([^"]*\)".*/\1/p' | sort -u)"
N="$(printf '%s\n' "$SCHED_DIGESTS" | grep -c . || true)"
[ "$N" -ge 2 ] || fail "scheduled runs cover $N distinct digest(s), want >= 2: $DECISIONS"
printf '%s\n' "$SCHED_DIGESTS" | grep -q "^$DIGEST$" ||
	fail "base digest missing from scheduled decisions"

echo "continuous-smoke: metrics counted the loop"
METRICS="$(curl -fsS "$BASE/metrics")"
for want in \
	'rolediet_schedule_fires_total' \
	'rolediet_alert_trips_total{type="drift"}' \
	'rolediet_sink_deliveries_total{outcome="ok"}' \
	'rolediet_decisions_total'; do
	printf '%s' "$METRICS" | grep -F "$want" | grep -qv ' 0$' ||
		fail "metric $want missing or zero"
done

echo "continuous-smoke: schedule DELETE is idempotent"
for i in 1 2; do
	CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/schedules/$SCHEDID")"
	[ "$CODE" = "204" ] || fail "schedule delete #$i returned $CODE, want 204"
done

echo "continuous-smoke: decision log survives a graceful restart"
LASTSEQ="$(printf '%s' "$DECISIONS" | tr '{' '\n' | sed -n 's/.*"seq":\([0-9]*\).*/\1/p' | sort -n | tail -1)"
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || fail "daemon did not exit 0 on SIGTERM"
DAEMON_PID=""
"$TMP/roledietd" -addr "127.0.0.1:$PORT" -store-dir "$TMP/store" \
	-schedule-min-interval 200ms >>"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "restarted daemon never became healthy"
	sleep 0.1
done
REPLAYED="$(curl -fsS "$BASE/v1/decisions?page_size=1000" | tr '{' '\n' |
	sed -n 's/.*"seq":\([0-9]*\).*/\1/p' | sort -n | tail -1)"
[ -n "$REPLAYED" ] || fail "no decisions replayed after restart (buffered log lost)"
[ "$REPLAYED" -ge "$LASTSEQ" ] ||
	fail "replayed through seq $REPLAYED, want >= $LASTSEQ from before the restart"

echo "continuous-smoke: PASS"
