#!/bin/sh
# Smoke test for the dataset registry and result cache: build
# roledietd, start it with -store-dir, drive upload -> analyze by
# reference (miss, then hit) -> diff two refs -> restart ->
# digest-addressable persistence with curl, and fail non-zero on any
# contract violation. Stdlib + curl + sed only (no jq).
#
# Usage: scripts/store_smoke.sh [port]   (default 18081)
set -eu

PORT="${1:-18081}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "store-smoke: FAIL: $*" >&2
	exit 1
}

start_daemon() {
	"$TMP/roledietd" -addr "127.0.0.1:$PORT" -store-dir "$TMP/store" >>"$TMP/daemon.log" 2>&1 &
	DAEMON_PID=$!
	i=0
	until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { cat "$TMP/daemon.log" >&2; fail "daemon never became healthy"; }
		sleep 0.1
	done
}

echo "store-smoke: building"
go build -o "$TMP/roledietd" ./cmd/roledietd
go run ./cmd/rolediet generate -org -scale 400 -out "$TMP/org.json" >/dev/null
WANT_DIGEST="$(go run ./cmd/rolediet digest -data "$TMP/org.json")"

echo "store-smoke: starting roledietd on :$PORT (store-dir $TMP/store)"
start_daemon

echo "store-smoke: uploading dataset"
UPLOAD="$(curl -fsS -X POST --data-binary @"$TMP/org.json" "$BASE/v1/datasets")" ||
	fail "upload rejected"
DIGEST="$(printf '%s' "$UPLOAD" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST" ] || fail "no digest in upload response: $UPLOAD"
[ "$DIGEST" = "$WANT_DIGEST" ] ||
	fail "server digest $DIGEST != CLI digest $WANT_DIGEST"
echo "store-smoke: dataset registered as $DIGEST"

echo "store-smoke: analyzing by reference"
printf '{"dataset_ref":"%s"}' "$DIGEST" >"$TMP/byref.json"
CACHE1="$(curl -fsS -D - -o "$TMP/rep1.json" -X POST --data-binary @"$TMP/byref.json" \
	"$BASE/v1/analyze" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE1" = "miss" ] || fail "first analyze X-Cache = '$CACHE1', want miss"
CACHE2="$(curl -fsS -D - -o "$TMP/rep2.json" -X POST --data-binary @"$TMP/byref.json" \
	"$BASE/v1/analyze" | sed -n 's/^X-Cache: *//Ip' | tr -d '\r')"
[ "$CACHE2" = "hit" ] || fail "repeat analyze X-Cache = '$CACHE2', want hit"
cmp -s "$TMP/rep1.json" "$TMP/rep2.json" ||
	fail "cached analyze body differs from computed one"
echo "store-smoke: repeat analyze served from cache, byte-identical"

STATS="$(curl -fsS "$BASE/v1/stats")"
case "$STATS" in
*'"hits":0'*) fail "stats show no cache hit: $STATS" ;;
*'"hits":'*) ;;
*) fail "stats missing hit counter: $STATS" ;;
esac

echo "store-smoke: diffing two stored snapshots"
go run ./cmd/rolediet generate -org -scale 300 -out "$TMP/org2.json" >/dev/null
UPLOAD2="$(curl -fsS -X POST --data-binary @"$TMP/org2.json" "$BASE/v1/datasets")"
DIGEST2="$(printf '%s' "$UPLOAD2" | sed -n 's/.*"digest":"\([^"]*\)".*/\1/p')"
[ -n "$DIGEST2" ] || fail "no digest in second upload: $UPLOAD2"
printf '{"before_ref":"%s","after_ref":"%s"}' "$DIGEST" "$DIGEST2" >"$TMP/diffreq.json"
DIFF="$(curl -fsS -X POST --data-binary @"$TMP/diffreq.json" "$BASE/v1/diff")" ||
	fail "diff by refs rejected"
case "$DIFF" in
*'"structural"'*) ;;
*) fail "diff response missing structural section: $DIFF" ;;
esac

echo "store-smoke: restarting daemon"
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
start_daemon

CODE="$(curl -s -o "$TMP/survived.json" -w '%{http_code}' "$BASE/v1/datasets/$DIGEST")"
[ "$CODE" = "200" ] || fail "dataset $DIGEST not addressable after restart ($CODE)"
echo "store-smoke: dataset survived the restart"

echo "store-smoke: deleting dataset"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/v1/datasets/$DIGEST")"
[ "$CODE" = "200" ] || fail "delete returned $CODE"
MISS="$(curl -s "$BASE/v1/datasets/$DIGEST")"
case "$MISS" in
*'"code":"not_found"'*) ;;
*) fail "deleted digest fetch missing not_found code: $MISS" ;;
esac

echo "store-smoke: PASS"
