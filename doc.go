// Package repro is a from-scratch Go reproduction of "IAM Role Diet: A
// Scalable Approach to Detecting RBAC Data Inefficiencies" (Moratore,
// Barbaro, Zhauniarovich; DSN-S 2025).
//
// The library lives under internal/: the detection framework
// (internal/core), the paper's custom Role Diet algorithm and the
// DBSCAN/HNSW baselines (internal/cluster/...), the RBAC domain model
// (internal/rbac), matrices (internal/matrix, internal/bitvec),
// synthetic workload generators (internal/gen), a consolidation planner
// (internal/consolidate) and the measurement harness (internal/bench).
// The rolediet CLI (cmd/rolediet) and the runnable examples (examples/)
// sit on top.
//
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the recorded results.
package repro
