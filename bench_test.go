package repro

// Benchmarks regenerating the paper's evaluation (one benchmark family
// per figure/table) plus the ablations called out in DESIGN.md §6.
//
// Figures 2 and 3 fix one matrix dimension at 1,000 and sweep the other
// from 1,000 to 10,000, comparing exact clustering (DBSCAN), approximate
// clustering (HNSW) and the paper's Role Diet algorithm on detecting
// roles that share the same users. The §IV-B table is the organisation-
// scale audit. Run everything with:
//
//	go test -bench=. -benchmem
//
// The slow points (DBSCAN/HNSW at 10k roles, the full-scale org) are
// real; they are the paper's argument.

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cluster/bitlsh"
	"repro/internal/cluster/dbscan"
	"repro/internal/cluster/hnsw"
	"repro/internal/cluster/rolediet"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/matrix"
)

// genMatrix builds the paper's synthetic workload: clusterProportion
// 0.2, maxClusterSize 10 (§IV-A).
func genMatrix(b *testing.B, rows, cols int) []*bitvec.Vector {
	b.Helper()
	g, err := gen.Matrix(gen.MatrixParams{
		Rows:              rows,
		Cols:              cols,
		ClusterProportion: 0.2,
		MaxClusterSize:    10,
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g.Rows
}

// benchMethod times one group-finding method on a rows x cols matrix.
func benchMethod(b *testing.B, m core.Method, rows, cols int) {
	b.Helper()
	data := genMatrix(b, rows, cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := core.FindRoleGroups(data, core.GroupOptions{Method: m, Threshold: 0})
		if err != nil {
			b.Fatal(err)
		}
		if len(groups) == 0 {
			b.Fatal("no groups found")
		}
	}
}

// BenchmarkFigure2 reproduces Figure 2: duration of same-user detection
// as the number of users (columns) grows, roles fixed at 1,000. The
// paper's observation: nearly flat for every method, with HNSW slowest
// (index build dominates), then DBSCAN, then Role Diet.
func BenchmarkFigure2(b *testing.B) {
	const roles = 1000
	for _, users := range []int{1000, 2000, 4000, 7000, 10000} {
		for _, m := range []core.Method{core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW} {
			b.Run(benchName("users", users, m), func(b *testing.B) {
				benchMethod(b, m, roles, users)
			})
		}
	}
}

// BenchmarkFigure3 reproduces Figure 3: duration as the number of roles
// (rows) grows, users fixed at 1,000. The paper's observations: all
// methods grow with role count; DBSCAN grows fastest (quadratic); HNSW
// overtakes DBSCAN around 7,000 roles; Role Diet is fastest throughout
// (§IV-A headline: 2.27s vs 496.41s vs 327.85s at 10,000 roles on their
// hardware).
func BenchmarkFigure3(b *testing.B) {
	const users = 1000
	for _, roles := range []int{1000, 2000, 4000, 7000, 10000} {
		for _, m := range []core.Method{core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW} {
			b.Run(benchName("roles", roles, m), func(b *testing.B) {
				benchMethod(b, m, roles, users)
			})
		}
	}
}

// BenchmarkFigure3Float64Baseline re-runs the Figure 3 role sweep with
// the float64 DBSCAN cost model of the paper's scikit-learn baseline.
// Against this baseline the HNSW crossover reported in the paper
// (approximate overtakes exact around 7,000 roles) reappears; against
// the bit-packed MethodDBSCAN it shifts beyond 10,000 roles because
// word-parallel Hamming distances speed the exact baseline up ~20-50x.
func BenchmarkFigure3Float64Baseline(b *testing.B) {
	const users = 1000
	for _, roles := range []int{1000, 4000, 10000} {
		b.Run(benchName("roles", roles, core.MethodDBSCANFloat64), func(b *testing.B) {
			benchMethod(b, core.MethodDBSCANFloat64, roles, users)
		})
	}
}

func benchName(axis string, v int, m core.Method) string {
	return axis + "=" + itoa(v) + "/" + m.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkOrgScale reproduces the §IV-B audit: generating and
// analysing the organisation-scale dataset with the sparse Role Diet
// pipeline. scale=1 is the paper's full ~50k-role scale; the smaller
// scales show near-linear behaviour. Generation is included in setup,
// not the measurement.
func BenchmarkOrgScale(b *testing.B) {
	for _, scale := range []int{100, 10, 1} {
		b.Run("scale=1/"+itoa(scale), func(b *testing.B) {
			ds, _, err := gen.Org(gen.DefaultOrgParams().Scaled(scale))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.AnalyzeSparse(ds, core.Options{SimilarThreshold: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.SameUserGroups) == 0 {
					b.Fatal("no groups detected")
				}
			}
		})
	}
}

// BenchmarkAblationCooccurrence contrasts the paper's didactic O(r²)
// co-occurrence matrix with the production inverted-index path
// (DESIGN.md §6): the full matrix touches every role pair, the inverted
// index only pairs that share at least one user.
func BenchmarkAblationCooccurrence(b *testing.B) {
	rows := genMatrix(b, 2000, 1000)
	b.Run("full-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := rolediet.CooccurrenceMatrix(rows)
			groups := rolediet.GroupsFromIndicator(c)
			if len(groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("inverted-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rolediet.Groups(rows, rolediet.Options{
				Threshold:                0,
				DisableExactHashFastPath: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}

// BenchmarkAblationExactHash measures the hash-bucket fast path for
// exact groups against the general co-occurrence path at k=0.
func BenchmarkAblationExactHash(b *testing.B) {
	rows := genMatrix(b, 5000, 1000)
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"hash-fast-path", false},
		{"general-path", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rolediet.Groups(rows, rolediet.Options{
					Threshold:                0,
					DisableExactHashFastPath: tc.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Groups) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

// BenchmarkAblationBitvecDistance contrasts DBSCAN over bit-packed rows
// with DBSCAN over []float64 rows (the representation the paper's
// scikit-learn baseline uses), isolating the win from word-parallel
// Hamming distances.
func BenchmarkAblationBitvecDistance(b *testing.B) {
	rows := genMatrix(b, 500, 1000)
	floats := make([][]float64, len(rows))
	for i, r := range rows {
		floats[i] = r.Floats()
	}
	cfg := dbscan.Config{Eps: 0, MinPts: 2}
	b.Run("bitvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.Run(rows, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.RunFloats(floats, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHNSWParams sweeps the HNSW construction parameters
// (M, efConstruction): the recall/speed trade-off behind the paper's
// note that faster native implementations exist but the trend stands.
func BenchmarkAblationHNSWParams(b *testing.B) {
	rows := genMatrix(b, 2000, 1000)
	for _, tc := range []struct {
		name string
		m    int
		efc  int
	}{
		{"M=8/efc=100", 8, 100},
		{"M=16/efc=200", 16, 200},
		{"M=32/efc=400", 32, 400},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				groups, err := core.FindRoleGroups(rows, core.GroupOptions{
					Method: core.MethodHNSW,
					HNSW:   hnsw.Config{M: tc.m, EfConstruction: tc.efc, Seed: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = groups
			}
		})
	}
}

// BenchmarkExtensionLSH measures the bit-sampling LSH extension against
// the other methods' workload: candidate generation plus verified
// grouping at thresholds 0 and 1.
func BenchmarkExtensionLSH(b *testing.B) {
	rows := genMatrix(b, 5000, 1000)
	for _, k := range []int{0, 1} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bitlsh.FindGroups(rows, k, bitlsh.Config{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Groups) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

// BenchmarkExtensionIncremental measures the incremental index: cost of
// one assignment mutation plus a group readout, on a pre-populated
// 10,000-role index — the steady-state cost the batch framework pays a
// full re-run for.
func BenchmarkExtensionIncremental(b *testing.B) {
	x := incremental.New(1)
	const (
		roles = 10000
		width = 1000
	)
	for r := 0; r < roles; r++ {
		if err := x.AddRole(r); err != nil {
			b.Fatal(err)
		}
		for c := r % width; c < width; c += 97 {
			if err := x.Assign(r, c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("mutation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			role := i % roles
			col := i % width
			if err := x.Assign(role, col); err != nil {
				b.Fatal(err)
			}
			if err := x.Revoke(role, col); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("groups-readout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Groups(incremental.GroupOptions{IgnoreEmpty: true})
		}
	})
}

// BenchmarkAblationParallel measures the multi-core fan-out of the Role
// Diet co-occurrence pass (GroupsParallel) against the serial version
// at threshold 1, where the pair-emission phase dominates.
func BenchmarkAblationParallel(b *testing.B) {
	rows := genMatrix(b, 10000, 1000)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rolediet.Groups(rows, rolediet.Options{Threshold: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rolediet.GroupsParallel(rows, rolediet.Options{Threshold: 1}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelBackends extends the parallel ablation to
// the remaining backends: DBSCAN region queries, LSH sketch+verify,
// and HNSW construction, serial versus fanned out. Run with -cpu 1,4
// to see the single-core overhead (the chunked fan-out on one core)
// next to the multi-core win.
func BenchmarkAblationParallelBackends(b *testing.B) {
	dbRows := genMatrix(b, 2000, 1000)
	dbCfg := dbscan.Config{Eps: 1, MinPts: 2}
	b.Run("dbscan/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.Run(dbRows, dbCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dbscan/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.RunParallel(dbRows, dbCfg, 4); err != nil {
				b.Fatal(err)
			}
		}
	})

	lshRows := genMatrix(b, 5000, 1000)
	lshCfg := bitlsh.Config{Seed: 1}
	b.Run("lsh/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bitlsh.FindGroups(lshRows, 1, lshCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lsh/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bitlsh.FindGroupsParallel(lshRows, 1, lshCfg, 4); err != nil {
				b.Fatal(err)
			}
		}
	})

	hnswRows := genMatrix(b, 2000, 1000)
	hnswCfg := hnsw.Config{Seed: 1}
	b.Run("hnsw-build/serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hnsw.Build(hnswRows, hnswCfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hnsw-build/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hnsw.BuildParallel(hnswRows, hnswCfg, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSparseVsDense compares the dense bit-matrix Role Diet path
// against the CSR path on the same workload, the §III-B representation
// trade-off.
func BenchmarkSparseVsDense(b *testing.B) {
	rows := genMatrix(b, 5000, 2000)
	m, err := matrix.FromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	csr := matrix.CSRFromDense(m)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rolediet.Groups(rows, rolediet.Options{Threshold: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rolediet.GroupsCSR(csr, rolediet.Options{Threshold: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr-including-conversion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := matrix.CSRFromDense(m)
			if _, err := rolediet.GroupsCSR(c, rolediet.Options{Threshold: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
