package replay_test

import (
	"fmt"

	"repro/internal/rbac"
	"repro/internal/replay"
)

// Example replays a short IAM event stream onto an empty dataset.
func Example() {
	events := []replay.Event{
		{Op: replay.OpAddUser, User: "alice"},
		{Op: replay.OpAddRole, Role: "dev"},
		{Op: replay.OpAddPermission, Permission: "push"},
		{Op: replay.OpAssignUser, Role: "dev", User: "alice"},
		{Op: replay.OpAssignPermission, Role: "dev", Permission: "push"},
	}
	r := &replay.Replayer{Dataset: rbac.NewDataset()}
	applied, err := r.Run(events)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("applied:", applied)
	fmt.Println("alice in dev:", r.Dataset.HasAssignment("dev", "alice"))
	// Output:
	// applied: 5
	// alice in dev: true
}

// ExampleReconcile derives the event log between two snapshots and
// shows it reproduces the target when replayed.
func ExampleReconcile() {
	before := rbac.Figure1()
	after := before.Clone()
	_ = after.RemoveRole("R03")

	events := replay.Reconcile(before, after)
	fmt.Println("events:", len(events))
	replayed := before.Clone()
	r := &replay.Replayer{Dataset: replayed}
	_, _ = r.Run(events)
	fmt.Println("roles:", replayed.NumRoles())
	// Output:
	// events: 1
	// roles: 4
}
