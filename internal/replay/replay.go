// Package replay defines a JSONL event-log format for RBAC mutations
// and a replayer that drives a dataset (and optionally the incremental
// duplicate index) through it.
//
// The paper's operating model is periodic batch audits; real IAM
// platforms, though, emit change events continuously. An event log
// bridges the two: exports can be reconciled into a log (Reconcile),
// replayed onto a dataset snapshot (Replayer), and audited at any
// point in the stream — with the incremental index keeping the class-4
// view current between full audits.
package replay

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/rbac"
)

// Op enumerates event kinds.
type Op string

// The event kinds.
const (
	OpAddUser          Op = "add-user"
	OpRemoveUser       Op = "remove-user"
	OpAddRole          Op = "add-role"
	OpRemoveRole       Op = "remove-role"
	OpAddPermission    Op = "add-permission"
	OpRemovePermission Op = "remove-permission"
	OpAssignUser       Op = "assign-user"
	OpRevokeUser       Op = "revoke-user"
	OpAssignPermission Op = "assign-permission"
	OpRevokePermission Op = "revoke-permission"
)

// Event is one mutation. Exactly the fields the op needs are set.
type Event struct {
	Op         Op                `json:"op"`
	User       rbac.UserID       `json:"user,omitempty"`
	Role       rbac.RoleID       `json:"role,omitempty"`
	Permission rbac.PermissionID `json:"permission,omitempty"`
	// Seq is an optional monotone sequence number for log correlation.
	Seq int64 `json:"seq,omitempty"`
}

// Validate checks the event's field shape.
func (e Event) Validate() error {
	switch e.Op {
	case OpAddUser, OpRemoveUser:
		if e.User == "" {
			return fmt.Errorf("replay: %s without user", e.Op)
		}
	case OpAddRole, OpRemoveRole:
		if e.Role == "" {
			return fmt.Errorf("replay: %s without role", e.Op)
		}
	case OpAddPermission, OpRemovePermission:
		if e.Permission == "" {
			return fmt.Errorf("replay: %s without permission", e.Op)
		}
	case OpAssignUser, OpRevokeUser:
		if e.Role == "" || e.User == "" {
			return fmt.Errorf("replay: %s needs role and user", e.Op)
		}
	case OpAssignPermission, OpRevokePermission:
		if e.Role == "" || e.Permission == "" {
			return fmt.Errorf("replay: %s needs role and permission", e.Op)
		}
	default:
		return fmt.Errorf("replay: unknown op %q", e.Op)
	}
	return nil
}

// Apply executes the event against a dataset.
func Apply(d *rbac.Dataset, e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	switch e.Op {
	case OpAddUser:
		return d.AddUser(e.User)
	case OpRemoveUser:
		return d.RemoveUser(e.User)
	case OpAddRole:
		return d.AddRole(e.Role)
	case OpRemoveRole:
		return d.RemoveRole(e.Role)
	case OpAddPermission:
		return d.AddPermission(e.Permission)
	case OpRemovePermission:
		return d.RemovePermission(e.Permission)
	case OpAssignUser:
		return d.AssignUser(e.Role, e.User)
	case OpRevokeUser:
		return d.RevokeUser(e.Role, e.User)
	case OpAssignPermission:
		return d.AssignPermission(e.Role, e.Permission)
	case OpRevokePermission:
		return d.RevokePermission(e.Role, e.Permission)
	default:
		return fmt.Errorf("replay: unknown op %q", e.Op)
	}
}

// WriteLog encodes events as JSON lines.
func WriteLog(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// ReadLog decodes a JSONL event stream, validating every event. It is
// bounded by the package default Limits (1 MiB lines, 1,000,000
// events); use ReadLogLimited to pick different bounds. A stream
// exceeding them fails with an error wrapping ErrLogTooLarge instead
// of allocating without bound.
func ReadLog(r io.Reader) ([]Event, error) {
	return ReadLogLimited(r, Limits{})
}

// ErrStopped is returned by Replayer.Run when a checkpoint callback
// asks to stop.
var ErrStopped = errors.New("replay: stopped by checkpoint")

// Replayer drives a dataset through an event stream with periodic
// checkpoints.
type Replayer struct {
	// Dataset is mutated in place as events apply.
	Dataset *rbac.Dataset
	// CheckpointEvery invokes Checkpoint after that many applied events
	// (0 disables checkpoints).
	CheckpointEvery int
	// Checkpoint, when set, observes the dataset mid-stream. Returning
	// false stops the replay with ErrStopped.
	Checkpoint func(applied int, d *rbac.Dataset) bool
}

// Run applies all events in order. It stops at the first failing event
// and reports its index.
func (r *Replayer) Run(events []Event) (applied int, err error) {
	for i, e := range events {
		if err := Apply(r.Dataset, e); err != nil {
			return i, fmt.Errorf("replay: event %d (%s): %w", i, e.Op, err)
		}
		applied = i + 1
		if r.CheckpointEvery > 0 && r.Checkpoint != nil && applied%r.CheckpointEvery == 0 {
			if !r.Checkpoint(applied, r.Dataset) {
				return applied, ErrStopped
			}
		}
	}
	return applied, nil
}

// Reconcile computes an event log that transforms the before snapshot
// into the after snapshot: removals first (edges implied by removed
// entities are dropped automatically), then additions, then edge
// changes on surviving roles. Replaying the result onto a clone of
// before yields a dataset with identical stats and assignments.
func Reconcile(before, after *rbac.Dataset) []Event {
	var events []Event

	// Entity removals.
	for _, r := range before.Roles() {
		if _, ok := after.RoleIndex(r); !ok {
			events = append(events, Event{Op: OpRemoveRole, Role: r})
		}
	}
	for _, u := range before.Users() {
		if _, ok := after.UserIndex(u); !ok {
			events = append(events, Event{Op: OpRemoveUser, User: u})
		}
	}
	for _, p := range before.Permissions() {
		if _, ok := after.PermissionIndex(p); !ok {
			events = append(events, Event{Op: OpRemovePermission, Permission: p})
		}
	}

	// Entity additions.
	for _, u := range after.Users() {
		if _, ok := before.UserIndex(u); !ok {
			events = append(events, Event{Op: OpAddUser, User: u})
		}
	}
	for _, p := range after.Permissions() {
		if _, ok := before.PermissionIndex(p); !ok {
			events = append(events, Event{Op: OpAddPermission, Permission: p})
		}
	}
	for _, r := range after.Roles() {
		if _, ok := before.RoleIndex(r); !ok {
			events = append(events, Event{Op: OpAddRole, Role: r})
		}
	}

	// Edge reconciliation per surviving-or-new role.
	for _, r := range after.Roles() {
		wantUsers, _ := after.RoleUsers(r)
		var haveUsers []rbac.UserID
		if _, existed := before.RoleIndex(r); existed {
			haveUsers, _ = before.RoleUsers(r)
		}
		addU, delU := diffIDLists(haveUsers, wantUsers)
		for _, u := range delU {
			// Skip users that were removed entirely; their edges died
			// with them.
			if _, ok := after.UserIndex(u); ok {
				events = append(events, Event{Op: OpRevokeUser, Role: r, User: u})
			}
		}
		for _, u := range addU {
			events = append(events, Event{Op: OpAssignUser, Role: r, User: u})
		}

		wantPerms, _ := after.RolePermissions(r)
		var havePerms []rbac.PermissionID
		if _, existed := before.RoleIndex(r); existed {
			havePerms, _ = before.RolePermissions(r)
		}
		addP, delP := diffPermLists(havePerms, wantPerms)
		for _, p := range delP {
			if _, ok := after.PermissionIndex(p); ok {
				events = append(events, Event{Op: OpRevokePermission, Role: r, Permission: p})
			}
		}
		for _, p := range addP {
			events = append(events, Event{Op: OpAssignPermission, Role: r, Permission: p})
		}
	}

	for i := range events {
		events[i].Seq = int64(i + 1)
	}
	return events
}

// diffIDLists diffs two sorted user lists (added, removed).
func diffIDLists(have, want []rbac.UserID) (added, removed []rbac.UserID) {
	i, j := 0, 0
	for i < len(have) && j < len(want) {
		switch {
		case have[i] == want[j]:
			i++
			j++
		case have[i] < want[j]:
			removed = append(removed, have[i])
			i++
		default:
			added = append(added, want[j])
			j++
		}
	}
	removed = append(removed, have[i:]...)
	added = append(added, want[j:]...)
	return added, removed
}

func diffPermLists(have, want []rbac.PermissionID) (added, removed []rbac.PermissionID) {
	i, j := 0, 0
	for i < len(have) && j < len(want) {
		switch {
		case have[i] == want[j]:
			i++
			j++
		case have[i] < want[j]:
			removed = append(removed, have[i])
			i++
		default:
			added = append(added, want[j])
			j++
		}
	}
	removed = append(removed, have[i:]...)
	added = append(added, want[j:]...)
	return added, removed
}
