package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrLogTooLarge reports an event stream exceeding the reader's
// configured bounds — an overlong line or too many events. Callers
// (the HTTP layer in particular) match it with errors.Is to turn a
// log bomb into a 400 instead of an unbounded allocation.
var ErrLogTooLarge = errors.New("replay: event log exceeds limits")

// Limits bounds ReadLogLimited. Zero fields take the package defaults.
type Limits struct {
	// MaxLineBytes caps one JSONL line; default 1 MiB. A single event
	// is a handful of identifiers, so anything near the cap is hostile
	// or corrupt, not real.
	MaxLineBytes int
	// MaxEvents caps the number of decoded events; default 1,000,000.
	MaxEvents int
}

// The package defaults, shared with ReadLog.
const (
	DefaultMaxLineBytes = 1 << 20
	DefaultMaxEvents    = 1_000_000
)

func (l Limits) withDefaults() Limits {
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = DefaultMaxLineBytes
	}
	if l.MaxEvents <= 0 {
		l.MaxEvents = DefaultMaxEvents
	}
	return l
}

// ReadLogLimited decodes a JSONL event stream, validating every event
// and enforcing lim. Exceeding either bound fails with an error
// wrapping ErrLogTooLarge; memory use is bounded by the limits however
// large the stream is.
func ReadLogLimited(r io.Reader, lim Limits) ([]Event, error) {
	lim = lim.withDefaults()
	var out []Event
	sc := bufio.NewScanner(r)
	buf := lim.MaxLineBytes
	if buf > 64*1024 {
		buf = 64 * 1024
	}
	sc.Buffer(make([]byte, 0, buf), lim.MaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if len(out) >= lim.MaxEvents {
			return nil, fmt.Errorf("%w: more than %d events", ErrLogTooLarge, lim.MaxEvents)
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("%w: line %d longer than %d bytes", ErrLogTooLarge, line+1, lim.MaxLineBytes)
		}
		return nil, fmt.Errorf("replay: scan: %w", err)
	}
	return out, nil
}
