package replay

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rbac"
)

// eventsFromBytes derives a deterministic event sequence from fuzz
// bytes: every two bytes pick an op and an entity id from a small
// universe. Small universes maximise collisions — duplicate adds,
// revokes of absent edges, removals of unknown entities — which is
// exactly the error surface the round-trip must survive.
func eventsFromBytes(data []byte) []Event {
	ops := []Op{
		OpAddUser, OpRemoveUser, OpAddRole, OpRemoveRole,
		OpAddPermission, OpRemovePermission,
		OpAssignUser, OpRevokeUser, OpAssignPermission, OpRevokePermission,
	}
	var events []Event
	for i := 0; i+1 < len(data); i += 2 {
		op := ops[int(data[i])%len(ops)]
		id := int(data[i+1]) % 8
		e := Event{Op: op, Seq: int64(len(events) + 1)}
		switch op {
		case OpAddUser, OpRemoveUser:
			e.User = rbac.UserID(fmt.Sprintf("u%d", id))
		case OpAddRole, OpRemoveRole:
			e.Role = rbac.RoleID(fmt.Sprintf("r%d", id))
		case OpAddPermission, OpRemovePermission:
			e.Permission = rbac.PermissionID(fmt.Sprintf("p%d", id))
		case OpAssignUser, OpRevokeUser:
			e.Role = rbac.RoleID(fmt.Sprintf("r%d", id%4))
			e.User = rbac.UserID(fmt.Sprintf("u%d", id/4))
		case OpAssignPermission, OpRevokePermission:
			e.Role = rbac.RoleID(fmt.Sprintf("r%d", id%4))
			e.Permission = rbac.PermissionID(fmt.Sprintf("p%d", id/4))
		}
		events = append(events, e)
	}
	return events
}

// FuzzReplayRoundtrip drives random event logs through the full
// pipeline: WriteLog must encode whatever eventsFromBytes builds,
// ReadLog must decode it back identically, and replaying the decoded
// log through a Replayer must never panic and must leave the dataset
// Validate-clean — whether the whole log applied or it stopped at a
// semantically invalid event (the applied prefix still has to be a
// consistent dataset).
func FuzzReplayRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 2, 0, 6, 0})
	f.Add([]byte{2, 1, 0, 4, 6, 1, 8, 1, 3, 1, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		events := eventsFromBytes(data)

		var buf bytes.Buffer
		if err := WriteLog(&buf, events); err != nil {
			t.Fatalf("WriteLog on valid events: %v", err)
		}
		decoded, err := ReadLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadLog of WriteLog output: %v", err)
		}
		if len(decoded) != len(events) {
			t.Fatalf("round-trip lost events: wrote %d, read %d", len(events), len(decoded))
		}
		for i := range events {
			if decoded[i] != events[i] {
				t.Fatalf("event %d mutated in round-trip: %+v != %+v", i, decoded[i], events[i])
			}
		}

		rp := &Replayer{Dataset: rbac.NewDataset()}
		applied, err := rp.Run(decoded)
		if err != nil && applied >= len(decoded) {
			t.Fatalf("Run failed yet claims all %d events applied: %v", applied, err)
		}
		if verr := rp.Dataset.Validate(); verr != nil {
			t.Fatalf("dataset invalid after %d events (err=%v): %v", applied, err, verr)
		}
	})
}

// FuzzReadLogRaw feeds arbitrary bytes straight into the bounded log
// reader: it must never panic, and with tight Limits it must refuse
// oversized input with ErrLogTooLarge rather than allocating without
// bound.
func FuzzReadLogRaw(f *testing.F) {
	f.Add([]byte(`{"op":"add-role","role":"r1"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte(strings.Repeat("x", 256)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Default bounds: any outcome but a panic is acceptable.
		_, _ = ReadLog(bytes.NewReader(data))

		// Tight bounds: events beyond the cap must be refused, not kept.
		events, err := ReadLogLimited(bytes.NewReader(data), Limits{MaxLineBytes: 64, MaxEvents: 4})
		if err == nil && len(events) > 4 {
			t.Fatalf("ReadLogLimited kept %d events past MaxEvents=4", len(events))
		}
	})
}
