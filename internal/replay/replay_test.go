package replay

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

func TestEventValidate(t *testing.T) {
	bad := []Event{
		{Op: "frobnicate"},
		{Op: OpAddUser},
		{Op: OpAddRole},
		{Op: OpAddPermission},
		{Op: OpAssignUser, Role: "r"},
		{Op: OpAssignUser, User: "u"},
		{Op: OpAssignPermission, Role: "r"},
		{Op: OpRevokePermission, Permission: "p"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, e)
		}
	}
	good := []Event{
		{Op: OpAddUser, User: "u"},
		{Op: OpRemoveRole, Role: "r"},
		{Op: OpAssignPermission, Role: "r", Permission: "p"},
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
	}
}

func TestApplySequence(t *testing.T) {
	d := rbac.NewDataset()
	events := []Event{
		{Op: OpAddUser, User: "alice"},
		{Op: OpAddRole, Role: "dev"},
		{Op: OpAddPermission, Permission: "push"},
		{Op: OpAssignUser, Role: "dev", User: "alice"},
		{Op: OpAssignPermission, Role: "dev", Permission: "push"},
	}
	for _, e := range events {
		if err := Apply(d, e); err != nil {
			t.Fatal(err)
		}
	}
	if !d.HasAssignment("dev", "alice") || !d.HasPermission("dev", "push") {
		t.Fatal("events not applied")
	}
	if err := Apply(d, Event{Op: OpRevokeUser, Role: "dev", User: "alice"}); err != nil {
		t.Fatal(err)
	}
	if d.HasAssignment("dev", "alice") {
		t.Fatal("revoke not applied")
	}
	if err := Apply(d, Event{Op: "bogus"}); err == nil {
		t.Fatal("bogus op accepted")
	}
	if err := Apply(d, Event{Op: OpRemoveUser, User: "ghost"}); err == nil {
		t.Fatal("remove of unknown user accepted")
	}
}

func TestLogRoundTrip(t *testing.T) {
	events := []Event{
		{Op: OpAddUser, User: "a", Seq: 1},
		{Op: OpAddRole, Role: "r", Seq: 2},
		{Op: OpAssignUser, Role: "r", User: "a", Seq: 3},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("round trip: %+v vs %+v", back, events)
	}
}

func TestWriteLogRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLog(&buf, []Event{{Op: "nope"}}); err == nil {
		t.Fatal("invalid event written")
	}
}

func TestReadLogErrors(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := ReadLog(strings.NewReader(`{"op":"add-user"}` + "\n")); err == nil {
		t.Fatal("invalid event accepted")
	}
	// Blank lines are skipped.
	events, err := ReadLog(strings.NewReader("\n" + `{"op":"add-user","user":"u"}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
}

func TestReplayerCheckpoints(t *testing.T) {
	events := []Event{
		{Op: OpAddUser, User: "a"},
		{Op: OpAddUser, User: "b"},
		{Op: OpAddUser, User: "c"},
		{Op: OpAddUser, User: "d"},
	}
	var checkpoints []int
	r := &Replayer{
		Dataset:         rbac.NewDataset(),
		CheckpointEvery: 2,
		Checkpoint: func(applied int, d *rbac.Dataset) bool {
			checkpoints = append(checkpoints, applied)
			return true
		},
	}
	applied, err := r.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("applied = %d", applied)
	}
	if !reflect.DeepEqual(checkpoints, []int{2, 4}) {
		t.Fatalf("checkpoints = %v", checkpoints)
	}
}

func TestReplayerStop(t *testing.T) {
	r := &Replayer{
		Dataset:         rbac.NewDataset(),
		CheckpointEvery: 1,
		Checkpoint:      func(int, *rbac.Dataset) bool { return false },
	}
	applied, err := r.Run([]Event{{Op: OpAddUser, User: "a"}, {Op: OpAddUser, User: "b"}})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d", applied)
	}
}

func TestReplayerFailureIndex(t *testing.T) {
	r := &Replayer{Dataset: rbac.NewDataset()}
	_, err := r.Run([]Event{
		{Op: OpAddUser, User: "a"},
		{Op: OpAssignUser, Role: "ghost", User: "a"},
	})
	if err == nil || !strings.Contains(err.Error(), "event 1") {
		t.Fatalf("err = %v", err)
	}
}

// datasetsEquivalent compares two datasets structurally (same entities
// and edges, order-insensitive).
func datasetsEquivalent(a, b *rbac.Dataset) bool {
	if a.Stats() != b.Stats() {
		return false
	}
	for _, r := range a.Roles() {
		if _, ok := b.RoleIndex(r); !ok {
			return false
		}
		au, _ := a.RoleUsers(r)
		bu, _ := b.RoleUsers(r)
		if !reflect.DeepEqual(au, bu) {
			return false
		}
		ap, _ := a.RolePermissions(r)
		bp, _ := b.RolePermissions(r)
		if !reflect.DeepEqual(ap, bp) {
			return false
		}
	}
	return true
}

func TestReconcileFigure1Consolidation(t *testing.T) {
	before := rbac.Figure1()
	after, _, err := consolidate.Consolidate(before, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := Reconcile(before, after)
	if len(events) == 0 {
		t.Fatal("no events for a real change")
	}
	replayed := before.Clone()
	r := &Replayer{Dataset: replayed}
	if _, err := r.Run(events); err != nil {
		t.Fatal(err)
	}
	if !datasetsEquivalent(replayed, after) {
		t.Fatal("replayed dataset differs from target")
	}
}

func TestReconcileIdentity(t *testing.T) {
	d := rbac.Figure1()
	if events := Reconcile(d, d.Clone()); len(events) != 0 {
		t.Fatalf("identity reconcile produced %d events", len(events))
	}
}

// randomMutate applies random valid mutations to a clone.
func randomMutate(r *rand.Rand, d *rbac.Dataset) *rbac.Dataset {
	out := d.Clone()
	for step := 0; step < 15; step++ {
		switch r.Intn(7) {
		case 0:
			_ = out.AddUser(rbac.UserID("nu" + string(rune('a'+r.Intn(26)))))
		case 1:
			_ = out.AddRole(rbac.RoleID("nr" + string(rune('a'+r.Intn(26)))))
		case 2:
			_ = out.AddPermission(rbac.PermissionID("np" + string(rune('a'+r.Intn(26)))))
		case 3:
			roles, users := out.Roles(), out.Users()
			if len(roles) > 0 && len(users) > 0 {
				_ = out.AssignUser(roles[r.Intn(len(roles))], users[r.Intn(len(users))])
			}
		case 4:
			roles, perms := out.Roles(), out.Permissions()
			if len(roles) > 0 && len(perms) > 0 {
				_ = out.AssignPermission(roles[r.Intn(len(roles))], perms[r.Intn(len(perms))])
			}
		case 5:
			roles := out.Roles()
			if len(roles) > 1 {
				_ = out.RemoveRole(roles[r.Intn(len(roles))])
			}
		case 6:
			users := out.Users()
			if len(users) > 1 {
				_ = out.RemoveUser(users[r.Intn(len(users))])
			}
		}
	}
	return out
}

func TestPropertyReconcileReplaysToTarget(t *testing.T) {
	// For arbitrary mutations, Reconcile(before, after) replayed onto
	// before always reproduces after.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		before := rbac.Figure1()
		after := randomMutate(r, before)
		events := Reconcile(before, after)
		// The log must survive serialisation.
		var buf bytes.Buffer
		if err := WriteLog(&buf, events); err != nil {
			return false
		}
		decoded, err := ReadLog(&buf)
		if err != nil {
			return false
		}
		replayed := before.Clone()
		rp := &Replayer{Dataset: replayed}
		if _, err := rp.Run(decoded); err != nil {
			return false
		}
		return datasetsEquivalent(replayed, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
