package ttl

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestExpired(t *testing.T) {
	now := time.Now()
	if Expired(time.Time{}, now, time.Nanosecond) {
		t.Error("zero time must never expire")
	}
	if Expired(now.Add(-time.Second), now, 2*time.Second) {
		t.Error("entry inside its TTL reported expired")
	}
	if !Expired(now.Add(-3*time.Second), now, 2*time.Second) {
		t.Error("entry past its TTL reported live")
	}
}

func TestIntervalClamps(t *testing.T) {
	cases := []struct {
		ttl, want time.Duration
	}{
		{time.Millisecond, 10 * time.Millisecond},  // floor
		{time.Minute, 15 * time.Second},            // ttl/4
		{24 * time.Hour, 30 * time.Second},         // ceiling
	}
	for _, c := range cases {
		if got := Interval(c.ttl); got != c.want {
			t.Errorf("Interval(%v) = %v, want %v", c.ttl, got, c.want)
		}
	}
}

func TestSweeperSweepsAndStops(t *testing.T) {
	var (
		mu     sync.Mutex
		sweeps int
	)
	s := NewSweeper(context.Background(), time.Millisecond, func(time.Time) {
		mu.Lock()
		sweeps++
		mu.Unlock()
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := sweeps
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper fired %d times, want >= 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	mu.Lock()
	after := sweeps
	mu.Unlock()
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if sweeps != after {
		t.Errorf("sweep ran after Stop returned (%d -> %d)", after, sweeps)
	}
	s.Stop() // idempotent
}

func TestSweeperStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSweeper(ctx, time.Millisecond, func(time.Time) {})
	cancel()
	select {
	case <-s.done:
	case <-time.After(2 * time.Second):
		t.Fatal("sweeper did not exit on context cancellation")
	}
	s.Stop() // must not hang after ctx-driven exit
}
