// Package ttl factors out the expiry pattern shared by the stores that
// retain finished work for a bounded time (the async job store and the
// dataset/result store): entries carry a timestamp, lookups check it
// lazily so an expired entry is unreachable the moment its TTL lapses,
// and a background sweeper garbage-collects entries nobody asks for
// again so memory stays bounded for abandoned ids.
//
// The split of responsibilities is deliberate: correctness (an expired
// entry is never served) comes from the lazy Expired check on every
// access, while the Sweeper only bounds memory. A store built on this
// package therefore behaves identically however rarely the sweep
// fires.
package ttl

import (
	"context"
	"sync"
	"time"
)

// Expired reports whether an entry stamped at t has outlived ttl as of
// now. The zero time never expires — stores use it for entries that
// have not reached their retained (terminal) state yet.
func Expired(t, now time.Time, ttl time.Duration) bool {
	return !t.IsZero() && now.Sub(t) > ttl
}

// Interval derives a sweep cadence from a TTL: a quarter of it, clamped
// to [10ms, 30s] so tests with millisecond TTLs still get swept and
// long retentions don't leave hours-stale garbage around.
func Interval(ttl time.Duration) time.Duration {
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	return interval
}

// Sweeper runs a sweep function on a fixed cadence until Stop is called
// or the construction context ends. It owns its goroutine; Stop waits
// for it to exit, so a store's Close can guarantee no sweep runs after
// it returns.
type Sweeper struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewSweeper starts a goroutine calling sweep(now) every interval.
// ctx may be nil; a cancelled ctx stops the sweeper just like Stop.
func NewSweeper(ctx context.Context, every time.Duration, sweep func(now time.Time)) *Sweeper {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Sweeper{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			case now := <-t.C:
				sweep(now)
			}
		}
	}()
	return s
}

// Stop terminates the sweep goroutine and waits for it to exit. It is
// idempotent and safe after the construction context was cancelled.
func (s *Sweeper) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
