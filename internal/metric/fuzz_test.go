package metric

import (
	"math"
	"testing"

	"repro/internal/bitvec"
)

// fuzzParity drives one metric's float and bit-packed implementations
// over the same fuzzed bit patterns and requires them to agree within
// tol. The two byte slices are truncated to a common length (capped at
// 64 bytes = 512 bits, the regime the clustering code runs in) and
// expanded bit-by-bit into a bitvec.Vector; the float side is derived
// from the vector itself via Floats(), so both implementations see
// exactly the same data.
func fuzzParity(f *testing.F, kind Kind, tol float64) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0x00}, []byte{0xff})
	f.Add([]byte{0xaa, 0x55}, []byte{0x55, 0xaa})
	f.Add([]byte{0x01, 0x02, 0x04}, []byte{0x01, 0x02, 0x04})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 || n > 64 {
			return
		}
		va, vb := bitvec.New(n*8), bitvec.New(n*8)
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if a[i]&(1<<bit) != 0 {
					va.Set(i*8 + bit)
				}
				if b[i]&(1<<bit) != 0 {
					vb.Set(i*8 + bit)
				}
			}
		}
		fa, fb := va.Floats(), vb.Floats()
		bits := kind.Bits()(va, vb)
		flt := kind.Float()(fa, fb)
		if math.Abs(bits-flt) > tol {
			t.Fatalf("%s: bit-packed %v != float %v (|Δ| > %v) on %d-bit vectors",
				kind, bits, flt, tol, n*8)
		}
		// Both forms must be symmetric as well.
		if rev := kind.Bits()(vb, va); rev != bits {
			t.Fatalf("%s: bit-packed asymmetric: d(a,b)=%v d(b,a)=%v", kind, bits, rev)
		}
	})
}

// Hamming and Manhattan count/sum whole units, so the float and bit
// implementations must agree exactly.
func FuzzHammingParity(f *testing.F)   { fuzzParity(f, Hamming, 0) }
func FuzzManhattanParity(f *testing.F) { fuzzParity(f, Manhattan, 0) }

// Euclidean takes one sqrt of the same integer on both sides — still
// exact, but keep a one-ulp budget in case an implementation reorders.
func FuzzEuclideanParity(f *testing.F) { fuzzParity(f, Euclidean, 1e-12) }

// Jaccard divides the same two integers on both sides; Cosine differs
// by sqrt(na)*sqrt(nb) vs sqrt(na*nb), which can disagree in the last
// ulp. 1e-12 is ~4 orders of magnitude above that on distances in
// [0, 1].
func FuzzJaccardParity(f *testing.F) { fuzzParity(f, Jaccard, 1e-12) }
func FuzzCosineParity(f *testing.F)  { fuzzParity(f, Cosine, 1e-12) }
