package metric

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckLens(t *testing.T) {
	if err := CheckLens([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatalf("equal lengths rejected: %v", err)
	}
	if err := CheckLens(nil, nil); err != nil {
		t.Fatalf("two empty vectors rejected: %v", err)
	}
	err := CheckLens([]float64{1, 2, 3}, []float64{1})
	if err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("error %v does not wrap ErrLengthMismatch", err)
	}
	if !strings.Contains(err.Error(), "3 != 1") {
		t.Errorf("error %q does not name the lengths", err)
	}
}

// TestFloatFuncsPanicOnMismatch pins the documented invariant: every
// float metric panics (with the ErrLengthMismatch message) when handed
// vectors of different lengths, rather than silently reading out of
// step.
func TestFloatFuncsPanicOnMismatch(t *testing.T) {
	a := []float64{1, 0, 1}
	b := []float64{1, 0}
	for _, kind := range []Kind{Hamming, Manhattan, Euclidean, Jaccard, Cosine} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic on mismatched lengths")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, ErrLengthMismatch.Error()) {
					t.Errorf("panic %v does not carry the ErrLengthMismatch message", r)
				}
			}()
			kind.Float()(a, b)
		})
	}
}
