package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Hamming, "hamming"},
		{Manhattan, "manhattan"},
		{Euclidean, "euclidean"},
		{Jaccard, "jaccard"},
		{Cosine, "cosine"},
		{Kind(99), "metric.Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"hamming", "manhattan", "euclidean", "jaccard", "cosine"} {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseKind("chebyshev"); err == nil {
		t.Fatal("ParseKind accepted unknown metric")
	}
}

func TestHammingFloat(t *testing.T) {
	a := []float64{0, 1, 1, 0}
	b := []float64{1, 1, 0, 0}
	if got := HammingFloat(a, b); got != 2 {
		t.Fatalf("HammingFloat = %v, want 2", got)
	}
}

func TestManhattanFloat(t *testing.T) {
	a := []float64{0, 3, -1}
	b := []float64{1, 1, 1}
	if got := ManhattanFloat(a, b); got != 5 {
		t.Fatalf("ManhattanFloat = %v, want 5", got)
	}
}

func TestEuclideanFloat(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := EuclideanFloat(a, b); !approx(got, 5) {
		t.Fatalf("EuclideanFloat = %v, want 5", got)
	}
}

func TestJaccardFloat(t *testing.T) {
	a := []float64{1, 1, 0, 0}
	b := []float64{1, 0, 1, 0}
	if got := JaccardFloat(a, b); !approx(got, 1-1.0/3.0) {
		t.Fatalf("JaccardFloat = %v", got)
	}
	zero := []float64{0, 0}
	if got := JaccardFloat(zero, zero); got != 0 {
		t.Fatalf("JaccardFloat(0,0) = %v, want 0", got)
	}
}

func TestCosineFloat(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if got := CosineFloat(a, b); !approx(got, 1) {
		t.Fatalf("CosineFloat orthogonal = %v, want 1", got)
	}
	if got := CosineFloat(a, a); !approx(got, 0) {
		t.Fatalf("CosineFloat self = %v, want 0", got)
	}
	zero := []float64{0, 0}
	if got := CosineFloat(zero, zero); got != 0 {
		t.Fatalf("CosineFloat(0,0) = %v, want 0", got)
	}
	if got := CosineFloat(zero, a); got != 1 {
		t.Fatalf("CosineFloat(0,a) = %v, want 1", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	HammingFloat([]float64{1}, []float64{1, 2})
}

func TestBitFloatAgreementOnBinary(t *testing.T) {
	// On 0/1 data every Bits metric must agree with its Float twin.
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(150)
		va, vb := bitvec.New(n), bitvec.New(n)
		for i := 0; i < n; i++ {
			if rr.Intn(2) == 1 {
				va.Set(i)
			}
			if rr.Intn(2) == 1 {
				vb.Set(i)
			}
		}
		fa, fb := va.Floats(), vb.Floats()
		for _, k := range []Kind{Hamming, Manhattan, Euclidean, Jaccard, Cosine} {
			if !approx(k.Bits()(va, vb), k.Float()(fa, fb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestManhattanEqualsHammingOnBinary(t *testing.T) {
	// The paper's rationale for using Manhattan with HNSW: it coincides
	// with Hamming on 0/1 vectors.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(150)
		va, vb := bitvec.New(n), bitvec.New(n)
		for i := 0; i < n; i++ {
			if rr.Intn(2) == 1 {
				va.Set(i)
			}
			if rr.Intn(2) == 1 {
				vb.Set(i)
			}
		}
		return ManhattanBits(va, vb) == HammingBits(va, vb) &&
			approx(ManhattanFloat(va.Floats(), vb.Floats()), HammingFloat(va.Floats(), vb.Floats()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricAxiomsOnBits(t *testing.T) {
	// Identity and symmetry for every Kind on bit vectors.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(100)
		va, vb := bitvec.New(n), bitvec.New(n)
		for i := 0; i < n; i++ {
			if rr.Intn(2) == 1 {
				va.Set(i)
			}
			if rr.Intn(2) == 1 {
				vb.Set(i)
			}
		}
		for _, k := range []Kind{Hamming, Manhattan, Euclidean, Jaccard, Cosine} {
			d := k.Bits()
			if !approx(d(va, va), 0) {
				return false
			}
			if !approx(d(va, vb), d(vb, va)) {
				return false
			}
			if d(va, vb) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	for _, name := range []string{"Float", "Bits"} {
		name := name
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Kind(0).%s() did not panic", name)
				}
			}()
			if name == "Float" {
				Kind(0).Float()
			} else {
				Kind(0).Bits()
			}
		})
	}
}
