// Package metric provides the distance functions used by the clustering
// baselines: Hamming (exact DBSCAN per §III-C), Manhattan (HNSW per
// §III-D), plus Euclidean, Jaccard and Cosine for completeness. Each
// metric exists in two forms — over float vectors, matching the paper's
// Python baselines, and over bit vectors, the fast path the rest of the
// repository uses.
package metric

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// Kind identifies a distance metric.
type Kind int

// Supported metric kinds.
const (
	Hamming Kind = iota + 1
	Manhattan
	Euclidean
	Jaccard
	Cosine
)

// String returns the metric's lower-case name.
func (k Kind) String() string {
	switch k {
	case Hamming:
		return "hamming"
	case Manhattan:
		return "manhattan"
	case Euclidean:
		return "euclidean"
	case Jaccard:
		return "jaccard"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("metric.Kind(%d)", int(k))
	}
}

// ParseKind resolves a metric name as used in CLI flags.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "hamming":
		return Hamming, nil
	case "manhattan":
		return Manhattan, nil
	case "euclidean":
		return Euclidean, nil
	case "jaccard":
		return Jaccard, nil
	case "cosine":
		return Cosine, nil
	default:
		return 0, fmt.Errorf("metric: unknown kind %q", name)
	}
}

// FloatFunc computes a distance between two equal-length float vectors.
//
// Equal length is an invariant, not a checked input: implementations
// panic on mismatched lengths (wrapping ErrLengthMismatch's message),
// because per-call validation would dominate the O(n²) clustering hot
// loops these functions live in. Any code path that can receive
// untrusted or ragged vectors must validate with CheckLens before
// calling — dbscan.RunFloatsContext, the only such path reachable from
// server input, does exactly that.
type FloatFunc func(a, b []float64) float64

// BitFunc computes a distance between two equal-length bit vectors.
type BitFunc func(a, b *bitvec.Vector) float64

// Float returns the float-vector implementation of the metric.
func (k Kind) Float() FloatFunc {
	switch k {
	case Hamming:
		return HammingFloat
	case Manhattan:
		return ManhattanFloat
	case Euclidean:
		return EuclideanFloat
	case Jaccard:
		return JaccardFloat
	case Cosine:
		return CosineFloat
	default:
		panic(fmt.Sprintf("metric: unknown kind %d", int(k)))
	}
}

// Bits returns the bit-vector implementation of the metric.
func (k Kind) Bits() BitFunc {
	switch k {
	case Hamming:
		return HammingBits
	case Manhattan:
		return ManhattanBits
	case Euclidean:
		return EuclideanBits
	case Jaccard:
		return JaccardBits
	case Cosine:
		return CosineBits
	default:
		panic(fmt.Sprintf("metric: unknown kind %d", int(k)))
	}
}

// ErrLengthMismatch is the sentinel CheckLens wraps; callers test for
// it with errors.Is.
var ErrLengthMismatch = errors.New("metric: vector length mismatch")

// CheckLens validates that two float vectors share a length, returning
// an error wrapping ErrLengthMismatch otherwise. It is the boundary
// check callers must run before handing untrusted vectors to a
// FloatFunc, which assumes the invariant and panics when it is broken.
func CheckLens(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d != %d", ErrLengthMismatch, len(a), len(b))
	}
	return nil
}

func checkLens(a, b []float64) {
	if err := CheckLens(a, b); err != nil {
		panic(err.Error())
	}
}

// HammingFloat counts coordinates where the two vectors differ.
func HammingFloat(a, b []float64) float64 {
	checkLens(a, b)
	n := 0.0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// ManhattanFloat is the L1 distance. On 0/1 vectors it coincides with the
// Hamming distance, which is why the paper can use it for HNSW.
func ManhattanFloat(a, b []float64) float64 {
	checkLens(a, b)
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// EuclideanFloat is the L2 distance.
func EuclideanFloat(a, b []float64) float64 {
	checkLens(a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// JaccardFloat is 1 - |A∩B|/|A∪B| treating non-zero coordinates as set
// members. Two all-zero vectors have distance 0.
func JaccardFloat(a, b []float64) float64 {
	checkLens(a, b)
	inter, union := 0, 0
	for i := range a {
		sa, sb := a[i] != 0, b[i] != 0
		if sa && sb {
			inter++
		}
		if sa || sb {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// CosineFloat is 1 - cos(a, b). A zero vector has distance 1 from
// everything except another zero vector, which is at distance 0.
func CosineFloat(a, b []float64) float64 {
	checkLens(a, b)
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// HammingBits is the exact bit-level Hamming distance.
func HammingBits(a, b *bitvec.Vector) float64 {
	return float64(a.Hamming(b))
}

// ManhattanBits equals HammingBits on binary data.
func ManhattanBits(a, b *bitvec.Vector) float64 {
	return float64(a.Hamming(b))
}

// EuclideanBits is sqrt(Hamming) on binary data, since each differing
// coordinate contributes 1² to the squared distance.
func EuclideanBits(a, b *bitvec.Vector) float64 {
	return math.Sqrt(float64(a.Hamming(b)))
}

// JaccardBits is 1 - |a∧b|/|a∨b|; two zero vectors are at distance 0.
func JaccardBits(a, b *bitvec.Vector) float64 {
	union := a.UnionCount(b)
	if union == 0 {
		return 0
	}
	return 1 - float64(a.IntersectionCount(b))/float64(union)
}

// CosineBits is 1 - |a∧b|/sqrt(|a||b|) on binary data.
func CosineBits(a, b *bitvec.Vector) float64 {
	na, nb := a.Count(), b.Count()
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - float64(a.IntersectionCount(b))/math.Sqrt(float64(na)*float64(nb))
}
