package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rbac"
)

func TestKindStrings(t *testing.T) {
	want := map[InefficiencyKind]string{
		KindStandaloneNode:   "standalone-node",
		KindDisconnectedRole: "disconnected-role",
		KindSingleAssignment: "single-assignment",
		KindSameGroup:        "same-group",
		KindSimilarGroup:     "similar-group",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(InefficiencyKind(42).String(), "42") {
		t.Error("unknown kind string")
	}
}

func TestAnalyzeFigure1(t *testing.T) {
	rep, err := Analyze(rbac.Figure1(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Class 1: no standalone users; P01 standalone; no standalone roles.
	if len(rep.StandaloneUsers) != 0 {
		t.Errorf("standalone users = %v", rep.StandaloneUsers)
	}
	if !reflect.DeepEqual(rep.StandalonePermissions, []rbac.PermissionID{"P01"}) {
		t.Errorf("standalone permissions = %v, want [P01]", rep.StandalonePermissions)
	}
	if len(rep.StandaloneRoles) != 0 {
		t.Errorf("standalone roles = %v", rep.StandaloneRoles)
	}

	// Class 2: R03 has no users; R02 has no permissions.
	if !reflect.DeepEqual(rep.RolesWithoutUsers, []rbac.RoleID{"R03"}) {
		t.Errorf("roles without users = %v, want [R03]", rep.RolesWithoutUsers)
	}
	if !reflect.DeepEqual(rep.RolesWithoutPermissions, []rbac.RoleID{"R02"}) {
		t.Errorf("roles without permissions = %v, want [R02]", rep.RolesWithoutPermissions)
	}

	// Class 3: R01 and R05 single user; R01 single permission.
	if !reflect.DeepEqual(rep.RolesWithSingleUser, []rbac.RoleID{"R01", "R05"}) {
		t.Errorf("single-user roles = %v, want [R01 R05]", rep.RolesWithSingleUser)
	}
	if !reflect.DeepEqual(rep.RolesWithSinglePermission, []rbac.RoleID{"R01"}) {
		t.Errorf("single-permission roles = %v, want [R01]", rep.RolesWithSinglePermission)
	}

	// Class 4: R02+R04 same users; R04+R05 same permissions.
	if len(rep.SameUserGroups) != 1 ||
		!reflect.DeepEqual(rep.SameUserGroups[0].Roles, []rbac.RoleID{"R02", "R04"}) {
		t.Errorf("same-user groups = %v", rep.SameUserGroups)
	}
	if len(rep.SamePermissionGroups) != 1 ||
		!reflect.DeepEqual(rep.SamePermissionGroups[0].Roles, []rbac.RoleID{"R04", "R05"}) {
		t.Errorf("same-permission groups = %v", rep.SamePermissionGroups)
	}

	// Class 5 (k=1): similar-user groups chain {R01?}.. verify it at
	// least contains the class-4 members (distance 0 <= 1).
	foundUserGroup := false
	for _, g := range rep.SimilarUserGroups {
		has := map[rbac.RoleID]bool{}
		for _, r := range g.Roles {
			has[r] = true
		}
		if has["R02"] && has["R04"] {
			foundUserGroup = true
		}
	}
	if !foundUserGroup {
		t.Errorf("similar-user groups %v missing R02/R04", rep.SimilarUserGroups)
	}
}

func TestAnalyzeSkipFlags(t *testing.T) {
	ds := rbac.Figure1()
	rep, err := Analyze(ds, Options{SkipGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameUserGroups != nil || rep.SimilarUserGroups != nil {
		t.Fatal("SkipGroups still produced groups")
	}
	rep, err = Analyze(ds, Options{SkipSimilar: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameUserGroups == nil {
		t.Fatal("SkipSimilar suppressed same groups")
	}
	if rep.SimilarUserGroups != nil {
		t.Fatal("SkipSimilar still produced similar groups")
	}
}

func TestAnalyzeInvalidOptions(t *testing.T) {
	if _, err := Analyze(rbac.Figure1(), Options{SimilarThreshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestAnalyzerSnapshotIsolation(t *testing.T) {
	ds := rbac.Figure1()
	a := NewAnalyzer(ds)
	if err := ds.RemoveRole("R01"); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Analyze(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Roles != 5 {
		t.Fatalf("analyzer observed later mutation: roles = %d", rep.Stats.Roles)
	}
}

func TestAllMethodsAgreeOnFigure1(t *testing.T) {
	ds := rbac.Figure1()
	var reports []*Report
	for _, m := range []Method{MethodRoleDiet, MethodDBSCAN, MethodHNSW, MethodLSH} {
		rep, err := Analyze(ds, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0].SameUserGroups, reports[i].SameUserGroups) {
			t.Errorf("method %s same-user groups differ: %v vs %v",
				reports[i].Method, reports[i].SameUserGroups, reports[0].SameUserGroups)
		}
		if !reflect.DeepEqual(reports[0].SamePermissionGroups, reports[i].SamePermissionGroups) {
			t.Errorf("method %s same-permission groups differ", reports[i].Method)
		}
	}
}

func TestMethodParseAndString(t *testing.T) {
	for _, name := range []string{"rolediet", "dbscan", "hnsw", "dbscan-float64", "lsh"} {
		m, err := ParseMethod(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Errorf("round trip %q -> %q", name, m.String())
		}
	}
	if _, err := ParseMethod("kmeans"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Fatal("unknown method string")
	}
}

func TestFindRoleGroupsValidation(t *testing.T) {
	rows := []*bitvec.Vector{bitvec.New(4), bitvec.New(4)}
	if _, err := FindRoleGroups(rows, GroupOptions{Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := FindRoleGroups(rows, GroupOptions{Method: Method(42)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	groups, err := FindRoleGroups(nil, GroupOptions{})
	if err != nil || groups != nil {
		t.Fatalf("empty input = (%v, %v)", groups, err)
	}
}

func TestFindRoleGroupsDefaultMethod(t *testing.T) {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(8, []int{1, 2}),
		bitvec.FromIndices(8, []int{1, 2}),
	}
	groups, err := FindRoleGroups(rows, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(groups, [][]int{{0, 1}}) {
		t.Fatalf("groups = %v", groups)
	}
}

func randRows(r *rand.Rand, n, dim int, density float64, dups int) []*bitvec.Vector {
	rows := make([]*bitvec.Vector, n)
	for i := range rows {
		v := bitvec.New(dim)
		for j := 0; j < dim; j++ {
			if r.Float64() < density {
				v.Set(j)
			}
		}
		rows[i] = v
	}
	for d := 0; d < dups && n >= 2; d++ {
		rows[r.Intn(n)] = rows[r.Intn(n)].Clone()
	}
	return rows
}

func TestPropertyExactMethodsAgreeThroughFacade(t *testing.T) {
	// The unified facade must give identical groups for all three exact
	// methods (rolediet, bit-packed DBSCAN, float64 DBSCAN) at any
	// threshold.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(30), 1+r.Intn(12), 0.3, r.Intn(6))
		k := r.Intn(3)
		a, err := FindRoleGroups(rows, GroupOptions{Method: MethodRoleDiet, Threshold: k})
		if err != nil {
			return false
		}
		for _, m := range []Method{MethodDBSCAN, MethodDBSCANFloat64} {
			b, err := FindRoleGroups(rows, GroupOptions{Method: m, Threshold: k})
			if err != nil {
				return false
			}
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHNSWNeverInventsGroups(t *testing.T) {
	// HNSW may miss pairs (approximate recall) but must never co-group
	// roles that are farther than the threshold from every member of
	// their group (soundness via verified distances).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(25), 2+r.Intn(12), 0.3, r.Intn(5))
		k := r.Intn(2)
		groups, err := FindRoleGroups(rows, GroupOptions{Method: MethodHNSW, Threshold: k})
		if err != nil {
			return false
		}
		for _, g := range groups {
			for _, i := range g {
				ok := false
				for _, j := range g {
					if i != j && rows[i].Hamming(rows[j]) <= k {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupStats(t *testing.T) {
	groups := []RoleGroup{
		{Roles: []rbac.RoleID{"a", "b"}},
		{Roles: []rbac.RoleID{"c", "d", "e"}},
	}
	s := StatsOf(groups)
	if s.Groups != 2 || s.RolesInGroups != 5 || s.Reducible != 3 || s.LargestGroup != 3 {
		t.Fatalf("StatsOf = %+v", s)
	}
	if got := StatsOf(nil); got != (GroupStats{}) {
		t.Fatalf("StatsOf(nil) = %+v", got)
	}
}

func TestReportSummaryAndJSON(t *testing.T) {
	rep, err := Analyze(rbac.Figure1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{
		"standalone permissions",
		"roles without users",
		"roles sharing the same users",
		"method=rolediet",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if rep.TotalReducibleRoles() != 2 {
		t.Fatalf("TotalReducibleRoles = %d, want 2", rep.TotalReducibleRoles())
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.SameUserGroups, rep.SameUserGroups) {
		t.Fatal("report JSON round trip lost groups")
	}
}

func TestEmptyDataset(t *testing.T) {
	rep, err := Analyze(rbac.NewDataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Roles != 0 || len(rep.SameUserGroups) != 0 {
		t.Fatalf("empty dataset report = %+v", rep)
	}
	if rep.TotalReducibleRoles() != 0 {
		t.Fatal("empty dataset reducible != 0")
	}
}
