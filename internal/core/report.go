package core

import (
	"fmt"
	"strings"
)

// GroupStats summarises a set of role groups the way the paper's §IV-B
// reports them.
type GroupStats struct {
	// Groups is the number of groups.
	Groups int `json:"groups"`
	// RolesInGroups counts every member of every group ("8,000 roles
	// sharing the same users").
	RolesInGroups int `json:"rolesInGroups"`
	// Reducible is the number of roles that could be removed by
	// collapsing each group to a single role: sum(len(g) - 1). The paper
	// lower-bounds this as half the member count assuming pair groups.
	Reducible int `json:"reducible"`
	// LargestGroup is the size of the biggest group.
	LargestGroup int `json:"largestGroup"`
}

// StatsOf computes group statistics.
func StatsOf(groups []RoleGroup) GroupStats {
	s := GroupStats{Groups: len(groups)}
	for _, g := range groups {
		n := len(g.Roles)
		s.RolesInGroups += n
		s.Reducible += n - 1
		if n > s.LargestGroup {
			s.LargestGroup = n
		}
	}
	return s
}

// TotalReducibleRoles returns how many roles could be removed by
// consolidating all class-4 groups — the basis of the paper's "about
// 10% of all roles" headline.
func (r *Report) TotalReducibleRoles() int {
	return StatsOf(r.SameUserGroups).Reducible + StatsOf(r.SamePermissionGroups).Reducible
}

// Summary renders the report as a human-readable table mirroring the
// §IV-B narrative: one line per inefficiency class and side.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RBAC inefficiency report (method=%s, similar threshold=%d)\n",
		r.Method, r.SimilarThreshold)
	fmt.Fprintf(&b, "dataset: %d users, %d roles, %d permissions, %d+%d assignments\n",
		r.Stats.Users, r.Stats.Roles, r.Stats.Permissions,
		r.Stats.UserAssignments, r.Stats.PermissionAssignments)
	b.WriteString("\n")

	fmt.Fprintf(&b, "%-46s %8d\n", "1. standalone users", len(r.StandaloneUsers))
	fmt.Fprintf(&b, "%-46s %8d\n", "1. standalone permissions", len(r.StandalonePermissions))
	fmt.Fprintf(&b, "%-46s %8d\n", "1. standalone roles", len(r.StandaloneRoles))
	fmt.Fprintf(&b, "%-46s %8d\n", "2. roles without users", len(r.RolesWithoutUsers))
	fmt.Fprintf(&b, "%-46s %8d\n", "2. roles without permissions", len(r.RolesWithoutPermissions))
	fmt.Fprintf(&b, "%-46s %8d\n", "3. roles with a single user", len(r.RolesWithSingleUser))
	fmt.Fprintf(&b, "%-46s %8d\n", "3. roles with a single permission", len(r.RolesWithSinglePermission))

	su := StatsOf(r.SameUserGroups)
	sp := StatsOf(r.SamePermissionGroups)
	fmt.Fprintf(&b, "%-46s %8d (in %d groups, %d reducible)\n",
		"4. roles sharing the same users", su.RolesInGroups, su.Groups, su.Reducible)
	fmt.Fprintf(&b, "%-46s %8d (in %d groups, %d reducible)\n",
		"4. roles sharing the same permissions", sp.RolesInGroups, sp.Groups, sp.Reducible)

	if r.SimilarUserGroups != nil || r.SimilarPermissionGroups != nil {
		xu := StatsOf(r.SimilarUserGroups)
		xp := StatsOf(r.SimilarPermissionGroups)
		fmt.Fprintf(&b, "%-46s %8d (in %d groups)\n",
			fmt.Sprintf("5. roles sharing all but <=%d users", r.SimilarThreshold),
			xu.RolesInGroups, xu.Groups)
		fmt.Fprintf(&b, "%-46s %8d (in %d groups)\n",
			fmt.Sprintf("5. roles sharing all but <=%d permissions", r.SimilarThreshold),
			xp.RolesInGroups, xp.Groups)
	}

	b.WriteString("\n")
	fmt.Fprintf(&b, "linear detectors: %v, same groups: %v, similar groups: %v\n",
		r.LinearScanDuration, r.SameGroupsDuration, r.SimilarGroupDuration)
	if red := r.TotalReducibleRoles(); red > 0 && r.Stats.Roles > 0 {
		fmt.Fprintf(&b, "consolidating class-4 groups removes %d of %d roles (%.1f%%)\n",
			red, r.Stats.Roles, 100*float64(red)/float64(r.Stats.Roles))
	}
	return b.String()
}
