package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster/rolediet"
	"repro/internal/matrix"
	"repro/internal/rbac"
)

// AnalyzeSparse runs the full detection framework over CSR matrices
// instead of dense bit matrices. This is the configuration that handles
// the paper's organisation-scale dataset (§IV-B: ~50k roles, ~90k
// users, ~350k permissions) on a laptop: the dense RUAM/RPAM would need
// gigabytes, the CSR form a few megabytes.
//
// Only MethodRoleDiet supports the sparse path — which mirrors the
// paper's finding that the DBSCAN and HNSW baselines were halted after
// 24 hours on the real dataset while the custom algorithm finished in
// about two minutes. Requesting another method returns an error rather
// than silently densifying.
func AnalyzeSparse(d *rbac.Dataset, opts Options) (*Report, error) {
	return AnalyzeSparseContext(context.Background(), d, opts)
}

// AnalyzeSparseContext is AnalyzeSparse with cooperative cancellation:
// the CSR grouping passes poll the context inside their hot loops and
// the whole analysis aborts with ctx.Err() soon after cancellation.
func AnalyzeSparseContext(ctx context.Context, d *rbac.Dataset, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Method != MethodRoleDiet {
		return nil, fmt.Errorf("core: sparse analysis supports only rolediet, got %s", opts.Method)
	}
	progress := progressReporter(opts.Progress)

	ruam := d.RUAMCSR()
	rpam := d.RPAMCSR()

	rep := &Report{
		Stats:            d.Stats(),
		Method:           opts.Method.String(),
		SimilarThreshold: opts.SimilarThreshold,
	}

	progress.emit(StageLinearScan, 0)
	start := time.Now()
	detectLinearSparse(d, ruam, rpam, rep)
	rep.LinearScanDuration = time.Since(start)
	progress.emit(StageLinearScan, fracLinearEnd)

	if opts.SkipGroups {
		progress.emit(StageDone, 1)
		return rep, nil
	}

	toGroups := func(c *matrix.CSR, k int, stage string, lo, hi float64) ([]RoleGroup, error) {
		kept, remap := filterEmptyRows(c)
		ropts := rolediet.Options{
			Threshold: k,
			Progress:  progress.span(stage, lo, hi),
		}
		var res *rolediet.Result
		var err error
		if opts.Workers >= 2 {
			res, err = rolediet.GroupsCSRParallelContext(ctx, kept, ropts, opts.Workers)
		} else {
			res, err = rolediet.GroupsCSRContext(ctx, kept, ropts)
		}
		if err != nil {
			return nil, err
		}
		out := make([]RoleGroup, len(res.Groups))
		for gi, g := range res.Groups {
			ids := make([]rbac.RoleID, len(g))
			for i, ri := range g {
				ids[i] = d.Role(remap[ri])
			}
			out[gi] = RoleGroup{Roles: ids}
		}
		progress.emit(stage, hi)
		return out, nil
	}

	start = time.Now()
	var err error
	if rep.SameUserGroups, err = toGroups(ruam, 0,
		StageSameUserGroups, fracLinearEnd, fracSameUserEnd); err != nil {
		return nil, fmt.Errorf("same-user groups: %w", err)
	}
	if rep.SamePermissionGroups, err = toGroups(rpam, 0,
		StageSamePermissionGroups, fracSameUserEnd, fracSamePermEnd); err != nil {
		return nil, fmt.Errorf("same-permission groups: %w", err)
	}
	rep.SameGroupsDuration = time.Since(start)

	if opts.SkipSimilar {
		progress.emit(StageDone, 1)
		return rep, nil
	}

	start = time.Now()
	if rep.SimilarUserGroups, err = toGroups(ruam, opts.SimilarThreshold,
		StageSimilarUserGroups, fracSamePermEnd, fracSimilarUserEnd); err != nil {
		return nil, fmt.Errorf("similar-user groups: %w", err)
	}
	if rep.SimilarPermissionGroups, err = toGroups(rpam, opts.SimilarThreshold,
		StageSimilarPermissionGroups, fracSimilarUserEnd, fracSimilarPermEnd); err != nil {
		return nil, fmt.Errorf("similar-permission groups: %w", err)
	}
	rep.SimilarGroupDuration = time.Since(start)

	progress.emit(StageDone, 1)
	return rep, nil
}

// detectLinearSparse runs the class-1/2/3 detectors over CSR matrices.
func detectLinearSparse(d *rbac.Dataset, ruam, rpam *matrix.CSR, rep *Report) {
	for ui, deg := range ruam.ColSums() {
		if deg == 0 {
			rep.StandaloneUsers = append(rep.StandaloneUsers, d.User(ui))
		}
	}
	for pi, deg := range rpam.ColSums() {
		if deg == 0 {
			rep.StandalonePermissions = append(rep.StandalonePermissions, d.Permission(pi))
		}
	}
	for ri := 0; ri < ruam.Rows(); ri++ {
		users := ruam.RowSum(ri)
		perms := rpam.RowSum(ri)
		switch {
		case users == 0 && perms == 0:
			rep.StandaloneRoles = append(rep.StandaloneRoles, d.Role(ri))
		case users == 0:
			rep.RolesWithoutUsers = append(rep.RolesWithoutUsers, d.Role(ri))
		case perms == 0:
			rep.RolesWithoutPermissions = append(rep.RolesWithoutPermissions, d.Role(ri))
		}
		if users == 1 {
			rep.RolesWithSingleUser = append(rep.RolesWithSingleUser, d.Role(ri))
		}
		if perms == 1 {
			rep.RolesWithSinglePermission = append(rep.RolesWithSinglePermission, d.Role(ri))
		}
	}
}

// filterEmptyRows drops all-zero rows from a CSR matrix and returns the
// kept matrix plus a kept-index → original-index map.
func filterEmptyRows(c *matrix.CSR) (*matrix.CSR, []int) {
	remap := make([]int, 0, c.Rows())
	out := matrix.NewCSR(0, c.Cols())
	out.RowPtr = out.RowPtr[:1]
	for i := 0; i < c.Rows(); i++ {
		row := c.RowCols(i)
		if len(row) == 0 {
			continue
		}
		out.ColIdx = append(out.ColIdx, row...)
		out.RowPtr = append(out.RowPtr, len(out.ColIdx))
		remap = append(remap, i)
	}
	out.NRows = len(remap)
	return out, remap
}
