package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/cluster/bitlsh"
	"repro/internal/cluster/dbscan"
	"repro/internal/cluster/hnsw"
	"repro/internal/cluster/rolediet"
	"repro/internal/ctxcheck"
)

// Method selects the role-group detection algorithm (§III-C evaluates
// the three of them).
type Method int

// The paper's three methods, plus the float64 DBSCAN cost-model variant.
const (
	// MethodRoleDiet is the paper's custom algorithm: deterministic,
	// complete, and the fastest of the three.
	MethodRoleDiet Method = iota + 1
	// MethodDBSCAN is the exact-clustering baseline.
	MethodDBSCAN
	// MethodHNSW is the approximate-nearest-neighbour baseline; it may
	// miss group members (recall < 1), which the paper accepts because
	// periodic re-runs converge.
	MethodHNSW
	// MethodDBSCANFloat64 is DBSCAN over []float64 rows — the cost model
	// of the paper's scikit-learn baseline, which receives the
	// assignment matrix as a float array. The bit-packed MethodDBSCAN is
	// 20-50x faster per distance call; this variant exists so the
	// Figure 2/3 shape (including the HNSW crossover) can be reproduced
	// against a baseline with the paper's arithmetic.
	MethodDBSCANFloat64
	// MethodLSH is bit-sampling locality-sensitive hashing, a second
	// approximate baseline: exact at threshold 0, probabilistic recall
	// above, never a false pair. It extends the paper's comparison with
	// the LSH family its datasketch dependency is built around.
	MethodLSH
)

// String returns the method's name as used in CLI flags and reports.
func (m Method) String() string {
	switch m {
	case MethodRoleDiet:
		return "rolediet"
	case MethodDBSCAN:
		return "dbscan"
	case MethodHNSW:
		return "hnsw"
	case MethodDBSCANFloat64:
		return "dbscan-float64"
	case MethodLSH:
		return "lsh"
	default:
		return fmt.Sprintf("core.Method(%d)", int(m))
	}
}

// MarshalText encodes the method as its flag/JSON name, so Options
// structs marshal with "method": "rolediet" rather than an opaque int.
func (m Method) MarshalText() ([]byte, error) {
	if m == 0 {
		return []byte(""), nil
	}
	if _, err := ParseMethod(m.String()); err != nil {
		return nil, fmt.Errorf("core: cannot marshal unknown method %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText decodes a method name, rejecting unknown ones. The
// empty string decodes to the zero Method (defaulted to rolediet by
// withDefaults), so {"method": ""} and an absent field behave alike.
func (m *Method) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*m = 0
		return nil
	}
	parsed, err := ParseMethod(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMethod resolves a method name.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "rolediet":
		return MethodRoleDiet, nil
	case "dbscan":
		return MethodDBSCAN, nil
	case "hnsw":
		return MethodHNSW, nil
	case "dbscan-float64":
		return MethodDBSCANFloat64, nil
	case "lsh":
		return MethodLSH, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q", name)
	}
}

// GroupOptions tunes FindRoleGroups. The JSON form is the wire schema
// shared by the HTTP server, the jobs API, and the CLI's -options flag;
// see Options for the top-level contract.
type GroupOptions struct {
	// Method selects the algorithm; defaults to MethodRoleDiet.
	Method Method `json:"method,omitempty"`
	// Threshold is the maximum Hamming distance within a group: 0 finds
	// roles sharing the same users/permissions (class 4), k >= 1 finds
	// similar ones (class 5).
	Threshold int `json:"threshold,omitempty"`
	// HNSW carries index parameters for MethodHNSW; the zero value uses
	// the library defaults (M=16, efConstruction=200, Manhattan).
	HNSW hnsw.Config `json:"hnsw,omitempty"`
	// HNSWSearchEf is the beam width used when querying each role's
	// neighbourhood; defaults to 64.
	HNSWSearchEf int `json:"hnswSearchEf,omitempty"`
	// LSH carries index parameters for MethodLSH; the zero value picks
	// width- and threshold-dependent defaults.
	LSH bitlsh.Config `json:"lsh,omitempty"`
	// IgnoreEmptyRows excludes roles with no assignments on the analysed
	// side from grouping. All-zero rows are trivially identical to each
	// other, so without this a dataset's disconnected roles (inefficiency
	// class 2) would resurface as one giant class-4 group. The Analyzer
	// enables it; the raw facade defaults to false.
	IgnoreEmptyRows bool `json:"ignoreEmptyRows,omitempty"`
	// Workers fans the selected backend's hot phase out over this many
	// goroutines. 0 (the default) and 1 run the serial implementation;
	// values >= 2 select the parallel one; negative values are rejected.
	// Exact backends (rolediet, dbscan, dbscan-float64, lsh) return
	// identical results at any worker count; hnsw keeps its recall floor
	// but links may differ run to run when Workers >= 2.
	Workers int `json:"workers,omitempty"`
	// Progress, when non-nil, receives (rowsDone, totalRows) from inside
	// the grouping loops for the backends that support in-loop reporting
	// (rolediet and hnsw; dbscan and lsh report only at boundaries). Not
	// part of the wire schema.
	Progress func(done, total int) `json:"-"`
}

// UnmarshalJSON decodes the wire form, rejecting unknown method names
// (via Method.UnmarshalText) and negative thresholds, so every consumer
// of the schema applies the same validation.
func (o *GroupOptions) UnmarshalJSON(data []byte) error {
	type plain GroupOptions
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if p.Threshold < 0 {
		return fmt.Errorf("core: negative group threshold %d", p.Threshold)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: negative workers %d", p.Workers)
	}
	*o = GroupOptions(p)
	return nil
}

// FindRoleGroups detects groups of roles whose rows (RUAM or RPAM) are
// identical (Threshold 0) or similar (Threshold k). Groups use the
// connected-component semantics shared by all three methods; every
// group has at least two members, members ascend, and groups are
// ordered by smallest member.
func FindRoleGroups(rows []*bitvec.Vector, opts GroupOptions) ([][]int, error) {
	return FindRoleGroupsContext(context.Background(), rows, opts)
}

// FindRoleGroupsContext is FindRoleGroups bound to a context. Every
// backend polls the context periodically inside its hot loops and
// aborts with ctx.Err() once it is cancelled.
func FindRoleGroupsContext(ctx context.Context, rows []*bitvec.Vector, opts GroupOptions) ([][]int, error) {
	if opts.Threshold < 0 {
		return nil, fmt.Errorf("core: negative threshold %d", opts.Threshold)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative workers %d", opts.Workers)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if opts.IgnoreEmptyRows {
		kept := make([]*bitvec.Vector, 0, len(rows))
		remap := make([]int, 0, len(rows))
		for i, r := range rows {
			if r.Any() {
				kept = append(kept, r)
				remap = append(remap, i)
			}
		}
		inner := opts
		inner.IgnoreEmptyRows = false
		groups, err := FindRoleGroupsContext(ctx, kept, inner)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			for i, idx := range g {
				g[i] = remap[idx]
			}
		}
		return groups, nil
	}
	return findRoleGroupsMat(ctx, rows, nil, opts)
}

// findRoleGroupsMat is the dispatch behind FindRoleGroupsContext with an
// optional prepacked bit-matrix arena over rows. A nil arena is packed
// lazily, once, for the backends that consume one; the Analyzer passes
// each side's cached arena so its class-4 and class-5 runs share a
// single packing. rows must be non-empty and the caller must already
// have applied the IgnoreEmptyRows filter.
func findRoleGroupsMat(ctx context.Context, rows []*bitvec.Vector, m *bitmat.Matrix, opts GroupOptions) ([][]int, error) {
	if opts.Threshold < 0 {
		return nil, fmt.Errorf("core: negative threshold %d", opts.Threshold)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative workers %d", opts.Workers)
	}
	method := opts.Method
	if method == 0 {
		method = MethodRoleDiet
	}
	arena := func() (*bitmat.Matrix, error) {
		if m == nil {
			var err error
			if m, err = bitmat.FromRows(rows); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	// Workers 0/1 keep the serial implementations; >= 2 selects each
	// backend's parallel variant with that worker count.
	par := opts.Workers >= 2
	switch method {
	case MethodRoleDiet:
		ropts := rolediet.Options{
			Threshold: opts.Threshold,
			Progress:  opts.Progress,
		}
		am, err := arena()
		if err != nil {
			return nil, err
		}
		var res *rolediet.Result
		if par {
			res, err = rolediet.GroupsMatParallelContext(ctx, am, ropts, opts.Workers)
		} else {
			res, err = rolediet.GroupsMatContext(ctx, am, ropts)
		}
		if err != nil {
			return nil, err
		}
		return res.Groups, nil
	case MethodDBSCAN:
		cfg := dbscan.Config{
			// Small epsilon mirrors the paper's float-comparison guard;
			// distances are integral so it cannot admit false pairs.
			Eps:    float64(opts.Threshold) + 1e-9,
			MinPts: 2,
		}
		am, err := arena()
		if err != nil {
			return nil, err
		}
		var res *dbscan.Result
		if par {
			res, err = dbscan.RunMatParallelContext(ctx, am, cfg, opts.Workers)
		} else {
			res, err = dbscan.RunMatContext(ctx, am, cfg)
		}
		if err != nil {
			return nil, err
		}
		return normalizeGroups(res.Groups()), nil
	case MethodHNSW:
		return hnswGroups(ctx, rows, arena, opts)
	case MethodDBSCANFloat64:
		floats := make([][]float64, len(rows))
		for i, r := range rows {
			floats[i] = r.Floats()
		}
		cfg := dbscan.Config{
			Eps:    float64(opts.Threshold) + 1e-9,
			MinPts: 2,
		}
		var res *dbscan.Result
		var err error
		if par {
			res, err = dbscan.RunFloatsParallelContext(ctx, floats, cfg, opts.Workers)
		} else {
			res, err = dbscan.RunFloatsContext(ctx, floats, cfg)
		}
		if err != nil {
			return nil, err
		}
		return normalizeGroups(res.Groups()), nil
	case MethodLSH:
		am, err := arena()
		if err != nil {
			return nil, err
		}
		var res *bitlsh.Result
		if par {
			res, err = bitlsh.FindGroupsMatParallelContext(ctx, am, opts.Threshold, opts.LSH, opts.Workers)
		} else {
			res, err = bitlsh.FindGroupsMatContext(ctx, am, opts.Threshold, opts.LSH)
		}
		if err != nil {
			return nil, err
		}
		return res.Groups, nil
	default:
		return nil, fmt.Errorf("core: unknown method %d", int(method))
	}
}

// hnswGroups mirrors the paper's §III-D use of the ANN index: build an
// index over all role rows, then query it once per role and link every
// verified neighbour within the threshold. Connectivity is resolved
// with union-find; recall is approximate by construction.
//
// Under the arena-compatible metrics (the default Manhattan and
// Hamming) the index is built straight off the shared bit matrix and
// queried by row id, so the whole run makes zero per-distance
// allocations; exotic metrics keep the vector-backed path.
func hnswGroups(ctx context.Context, rows []*bitvec.Vector, arena func() (*bitmat.Matrix, error), opts GroupOptions) ([][]int, error) {
	useMat := hnsw.SupportsMat(opts.HNSW.Metric)
	var idx *hnsw.Index
	var err error
	switch {
	case useMat:
		var am *bitmat.Matrix
		if am, err = arena(); err != nil {
			return nil, err
		}
		if opts.Workers >= 2 {
			idx, err = hnsw.BuildFromMatParallelContext(ctx, am, opts.HNSW, opts.Workers)
		} else {
			idx, err = hnsw.BuildFromMatContext(ctx, am, opts.HNSW)
		}
	case opts.Workers >= 2:
		idx, err = hnsw.BuildParallelContext(ctx, rows, opts.HNSW, opts.Workers)
	default:
		idx, err = hnsw.BuildContext(ctx, rows, opts.HNSW)
	}
	if err != nil {
		return nil, err
	}
	ef := opts.HNSWSearchEf
	if ef <= 0 {
		ef = 64
	}
	chk := ctxcheck.New(ctx, 1)
	parent := make([]int, len(rows))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	radius := float64(opts.Threshold)
	for i, row := range rows {
		// One poll per query: each radius search is a bounded beam scan.
		// Progress follows the same per-query stride.
		if err := chk.Err(); err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(i, len(rows))
		}
		var hits []hnsw.Neighbour
		var err error
		if useMat {
			hits, err = idx.SearchRadiusRow(i, radius, ef)
		} else {
			hits, err = idx.SearchRadius(row, radius, ef)
		}
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			if h.ID != i {
				union(i, h.ID)
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := range rows {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	groups := make([][]int, 0, len(byRoot))
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return normalizeGroups(groups), nil
}

// normalizeGroups sorts members ascending and groups by first member.
// Inputs coming from maps or label vectors already have sorted members,
// but normalisation keeps the contract independent of the source.
func normalizeGroups(groups [][]int) [][]int {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}
