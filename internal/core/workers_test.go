package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rbac"
)

// TestWorkersParityThroughFacade asserts that requesting parallel
// execution through the facade leaves the answer unchanged for every
// deterministic backend: the exact methods and LSH must produce
// byte-identical groups at any worker count.
func TestWorkersParityThroughFacade(t *testing.T) {
	methods := []Method{MethodRoleDiet, MethodDBSCAN, MethodDBSCANFloat64, MethodLSH}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := randRows(r, 2+r.Intn(40), 1+r.Intn(14), 0.3, r.Intn(6))
		k := r.Intn(3)
		workers := 2 + r.Intn(7)
		for _, m := range methods {
			serial, err := FindRoleGroups(rows, GroupOptions{Method: m, Threshold: k})
			if err != nil {
				return false
			}
			par, err := FindRoleGroups(rows, GroupOptions{Method: m, Threshold: k, Workers: workers})
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(serial, par) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersNegativeRejected covers every layer a negative worker
// count can arrive through: direct GroupOptions, direct Options, and
// the JSON request bodies used by the server and jobs API.
func TestWorkersNegativeRejected(t *testing.T) {
	rows := randRows(rand.New(rand.NewSource(1)), 8, 8, 0.5, 2)
	if _, err := FindRoleGroups(rows, GroupOptions{Workers: -1}); err == nil {
		t.Error("FindRoleGroups accepted negative workers")
	}
	if err := (Options{Workers: -2}).Validate(); err == nil {
		t.Error("Options.Validate accepted negative workers")
	}
	var g GroupOptions
	if err := json.Unmarshal([]byte(`{"workers": -3}`), &g); err == nil ||
		!strings.Contains(err.Error(), "negative workers") {
		t.Errorf("GroupOptions JSON decode: err = %v", err)
	}
	var o Options
	if err := json.Unmarshal([]byte(`{"workers": -4}`), &o); err == nil ||
		!strings.Contains(err.Error(), "negative workers") {
		t.Errorf("Options JSON decode: err = %v", err)
	}
}

// TestAnalyzeWorkersParity runs the whole analysis — dense and sparse —
// with Workers set and checks the reports match the serial ones field
// for field (durations aside).
func TestAnalyzeWorkersParity(t *testing.T) {
	d := rbac.Figure1()
	serial, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(d, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, "dense", serial, par)

	sSerial, err := AnalyzeSparse(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sPar, err := AnalyzeSparse(d, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, "sparse", sSerial, sPar)
}

func assertReportsEqual(t *testing.T, label string, a, b *Report) {
	t.Helper()
	ca, cb := *a, *b
	ca.LinearScanDuration, cb.LinearScanDuration = 0, 0
	ca.SameGroupsDuration, cb.SameGroupsDuration = 0, 0
	ca.SimilarGroupDuration, cb.SimilarGroupDuration = 0, 0
	if !reflect.DeepEqual(ca, cb) {
		t.Errorf("%s: parallel report differs from serial:\nserial: %+v\nparallel: %+v", label, ca, cb)
	}
}
