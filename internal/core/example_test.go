package core_test

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rbac"
)

// ExampleAnalyze runs the full five-detector framework over the paper's
// Figure 1 dataset.
func ExampleAnalyze() {
	ds := rbac.Figure1()
	rep, err := core.Analyze(ds, core.Options{SimilarThreshold: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("standalone permissions:", rep.StandalonePermissions)
	fmt.Println("roles without users:", rep.RolesWithoutUsers)
	for _, g := range rep.SameUserGroups {
		fmt.Println("same users:", g.Roles)
	}
	for _, g := range rep.SamePermissionGroups {
		fmt.Println("same permissions:", g.Roles)
	}
	// Output:
	// standalone permissions: [P01]
	// roles without users: [R03]
	// same users: [R02 R04]
	// same permissions: [R04 R05]
}

// ExampleFindRoleGroups groups raw assignment rows directly, without a
// dataset, using the paper's Role Diet algorithm.
func ExampleFindRoleGroups() {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(4, []int{0, 1}),
		bitvec.FromIndices(4, []int{2}),
		bitvec.FromIndices(4, []int{0, 1}), // duplicate of row 0
	}
	groups, err := core.FindRoleGroups(rows, core.GroupOptions{Threshold: 0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(groups)
	// Output:
	// [[0 2]]
}

// ExampleFindRoleGroups_similar finds roles within one differing user.
func ExampleFindRoleGroups_similar() {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(8, []int{0, 1, 2}),
		bitvec.FromIndices(8, []int{0, 1, 2, 3}), // one extra user
		bitvec.FromIndices(8, []int{5, 6, 7}),    // far away
	}
	groups, err := core.FindRoleGroups(rows, core.GroupOptions{Threshold: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(groups)
	// Output:
	// [[0 1]]
}
