// Package core implements the paper's detection framework: a taxonomy
// of five RBAC data inefficiencies (§III-A) and detectors for each of
// them over the RUAM/RPAM assignment matrices (§III-B).
//
// Classes 1-3 (standalone nodes, roles without users/permissions, roles
// with a single user/permission) are linear scans over row and column
// sums. Classes 4-5 (roles sharing the same or similar users or
// permissions) delegate to one of the three group-finding methods in
// methods.go, with the paper's Role Diet algorithm as the default.
//
// Detected inefficiencies are reported, never fixed automatically: the
// paper stresses that each instance may be a legitimate corner case
// (e.g. a role assigned only to the CEO) and needs administrator
// review. Fix planning lives in internal/consolidate.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/bitmat"
	"repro/internal/bitvec"
	"repro/internal/rbac"
)

// InefficiencyKind enumerates the taxonomy of §III-A.
type InefficiencyKind int

// The five inefficiency classes.
const (
	// KindStandaloneNode: users/permissions connected to no role, and
	// roles connected to neither users nor permissions.
	KindStandaloneNode InefficiencyKind = iota + 1
	// KindDisconnectedRole: roles with no users, or with no permissions
	// (but not both — that is a standalone node).
	KindDisconnectedRole
	// KindSingleAssignment: roles with exactly one user or exactly one
	// permission.
	KindSingleAssignment
	// KindSameGroup: roles sharing exactly the same users or the same
	// permissions.
	KindSameGroup
	// KindSimilarGroup: roles sharing the same users/permissions up to
	// an administrator-set threshold of differences.
	KindSimilarGroup
)

// String names the inefficiency class.
func (k InefficiencyKind) String() string {
	switch k {
	case KindStandaloneNode:
		return "standalone-node"
	case KindDisconnectedRole:
		return "disconnected-role"
	case KindSingleAssignment:
		return "single-assignment"
	case KindSameGroup:
		return "same-group"
	case KindSimilarGroup:
		return "similar-group"
	default:
		return fmt.Sprintf("core.InefficiencyKind(%d)", int(k))
	}
}

// Options configures a full analysis run.
//
// The JSON form is the single wire schema for analysis options, shared
// by the HTTP server's body contract ({"dataset": ..., "options":
// {...}}), the async jobs API, and the CLI's -options flag:
//
//	{
//	  "method": "rolediet" | "dbscan" | "hnsw" | "lsh" | "dbscan-float64",
//	  "threshold": 1,
//	  "skipSimilar": false,
//	  "skipGroups": false,
//	  "group": { ... method-specific knobs, see GroupOptions ... }
//	}
//
// UnmarshalJSON rejects unknown method names and negative thresholds,
// so every consumer applies identical validation.
type Options struct {
	// Method selects the group-finding algorithm for classes 4-5;
	// defaults to MethodRoleDiet.
	Method Method `json:"method,omitempty"`
	// SimilarThreshold is the class-5 threshold k (number of tolerated
	// differences); defaults to 1, the paper's "all but one" case.
	SimilarThreshold int `json:"threshold,omitempty"`
	// SkipSimilar disables the class-5 detectors (the most expensive
	// ones after class 4).
	SkipSimilar bool `json:"skipSimilar,omitempty"`
	// SkipGroups disables classes 4 and 5 entirely, leaving only the
	// linear-time detectors.
	SkipGroups bool `json:"skipGroups,omitempty"`
	// Group carries method-specific knobs; Threshold and Method inside
	// it are overwritten per detector run.
	Group GroupOptions `json:"group,omitempty"`
	// Workers fans each grouping detector out over this many goroutines
	// (see GroupOptions.Workers for semantics). 0 and 1 run serially,
	// >= 2 runs the parallel backend variants, negative is rejected. It
	// overrides Group.Workers when set so "workers" at the top level of
	// the wire schema governs the whole analysis.
	Workers int `json:"workers,omitempty"`
	// Progress, when non-nil, receives (stage, fraction) updates as the
	// analysis advances: once at every stage boundary, and from inside
	// the hard-class (4-5) grouping loops on the same stride the engine
	// polls for cancellation. Fractions are in [0, 1], non-decreasing
	// across one analysis, and reach 1 on success. The hook runs on the
	// analysis goroutine and must be cheap and non-blocking. Not part of
	// the wire schema.
	Progress func(stage string, fraction float64) `json:"-"`
}

// UnmarshalJSON decodes the shared wire schema, rejecting unknown
// methods (via Method.UnmarshalText) and negative thresholds at decode
// time so malformed options never reach an engine.
func (o *Options) UnmarshalJSON(data []byte) error {
	type plain Options
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	if p.SimilarThreshold < 0 {
		return fmt.Errorf("core: negative similar threshold %d", p.SimilarThreshold)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: negative workers %d", p.Workers)
	}
	*o = Options(p)
	return nil
}

func (o Options) withDefaults() Options {
	if o.Method == 0 {
		o.Method = MethodRoleDiet
	}
	if o.SimilarThreshold == 0 {
		o.SimilarThreshold = 1
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.SimilarThreshold < 0 {
		return fmt.Errorf("core: negative similar threshold %d", o.SimilarThreshold)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative workers %d", o.Workers)
	}
	return nil
}

// RoleGroup is one detected group of interchangeable roles.
type RoleGroup struct {
	// Roles lists the group members.
	Roles []rbac.RoleID `json:"roles"`
}

// Report is the outcome of a full analysis. Counts of roles "in" a
// grouped inefficiency count every member of every group, matching how
// the paper reports "8,000 roles sharing the same users".
type Report struct {
	// Stats snapshots the analysed dataset's shape.
	Stats rbac.Stats `json:"stats"`
	// Method is the group-finding algorithm used for classes 4-5.
	Method string `json:"method"`
	// SimilarThreshold is the class-5 threshold used.
	SimilarThreshold int `json:"similarThreshold"`

	// Class 1: standalone nodes.
	StandaloneUsers       []rbac.UserID       `json:"standaloneUsers"`
	StandalonePermissions []rbac.PermissionID `json:"standalonePermissions"`
	StandaloneRoles       []rbac.RoleID       `json:"standaloneRoles"`

	// Class 2: roles connected on one side only.
	RolesWithoutUsers       []rbac.RoleID `json:"rolesWithoutUsers"`
	RolesWithoutPermissions []rbac.RoleID `json:"rolesWithoutPermissions"`

	// Class 3: roles with exactly one assignment on a side.
	RolesWithSingleUser       []rbac.RoleID `json:"rolesWithSingleUser"`
	RolesWithSinglePermission []rbac.RoleID `json:"rolesWithSinglePermission"`

	// Class 4: roles sharing exactly the same users / permissions.
	SameUserGroups       []RoleGroup `json:"sameUserGroups"`
	SamePermissionGroups []RoleGroup `json:"samePermissionGroups"`

	// Class 5: roles within SimilarThreshold differences.
	SimilarUserGroups       []RoleGroup `json:"similarUserGroups"`
	SimilarPermissionGroups []RoleGroup `json:"similarPermissionGroups"`

	// Durations per phase, for the scalability story.
	LinearScanDuration   time.Duration `json:"linearScanDurationNanos"`
	SameGroupsDuration   time.Duration `json:"sameGroupsDurationNanos"`
	SimilarGroupDuration time.Duration `json:"similarGroupsDurationNanos"`
}

// Analyzer runs the detection framework over one dataset snapshot. The
// matrices are built once and shared by every detector.
type Analyzer struct {
	ds   *rbac.Dataset
	ruam rowset
	rpam rowset
}

// rowset caches a matrix's rows and row sums, plus — built lazily on
// the first grouping call — the non-empty view the class-4/5 detectors
// run over: the kept rows, the remap back to dataset row indices, and
// the bit-matrix arena packing the kept rows. One analysis runs up to
// two detectors per side (threshold 0 and threshold k) and the filter
// depends only on the row sums, so caching the view halves the packing
// work and lets both runs share one arena.
type rowset struct {
	rows []*bitvec.Vector
	sums []int

	kept  []*bitvec.Vector
	remap []int
	mat   *bitmat.Matrix
}

// groupView returns the side's cached non-empty view, building it on
// first use.
func (rs *rowset) groupView() ([]*bitvec.Vector, []int, *bitmat.Matrix, error) {
	if rs.remap == nil {
		kept := make([]*bitvec.Vector, 0, len(rs.rows))
		remap := make([]int, 0, len(rs.rows))
		for i, r := range rs.rows {
			if rs.sums[i] > 0 {
				kept = append(kept, r)
				remap = append(remap, i)
			}
		}
		m, err := bitmat.FromRows(kept)
		if err != nil {
			return nil, nil, nil, err
		}
		rs.kept, rs.remap, rs.mat = kept, remap, m
	}
	return rs.kept, rs.remap, rs.mat, nil
}

// NewAnalyzer snapshots the dataset. Later dataset mutations are not
// observed.
func NewAnalyzer(d *rbac.Dataset) *Analyzer {
	a := &Analyzer{ds: d.Clone()}
	ruam := a.ds.RUAM()
	rpam := a.ds.RPAM()
	a.ruam = rowset{rows: make([]*bitvec.Vector, ruam.Rows()), sums: ruam.RowSums()}
	a.rpam = rowset{rows: make([]*bitvec.Vector, rpam.Rows()), sums: rpam.RowSums()}
	for i := 0; i < ruam.Rows(); i++ {
		a.ruam.rows[i] = ruam.Row(i)
		a.rpam.rows[i] = rpam.Row(i)
	}
	return a
}

// Dataset returns the analyzer's snapshot.
func (a *Analyzer) Dataset() *rbac.Dataset { return a.ds }

// Analyze runs every enabled detector and assembles the report.
func (a *Analyzer) Analyze(opts Options) (*Report, error) {
	return a.AnalyzeContext(context.Background(), opts)
}

// AnalyzeContext is Analyze with cooperative cancellation. The context
// is threaded into every group-finding backend, which poll it inside
// their hot loops, so a cancelled or timed-out request stops burning
// CPU within a bounded amount of work; the partial report is discarded
// and ctx.Err() returned.
func (a *Analyzer) AnalyzeContext(ctx context.Context, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	progress := progressReporter(opts.Progress)

	rep := &Report{
		Stats:            a.ds.Stats(),
		Method:           opts.Method.String(),
		SimilarThreshold: opts.SimilarThreshold,
	}

	progress.emit(StageLinearScan, 0)
	start := time.Now()
	a.detectStandalone(rep)
	a.detectDisconnected(rep)
	a.detectSingle(rep)
	rep.LinearScanDuration = time.Since(start)
	progress.emit(StageLinearScan, fracLinearEnd)

	if opts.SkipGroups {
		progress.emit(StageDone, 1)
		return rep, nil
	}

	gopts := opts.Group
	gopts.Method = opts.Method
	if opts.Workers != 0 {
		gopts.Workers = opts.Workers
	}
	// Disconnected roles (class 2) must not resurface as one giant
	// class-4 group of all-zero rows; findGroups runs over each side's
	// cached non-empty view and shared bit-matrix arena.
	start = time.Now()
	gopts.Threshold = 0
	gopts.Progress = progress.span(StageSameUserGroups, fracLinearEnd, fracSameUserEnd)
	sameUsers, err := a.findGroups(ctx, &a.ruam, gopts)
	if err != nil {
		return nil, fmt.Errorf("same-user groups: %w", err)
	}
	progress.emit(StageSameUserGroups, fracSameUserEnd)
	gopts.Progress = progress.span(StageSamePermissionGroups, fracSameUserEnd, fracSamePermEnd)
	samePerms, err := a.findGroups(ctx, &a.rpam, gopts)
	if err != nil {
		return nil, fmt.Errorf("same-permission groups: %w", err)
	}
	progress.emit(StageSamePermissionGroups, fracSamePermEnd)
	rep.SameUserGroups = a.toRoleGroups(sameUsers)
	rep.SamePermissionGroups = a.toRoleGroups(samePerms)
	rep.SameGroupsDuration = time.Since(start)

	if opts.SkipSimilar {
		progress.emit(StageDone, 1)
		return rep, nil
	}

	start = time.Now()
	gopts.Threshold = opts.SimilarThreshold
	gopts.Progress = progress.span(StageSimilarUserGroups, fracSamePermEnd, fracSimilarUserEnd)
	similarUsers, err := a.findGroups(ctx, &a.ruam, gopts)
	if err != nil {
		return nil, fmt.Errorf("similar-user groups: %w", err)
	}
	progress.emit(StageSimilarUserGroups, fracSimilarUserEnd)
	gopts.Progress = progress.span(StageSimilarPermissionGroups, fracSimilarUserEnd, fracSimilarPermEnd)
	similarPerms, err := a.findGroups(ctx, &a.rpam, gopts)
	if err != nil {
		return nil, fmt.Errorf("similar-permission groups: %w", err)
	}
	progress.emit(StageSimilarPermissionGroups, fracSimilarPermEnd)
	rep.SimilarUserGroups = a.toRoleGroups(similarUsers)
	rep.SimilarPermissionGroups = a.toRoleGroups(similarPerms)
	rep.SimilarGroupDuration = time.Since(start)

	progress.emit(StageDone, 1)
	return rep, nil
}

// detectStandalone finds class-1 inefficiencies: all-zero columns in
// RUAM (users) and RPAM (permissions), and roles whose rows are all-zero
// in both matrices.
func (a *Analyzer) detectStandalone(rep *Report) {
	userDeg := make([]int, a.ds.NumUsers())
	for _, row := range a.ruam.rows {
		row.ForEach(func(j int) bool {
			userDeg[j]++
			return true
		})
	}
	for ui, deg := range userDeg {
		if deg == 0 {
			rep.StandaloneUsers = append(rep.StandaloneUsers, a.ds.User(ui))
		}
	}
	permDeg := make([]int, a.ds.NumPermissions())
	for _, row := range a.rpam.rows {
		row.ForEach(func(j int) bool {
			permDeg[j]++
			return true
		})
	}
	for pi, deg := range permDeg {
		if deg == 0 {
			rep.StandalonePermissions = append(rep.StandalonePermissions, a.ds.Permission(pi))
		}
	}
	for ri := range a.ruam.rows {
		if a.ruam.sums[ri] == 0 && a.rpam.sums[ri] == 0 {
			rep.StandaloneRoles = append(rep.StandaloneRoles, a.ds.Role(ri))
		}
	}
}

// detectDisconnected finds class-2 inefficiencies: roles with a zero
// row sum on exactly one side. Roles with zero on both sides are
// standalone nodes (class 1), not disconnected roles.
func (a *Analyzer) detectDisconnected(rep *Report) {
	for ri := range a.ruam.rows {
		noUsers := a.ruam.sums[ri] == 0
		noPerms := a.rpam.sums[ri] == 0
		switch {
		case noUsers && noPerms:
			// class 1, already reported
		case noUsers:
			rep.RolesWithoutUsers = append(rep.RolesWithoutUsers, a.ds.Role(ri))
		case noPerms:
			rep.RolesWithoutPermissions = append(rep.RolesWithoutPermissions, a.ds.Role(ri))
		}
	}
}

// detectSingle finds class-3 inefficiencies: row sums equal to one.
func (a *Analyzer) detectSingle(rep *Report) {
	for ri := range a.ruam.rows {
		if a.ruam.sums[ri] == 1 {
			rep.RolesWithSingleUser = append(rep.RolesWithSingleUser, a.ds.Role(ri))
		}
		if a.rpam.sums[ri] == 1 {
			rep.RolesWithSinglePermission = append(rep.RolesWithSinglePermission, a.ds.Role(ri))
		}
	}
}

// findGroups runs one grouping detector over a side's cached non-empty
// view and shared arena, remapping group members back to dataset row
// indices. It replaces calling FindRoleGroupsContext with
// IgnoreEmptyRows set, which would re-filter and re-pack the rows on
// every detector run.
func (a *Analyzer) findGroups(ctx context.Context, rs *rowset, opts GroupOptions) ([][]int, error) {
	kept, remap, m, err := rs.groupView()
	if err != nil {
		return nil, err
	}
	if len(kept) == 0 {
		return nil, nil
	}
	opts.IgnoreEmptyRows = false
	groups, err := findRoleGroupsMat(ctx, kept, m, opts)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		for i, idx := range g {
			g[i] = remap[idx]
		}
	}
	return groups, nil
}

// toRoleGroups maps index groups to role-id groups.
func (a *Analyzer) toRoleGroups(groups [][]int) []RoleGroup {
	out := make([]RoleGroup, len(groups))
	for gi, g := range groups {
		ids := make([]rbac.RoleID, len(g))
		for i, ri := range g {
			ids[i] = a.ds.Role(ri)
		}
		out[gi] = RoleGroup{Roles: ids}
	}
	return out
}

// Analyze is the one-call convenience API: snapshot, detect, report.
func Analyze(d *rbac.Dataset, opts Options) (*Report, error) {
	return NewAnalyzer(d).Analyze(opts)
}

// AnalyzeContext is Analyze bound to a context: the analysis aborts
// with ctx.Err() soon after the context is cancelled or its deadline
// passes. This is the entry point request-scoped callers (the HTTP
// server) use so client disconnects, per-request timeouts, and daemon
// drains all stop in-flight detection work.
func AnalyzeContext(ctx context.Context, d *rbac.Dataset, opts Options) (*Report, error) {
	return NewAnalyzer(d).AnalyzeContext(ctx, opts)
}
