package core

// Analysis stage names reported through Options.Progress. Stages are
// emitted in declaration order; a run that skips stages (SkipGroups,
// SkipSimilar) jumps straight to StageDone, so fractions stay
// non-decreasing either way.
const (
	// StageLinearScan covers the class 1-3 detectors.
	StageLinearScan = "linear-scan"
	// StageSameUserGroups and StageSamePermissionGroups cover the
	// class-4 exact grouping passes over RUAM and RPAM.
	StageSameUserGroups       = "same-user-groups"
	StageSamePermissionGroups = "same-permission-groups"
	// StageSimilarUserGroups and StageSimilarPermissionGroups cover the
	// class-5 thresholded grouping passes.
	StageSimilarUserGroups       = "similar-user-groups"
	StageSimilarPermissionGroups = "similar-permission-groups"
	// StageDone is emitted exactly once, with fraction 1, when the
	// report is complete.
	StageDone = "done"
)

// Overall-fraction spans per stage. The linear detectors are cheap;
// the class-5 passes dominate (they search a strictly larger relation
// than class 4), hence the uneven split.
const (
	fracLinearEnd      = 0.05
	fracSameUserEnd    = 0.25
	fracSamePermEnd    = 0.45
	fracSimilarUserEnd = 0.72
	fracSimilarPermEnd = 0.99
)

// progressReporter is a nil-safe wrapper around Options.Progress.
type progressReporter func(stage string, fraction float64)

// emit reports a stage boundary.
func (p progressReporter) emit(stage string, fraction float64) {
	if p != nil {
		p(stage, fraction)
	}
}

// span returns an in-loop (done, total) hook that maps a stage's local
// completion onto the overall [lo, hi] fraction span, or nil when no
// progress hook is installed (keeping the hot loops free of closures).
func (p progressReporter) span(stage string, lo, hi float64) func(done, total int) {
	if p == nil {
		return nil
	}
	return func(done, total int) {
		if total <= 0 || done < 0 {
			return
		}
		f := lo + (hi-lo)*float64(done)/float64(total)
		if f > hi {
			f = hi
		}
		p(stage, f)
	}
}
