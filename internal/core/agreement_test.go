package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rbac"
)

// canonicalIDs sorts a copy of an ID-ish slice for order-insensitive
// comparison (the dense and sparse detectors happen to emit in the same
// role-index order today, but that is an implementation detail).
func canonicalIDs[T ~string](ids []T) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	sort.Strings(out)
	return out
}

// canonicalGroups renders role groups in canonical form: members
// sorted, groups sorted by their member list.
func canonicalGroups(groups []core.RoleGroup) []string {
	out := make([]string, len(groups))
	for i, g := range groups {
		members := canonicalIDs(g.Roles)
		out[i] = fmt.Sprint(members)
	}
	sort.Strings(out)
	return out
}

func equalStrings(t *testing.T, field string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: dense has %d entries, sparse %d\n  dense:  %v\n  sparse: %v", field, len(a), len(b), a, b)
		return
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s[%d]: dense %q != sparse %q", field, i, a[i], b[i])
			return
		}
	}
}

// compareReports asserts the dense and sparse analyses agree on every
// detected inefficiency, class by class.
func compareReports(t *testing.T, dense, sparse *core.Report) {
	t.Helper()
	if dense.Stats != sparse.Stats {
		t.Errorf("stats differ: dense %+v sparse %+v", dense.Stats, sparse.Stats)
	}
	equalStrings(t, "standaloneUsers", canonicalIDs(dense.StandaloneUsers), canonicalIDs(sparse.StandaloneUsers))
	equalStrings(t, "standalonePermissions", canonicalIDs(dense.StandalonePermissions), canonicalIDs(sparse.StandalonePermissions))
	equalStrings(t, "standaloneRoles", canonicalIDs(dense.StandaloneRoles), canonicalIDs(sparse.StandaloneRoles))
	equalStrings(t, "rolesWithoutUsers", canonicalIDs(dense.RolesWithoutUsers), canonicalIDs(sparse.RolesWithoutUsers))
	equalStrings(t, "rolesWithoutPermissions", canonicalIDs(dense.RolesWithoutPermissions), canonicalIDs(sparse.RolesWithoutPermissions))
	equalStrings(t, "rolesWithSingleUser", canonicalIDs(dense.RolesWithSingleUser), canonicalIDs(sparse.RolesWithSingleUser))
	equalStrings(t, "rolesWithSinglePermission", canonicalIDs(dense.RolesWithSinglePermission), canonicalIDs(sparse.RolesWithSinglePermission))
	equalStrings(t, "sameUserGroups", canonicalGroups(dense.SameUserGroups), canonicalGroups(sparse.SameUserGroups))
	equalStrings(t, "samePermissionGroups", canonicalGroups(dense.SamePermissionGroups), canonicalGroups(sparse.SamePermissionGroups))
	equalStrings(t, "similarUserGroups", canonicalGroups(dense.SimilarUserGroups), canonicalGroups(sparse.SimilarUserGroups))
	equalStrings(t, "similarPermissionGroups", canonicalGroups(dense.SimilarPermissionGroups), canonicalGroups(sparse.SimilarPermissionGroups))
}

// TestAnalyzeSparseAgreementOrg runs the full dense and CSR detection
// pipelines over randomized organisation-scale datasets (scaled-down
// §IV-B generator with different seeds) and requires identical reports
// across all five inefficiency classes. Until now only cancellation was
// cross-tested; this pins the actual results.
func TestAnalyzeSparseAgreementOrg(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			params := gen.DefaultOrgParams().Scaled(200)
			params.Seed = seed
			ds, _, err := gen.Org(params)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Method: core.MethodRoleDiet, SimilarThreshold: 1}
			dense, err := core.Analyze(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := core.AnalyzeSparse(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, dense, sparse)
		})
	}
}

// TestAnalyzeSparseAgreementRandom repeats the comparison on fully
// random assignment graphs with no planted structure — every edge
// independent — including higher similarity thresholds, where the
// sparse norm-bucket logic and the dense path must still agree.
func TestAnalyzeSparseAgreementRandom(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		threshold int
	}{
		{seed: 7, threshold: 1},
		{seed: 8, threshold: 2},
		{seed: 9, threshold: 3},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d,k=%d", tc.seed, tc.threshold), func(t *testing.T) {
			ds := randomDataset(tc.seed, 120, 80, 60)
			opts := core.Options{Method: core.MethodRoleDiet, SimilarThreshold: tc.threshold}
			dense, err := core.Analyze(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := core.AnalyzeSparse(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareReports(t, dense, sparse)
		})
	}
}

// randomDataset wires roles to users and permissions with independent
// sparse coin flips, deliberately leaving some roles empty on one or
// both sides so the class-1/2 paths are exercised too.
func randomDataset(seed int64, roles, users, perms int) *rbac.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := rbac.NewDataset()
	for u := 0; u < users; u++ {
		ds.EnsureUser(rbac.UserID(fmt.Sprintf("u%03d", u)))
	}
	for p := 0; p < perms; p++ {
		ds.EnsurePermission(rbac.PermissionID(fmt.Sprintf("p%03d", p)))
	}
	for r := 0; r < roles; r++ {
		role := rbac.RoleID(fmt.Sprintf("r%03d", r))
		ds.EnsureRole(role)
		// ~10% of roles stay empty on each side independently.
		if rng.Float64() >= 0.1 {
			for u := 0; u < users; u++ {
				if rng.Float64() < 0.04 {
					ds.AssignUser(role, rbac.UserID(fmt.Sprintf("u%03d", u)))
				}
			}
		}
		if rng.Float64() >= 0.1 {
			for p := 0; p < perms; p++ {
				if rng.Float64() < 0.04 {
					ds.AssignPermission(role, rbac.PermissionID(fmt.Sprintf("p%03d", p)))
				}
			}
		}
	}
	return ds
}
