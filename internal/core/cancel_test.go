package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rbac"
)

// randomDataset builds a dataset whose role/user assignment matrix is
// random with the given density — enough volume that a full analysis
// outlives the cancel delay in the mid-run tests below.
func randomDataset(t *testing.T, roles, users int, density float64, seed int64) *rbac.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := rbac.NewDataset()
	userIDs := make([]rbac.UserID, users)
	for u := 0; u < users; u++ {
		userIDs[u] = rbac.UserID(fmt.Sprintf("u%d", u))
		d.EnsureUser(userIDs[u])
	}
	for r := 0; r < roles; r++ {
		id := rbac.RoleID(fmt.Sprintf("r%d", r))
		d.EnsureRole(id)
		for u := 0; u < users; u++ {
			if rng.Float64() < density {
				if err := d.AssignUser(id, userIDs[u]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return d
}

func TestAnalyzeContextAlreadyCanceled(t *testing.T) {
	d := randomDataset(t, 20, 16, 0.3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, d, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeContext on canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeSparseContext(ctx, d, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeSparseContext on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestAnalyzeContextCanceledMidRun cancels a dense analysis shortly
// after it starts and requires context.Canceled back within a bounded
// time: the engine must abandon the O(n²) clustering, not finish it.
func TestAnalyzeContextCanceledMidRun(t *testing.T) {
	d := randomDataset(t, 900, 512, 0.3, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := AnalyzeContext(ctx, d, Options{Method: MethodDBSCANFloat64})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AnalyzeContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("AnalyzeContext did not return within 30s of cancellation")
	}
}

// TestAnalyzeSparseContextCanceledMidRun is the sparse-path twin of the
// test above: the CSR co-occurrence loops must observe the cancel too.
func TestAnalyzeSparseContextCanceledMidRun(t *testing.T) {
	d := randomDataset(t, 4000, 1500, 0.05, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := AnalyzeSparseContext(ctx, d, Options{SimilarThreshold: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AnalyzeSparseContext = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("AnalyzeSparseContext did not return within 30s of cancellation")
	}
}

func TestAnalyzeContextBackgroundMatchesAnalyze(t *testing.T) {
	d := randomDataset(t, 60, 40, 0.2, 3)
	plain, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := AnalyzeContext(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.SameUserGroups) != len(ctxed.SameUserGroups) ||
		len(plain.SimilarUserGroups) != len(ctxed.SimilarUserGroups) {
		t.Fatalf("reports differ: %+v vs %+v", plain, ctxed)
	}
}
