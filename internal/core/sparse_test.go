package core

import (
	"reflect"
	"testing"

	"repro/internal/rbac"
)

func TestAnalyzeSparseMatchesDenseOnFigure1(t *testing.T) {
	ds := rbac.Figure1()
	dense, err := Analyze(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := AnalyzeSparse(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(dense.StandaloneUsers, sparse.StandaloneUsers) ||
		!reflect.DeepEqual(dense.StandalonePermissions, sparse.StandalonePermissions) ||
		!reflect.DeepEqual(dense.StandaloneRoles, sparse.StandaloneRoles) {
		t.Fatal("class-1 findings differ between dense and sparse")
	}
	if !reflect.DeepEqual(dense.RolesWithoutUsers, sparse.RolesWithoutUsers) ||
		!reflect.DeepEqual(dense.RolesWithoutPermissions, sparse.RolesWithoutPermissions) {
		t.Fatal("class-2 findings differ")
	}
	if !reflect.DeepEqual(dense.RolesWithSingleUser, sparse.RolesWithSingleUser) ||
		!reflect.DeepEqual(dense.RolesWithSinglePermission, sparse.RolesWithSinglePermission) {
		t.Fatal("class-3 findings differ")
	}
	if !reflect.DeepEqual(dense.SameUserGroups, sparse.SameUserGroups) ||
		!reflect.DeepEqual(dense.SamePermissionGroups, sparse.SamePermissionGroups) {
		t.Fatal("class-4 findings differ")
	}
	if !reflect.DeepEqual(dense.SimilarUserGroups, sparse.SimilarUserGroups) ||
		!reflect.DeepEqual(dense.SimilarPermissionGroups, sparse.SimilarPermissionGroups) {
		t.Fatal("class-5 findings differ")
	}
}

func TestAnalyzeSparseRejectsOtherMethods(t *testing.T) {
	for _, m := range []Method{MethodDBSCAN, MethodHNSW} {
		if _, err := AnalyzeSparse(rbac.Figure1(), Options{Method: m}); err == nil {
			t.Errorf("sparse analysis accepted %s", m)
		}
	}
}

func TestAnalyzeSparseSkipFlags(t *testing.T) {
	ds := rbac.Figure1()
	rep, err := AnalyzeSparse(ds, Options{SkipGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameUserGroups != nil {
		t.Fatal("SkipGroups ignored")
	}
	rep, err = AnalyzeSparse(ds, Options{SkipSimilar: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SameUserGroups == nil || rep.SimilarUserGroups != nil {
		t.Fatal("SkipSimilar handling wrong")
	}
}

func TestAnalyzeSparseInvalidOptions(t *testing.T) {
	if _, err := AnalyzeSparse(rbac.Figure1(), Options{SimilarThreshold: -2}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestAnalyzeSparseEmptyDataset(t *testing.T) {
	rep, err := AnalyzeSparse(rbac.NewDataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Roles != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalyzeSparseStandaloneRole(t *testing.T) {
	ds := rbac.NewDataset()
	if err := ds.AddRole("lonely"); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeSparse(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.StandaloneRoles, []rbac.RoleID{"lonely"}) {
		t.Fatalf("standalone roles = %v", rep.StandaloneRoles)
	}
}
