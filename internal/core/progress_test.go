package core_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// progressLog records every Progress callback for later assertions.
type progressLog struct {
	stages    []string
	fractions []float64
}

func (p *progressLog) hook(stage string, fraction float64) {
	p.stages = append(p.stages, stage)
	p.fractions = append(p.fractions, fraction)
}

// check asserts the recorded sequence is within [0,1], never
// decreasing, and terminates at exactly 1 in the done stage.
func (p *progressLog) check(t *testing.T) {
	t.Helper()
	if len(p.fractions) == 0 {
		t.Fatal("no progress reported")
	}
	last := -1.0
	for i, f := range p.fractions {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of [0,1] at step %d (stage %s)", f, i, p.stages[i])
		}
		if f < last {
			t.Fatalf("progress regressed %v -> %v at step %d (stage %s)", last, f, i, p.stages[i])
		}
		last = f
	}
	if last != 1 {
		t.Fatalf("final fraction = %v, want 1", last)
	}
	if final := p.stages[len(p.stages)-1]; final != core.StageDone {
		t.Fatalf("final stage = %q, want %q", final, core.StageDone)
	}
}

// TestAnalyzeProgress verifies the dense and sparse pipelines emit
// monotonically non-decreasing progress that reaches 1.0, for the
// backends that report inside their grouping loops as well as the
// stage-boundary-only ones.
func TestAnalyzeProgress(t *testing.T) {
	ds := randomDataset(7, 150, 90, 70)
	for _, method := range []core.Method{core.MethodRoleDiet, core.MethodHNSW, core.MethodDBSCAN} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			var dense progressLog
			_, err := core.AnalyzeContext(context.Background(), ds, core.Options{
				Method:           method,
				SimilarThreshold: 2,
				Progress:         dense.hook,
			})
			if err != nil {
				t.Fatal(err)
			}
			dense.check(t)
		})
	}
	t.Run("sparse", func(t *testing.T) {
		var sparse progressLog
		_, err := core.AnalyzeSparseContext(context.Background(), ds, core.Options{
			SimilarThreshold: 2,
			Progress:         sparse.hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		sparse.check(t)
	})
}

// TestAnalyzeProgressSkipPaths verifies the skip short-circuits still
// finish at 1.0 rather than stalling mid-scale.
func TestAnalyzeProgressSkipPaths(t *testing.T) {
	ds := randomDataset(11, 60, 40, 30)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"skip groups", core.Options{SkipGroups: true}},
		{"skip similar", core.Options{SkipSimilar: true, SimilarThreshold: 1}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var log progressLog
			opts := tc.opts
			opts.Progress = log.hook
			if _, err := core.AnalyzeContext(context.Background(), ds, opts); err != nil {
				t.Fatal(err)
			}
			log.check(t)
		})
	}
}

// TestOptionsJSONRoundTrip pins the shared wire schema: marshal ->
// unmarshal reproduces the options, with methods in string form.
func TestOptionsJSONRoundTrip(t *testing.T) {
	in := core.Options{
		Method:           core.MethodHNSW,
		SimilarThreshold: 3,
		SkipSimilar:      true,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["method"] != "hnsw" {
		t.Fatalf("method serialised as %v, want \"hnsw\"", m["method"])
	}
	var out core.Options
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed options: %+v -> %+v", in, out)
	}

	gin := core.GroupOptions{Method: core.MethodLSH, Threshold: 2, IgnoreEmptyRows: true}
	graw, err := json.Marshal(gin)
	if err != nil {
		t.Fatal(err)
	}
	var gout core.GroupOptions
	if err := json.Unmarshal(graw, &gout); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gin, gout) {
		t.Fatalf("group round trip changed options: %+v -> %+v", gin, gout)
	}
}

// TestOptionsJSONRejects pins the validation side of the schema:
// unknown method names and negative thresholds fail to decode.
func TestOptionsJSONRejects(t *testing.T) {
	for _, raw := range []string{
		`{"method":"kmeans"}`,
		`{"threshold":-1}`,
	} {
		var o core.Options
		if err := json.Unmarshal([]byte(raw), &o); err == nil {
			t.Errorf("Options accepted %s", raw)
		}
		var g core.GroupOptions
		if err := json.Unmarshal([]byte(raw), &g); err == nil {
			t.Errorf("GroupOptions accepted %s", raw)
		}
	}
	// The zero method serialises to the empty string and decodes back.
	var o core.Options
	if err := json.Unmarshal([]byte(`{"method":""}`), &o); err != nil {
		t.Fatalf("empty method rejected: %v", err)
	}
	if o.Method != 0 {
		t.Fatalf("empty method decoded to %v", o.Method)
	}
}
