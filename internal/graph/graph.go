// Package graph provides the tripartite-graph view of an RBAC dataset
// used in Figure 1 of the paper: users, roles and permissions as node
// sets, assignments as edges, plus the Step-1 adjacency-matrix
// construction and the Step-2/3 sub-matrix extraction.
//
// Detection itself never needs the full (r+u+p)² adjacency matrix — the
// point of the paper's §III-B — but the package builds it on demand for
// small datasets so the memory claim r*(u+p) vs (r+u+p)² can be
// demonstrated and tested.
package graph

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/rbac"
)

// NodeKind distinguishes the three node sets of the tripartite graph.
type NodeKind int

// The three node kinds.
const (
	KindUser NodeKind = iota + 1
	KindRole
	KindPermission
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindRole:
		return "role"
	case KindPermission:
		return "permission"
	default:
		return fmt.Sprintf("graph.NodeKind(%d)", int(k))
	}
}

// Node is one vertex of the tripartite graph.
type Node struct {
	Kind NodeKind
	// Index is the node's position within its own kind's ordering
	// (matching dataset and matrix indices).
	Index int
	// ID is the human-readable identifier.
	ID string
}

// Tripartite is an immutable graph view over a dataset snapshot.
type Tripartite struct {
	ruam *matrix.BitMatrix
	rpam *matrix.BitMatrix

	users []rbac.UserID
	roles []rbac.RoleID
	perms []rbac.PermissionID
}

// FromDataset snapshots a dataset into a graph view. Later mutations of
// the dataset do not affect the view.
func FromDataset(d *rbac.Dataset) *Tripartite {
	return &Tripartite{
		ruam:  d.RUAM(),
		rpam:  d.RPAM(),
		users: d.Users(),
		roles: d.Roles(),
		perms: d.Permissions(),
	}
}

// RUAM returns the role-user assignment matrix (shared, read-only).
func (t *Tripartite) RUAM() *matrix.BitMatrix { return t.ruam }

// RPAM returns the role-permission assignment matrix (shared, read-only).
func (t *Tripartite) RPAM() *matrix.BitMatrix { return t.rpam }

// NumNodes returns the total node count r+u+p.
func (t *Tripartite) NumNodes() int {
	return len(t.users) + len(t.roles) + len(t.perms)
}

// NumEdges returns the total edge count.
func (t *Tripartite) NumEdges() int {
	return t.ruam.Count() + t.rpam.Count()
}

// Nodes lists every node: users first, then roles, then permissions —
// the ordering the full adjacency matrix uses.
func (t *Tripartite) Nodes() []Node {
	out := make([]Node, 0, t.NumNodes())
	for i, id := range t.users {
		out = append(out, Node{Kind: KindUser, Index: i, ID: string(id)})
	}
	for i, id := range t.roles {
		out = append(out, Node{Kind: KindRole, Index: i, ID: string(id)})
	}
	for i, id := range t.perms {
		out = append(out, Node{Kind: KindPermission, Index: i, ID: string(id)})
	}
	return out
}

// UserDegree returns the number of roles user ui belongs to.
func (t *Tripartite) UserDegree(ui int) int {
	deg := 0
	for r := 0; r < t.ruam.Rows(); r++ {
		if t.ruam.Get(r, ui) {
			deg++
		}
	}
	return deg
}

// PermissionDegree returns the number of roles granting permission pi.
func (t *Tripartite) PermissionDegree(pi int) int {
	deg := 0
	for r := 0; r < t.rpam.Rows(); r++ {
		if t.rpam.Get(r, pi) {
			deg++
		}
	}
	return deg
}

// RoleDegree returns role ri's degrees toward users and permissions.
func (t *Tripartite) RoleDegree(ri int) (users, perms int) {
	return t.ruam.RowSum(ri), t.rpam.RowSum(ri)
}

// AdjacencyMatrix materialises the full (u+r+p)×(u+r+p) symmetric
// adjacency matrix of Step 1 in Figure 1, node order users, roles,
// permissions. Only sensible for small graphs; the detection framework
// never calls it.
func (t *Tripartite) AdjacencyMatrix() *matrix.BitMatrix {
	u, r, p := len(t.users), len(t.roles), len(t.perms)
	n := u + r + p
	adj := matrix.NewBitMatrix(n, n)
	for ri := 0; ri < r; ri++ {
		t.ruam.Row(ri).ForEach(func(ui int) bool {
			adj.Set(u+ri, ui)
			adj.Set(ui, u+ri)
			return true
		})
		t.rpam.Row(ri).ForEach(func(pi int) bool {
			adj.Set(u+ri, u+r+pi)
			adj.Set(u+r+pi, u+ri)
			return true
		})
	}
	return adj
}

// SubMatrices re-extracts RUAM and RPAM from a full adjacency matrix,
// mirroring Steps 2-3 in Figure 1. Shapes are implied by the stored
// node counts. It exists to verify, in tests, that the compact storage
// loses nothing relative to the full matrix.
func (t *Tripartite) SubMatrices(adj *matrix.BitMatrix) (ruam, rpam *matrix.BitMatrix, err error) {
	u, r, p := len(t.users), len(t.roles), len(t.perms)
	n := u + r + p
	if adj.Rows() != n || adj.Cols() != n {
		return nil, nil, fmt.Errorf("graph: adjacency matrix %dx%d, want %dx%d",
			adj.Rows(), adj.Cols(), n, n)
	}
	ruam = matrix.NewBitMatrix(r, u)
	rpam = matrix.NewBitMatrix(r, p)
	for ri := 0; ri < r; ri++ {
		for ui := 0; ui < u; ui++ {
			if adj.Get(u+ri, ui) {
				ruam.Set(ri, ui)
			}
		}
		for pi := 0; pi < p; pi++ {
			if adj.Get(u+ri, u+r+pi) {
				rpam.Set(ri, pi)
			}
		}
	}
	return ruam, rpam, nil
}

// MemoryFull returns the bit count of the full adjacency matrix,
// (r+u+p)², and MemoryCompact the bit count of the two sub-matrices,
// r*(u+p) — the paper's §III-B storage comparison.
func (t *Tripartite) MemoryFull() int {
	n := t.NumNodes()
	return n * n
}

// MemoryCompact returns r*(u+p), the compact two-matrix footprint.
func (t *Tripartite) MemoryCompact() int {
	return len(t.roles) * (len(t.users) + len(t.perms))
}
