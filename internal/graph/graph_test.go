package graph

import (
	"testing"

	"repro/internal/rbac"
)

// figure1 builds the paper's Figure 1 dataset.
func figure1(t *testing.T) *rbac.Dataset {
	t.Helper()
	d := rbac.NewDataset()
	for _, u := range []rbac.UserID{"U01", "U02", "U03", "U04"} {
		if err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []rbac.RoleID{"R01", "R02", "R03", "R04", "R05"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []rbac.PermissionID{"P01", "P02", "P03", "P04", "P05", "P06"} {
		if err := d.AddPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	for r, us := range map[rbac.RoleID][]rbac.UserID{
		"R01": {"U03"}, "R02": {"U01", "U02"}, "R04": {"U01", "U02"}, "R05": {"U04"},
	} {
		for _, u := range us {
			if err := d.AssignUser(r, u); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r, ps := range map[rbac.RoleID][]rbac.PermissionID{
		"R01": {"P02"}, "R03": {"P03", "P04"}, "R04": {"P05", "P06"}, "R05": {"P05", "P06"},
	} {
		for _, p := range ps {
			if err := d.AssignPermission(r, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestCountsAndNodes(t *testing.T) {
	g := FromDataset(figure1(t))
	if g.NumNodes() != 15 {
		t.Fatalf("NumNodes = %d, want 15", g.NumNodes())
	}
	if g.NumEdges() != 13 {
		t.Fatalf("NumEdges = %d, want 13", g.NumEdges())
	}
	nodes := g.Nodes()
	if len(nodes) != 15 {
		t.Fatalf("len(Nodes) = %d", len(nodes))
	}
	if nodes[0].Kind != KindUser || nodes[0].ID != "U01" {
		t.Fatalf("nodes[0] = %+v", nodes[0])
	}
	if nodes[4].Kind != KindRole || nodes[4].ID != "R01" {
		t.Fatalf("nodes[4] = %+v", nodes[4])
	}
	if nodes[9].Kind != KindPermission || nodes[9].ID != "P01" {
		t.Fatalf("nodes[9] = %+v", nodes[9])
	}
}

func TestKindString(t *testing.T) {
	if KindUser.String() != "user" || KindRole.String() != "role" ||
		KindPermission.String() != "permission" {
		t.Fatal("kind names wrong")
	}
	if NodeKind(9).String() != "graph.NodeKind(9)" {
		t.Fatalf("unknown kind = %q", NodeKind(9).String())
	}
}

func TestDegrees(t *testing.T) {
	g := FromDataset(figure1(t))
	// U01 is in R02 and R04.
	if got := g.UserDegree(0); got != 2 {
		t.Fatalf("UserDegree(U01) = %d, want 2", got)
	}
	// P01 is standalone.
	if got := g.PermissionDegree(0); got != 0 {
		t.Fatalf("PermissionDegree(P01) = %d, want 0", got)
	}
	// P05 is granted by R04 and R05.
	if got := g.PermissionDegree(4); got != 2 {
		t.Fatalf("PermissionDegree(P05) = %d, want 2", got)
	}
	// R02: two users, zero permissions.
	u, p := g.RoleDegree(1)
	if u != 2 || p != 0 {
		t.Fatalf("RoleDegree(R02) = (%d, %d), want (2, 0)", u, p)
	}
	// R03: zero users, two permissions.
	u, p = g.RoleDegree(2)
	if u != 0 || p != 2 {
		t.Fatalf("RoleDegree(R03) = (%d, %d), want (0, 2)", u, p)
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	g := FromDataset(figure1(t))
	adj := g.AdjacencyMatrix()
	if adj.Rows() != 15 || adj.Cols() != 15 {
		t.Fatalf("adjacency shape %dx%d", adj.Rows(), adj.Cols())
	}
	// Symmetric with doubled edge count.
	if adj.Count() != 2*g.NumEdges() {
		t.Fatalf("adjacency Count = %d, want %d", adj.Count(), 2*g.NumEdges())
	}
	if !adj.Transpose().Equal(adj) {
		t.Fatal("adjacency matrix not symmetric")
	}
	// No user-user, user-perm or role-role edges (tripartite property).
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if adj.Get(i, j) {
				t.Fatal("user-user edge present")
			}
		}
		for j := 9; j < 15; j++ {
			if adj.Get(i, j) {
				t.Fatal("user-permission edge present")
			}
		}
	}
	for i := 4; i < 9; i++ {
		for j := 4; j < 9; j++ {
			if adj.Get(i, j) {
				t.Fatal("role-role edge present")
			}
		}
	}

	// Steps 2-3: the sub-matrices recovered from the full adjacency
	// matrix match the directly built RUAM/RPAM.
	ruam, rpam, err := g.SubMatrices(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !ruam.Equal(g.RUAM()) {
		t.Fatal("extracted RUAM differs")
	}
	if !rpam.Equal(g.RPAM()) {
		t.Fatal("extracted RPAM differs")
	}
}

func TestSubMatricesShapeCheck(t *testing.T) {
	g := FromDataset(figure1(t))
	small := g.RUAM() // wrong shape on purpose
	if _, _, err := g.SubMatrices(small); err == nil {
		t.Fatal("SubMatrices accepted wrong shape")
	}
}

func TestMemoryComparison(t *testing.T) {
	g := FromDataset(figure1(t))
	// (4+5+6)² = 225 vs 5*(4+6) = 50 — the §III-B saving.
	if g.MemoryFull() != 225 {
		t.Fatalf("MemoryFull = %d, want 225", g.MemoryFull())
	}
	if g.MemoryCompact() != 50 {
		t.Fatalf("MemoryCompact = %d, want 50", g.MemoryCompact())
	}
	if g.MemoryCompact() >= g.MemoryFull() {
		t.Fatal("compact representation not smaller")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d := figure1(t)
	g := FromDataset(d)
	before := g.NumEdges()
	if err := d.AssignUser("R03", "U04"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != before {
		t.Fatal("graph view observed later dataset mutation")
	}
}
