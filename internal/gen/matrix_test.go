package gen

import (
	"reflect"
	"testing"

	"repro/internal/cluster/rolediet"
)

func TestMatrixValidate(t *testing.T) {
	bad := []MatrixParams{
		{Rows: -1, Cols: 10},
		{Rows: 10, Cols: 0},
		{Rows: 10, Cols: 10, ClusterProportion: -0.1},
		{Rows: 10, Cols: 10, ClusterProportion: 1.1},
		{Rows: 10, Cols: 10, ClusterProportion: 0.5, MaxClusterSize: 1},
		{Rows: 10, Cols: 10, Density: 2},
		{Rows: 10, Cols: 10, SimilarNoise: -1},
	}
	for i, p := range bad {
		if _, err := Matrix(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestMatrixShape(t *testing.T) {
	g, err := Matrix(MatrixParams{
		Rows: 200, Cols: 100, ClusterProportion: 0.2, MaxClusterSize: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 200 {
		t.Fatalf("rows = %d, want 200", len(g.Rows))
	}
	for i, r := range g.Rows {
		if r.Len() != 100 {
			t.Fatalf("row %d length %d", i, r.Len())
		}
	}
}

func TestMatrixPlantedProportion(t *testing.T) {
	g, err := Matrix(MatrixParams{
		Rows: 1000, Cols: 200, ClusterProportion: 0.2, MaxClusterSize: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	inClusters := 0
	for _, grp := range g.Planted {
		if len(grp) < 2 {
			t.Fatalf("planted group of size %d", len(grp))
		}
		if len(grp) > 10 {
			t.Fatalf("planted group of size %d exceeds cap", len(grp))
		}
		inClusters += len(grp)
	}
	// 0.2 * 1000, possibly one role short if the tail could not form a
	// pair.
	if inClusters < 198 || inClusters > 200 {
		t.Fatalf("roles in clusters = %d, want ~200", inClusters)
	}
}

func TestMatrixPlantedIsExactGroundTruth(t *testing.T) {
	g, err := Matrix(MatrixParams{
		Rows: 500, Cols: 300, ClusterProportion: 0.2, MaxClusterSize: 10, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rolediet.Groups(g.Rows, rolediet.Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Groups, g.Planted) {
		t.Fatalf("detected %d groups, planted %d; first detected %v planted %v",
			len(res.Groups), len(g.Planted), res.Groups[0], g.Planted[0])
	}
}

func TestMatrixDeterministic(t *testing.T) {
	p := MatrixParams{Rows: 100, Cols: 50, ClusterProportion: 0.3, MaxClusterSize: 5, Seed: 9}
	a, err := Matrix(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Matrix(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("row %d differs between runs with same seed", i)
		}
	}
	if !reflect.DeepEqual(a.Planted, b.Planted) {
		t.Fatal("planted groups differ between runs")
	}
}

func TestMatrixNoClusters(t *testing.T) {
	g, err := Matrix(MatrixParams{Rows: 50, Cols: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Planted) != 0 {
		t.Fatalf("planted = %v, want none", g.Planted)
	}
	res, err := rolediet.Groups(g.Rows, rolediet.Options{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("accidental duplicate groups: %v", res.Groups)
	}
}

func TestMatrixSingleClusterRowDowngraded(t *testing.T) {
	// Proportion so small only one row would be clustered: no cluster.
	g, err := Matrix(MatrixParams{
		Rows: 10, Cols: 20, ClusterProportion: 0.1, MaxClusterSize: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Planted) != 0 {
		t.Fatalf("planted = %v, want none for a 1-row cluster budget", g.Planted)
	}
	if len(g.Rows) != 10 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
}

func TestMatrixSimilarNoise(t *testing.T) {
	g, err := Matrix(MatrixParams{
		Rows: 200, Cols: 100, ClusterProportion: 0.2, MaxClusterSize: 4,
		SimilarNoise: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every noised member stays within Hamming 1 of its group head.
	for _, grp := range g.Planted {
		head := g.Rows[grp[0]]
		for _, m := range grp[1:] {
			if d := head.Hamming(g.Rows[m]); d > 1 {
				t.Fatalf("noised member at distance %d from head", d)
			}
		}
	}
}

func TestMatrixEmptyRows(t *testing.T) {
	g, err := Matrix(MatrixParams{Rows: 0, Cols: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 0 || len(g.Planted) != 0 {
		t.Fatalf("empty generation produced %d rows", len(g.Rows))
	}
}
