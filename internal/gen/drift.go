package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/rbac"
	"repro/internal/replay"
)

// DriftParams shapes a synthetic IAM event stream: the kind of
// unsupervised churn that, per the paper, accumulates into the five
// inefficiency classes over time.
type DriftParams struct {
	// Events is the stream length.
	Events int
	// Seed drives the deterministic generator; zero means 1.
	Seed int64
	// CloneRoleChance is the probability (in percent) that a role
	// creation clones an existing role's user set — the "department
	// recreates an existing role" behaviour that breeds class-4 groups.
	CloneRoleChance int
	// OrphanChance is the probability (in percent) that a user or
	// permission creation is never followed by an assignment, breeding
	// standalone nodes.
	OrphanChance int
}

func (p DriftParams) withDefaults() DriftParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.CloneRoleChance == 0 {
		p.CloneRoleChance = 25
	}
	if p.OrphanChance == 0 {
		p.OrphanChance = 20
	}
	return p
}

// Validate checks the parameters.
func (p DriftParams) Validate() error {
	if p.Events < 0 {
		return fmt.Errorf("gen: negative event count %d", p.Events)
	}
	if p.CloneRoleChance < 0 || p.CloneRoleChance > 100 {
		return fmt.Errorf("gen: clone chance %d outside [0,100]", p.CloneRoleChance)
	}
	if p.OrphanChance < 0 || p.OrphanChance > 100 {
		return fmt.Errorf("gen: orphan chance %d outside [0,100]", p.OrphanChance)
	}
	return nil
}

// Drift generates an event stream that is valid against the given base
// dataset: replaying it from a clone of base never fails. The returned
// events model organic churn — joiners, movers, leavers, new systems,
// and the occasional role cloned from an existing one.
func Drift(base *rbac.Dataset, p DriftParams) ([]replay.Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	// Work on a shadow copy so generated events are always applicable.
	shadow := base.Clone()
	events := make([]replay.Event, 0, p.Events)
	emit := func(e replay.Event) error {
		if err := replay.Apply(shadow, e); err != nil {
			return err
		}
		e.Seq = int64(len(events) + 1)
		events = append(events, e)
		return nil
	}

	nextID := 0
	freshID := func(prefix string) string {
		nextID++
		return fmt.Sprintf("%s-drift-%05d", prefix, nextID)
	}
	pickRole := func() (rbac.RoleID, bool) {
		roles := shadow.Roles()
		if len(roles) == 0 {
			return "", false
		}
		return roles[rng.Intn(len(roles))], true
	}
	pickUser := func() (rbac.UserID, bool) {
		users := shadow.Users()
		if len(users) == 0 {
			return "", false
		}
		return users[rng.Intn(len(users))], true
	}
	pickPerm := func() (rbac.PermissionID, bool) {
		perms := shadow.Permissions()
		if len(perms) == 0 {
			return "", false
		}
		return perms[rng.Intn(len(perms))], true
	}

	for len(events) < p.Events {
		var err error
		switch rng.Intn(10) {
		case 0: // joiner
			user := rbac.UserID(freshID("u"))
			err = emit(replay.Event{Op: replay.OpAddUser, User: user})
			if err == nil && rng.Intn(100) >= p.OrphanChance {
				if role, ok := pickRole(); ok && len(events) < p.Events {
					err = emit(replay.Event{Op: replay.OpAssignUser, Role: role, User: user})
				}
			}
		case 1: // new system permission
			perm := rbac.PermissionID(freshID("p"))
			err = emit(replay.Event{Op: replay.OpAddPermission, Permission: perm})
			if err == nil && rng.Intn(100) >= p.OrphanChance {
				if role, ok := pickRole(); ok && len(events) < p.Events {
					err = emit(replay.Event{Op: replay.OpAssignPermission, Role: role, Permission: perm})
				}
			}
		case 2: // new role, possibly cloned from an existing one
			role := rbac.RoleID(freshID("r"))
			err = emit(replay.Event{Op: replay.OpAddRole, Role: role})
			if err == nil && rng.Intn(100) < p.CloneRoleChance {
				if src, ok := pickRole(); ok && src != role {
					users, uerr := shadow.RoleUsers(src)
					if uerr == nil {
						for _, u := range users {
							if len(events) >= p.Events {
								break
							}
							if err = emit(replay.Event{Op: replay.OpAssignUser, Role: role, User: u}); err != nil {
								break
							}
						}
					}
				}
			}
		case 3, 4, 5: // mover: gain a role
			role, okR := pickRole()
			user, okU := pickUser()
			if okR && okU {
				err = emit(replay.Event{Op: replay.OpAssignUser, Role: role, User: user})
			}
		case 6, 7: // permission granted to a role
			role, okR := pickRole()
			perm, okP := pickPerm()
			if okR && okP {
				err = emit(replay.Event{Op: replay.OpAssignPermission, Role: role, Permission: perm})
			}
		case 8: // mover: lose a role
			role, okR := pickRole()
			user, okU := pickUser()
			if okR && okU {
				err = emit(replay.Event{Op: replay.OpRevokeUser, Role: role, User: user})
			}
		case 9: // leaver (rare; only drift-created users, to keep the
			// base's planted structure intact for ground-truth tests)
			users := shadow.Users()
			var victim rbac.UserID
			for _, u := range users {
				if len(u) > 8 && u[:8] == "u-drift-" {
					victim = u
					break
				}
			}
			if victim != "" {
				err = emit(replay.Event{Op: replay.OpRemoveUser, User: victim})
			}
		}
		if err != nil {
			return nil, fmt.Errorf("gen: drift event %d: %w", len(events), err)
		}
	}
	return events, nil
}
