package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/rbac"
)

// OrgParams sizes the organisation-scale dataset of §IV-B. The defaults
// (DefaultOrgParams) mirror the paper's anonymised order-of-magnitude
// figures: ~90,000 users, ~350,000 permissions, ~50,000 roles, with the
// reported number of instances per inefficiency class planted as ground
// truth.
type OrgParams struct {
	// Users is the total number of user accounts, including standalone.
	Users int
	// Permissions is the total number of permissions, including
	// standalone.
	Permissions int
	// Roles is the total number of roles.
	Roles int

	// StandaloneUsers is the number of users assigned to no role.
	StandaloneUsers int
	// StandalonePermissions is the number of permissions linked to no
	// role — nearly half of all permissions in the paper's dataset.
	StandalonePermissions int

	// RolesWithoutUsers is the number of roles linked only to
	// permissions (class 2).
	RolesWithoutUsers int
	// RolesWithoutPermissions is the number of roles linked only to
	// users (class 2).
	RolesWithoutPermissions int

	// SingleUserRoles / SinglePermissionRoles are class-3 counts.
	SingleUserRoles       int
	SinglePermissionRoles int

	// SameUserGroupRoles / SamePermissionGroupRoles are class-4 counts:
	// roles planted in pairs with identical user (permission) sets.
	// Must be even.
	SameUserGroupRoles       int
	SamePermissionGroupRoles int

	// SimilarUserGroupRoles / SimilarPermissionGroupRoles are class-5
	// counts: roles planted in pairs at Hamming distance exactly 1.
	// Must be even.
	SimilarUserGroupRoles       int
	SimilarPermissionGroupRoles int

	// UserNorm / PermNorm are the typical assignment-set sizes for
	// planted pairs and background roles; defaults 5.
	UserNorm int
	PermNorm int

	// Seed drives the deterministic layout jitter; zero means 1.
	Seed int64
}

// DefaultOrgParams returns the paper-scale configuration.
func DefaultOrgParams() OrgParams {
	return OrgParams{
		Users:                       90_000,
		Permissions:                 350_000,
		Roles:                       50_000,
		StandaloneUsers:             500,
		StandalonePermissions:       180_000,
		RolesWithoutUsers:           12_000,
		RolesWithoutPermissions:     1_000,
		SingleUserRoles:             4_000,
		SinglePermissionRoles:       21_000,
		SameUserGroupRoles:          8_000,
		SamePermissionGroupRoles:    2_000,
		SimilarUserGroupRoles:       6_000,
		SimilarPermissionGroupRoles: 4_000,
	}
}

// Scaled divides every count by div (minimum 1 per non-zero count,
// rounded to evenness where pairs require it), letting tests run a
// miniature organisation with the same planted structure.
func (p OrgParams) Scaled(div int) OrgParams {
	if div <= 1 {
		return p
	}
	scale := func(n int) int {
		if n == 0 {
			return 0
		}
		s := n / div
		if s < 1 {
			s = 1
		}
		return s
	}
	even := func(n int) int {
		s := scale(n)
		if s%2 == 1 {
			s++
		}
		return s
	}
	out := p
	out.Users = scale(p.Users)
	out.Permissions = scale(p.Permissions)
	out.Roles = scale(p.Roles)
	out.StandaloneUsers = scale(p.StandaloneUsers)
	out.StandalonePermissions = scale(p.StandalonePermissions)
	out.RolesWithoutUsers = scale(p.RolesWithoutUsers)
	out.RolesWithoutPermissions = scale(p.RolesWithoutPermissions)
	out.SingleUserRoles = scale(p.SingleUserRoles)
	out.SinglePermissionRoles = scale(p.SinglePermissionRoles)
	out.SameUserGroupRoles = even(p.SameUserGroupRoles)
	out.SamePermissionGroupRoles = even(p.SamePermissionGroupRoles)
	out.SimilarUserGroupRoles = even(p.SimilarUserGroupRoles)
	out.SimilarPermissionGroupRoles = even(p.SimilarPermissionGroupRoles)
	return out
}

func (p OrgParams) withDefaults() OrgParams {
	if p.UserNorm == 0 {
		p.UserNorm = 5
	}
	if p.PermNorm == 0 {
		p.PermNorm = 5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Validate checks structural feasibility.
func (p OrgParams) Validate() error {
	p = p.withDefaults()
	for name, n := range map[string]int{
		"users": p.Users, "permissions": p.Permissions, "roles": p.Roles,
		"standaloneUsers": p.StandaloneUsers, "standalonePermissions": p.StandalonePermissions,
		"rolesWithoutUsers": p.RolesWithoutUsers, "rolesWithoutPermissions": p.RolesWithoutPermissions,
		"singleUserRoles": p.SingleUserRoles, "singlePermissionRoles": p.SinglePermissionRoles,
		"sameUserGroupRoles": p.SameUserGroupRoles, "samePermissionGroupRoles": p.SamePermissionGroupRoles,
		"similarUserGroupRoles": p.SimilarUserGroupRoles, "similarPermissionGroupRoles": p.SimilarPermissionGroupRoles,
	} {
		if n < 0 {
			return fmt.Errorf("gen: negative %s (%d)", name, n)
		}
	}
	if p.SameUserGroupRoles%2 != 0 || p.SamePermissionGroupRoles%2 != 0 ||
		p.SimilarUserGroupRoles%2 != 0 || p.SimilarPermissionGroupRoles%2 != 0 {
		return fmt.Errorf("gen: pair-group role counts must be even")
	}
	if p.StandaloneUsers > p.Users {
		return fmt.Errorf("gen: %d standalone users > %d users", p.StandaloneUsers, p.Users)
	}
	if p.StandalonePermissions > p.Permissions {
		return fmt.Errorf("gen: %d standalone permissions > %d permissions",
			p.StandalonePermissions, p.Permissions)
	}
	userSide := p.RolesWithoutUsers + p.SingleUserRoles + p.SameUserGroupRoles + p.SimilarUserGroupRoles
	if userSide > p.Roles {
		return fmt.Errorf("gen: user-side categories need %d roles, have %d", userSide, p.Roles)
	}
	permSide := p.RolesWithoutPermissions + p.SinglePermissionRoles +
		p.SamePermissionGroupRoles + p.SimilarPermissionGroupRoles
	if permSide > p.Roles {
		return fmt.Errorf("gen: permission-side categories need %d roles, have %d", permSide, p.Roles)
	}
	// Permission-side categories are laid out starting right after the
	// user-less block; forbidding overflow keeps user-less and
	// permission-less roles disjoint and pair runs unsplit.
	if p.RolesWithoutUsers+permSide > p.Roles {
		return fmt.Errorf("gen: user-less block (%d) + permission-side categories (%d) exceed %d roles",
			p.RolesWithoutUsers, permSide, p.Roles)
	}
	if userSide == p.Roles && p.Roles > 0 {
		return fmt.Errorf("gen: no background role left on the user side to absorb leftover users")
	}
	if p.RolesWithoutUsers+permSide == p.Roles && p.Roles > 0 {
		return fmt.Errorf("gen: no background role left on the permission side to absorb leftover permissions")
	}
	return nil
}

// OrgGroundTruth records what was planted, per inefficiency class and
// side. DetectedSimilar* notes: at threshold 1 the similar detector
// also co-groups the exact (distance 0) pairs, so the expected detected
// counts are Same + Similar per side.
type OrgGroundTruth struct {
	StandaloneUsers       int `json:"standaloneUsers"`
	StandalonePermissions int `json:"standalonePermissions"`
	StandaloneRoles       int `json:"standaloneRoles"`

	RolesWithoutUsers       int `json:"rolesWithoutUsers"`
	RolesWithoutPermissions int `json:"rolesWithoutPermissions"`

	SingleUserRoles       int `json:"singleUserRoles"`
	SinglePermissionRoles int `json:"singlePermissionRoles"`

	SameUserGroups           int `json:"sameUserGroups"`
	SameUserGroupRoles       int `json:"sameUserGroupRoles"`
	SamePermissionGroups     int `json:"samePermissionGroups"`
	SamePermissionGroupRoles int `json:"samePermissionGroupRoles"`

	SimilarUserGroups           int `json:"similarUserGroups"`
	SimilarUserGroupRoles       int `json:"similarUserGroupRoles"`
	SimilarPermissionGroups     int `json:"similarPermissionGroups"`
	SimilarPermissionGroupRoles int `json:"similarPermissionGroupRoles"`
}

// sideCategory is a role's planted structure on one side (users or
// permissions).
type sideCategory int

const (
	catBackground  sideCategory = iota
	catNone                     // no assignments on this side
	catSingle                   // exactly one assignment
	catSamePair                 // first/second member of an identical pair
	catSimilarPair              // first/second member of a distance-1 pair
)

// lineAllocator hands out interval windows over [0, size) such that any
// two distinct windows are at Hamming distance >= 2 from each other
// (treating a window as a bit set), with no position wasted:
//
//   - windows of length >= 2 are packed back to back, so two such
//     windows are disjoint and differ in all >= 4 of their positions;
//   - a singleton window vs anything else always differs in >= 2
//     positions (1 + the other's length);
//   - singleton windows are paired up inside 2-cells so they leave no
//     gap; an odd leftover half-cell is reported via stray().
type lineAllocator struct {
	size   int
	cursor int
	// half is a spare position from a split 2-cell awaiting the next
	// singleton, or -1.
	half int
}

func newLineAllocator(size int) *lineAllocator {
	return &lineAllocator{size: size, half: -1}
}

// alloc returns the start of a window of the given length, or an error
// when the line is exhausted.
func (l *lineAllocator) alloc(length int) (int, error) {
	if length == 1 && l.half >= 0 {
		start := l.half
		l.half = -1
		return start, nil
	}
	step := length
	if length == 1 {
		step = 2
	}
	if l.cursor+step > l.size {
		return 0, fmt.Errorf("gen: line exhausted (cursor %d + %d > %d)", l.cursor, step, l.size)
	}
	start := l.cursor
	l.cursor += step
	if length == 1 {
		l.half = start + 1
	}
	return start, nil
}

// stray returns the position of an unconsumed half-cell, or -1.
func (l *lineAllocator) stray() int { return l.half }

// Org builds the organisation-scale dataset with planted ground truth.
// All planting is deterministic given the seed; the returned dataset
// validates and its detected inefficiency counts equal the ground truth
// exactly for thresholds 0 and 1.
func Org(p OrgParams) (*rbac.Dataset, *OrgGroundTruth, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	d := rbac.NewDataset()
	// Shared users first, then standalone, so user index == line index
	// for shared users.
	sharedUsers := p.Users - p.StandaloneUsers
	for i := 0; i < p.Users; i++ {
		_ = d.AddUser(rbac.UserID(fmt.Sprintf("u%06d", i)))
	}
	sharedPerms := p.Permissions - p.StandalonePermissions
	for i := 0; i < p.Permissions; i++ {
		_ = d.AddPermission(rbac.PermissionID(fmt.Sprintf("p%06d", i)))
	}
	roleID := func(i int) rbac.RoleID { return rbac.RoleID(fmt.Sprintf("r%06d", i)) }
	for i := 0; i < p.Roles; i++ {
		_ = d.AddRole(roleID(i))
	}

	// Assign side categories to role index ranges. The permission-side
	// ranges start right after the user-less block so that no role is
	// user-less and permission-less at once.
	userCat := make([]sideCategory, p.Roles)
	permCat := make([]sideCategory, p.Roles)
	fill := func(cats []sideCategory, start int, counts []struct {
		cat sideCategory
		n   int
	}) {
		i := start
		for _, c := range counts {
			for k := 0; k < c.n; k++ {
				cats[i] = c.cat
				i++
			}
		}
	}
	fill(userCat, 0, []struct {
		cat sideCategory
		n   int
	}{
		{catNone, p.RolesWithoutUsers},
		{catSingle, p.SingleUserRoles},
		{catSamePair, p.SameUserGroupRoles},
		{catSimilarPair, p.SimilarUserGroupRoles},
	})
	fill(permCat, p.RolesWithoutUsers, []struct {
		cat sideCategory
		n   int
	}{
		{catNone, p.RolesWithoutPermissions},
		{catSingle, p.SinglePermissionRoles},
		{catSamePair, p.SamePermissionGroupRoles},
		{catSimilarPair, p.SimilarPermissionGroupRoles},
	})

	userLine := newLineAllocator(sharedUsers)
	permLine := newLineAllocator(sharedPerms)

	assignUserWindow := func(ri, start, length int) {
		for j := 0; j < length; j++ {
			_ = d.AssignUser(roleID(ri), rbac.UserID(fmt.Sprintf("u%06d", start+j)))
		}
	}
	assignPermWindow := func(ri, start, length int) {
		for j := 0; j < length; j++ {
			_ = d.AssignPermission(roleID(ri), rbac.PermissionID(fmt.Sprintf("p%06d", start+j)))
		}
	}

	// plantSide walks the roles and allocates windows per category.
	// Pair categories consume two consecutive roles of the same
	// category; fill guarantees they are planted in runs of even length.
	// Background window lengths are budgeted so the planted windows
	// consume the whole shared pool: every background role gets the
	// floor of the per-role budget and a deterministic-random subset
	// gets one extra element.
	plantSide := func(cats []sideCategory, line *lineAllocator, norm int,
		assign func(ri, start, length int)) error {
		singles, sameWindows, similarWindows, background := 0, 0, 0, 0
		for _, c := range cats {
			switch c {
			case catSingle:
				singles++
			case catSamePair:
				sameWindows++
			case catSimilarPair:
				similarWindows++
			case catBackground:
				background++
			}
		}
		sameWindows /= 2
		similarWindows /= 2
		// Singles consume a full 2-cell per pair of singles.
		fixed := 2*((singles+1)/2) + sameWindows*norm + similarWindows*(norm+1)
		budget := line.size - fixed
		baseLen, extras := 0, 0
		if background > 0 {
			baseLen = budget / background
			extras = budget % background
			if baseLen < 2 {
				return fmt.Errorf("gen: shared pool of %d too small: %d background roles need >= 2 each after %d fixed",
					line.size, background, fixed)
			}
		} else if budget > 0 {
			return fmt.Errorf("gen: %d unconsumed shared entities and no background roles", budget)
		}
		// Deterministically pick which background windows get the extra
		// element.
		extraFor := make([]bool, background)
		for _, i := range rng.Perm(background)[:extras] {
			extraFor[i] = true
		}
		bgSeen := 0
		for ri := 0; ri < p.Roles; ri++ {
			switch cats[ri] {
			case catNone:
				// no assignments
			case catSingle:
				start, err := line.alloc(1)
				if err != nil {
					return err
				}
				assign(ri, start, 1)
			case catSamePair:
				start, err := line.alloc(norm)
				if err != nil {
					return err
				}
				assign(ri, start, norm)
				assign(ri+1, start, norm)
				ri++
			case catSimilarPair:
				// Member A gets the window, member B the window plus one
				// extra element: Hamming distance exactly 1.
				start, err := line.alloc(norm + 1)
				if err != nil {
					return err
				}
				assign(ri, start, norm)
				assign(ri+1, start, norm+1)
				ri++
			case catBackground:
				length := baseLen
				if extraFor[bgSeen] {
					length++
				}
				bgSeen++
				start, err := line.alloc(length)
				if err != nil {
					return err
				}
				assign(ri, start, length)
			}
		}
		return nil
	}

	if err := plantSide(userCat, userLine, p.UserNorm, assignUserWindow); err != nil {
		return nil, nil, fmt.Errorf("user side: %w", err)
	}
	if err := plantSide(permCat, permLine, p.PermNorm, assignPermWindow); err != nil {
		return nil, nil, fmt.Errorf("permission side: %w", err)
	}

	// Shared users (permissions) past the allocator cursor were never
	// assigned; without intervention they would surface as standalone
	// nodes and swamp the planted counts. They are absorbed into one
	// background role on the corresponding side: adding users no other
	// role has only *increases* that role's distance to every other
	// role, so no planted group is disturbed and the standalone nodes
	// are exactly the dedicated tails.
	if err := absorbLeftovers(userCat, userLine, sharedUsers, assignUserWindow); err != nil {
		return nil, nil, fmt.Errorf("user side: %w", err)
	}
	if err := absorbLeftovers(permCat, permLine, sharedPerms, assignPermWindow); err != nil {
		return nil, nil, fmt.Errorf("permission side: %w", err)
	}

	gt := &OrgGroundTruth{
		StandaloneUsers:             p.StandaloneUsers,
		StandalonePermissions:       p.StandalonePermissions,
		RolesWithoutUsers:           p.RolesWithoutUsers,
		RolesWithoutPermissions:     p.RolesWithoutPermissions,
		SingleUserRoles:             p.SingleUserRoles,
		SinglePermissionRoles:       p.SinglePermissionRoles,
		SameUserGroups:              p.SameUserGroupRoles / 2,
		SameUserGroupRoles:          p.SameUserGroupRoles,
		SamePermissionGroups:        p.SamePermissionGroupRoles / 2,
		SamePermissionGroupRoles:    p.SamePermissionGroupRoles,
		SimilarUserGroups:           p.SimilarUserGroupRoles / 2,
		SimilarUserGroupRoles:       p.SimilarUserGroupRoles,
		SimilarPermissionGroups:     p.SimilarPermissionGroupRoles / 2,
		SimilarPermissionGroupRoles: p.SimilarPermissionGroupRoles,
	}
	return d, gt, nil
}

// absorbLeftovers assigns the unconsumed shared range [cursor, shared),
// plus any stray half-cell position, to the last background role on
// that side. Validate guarantees at least one background role exists
// per side.
func absorbLeftovers(cats []sideCategory, line *lineAllocator, shared int,
	assign func(ri, start, length int)) error {
	if line.cursor >= shared && line.stray() < 0 {
		return nil
	}
	for ri := len(cats) - 1; ri >= 0; ri-- {
		if cats[ri] != catBackground {
			continue
		}
		if line.cursor < shared {
			assign(ri, line.cursor, shared-line.cursor)
			line.cursor = shared
		}
		if s := line.stray(); s >= 0 {
			assign(ri, s, 1)
			line.half = -1
		}
		return nil
	}
	return fmt.Errorf("gen: leftover entities and no background role to absorb them")
}
