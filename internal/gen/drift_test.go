package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rbac"
	"repro/internal/replay"
)

func TestDriftValidate(t *testing.T) {
	base := rbac.Figure1()
	if _, err := Drift(base, DriftParams{Events: -1}); err == nil {
		t.Fatal("negative events accepted")
	}
	if _, err := Drift(base, DriftParams{Events: 1, CloneRoleChance: 101}); err == nil {
		t.Fatal("bad clone chance accepted")
	}
	if _, err := Drift(base, DriftParams{Events: 1, OrphanChance: -1}); err == nil {
		t.Fatal("bad orphan chance accepted")
	}
}

func TestDriftStreamAppliesCleanly(t *testing.T) {
	base := rbac.Figure1()
	events, err := Drift(base, DriftParams{Events: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 300 {
		t.Fatalf("events = %d, want 300", len(events))
	}
	ds := base.Clone()
	r := &replay.Replayer{Dataset: ds}
	applied, err := r.Run(events)
	if err != nil {
		t.Fatalf("replay failed at %d: %v", applied, err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drift grows the dataset.
	if ds.NumUsers() <= base.NumUsers() && ds.NumRoles() <= base.NumRoles() {
		t.Fatal("drift produced no growth")
	}
}

func TestDriftDeterministic(t *testing.T) {
	base := rbac.Figure1()
	a, err := Drift(base, DriftParams{Events: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drift(base, DriftParams{Events: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDriftDoesNotTouchBase(t *testing.T) {
	base := rbac.Figure1()
	statsBefore := base.Stats()
	if _, err := Drift(base, DriftParams{Events: 200, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if base.Stats() != statsBefore {
		t.Fatal("Drift mutated the base dataset")
	}
}

func TestPropertyDriftAlwaysReplayable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := rbac.Figure1()
		events, err := Drift(base, DriftParams{
			Events:          1 + r.Intn(200),
			Seed:            seed,
			CloneRoleChance: 1 + r.Intn(99),
			OrphanChance:    1 + r.Intn(99),
		})
		if err != nil {
			return false
		}
		ds := base.Clone()
		rp := &replay.Replayer{Dataset: ds}
		if _, err := rp.Run(events); err != nil {
			return false
		}
		return ds.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftZeroEvents(t *testing.T) {
	events, err := Drift(rbac.Figure1(), DriftParams{Events: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("events = %d", len(events))
	}
}
