package gen

import "testing"

// TestBackgroundRowsDistinctFromNoisyMembers: the generator registers
// noisy cluster members in its dedup set, so a background ("distinct")
// row can never coincide with any planted row — with or without
// SimilarNoise. Differential and recall tests rely on this to treat
// Planted as the complete exact-duplicate ground truth.
func TestBackgroundRowsDistinctFromNoisyMembers(t *testing.T) {
	for _, noise := range []int{0, 1, 3} {
		g, err := Matrix(MatrixParams{
			Rows: 200, Cols: 32, ClusterProportion: 0.4,
			MaxClusterSize: 8, Density: 0.2, SimilarNoise: noise, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		planted := make(map[int]bool)
		for _, cluster := range g.Planted {
			for _, i := range cluster {
				planted[i] = true
			}
		}
		for i, ri := range g.Rows {
			if planted[i] {
				continue
			}
			for j, rj := range g.Rows {
				if i == j || !planted[j] {
					continue
				}
				if ri.Equal(rj) {
					t.Fatalf("noise=%d: background row %d duplicates planted row %d (%s)",
						noise, i, j, ri.String())
				}
			}
		}
	}
}
