package gen

import (
	"testing"

	"repro/internal/core"
)

// smallOrg is the full paper-scale configuration shrunk 100x so tests
// run in milliseconds while keeping every planted structure.
func smallOrg(t *testing.T) (OrgParams, *core.Report, *OrgGroundTruth) {
	t.Helper()
	p := DefaultOrgParams().Scaled(100)
	ds, gt, err := Org(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(ds, core.Options{SimilarThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, rep, gt
}

func TestOrgValidate(t *testing.T) {
	bad := DefaultOrgParams()
	bad.SameUserGroupRoles = 7 // odd
	if _, _, err := Org(bad); err == nil {
		t.Error("odd pair count accepted")
	}
	bad = DefaultOrgParams()
	bad.StandaloneUsers = bad.Users + 1
	if _, _, err := Org(bad); err == nil {
		t.Error("standalone > total users accepted")
	}
	bad = DefaultOrgParams()
	bad.Roles = 100 // far too few for the category counts
	if _, _, err := Org(bad); err == nil {
		t.Error("oversubscribed roles accepted")
	}
	bad = DefaultOrgParams()
	bad.Users = -1
	if _, _, err := Org(bad); err == nil {
		t.Error("negative users accepted")
	}
}

func TestOrgShape(t *testing.T) {
	p := DefaultOrgParams().Scaled(100)
	ds, _, err := Org(p)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats()
	if s.Users != p.Users || s.Roles != p.Roles || s.Permissions != p.Permissions {
		t.Fatalf("stats %+v vs params %+v", s, p)
	}
	if s.UserAssignments == 0 || s.PermissionAssignments == 0 {
		t.Fatal("no assignments generated")
	}
}

func TestOrgGroundTruthLinearClasses(t *testing.T) {
	_, rep, gt := smallOrg(t)
	if got := len(rep.StandaloneUsers); got != gt.StandaloneUsers {
		t.Errorf("standalone users detected %d, planted %d", got, gt.StandaloneUsers)
	}
	if got := len(rep.StandalonePermissions); got != gt.StandalonePermissions {
		t.Errorf("standalone permissions detected %d, planted %d", got, gt.StandalonePermissions)
	}
	if got := len(rep.StandaloneRoles); got != gt.StandaloneRoles {
		t.Errorf("standalone roles detected %d, planted %d", got, gt.StandaloneRoles)
	}
	if got := len(rep.RolesWithoutUsers); got != gt.RolesWithoutUsers {
		t.Errorf("roles without users detected %d, planted %d", got, gt.RolesWithoutUsers)
	}
	if got := len(rep.RolesWithoutPermissions); got != gt.RolesWithoutPermissions {
		t.Errorf("roles without permissions detected %d, planted %d", got, gt.RolesWithoutPermissions)
	}
	if got := len(rep.RolesWithSingleUser); got != gt.SingleUserRoles {
		t.Errorf("single-user roles detected %d, planted %d", got, gt.SingleUserRoles)
	}
	if got := len(rep.RolesWithSinglePermission); got != gt.SinglePermissionRoles {
		t.Errorf("single-permission roles detected %d, planted %d", got, gt.SinglePermissionRoles)
	}
}

func TestOrgGroundTruthGroups(t *testing.T) {
	_, rep, gt := smallOrg(t)

	same := core.StatsOf(rep.SameUserGroups)
	if same.Groups != gt.SameUserGroups || same.RolesInGroups != gt.SameUserGroupRoles {
		t.Errorf("same-user groups %d/%d roles, planted %d/%d",
			same.Groups, same.RolesInGroups, gt.SameUserGroups, gt.SameUserGroupRoles)
	}
	samep := core.StatsOf(rep.SamePermissionGroups)
	if samep.Groups != gt.SamePermissionGroups || samep.RolesInGroups != gt.SamePermissionGroupRoles {
		t.Errorf("same-permission groups %d/%d roles, planted %d/%d",
			samep.Groups, samep.RolesInGroups, gt.SamePermissionGroups, gt.SamePermissionGroupRoles)
	}

	// At threshold 1 the similar detector also co-groups the exact
	// pairs, so detected = planted similar + planted same.
	sim := core.StatsOf(rep.SimilarUserGroups)
	wantRoles := gt.SimilarUserGroupRoles + gt.SameUserGroupRoles
	wantGroups := gt.SimilarUserGroups + gt.SameUserGroups
	if sim.Groups != wantGroups || sim.RolesInGroups != wantRoles {
		t.Errorf("similar-user groups %d/%d roles, want %d/%d",
			sim.Groups, sim.RolesInGroups, wantGroups, wantRoles)
	}
	simp := core.StatsOf(rep.SimilarPermissionGroups)
	wantRoles = gt.SimilarPermissionGroupRoles + gt.SamePermissionGroupRoles
	wantGroups = gt.SimilarPermissionGroups + gt.SamePermissionGroups
	if simp.Groups != wantGroups || simp.RolesInGroups != wantRoles {
		t.Errorf("similar-permission groups %d/%d roles, want %d/%d",
			simp.Groups, simp.RolesInGroups, wantGroups, wantRoles)
	}
}

func TestOrgDeterministic(t *testing.T) {
	p := DefaultOrgParams().Scaled(200)
	a, _, err := Org(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Org(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RUAM().Equal(b.RUAM()) || !a.RPAM().Equal(b.RPAM()) {
		t.Fatal("org generation not deterministic")
	}
}

func TestOrgScaled(t *testing.T) {
	p := DefaultOrgParams().Scaled(1000)
	if p.SameUserGroupRoles%2 != 0 || p.SimilarPermissionGroupRoles%2 != 0 {
		t.Fatalf("scaled pair counts not even: %+v", p)
	}
	if p.Roles == 0 || p.Users == 0 {
		t.Fatalf("scaled to zero: %+v", p)
	}
	if got := DefaultOrgParams().Scaled(1); got != DefaultOrgParams() {
		t.Fatal("Scaled(1) changed params")
	}
}

func TestOrgTenthScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10x-scale org generation in -short mode")
	}
	p := DefaultOrgParams().Scaled(10)
	ds, gt, err := Org(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(ds, core.Options{SimilarThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RolesWithSingleUser) != gt.SingleUserRoles {
		t.Errorf("single-user roles %d, planted %d",
			len(rep.RolesWithSingleUser), gt.SingleUserRoles)
	}
	same := core.StatsOf(rep.SameUserGroups)
	if same.RolesInGroups != gt.SameUserGroupRoles {
		t.Errorf("same-user roles %d, planted %d", same.RolesInGroups, gt.SameUserGroupRoles)
	}
}

func TestOrgValidateMoreCases(t *testing.T) {
	// Standalone permissions exceeding the pool.
	bad := DefaultOrgParams()
	bad.StandalonePermissions = bad.Permissions + 1
	if err := bad.Validate(); err == nil {
		t.Error("standalone > total permissions accepted")
	}
	// User-side category oversubscription alone.
	bad = DefaultOrgParams().Scaled(100)
	bad.SameUserGroupRoles = bad.Roles * 2
	if err := bad.Validate(); err == nil {
		t.Error("user-side oversubscription accepted")
	}
	// No background role left on the user side.
	bad = DefaultOrgParams().Scaled(100)
	bad.SingleUserRoles = bad.Roles - bad.RolesWithoutUsers -
		bad.SameUserGroupRoles - bad.SimilarUserGroupRoles
	if err := bad.Validate(); err == nil {
		t.Error("zero user-side background accepted")
	}
	// Permission-side block overflow past the role count.
	bad = DefaultOrgParams().Scaled(100)
	bad.SinglePermissionRoles = bad.Roles - bad.RolesWithoutUsers
	if err := bad.Validate(); err == nil {
		t.Error("perm-side overflow accepted")
	}
	// Shared user pool too small for the fixed windows.
	tiny := DefaultOrgParams().Scaled(100)
	tiny.Users = tiny.StandaloneUsers + 10
	if _, _, err := Org(tiny); err == nil {
		t.Error("exhausted user line accepted")
	}
}
