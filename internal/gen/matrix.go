// Package gen generates synthetic RBAC workloads.
//
// matrix.go reproduces the paper's §IV-A generator: a boolean matrix
// resembling a RUAM/RPAM with a configurable number of rows (roles) and
// columns (users/permissions), a proportion of rows that belong to
// planted clusters of identical rows, and a cap on cluster size. The
// evaluation fixes the proportion to 0.2 and the cap to 10.
//
// org.go builds a full organisation-scale rbac.Dataset with ground-truth
// counts for all five inefficiency classes, standing in for the paper's
// private real-world dataset (§IV-B).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
)

// MatrixParams parameterises the §IV-A generator.
type MatrixParams struct {
	// Rows is the number of roles (matrix rows).
	Rows int
	// Cols is the number of users or permissions (matrix columns).
	Cols int
	// ClusterProportion is the fraction of rows that belong to planted
	// clusters of identical rows. The paper fixes it to 0.2.
	ClusterProportion float64
	// MaxClusterSize caps the number of identical rows in one cluster
	// (minimum 2). The paper fixes it to 10.
	MaxClusterSize int
	// Density is the probability of a set bit in a base row; defaults
	// to 0.05, giving realistic sparse assignment rows.
	Density float64
	// SimilarNoise, when > 0, flips up to that many random bits in every
	// cluster member after copying the base row, turning exact clusters
	// into similar ones for class-5 experiments.
	SimilarNoise int
	// Seed drives the deterministic RNG; the zero value uses seed 1.
	Seed int64
}

func (p MatrixParams) withDefaults() MatrixParams {
	if p.Density == 0 {
		p.Density = 0.05
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Validate checks the parameters.
func (p MatrixParams) Validate() error {
	if p.Rows < 0 || p.Cols <= 0 {
		return fmt.Errorf("gen: invalid shape %dx%d", p.Rows, p.Cols)
	}
	if p.ClusterProportion < 0 || p.ClusterProportion > 1 {
		return fmt.Errorf("gen: cluster proportion %v outside [0,1]", p.ClusterProportion)
	}
	if p.ClusterProportion > 0 && p.MaxClusterSize < 2 {
		return fmt.Errorf("gen: max cluster size %d < 2", p.MaxClusterSize)
	}
	if p.Density < 0 || p.Density > 1 {
		return fmt.Errorf("gen: density %v outside [0,1]", p.Density)
	}
	if p.SimilarNoise < 0 {
		return fmt.Errorf("gen: negative similar noise %d", p.SimilarNoise)
	}
	return nil
}

// GeneratedMatrix is the generator output.
type GeneratedMatrix struct {
	// Rows are the generated role rows, shuffled so planted clusters are
	// scattered across the matrix.
	Rows []*bitvec.Vector
	// Planted lists the ground-truth clusters as ascending row indices
	// (after shuffling), ordered by smallest member. With SimilarNoise
	// == 0 these are exactly the groups every exact method must find.
	Planted [][]int
}

// Matrix generates a synthetic assignment matrix with planted clusters.
//
// Base rows are drawn at the configured density and re-drawn on hash
// collision, so with SimilarNoise == 0 the planted clusters are the
// *only* groups of identical rows — the detectors' output can be
// compared against Planted exactly.
func Matrix(p MatrixParams) (*GeneratedMatrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	clustered := int(p.ClusterProportion * float64(p.Rows))
	if clustered == 1 {
		clustered = 0 // a cluster needs at least two members
	}

	seen := make(map[string]struct{}, p.Rows)
	newDistinctRow := func() *bitvec.Vector {
		for {
			v := bitvec.New(p.Cols)
			for j := 0; j < p.Cols; j++ {
				if rng.Float64() < p.Density {
					v.Set(j)
				}
			}
			key := v.String()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				return v
			}
		}
	}

	rows := make([]*bitvec.Vector, 0, p.Rows)
	// clusterOf[i] is the planted cluster id of row i, or -1.
	clusterOf := make([]int, 0, p.Rows)

	// Plant clusters over the first `clustered` rows.
	clusterID := 0
	for remaining := clustered; remaining >= 2; {
		size := 2
		if p.MaxClusterSize > 2 {
			size += rng.Intn(p.MaxClusterSize - 1)
		}
		if size > remaining {
			size = remaining
		}
		base := newDistinctRow()
		for m := 0; m < size; m++ {
			member := base.Clone()
			if p.SimilarNoise > 0 && m > 0 {
				for f := rng.Intn(p.SimilarNoise + 1); f > 0; f-- {
					member.SetTo(rng.Intn(p.Cols), rng.Intn(2) == 1)
				}
				// Register the noisy variant too, so the background rows
				// drawn below can never accidentally duplicate a planted
				// member — without this, ground-truth recall measurements
				// would see phantom groups at SimilarNoise > 0.
				seen[member.String()] = struct{}{}
			}
			rows = append(rows, member)
			clusterOf = append(clusterOf, clusterID)
		}
		remaining -= size
		clusterID++
	}

	// Fill the rest with rows distinct from everything seen so far.
	for len(rows) < p.Rows {
		rows = append(rows, newDistinctRow())
		clusterOf = append(clusterOf, -1)
	}

	// Shuffle rows (and the cluster map with them).
	rng.Shuffle(len(rows), func(i, j int) {
		rows[i], rows[j] = rows[j], rows[i]
		clusterOf[i], clusterOf[j] = clusterOf[j], clusterOf[i]
	})

	planted := make([][]int, clusterID)
	for i, c := range clusterOf {
		if c >= 0 {
			planted[c] = append(planted[c], i)
		}
	}
	// Members are ascending because we appended in index order; order
	// groups by smallest member for the detectors' output contract.
	sortGroupsByHead(planted)

	return &GeneratedMatrix{Rows: rows, Planted: planted}, nil
}

func sortGroupsByHead(groups [][]int) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && len(groups[j]) > 0 && len(groups[j-1]) > 0 &&
			groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
