package gen_test

import (
	"fmt"

	"repro/internal/gen"
)

// ExampleMatrix generates the paper's synthetic workload and shows the
// planted ground truth.
func ExampleMatrix() {
	g, err := gen.Matrix(gen.MatrixParams{
		Rows:              100,
		Cols:              50,
		ClusterProportion: 0.2,
		MaxClusterSize:    10,
		Seed:              1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	inClusters := 0
	for _, grp := range g.Planted {
		inClusters += len(grp)
	}
	fmt.Println("rows:", len(g.Rows))
	fmt.Println("roles planted in clusters:", inClusters)
	// Output:
	// rows: 100
	// roles planted in clusters: 20
}

// ExampleOrg generates a miniature of the paper's organisation-scale
// dataset with known ground truth.
func ExampleOrg() {
	ds, gt, err := gen.Org(gen.DefaultOrgParams().Scaled(1000))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := ds.Stats()
	fmt.Println("roles:", s.Roles)
	fmt.Println("planted same-user groups:", gt.SameUserGroups)
	// Output:
	// roles: 50
	// planted same-user groups: 4
}
