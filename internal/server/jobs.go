package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/jobs"
)

// registerJobs wires the async job lifecycle endpoints. Called from
// NewHandler.
func (h *handler) registerJobs() {
	h.handle("POST /v1/jobs", h.jobSubmit)
	h.handle("GET /v1/jobs", h.jobList)
	h.handle("GET /v1/jobs/{id}", h.jobStatus)
	h.handle("GET /v1/jobs/{id}/result", h.jobResult)
	h.handle("DELETE /v1/jobs/{id}", h.jobCancel)
}

// jobList enumerates this node's live jobs (queued, running, and
// finished-but-unexpired), paginated, oldest first.
func (h *handler) jobList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.jobs.List(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next, Node: h.nodeID})
}

// jobSubmit enqueues an analyze/consolidate/suggest/optimize run. The body is
// the v1 envelope with a required "kind"; decoding, validation, and
// dispatch are the exact path the sync endpoints use, so the eventual
// result matches the corresponding sync response. Submission itself
// is cheap — the expensive work happens on the worker pool, under the
// manager's base context rather than this request's.
func (h *handler) jobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := h.decodeRequest(w, r)
	if !ok {
		return
	}
	switch req.kind {
	case kindAnalyze, kindConsolidate, kindSuggest, kindOptimize:
	case "":
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("job submission needs a kind (analyze, consolidate, suggest, or optimize)"))
		return
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown job kind %q (want analyze, consolidate, suggest, or optimize)", req.kind))
		return
	}
	kind := req.kind
	j, err := h.jobs.Submit(kind, func(ctx context.Context, progress func(string, float64)) (any, error) {
		// The cached path means a job whose (dataset, options, kind)
		// was already computed — by a sync request, another job, or a
		// concurrent in-flight run — finishes without touching the
		// engine, and its result stays byte-identical to the sync
		// endpoint's response.
		out, _, err := h.runKindLogged(ctx, "job", kind, req, progress)
		return out, err
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job queue full (%d queued), retry later", h.opts.JobQueueDepth))
		return
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("submit job: %w", err))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.Snapshot())
}

// lookupJob resolves {id}, answering 404 not_found for unknown or
// expired jobs.
func (h *handler) lookupJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := h.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found (unknown id, or result expired)", id))
		return nil, false
	}
	return j, true
}

// jobStatus reports the job snapshot: status, progress, timestamps.
func (h *handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := h.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, j.Snapshot())
}

// jobResult returns a finished job's payload — identical in shape to
// the corresponding synchronous endpoint's response. Unfinished jobs
// answer 409 conflict (keep polling the status resource); failed and
// canceled jobs answer with the same error mapping the sync path uses.
func (h *handler) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := h.lookupJob(w, r)
	if !ok {
		return
	}
	result, err, finished := j.Result()
	if !finished {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %q not finished (status %s); poll /v1/jobs/%s", j.ID(), j.Snapshot().Status, j.ID()))
		return
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if raw, ok := result.(rawResult); ok {
		writeRawJSON(w, raw)
		return
	}
	writeJSON(w, result)
}

// jobCancel aborts a queued or running job via its context. Cancelling
// a finished job is a 409 conflict; the snapshot in the response shows
// the state the job is now in.
func (h *handler) jobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := h.lookupJob(w, r)
	if !ok {
		return
	}
	switch err := h.jobs.Cancel(j.ID()); {
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %q already finished (%s)", j.ID(), j.Snapshot().Status))
		return
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", j.ID()))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, j.Snapshot())
}
