package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/jobs"
	"repro/internal/optimize"
)

// registerOptimize wires the role-set optimization endpoints. Called
// from NewHandler.
func (h *handler) registerOptimize() {
	h.handle("POST /v1/optimize", h.optimize)
	h.handle("GET /v1/optimize/{digest}/plan", h.optimizePlan)
}

// optimizeQueryKnobs extracts the planner knobs from query parameters —
// the surface GET /v1/optimize/{digest}/plan uses, and the back-compat
// form for POSTs without an "optimize" envelope member. Returns nil
// when no knob parameter is present, which planKnobs treats identically
// to an empty knob set, so the parameterless forms share a cache line.
func optimizeQueryKnobs(r *http.Request) (*optimize.Knobs, error) {
	q := r.URL.Query()
	var k optimize.Knobs
	set := false
	if v := q.Get("mine"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, fmt.Errorf("mine: %w", err)
		}
		k.Mine = b
		set = true
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"max_added_edges", &k.MaxAddedEdges},
		{"max_candidates", &k.MaxCandidates},
		{"max_rounds", &k.MaxRounds},
		{"mine_workers", &k.Workers},
	} {
		v := q.Get(p.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("%s %d < 0", p.name, n)
		}
		*p.dst = n
		set = true
	}
	if !set {
		return nil, nil
	}
	return &k, nil
}

// optimize runs the full remediation planner: eliminations, merges to
// convergence, the optional mining pass, and the reachability oracle.
// The body is a bare dataset or the v1 envelope (knobs in its
// "optimize" member); ?mode=async submits the run to the jobs pool and
// answers 202 with the job snapshot, same lifecycle as every other
// engine kind.
func (h *handler) optimize(w http.ResponseWriter, r *http.Request) {
	req, ok := h.decodeRequest(w, r)
	if !ok {
		return
	}
	if req.optKnobs == nil {
		knobs, err := optimizeQueryKnobs(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.optKnobs = knobs
	}
	if mode := r.URL.Query().Get("mode"); mode == "async" {
		j, err := h.jobs.Submit(kindOptimize, func(ctx context.Context, progress func(string, float64)) (any, error) {
			out, _, err := h.runKindLogged(ctx, "job", kindOptimize, req, progress)
			return out, err
		})
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("job queue full (%d queued), retry later", h.opts.JobQueueDepth))
			return
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("submit optimize job: %w", err))
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, j.Snapshot())
		return
	}
	out, hit, err := h.runKindLogged(r.Context(), "api", kindOptimize, req, nil)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if raw, ok := out.(rawResult); ok {
		w.Header().Set("X-Cache", cacheHeader(hit))
		writeRawJSON(w, raw)
		return
	}
	writeJSON(w, out)
}

// optimizePlan serves the paginated action view of a registered
// dataset's optimization plan. Knobs come from query parameters
// (mine, max_added_edges, max_candidates, max_rounds, mine_workers)
// plus the standard method/threshold/workers analysis parameters, so a
// GET with the same knobs as a prior POST is a cache hit on the same
// line — the plan is never recomputed to page through it. In a fleet,
// an unheld digest is fetched through from its holders first.
func (h *handler) optimizePlan(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	opts, _, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	knobs, err := optimizeQueryKnobs(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, digest, ok := h.resolveRef(w, r, r.PathValue("digest"))
	if !ok {
		return
	}
	req := &v1Request{dataset: ds, digest: digest, opts: opts, optKnobs: knobs}
	if req.opts.Workers == 0 {
		req.opts.Workers = h.opts.DefaultWorkers
	}
	out, hit, err := h.runKindLogged(r.Context(), "api", kindOptimize, req, nil)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	raw, ok := out.(rawResult)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("optimize result was not cacheable"))
		return
	}
	var res struct {
		Plan optimize.Plan `json:"plan"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("decode cached plan: %w", err))
		return
	}
	items, next := pageSlice(res.Plan.Actions, offset, size)
	w.Header().Set("X-Cache", cacheHeader(hit))
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}
