package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
)

// swapHTTP lets the cluster helper start listeners (fixing every
// node's URL) before the fleet-aware handlers that need those URLs
// exist.
type swapHTTP struct{ v atomic.Value }

func (s *swapHTTP) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(http.Handler).ServeHTTP(w, r)
}

// cluster is an in-process fleet of n nodes sharing one membership.
type cluster struct {
	urls   []string
	fleets []*fleet.Fleet
	srvs   []*httptest.Server
}

// newCluster boots n fleet nodes on real listeners. Probing is off so
// tests are deterministic; peer calls are tuned fast so failure paths
// finish in milliseconds.
func newCluster(t *testing.T, n int, mutate func(i int, o *fleet.Options)) *cluster {
	t.Helper()
	c := &cluster{}
	swaps := make([]*swapHTTP, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHTTP{}
		srv := httptest.NewUnstartedServer(swaps[i])
		t.Cleanup(srv.Close)
		c.srvs = append(c.srvs, srv)
		c.urls = append(c.urls, "http://"+srv.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		opts := fleet.Options{
			Self:           c.urls[i],
			Peers:          c.urls,
			Replicas:       1,
			AttemptTimeout: 500 * time.Millisecond,
			MaxAttempts:    2,
			BaseDelay:      time.Millisecond,
			MaxDelay:       5 * time.Millisecond,
			ProbeInterval:  -1,
			Logf:           t.Logf,
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		fl, err := fleet.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fl.Close)
		c.fleets = append(c.fleets, fl)
		swaps[i].v.Store(NewHandler(Options{
			Fleet:      fl,
			NodeID:     fmt.Sprintf("node%d", i),
			RetryAfter: time.Second,
			Logf:       t.Logf,
		}))
		c.srvs[i].Start()
	}
	return c
}

// nodeFor maps a peer URL back to its index.
func (c *cluster) nodeFor(t *testing.T, peer string) int {
	t.Helper()
	for i, u := range c.urls {
		if u == peer {
			return i
		}
	}
	t.Fatalf("unknown peer %s in %v", peer, c.urls)
	return -1
}

type putResult struct {
	Digest   string `json:"digest"`
	Created  bool   `json:"created"`
	Owner    string `json:"owner"`
	Degraded bool   `json:"degraded"`
}

// upload posts the Figure 1 dataset to node i and decodes the ack.
func (c *cluster) upload(t *testing.T, i int) putResult {
	t.Helper()
	resp, err := http.Post(c.srvs[i].URL+"/v1/datasets", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload to node %d: %d %s", i, resp.StatusCode, body)
	}
	var pr putResult
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("upload ack: %v (%s)", err, body)
	}
	return pr
}

// rawStatus asks node i's strictly-local raw endpoint about a digest.
func (c *cluster) rawStatus(t *testing.T, i int, digest string) int {
	t.Helper()
	resp, err := http.Get(c.srvs[i].URL + "/v1/datasets/" + digest + "/raw")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// waitHeld polls until node i holds the digest locally (replication is
// asynchronous).
func (c *cluster) waitHeld(t *testing.T, i int, digest string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.rawStatus(t, i, digest) == http.StatusOK {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %d never received replica of %s", i, digest)
}

// analyzeRef runs /v1/analyze with a dataset_ref against node i.
func (c *cluster) analyzeRef(t *testing.T, i int, digest, query string) (*http.Response, []byte) {
	t.Helper()
	body := fmt.Sprintf(`{"dataset_ref":%q}`, digest)
	resp, err := http.Post(c.srvs[i].URL+"/v1/analyze"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

// TestFleetUploadRoutesToOwner pins the write path: any node accepts
// the upload, the rendezvous owner ends up holding it, exactly
// owner+replica hold it after async replication, and the relay
// preserves the single-node response contract (201 then 200).
func TestFleetUploadRoutesToOwner(t *testing.T) {
	c := newCluster(t, 3, nil)
	pr := c.upload(t, 0)
	if pr.Digest == "" || pr.Owner == "" || !pr.Created || pr.Degraded {
		t.Fatalf("upload ack = %+v", pr)
	}
	if pr.Owner != c.fleets[0].Owner(pr.Digest) {
		t.Fatalf("ack owner %s, rendezvous owner %s", pr.Owner, c.fleets[0].Owner(pr.Digest))
	}

	holders := c.fleets[0].Holders(pr.Digest)
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want owner+1 replica", holders)
	}
	for _, peer := range holders {
		c.waitHeld(t, c.nodeFor(t, peer), pr.Digest)
	}
	held := map[string]bool{}
	for _, p := range holders {
		held[p] = true
	}
	for i, u := range c.urls {
		if !held[u] && c.rawStatus(t, i, pr.Digest) != http.StatusNotFound {
			t.Fatalf("non-holder node %d holds %s; placement leaked", i, pr.Digest)
		}
	}

	// Idempotent re-upload through a different node: 200, not 201.
	pr2 := c.upload(t, 1)
	if pr2.Digest != pr.Digest || pr2.Created {
		t.Fatalf("re-upload ack = %+v, want created=false same digest", pr2)
	}

	// The raw endpoint's bytes hash to the digest — the transfer
	// integrity contract peers rely on.
	resp, err := http.Get(c.srvs[c.nodeFor(t, pr.Owner)].URL + "/v1/datasets/" + pr.Digest + "/raw")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sum := sha256.Sum256(raw)
	if hex.EncodeToString(sum[:]) != pr.Digest {
		t.Fatal("raw endpoint bytes do not hash to the digest")
	}
}

// TestFleetAnalyzeByRefFetchesThrough pins the read path: a node that
// does not hold the referenced dataset fetches it from a holder and
// answers byte-identically to a node that had it locally.
func TestFleetAnalyzeByRefFetchesThrough(t *testing.T) {
	c := newCluster(t, 3, nil)
	pr := c.upload(t, 0)
	ownerIdx := c.nodeFor(t, pr.Owner)
	c.waitHeld(t, ownerIdx, pr.Digest)

	held := map[string]bool{}
	for _, p := range c.fleets[0].Holders(pr.Digest) {
		held[p] = true
	}
	outsider := -1
	for i, u := range c.urls {
		if !held[u] {
			outsider = i
		}
	}
	if outsider < 0 {
		t.Fatal("no outsider node")
	}

	respO, bodyO := c.analyzeRef(t, ownerIdx, pr.Digest, "")
	respX, bodyX := c.analyzeRef(t, outsider, pr.Digest, "")
	if respO.StatusCode != http.StatusOK || respX.StatusCode != http.StatusOK {
		t.Fatalf("analyze status owner=%d outsider=%d (%s)", respO.StatusCode, respX.StatusCode, bodyX)
	}
	// Wall-clock measurements are the one legitimately nondeterministic
	// part of a report; everything else must match byte for byte.
	durations := regexp.MustCompile(`"[a-zA-Z]*DurationNanos":[0-9]+`)
	bodyO = durations.ReplaceAll(bodyO, nil)
	bodyX = durations.ReplaceAll(bodyX, nil)
	if !bytes.Equal(bodyO, bodyX) {
		t.Fatalf("fleet-routed analyze differs from local:\n%s\nvs\n%s", bodyX, bodyO)
	}
	// Fetch-through cached the dataset: the outsider now holds it.
	if c.rawStatus(t, outsider, pr.Digest) != http.StatusOK {
		t.Fatal("fetch-through did not cache the dataset locally")
	}
}

// TestFleetDegradationAndPeerUnavailable kills every other holder and
// pins explicit degradation: the survivor answers 503 with Retry-After
// and the peer_unavailable code in bounded time, and its fleet stats
// expose the open breaker plus the skipped peer instead of hanging or
// lying.
func TestFleetDegradationAndPeerUnavailable(t *testing.T) {
	c := newCluster(t, 2, func(i int, o *fleet.Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour
	})
	pr := c.upload(t, 0)
	// Two nodes, one replica: both hold it.
	c.waitHeld(t, 0, pr.Digest)
	c.waitHeld(t, 1, pr.Digest)

	dead := c.nodeFor(t, pr.Owner)
	survivor := 1 - dead
	c.srvs[dead].Close()

	// The survivor holds a replica: reads keep working with the owner
	// gone — graceful degradation, not failure.
	if resp, body := c.analyzeRef(t, survivor, pr.Digest, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica-served analyze = %d (%s)", resp.StatusCode, body)
	}

	// Drop the survivor's local copy; now the data lives only on the
	// dead node and the contract is a fast, structured 503.
	req, _ := http.NewRequest(http.MethodDelete, c.srvs[survivor].URL+"/v1/datasets/"+pr.Digest, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("local delete failed: %v", err)
	}

	start := time.Now()
	resp, body := c.analyzeRef(t, survivor, pr.Digest, "")
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("peer-unavailable answer took %v; degradation must be bounded", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("analyze with dead holder = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var envelope struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Code != CodePeerUnavailable {
		t.Fatalf("error envelope = %s, want code %q", body, CodePeerUnavailable)
	}

	// Fleet stats from the survivor: dead peer skipped, breaker open.
	sresp, err := http.Get(c.srvs[survivor].URL + "/v1/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var stats struct {
		Enabled bool `json:"enabled"`
		Fleet   struct {
			Peers []struct {
				URL     string `json:"url"`
				Breaker struct {
					State string `json:"state"`
				} `json:"breaker"`
			} `json:"peers"`
		} `json:"fleet"`
		Nodes   []json.RawMessage `json:"nodes"`
		Skipped []struct {
			Peer string `json:"peer"`
		} `json:"skipped"`
	}
	if err := json.Unmarshal(sbody, &stats); err != nil {
		t.Fatalf("fleet stats: %v (%s)", err, sbody)
	}
	if !stats.Enabled || len(stats.Skipped) != 1 || stats.Skipped[0].Peer != c.urls[dead] {
		t.Fatalf("fleet stats did not report the dead peer as skipped: %s", sbody)
	}
	if len(stats.Fleet.Peers) != 1 || stats.Fleet.Peers[0].Breaker.State != "open" {
		t.Fatalf("dead peer's breaker not open in stats: %s", sbody)
	}
}

// TestFleetStatsSingleNode pins the disabled shape: no -peers means
// enabled=false with the local slice, empty nodes, empty skipped.
func TestFleetStatsSingleNode(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Enabled bool `json:"enabled"`
		Self    struct {
			Node  string `json:"node"`
			State string `json:"state"`
		} `json:"self"`
		Nodes   []json.RawMessage `json:"nodes"`
		Skipped []json.RawMessage `json:"skipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled || out.Self.Node == "" || out.Self.State != "ready" {
		t.Fatalf("single-node fleet stats = %+v", out)
	}
	if out.Nodes == nil || out.Skipped == nil || len(out.Nodes) != 0 || len(out.Skipped) != 0 {
		t.Fatalf("nodes/skipped must be present and empty, got %+v", out)
	}
}

// TestHealthzDraining pins the draining surface: readiness false flips
// the JSON state while the bare-200 liveness contract holds.
func TestHealthzDraining(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{
		NodeID:    "drainer",
		Readiness: func() bool { return false },
	}))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (alive)", resp.StatusCode)
	}
	var h fleet.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Ready || h.State != fleet.StateDraining || h.Node != "drainer" {
		t.Fatalf("draining health = %+v", h)
	}
}
