package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/consolidate"
	"repro/internal/optimize"
	"repro/internal/rbac"
)

// postOptimize runs one POST /v1/optimize and decodes the result.
func postOptimize(t *testing.T, srv *httptest.Server, path string, body []byte) (*http.Response, []byte, *optimize.Result) {
	t.Helper()
	resp, raw := postJSON(t, srv, path, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d (%s)", resp.StatusCode, raw)
	}
	var res optimize.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode optimize result: %v", err)
	}
	return resp, raw, &res
}

// TestOptimizeSyncE2E pins the synchronous surface: a bare Figure 1
// body yields a non-empty plan whose optimized dataset preserves the
// input's reachability, and an identical re-POST is a byte-identical
// cache hit.
func TestOptimizeSyncE2E(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()

	resp, raw, res := postOptimize(t, srv, "/v1/optimize", fig1)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first optimize X-Cache = %q, want miss", got)
	}
	if len(res.Plan.Actions) == 0 {
		t.Fatal("Figure 1 has known inefficiencies but the plan is empty")
	}
	if res.After.Roles >= res.Before.Roles {
		t.Fatalf("roles %d -> %d, want a reduction", res.Before.Roles, res.After.Roles)
	}
	if err := consolidate.VerifySafety(rbac.Figure1(), res.Optimized); err != nil {
		t.Fatalf("served plan broke reachability: %v", err)
	}

	resp2, raw2, _ := postOptimize(t, srv, "/v1/optimize", fig1)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat optimize X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("cached optimize response is not byte-identical")
	}
}

// TestOptimizeKnobCacheLines pins the fingerprint contract: the same
// dataset with different planner knobs occupies different cache lines,
// while the envelope and query-parameter spellings of the same knobs
// share one.
func TestOptimizeKnobCacheLines(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()

	_, plain, _ := postOptimize(t, srv, "/v1/optimize", fig1)

	env := append([]byte(`{"optimize":{"mine":true},"dataset":`), fig1...)
	env = append(env, '}')
	respMine, mined, _ := postOptimize(t, srv, "/v1/optimize", env)
	if got := respMine.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("mine:true after plain run X-Cache = %q, want miss (own cache line)", got)
	}

	// The query-parameter spelling lands on the envelope's line.
	respQ, minedQ, _ := postOptimize(t, srv, "/v1/optimize?mine=true", fig1)
	if got := respQ.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("?mine=true X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(mined, minedQ) {
		t.Fatal("query-knob response differs from envelope-knob response")
	}
	_ = plain
}

// TestOptimizePlanPagination uploads a dataset, then pages through the
// plan action view one action at a time, reassembling exactly the plan
// the POST surface returned.
func TestOptimizePlanPagination(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	digest := uploadDataset(t, srv, fig1, http.StatusCreated)

	_, _, res := postOptimize(t, srv, "/v1/optimize", []byte(fmt.Sprintf(`{"dataset_ref":%q}`, digest)))
	want, err := json.Marshal(res.Plan.Actions)
	if err != nil {
		t.Fatal(err)
	}

	var got []json.RawMessage
	token := ""
	pages := 0
	for {
		url := srv.URL + "/v1/optimize/" + digest + "/plan?page_size=1"
		if token != "" {
			url += "&page_token=" + token
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan page status = %d (%s)", resp.StatusCode, body)
		}
		if hdr := resp.Header.Get("X-Cache"); hdr != "hit" {
			t.Fatalf("plan page X-Cache = %q, want hit (plan already computed)", hdr)
		}
		var page struct {
			Items         []json.RawMessage `json:"items"`
			NextPageToken string            `json:"next_page_token"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Items) > 1 {
			t.Fatalf("page_size=1 returned %d items", len(page.Items))
		}
		got = append(got, page.Items...)
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if pages < 2 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
	reassembled, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []map[string]any
	if err := json.Unmarshal(want, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(reassembled, &b); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("paged view has %d actions, plan has %d", len(b), len(a))
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("paged actions differ from the plan:\n%s\nvs\n%s", bj, aj)
	}
}

// TestOptimizeAsync walks the job lifecycle: ?mode=async answers 202
// with a Location, and the finished job's result is byte-identical to
// the synchronous response.
func TestOptimizeAsync(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()

	_, syncBody, _ := postOptimize(t, srv, "/v1/optimize", fig1)

	resp, body := postJSON(t, srv, "/v1/optimize?mode=async", fig1, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d (%s)", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("async submit has no Location header")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + loc + "/result")
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			if !bytes.Equal(out, syncBody) {
				t.Fatalf("job result differs from sync response:\n%s\nvs\n%s", out, syncBody)
			}
			return
		}
		if r.StatusCode != http.StatusConflict {
			t.Fatalf("job result status = %d (%s)", r.StatusCode, out)
		}
		if time.Now().After(deadline) {
			t.Fatal("optimize job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOptimizeJobKind submits kind "optimize" through the generic
// /v1/jobs surface.
func TestOptimizeJobKind(t *testing.T) {
	srv := newJobsServer(t, Options{})
	body := envelope(t, "optimize", figure1Body(t).Bytes(), "", nil)
	snap := submitJob(t, srv, body)
	if snap.Kind != "optimize" {
		t.Fatalf("job kind = %q, want optimize", snap.Kind)
	}
}

// TestFleetOptimizePlanFetchesThrough pins the fleet read path for the
// plan view: a node that does not hold the referenced dataset fetches
// it from a holder, computes (or pulls) the plan, and ends up holding
// the dataset locally.
func TestFleetOptimizePlanFetchesThrough(t *testing.T) {
	c := newCluster(t, 3, nil)
	pr := c.upload(t, 0)
	ownerIdx := c.nodeFor(t, pr.Owner)
	c.waitHeld(t, ownerIdx, pr.Digest)

	held := map[string]bool{}
	for _, p := range c.fleets[0].Holders(pr.Digest) {
		held[p] = true
	}
	outsider := -1
	for i, u := range c.urls {
		if !held[u] {
			outsider = i
		}
	}
	if outsider < 0 {
		t.Fatal("no outsider node")
	}

	resp, err := http.Get(c.srvs[outsider].URL + "/v1/optimize/" + pr.Digest + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outsider plan status = %d (%s)", resp.StatusCode, body)
	}
	var page struct {
		Items []optimize.Action `json:"items"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) == 0 {
		t.Fatal("fleet-routed plan view is empty for Figure 1")
	}
	if c.rawStatus(t, outsider, pr.Digest) != http.StatusOK {
		t.Fatal("fetch-through did not cache the dataset locally")
	}
}

// TestOptimizeBadKnobs rejects malformed knob query parameters with
// 400 before any engine work.
func TestOptimizeBadKnobs(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	for _, q := range []string{"?mine=maybe", "?max_rounds=-1", "?max_candidates=x"} {
		resp, body := postJSON(t, srv, "/v1/optimize"+q, fig1, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d (%s), want 400", q, resp.StatusCode, body)
		}
	}
}
