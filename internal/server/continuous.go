package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/store"
)

// The continuous-audit resource surface: schedules fire recurring
// analyses of registered snapshots on the shared jobs pool, alert
// rules trip on findings spikes / duplicate-group drift / recall
// regressions, webhook sinks receive tripped alerts through the
// hardened fleet client patterns, and the decision log records every
// engine decision append-only. The subsystem itself lives in
// internal/continuous; this file lends it the engine through Backend
// callbacks (so scheduled runs share the server's result cache) and
// exposes the four resource kinds under the v1 contract.

// initContinuous opens the decision log, builds the continuous-audit
// manager around the handler's engine surface, and registers the
// subsystem's metrics. Called from NewHandler after the store, jobs
// pool, and session manager exist but before routes are registered.
func (h *handler) initContinuous() {
	decisions := h.metrics.Counter("rolediet_decisions_total",
		"Decisions appended to the decision log.")
	decisionDrops := h.metrics.Counter("rolediet_decision_drops_total",
		"Decisions dropped because the decision log's flush buffer saturated.")
	l, err := continuous.OpenLog(continuous.LogOptions{
		Path:          h.opts.DecisionLogPath,
		BufferSize:    h.opts.DecisionBuffer,
		FlushInterval: h.opts.DecisionFlushInterval,
		OnAppend:      decisions.With().Inc,
		OnDrop:        decisionDrops.With().Inc,
		Logf:          h.opts.Logf,
	})
	if err != nil {
		// A broken log path must not take the daemon down with it; the
		// service runs, decisions just are not recorded.
		h.opts.Logf("continuous: decision log disabled: %v", err)
	} else {
		h.declog = l
	}

	fires := h.metrics.Counter("rolediet_schedule_fires_total",
		"Continuous-audit schedule fires.")
	trips := h.metrics.Counter("rolediet_alert_trips_total",
		"Alert rule trips, by rule type.", "type")
	deliveries := h.metrics.Counter("rolediet_sink_deliveries_total",
		"Webhook sink delivery outcomes (after retries), by outcome.", "outcome")

	m, err := continuous.NewManager(continuous.Config{
		Backend: continuous.Backend{
			Resolve:       h.backendResolve,
			SessionExists: h.backendSessionExists,
			Snapshot:      h.backendSnapshot,
			Analyze:       h.backendAnalyze,
			Drift:         h.backendDrift,
		},
		Jobs: h.jobs,
		Log:  h.declog,
		Sink: continuous.SinkConfig{
			Attempts:         h.opts.SinkAttempts,
			Timeout:          h.opts.SinkTimeout,
			BreakerThreshold: h.opts.SinkBreakerThreshold,
			BreakerCooldown:  h.opts.SinkBreakerCooldown,
			Transport:        h.opts.SinkTransport,
		},
		MinInterval: h.opts.ScheduleMinInterval,
		Hooks: continuous.Hooks{
			ScheduleFire: fires.With().Inc,
			AlertTrip:    func(ruleType string) { trips.With(ruleType).Inc() },
			SinkDelivery: func(ok bool) {
				outcome := "ok"
				if !ok {
					outcome = "failed"
				}
				deliveries.With(outcome).Inc()
			},
		},
		Logf:        h.opts.Logf,
		BaseContext: h.opts.BaseContext,
	})
	if err != nil {
		// Unreachable with a complete backend; degrade loudly, not fatally.
		h.opts.Logf("continuous: subsystem disabled: %v", err)
		return
	}
	h.cont = m
	h.metrics.GaugeFunc("rolediet_schedules",
		"Continuous-audit schedules registered.",
		func() float64 { return float64(h.cont.Stats().Schedules) })
	h.metrics.GaugeFunc("rolediet_alert_rules",
		"Alert rules registered.",
		func() float64 { return float64(h.cont.Stats().Rules) })
	h.metrics.GaugeFunc("rolediet_sinks",
		"Webhook sinks registered.",
		func() float64 { return float64(h.cont.Stats().Sinks) })
}

// registerContinuous wires the continuous-audit resources. Called from
// NewHandler.
func (h *handler) registerContinuous() {
	h.handle("POST /v1/schedules", h.scheduleCreate)
	h.handle("GET /v1/schedules", h.scheduleList)
	h.handle("GET /v1/schedules/{id}", h.scheduleGet)
	h.handle("DELETE /v1/schedules/{id}", h.scheduleDelete)
	h.handle("POST /v1/alerts", h.alertCreate)
	h.handle("GET /v1/alerts", h.alertList)
	h.handle("GET /v1/alerts/{id}", h.alertGet)
	h.handle("DELETE /v1/alerts/{id}", h.alertDelete)
	h.handle("POST /v1/sinks", h.sinkCreate)
	h.handle("GET /v1/sinks", h.sinkList)
	h.handle("GET /v1/sinks/{id}", h.sinkGet)
	h.handle("DELETE /v1/sinks/{id}", h.sinkDelete)
	h.handle("GET /v1/decisions", h.decisionList)
}

// Backend callbacks — the engine surface the subsystem borrows. They
// run on scheduler goroutines and job workers, never on a request, so
// none of them may touch an http.ResponseWriter.

// backendResolve normalises a dataset_ref to its bare digest and
// ensures the snapshot is held locally (fleet fetch-through applies).
func (h *handler) backendResolve(ctx context.Context, ref string) (string, error) {
	digest, err := store.ParseDigest(ref)
	if err != nil {
		return "", err
	}
	if _, _, ok := h.store.GetDataset(digest); ok {
		return digest, nil
	}
	if h.fleet.Enabled() {
		raw, peer, ferr := h.fleet.FetchDataset(ctx, digest)
		if ferr != nil {
			return "", fmt.Errorf("dataset %s: %w", digest, ferr)
		}
		if _, perr := h.store.PutCanonical(digest, raw); perr != nil {
			h.opts.Logf("fleet: dataset %s fetched from %s not cached locally: %v", digest, peer, perr)
		}
		return digest, nil
	}
	return "", fmt.Errorf("dataset %s not found (never registered, deleted, or evicted)", digest)
}

// backendSessionExists reports whether a mutation session id is live.
func (h *handler) backendSessionExists(id string) bool {
	_, err := h.sessions.Get(id)
	return err == nil
}

// backendSnapshot registers the current dataset of a live session
// content-addressed and returns the digest. The session hands out a
// clone, and PutCanonical re-parses the canonical bytes, so later
// session mutations cannot reach the stored snapshot.
func (h *handler) backendSnapshot(_ context.Context, sessionID string) (string, error) {
	s, err := h.sessions.Get(sessionID)
	if err != nil {
		return "", err
	}
	digest, canonical, err := store.DigestOf(s.Dataset())
	if err != nil {
		return "", err
	}
	if _, err := h.store.PutCanonical(digest, canonical); err != nil {
		return "", err
	}
	return digest, nil
}

// backendAnalyze runs (or serves from cache) a full analysis of a
// registered digest — the exact runKindCached path the HTTP endpoints
// use, so a scheduled fire of an unchanged digest is a cache hit and
// its response bytes match what a client would have received. The
// continuous manager logs the decision itself (with tripped-alert
// ids), so this goes through the unlogged path.
func (h *handler) backendAnalyze(ctx context.Context, digest string, opts core.Options) (*core.Report, continuous.Meta, error) {
	ds, _, ok := h.store.GetDataset(digest)
	if !ok {
		return nil, continuous.Meta{}, fmt.Errorf("dataset %s not found", digest)
	}
	req := &v1Request{dataset: ds, digest: digest, opts: opts}
	if req.opts.Workers == 0 {
		req.opts.Workers = h.opts.DefaultWorkers
	}
	out, hit, err := h.runKindCached(ctx, kindAnalyze, req, nil)
	if err != nil {
		return nil, continuous.Meta{}, err
	}
	raw, ok := out.(rawResult)
	if !ok {
		return nil, continuous.Meta{}, fmt.Errorf("analyze returned an uncacheable result")
	}
	var rep core.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, continuous.Meta{}, fmt.Errorf("decode cached report: %w", err)
	}
	return &rep, continuous.Meta{Fingerprint: req.fp, CacheHit: hit}, nil
}

// backendDrift computes the O(delta) drift report between two
// registered digests through the same cache line POST /v1/drift uses.
func (h *handler) backendDrift(ctx context.Context, before, after string) (*session.DriftReport, continuous.Meta, error) {
	beforeDS, _, ok := h.store.GetDataset(before)
	if !ok {
		return nil, continuous.Meta{}, fmt.Errorf("dataset %s not found", before)
	}
	afterDS, _, ok := h.store.GetDataset(after)
	if !ok {
		return nil, continuous.Meta{}, fmt.Errorf("dataset %s not found", after)
	}
	raw, hit, fp, err := h.driftCached(ctx, before, after, beforeDS, afterDS)
	if err != nil {
		return nil, continuous.Meta{}, err
	}
	var rep session.DriftReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, continuous.Meta{}, fmt.Errorf("decode cached drift report: %w", err)
	}
	return &rep, continuous.Meta{Fingerprint: fp, CacheHit: hit}, nil
}

// writeContinuousError maps the subsystem's sentinel errors onto the
// v1 error contract.
func writeContinuousError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, continuous.ErrInvalid):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, continuous.ErrUnknownReference):
		writeErrorCode(w, http.StatusUnprocessableEntity, CodeUnknownReference, err)
	case errors.Is(err, continuous.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// decodeInto reads and unmarshals a small JSON resource body.
func (h *handler) decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := h.readBody(w, r)
	if !ok {
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return false
	}
	return true
}

// created writes the standard 201 for a new resource: Location header
// plus the resource body.
func created(w http.ResponseWriter, location string, v any) {
	w.Header().Set("Location", location)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, v)
}

// scheduleCreate registers a recurring audit:
// {"dataset_ref": "<digest>", "interval": "30s", ...}.
func (h *handler) scheduleCreate(w http.ResponseWriter, r *http.Request) {
	var s continuous.Schedule
	if !h.decodeInto(w, r, &s) {
		return
	}
	out, err := h.cont.CreateSchedule(r.Context(), s)
	if err != nil {
		writeContinuousError(w, err)
		return
	}
	created(w, "/v1/schedules/"+out.ID, out)
}

func (h *handler) scheduleList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.cont.ListSchedules(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}

func (h *handler) scheduleGet(w http.ResponseWriter, r *http.Request) {
	s, ok := h.cont.GetSchedule(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("schedule %q not found", r.PathValue("id")))
		return
	}
	writeJSON(w, s)
}

// scheduleDelete is idempotent: deleting an unknown id is the same
// 204 as deleting a live one — the state the client asked for holds
// either way.
func (h *handler) scheduleDelete(w http.ResponseWriter, r *http.Request) {
	h.cont.DeleteSchedule(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// alertCreate registers an alert rule:
// {"type": "spike"|"drift"|"recall", "threshold": N, ...}.
func (h *handler) alertCreate(w http.ResponseWriter, r *http.Request) {
	var rule continuous.Rule
	if !h.decodeInto(w, r, &rule) {
		return
	}
	out, err := h.cont.CreateRule(rule)
	if err != nil {
		writeContinuousError(w, err)
		return
	}
	created(w, "/v1/alerts/"+out.ID, out)
}

func (h *handler) alertList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.cont.ListRules(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}

func (h *handler) alertGet(w http.ResponseWriter, r *http.Request) {
	rule, ok := h.cont.GetRule(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("alert rule %q not found", r.PathValue("id")))
		return
	}
	writeJSON(w, rule)
}

func (h *handler) alertDelete(w http.ResponseWriter, r *http.Request) {
	h.cont.DeleteRule(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// sinkCreate registers a webhook sink: {"url": "https://...", "name": "..."}.
func (h *handler) sinkCreate(w http.ResponseWriter, r *http.Request) {
	var s continuous.Sink
	if !h.decodeInto(w, r, &s) {
		return
	}
	out, err := h.cont.CreateSink(s)
	if err != nil {
		writeContinuousError(w, err)
		return
	}
	created(w, "/v1/sinks/"+out.ID, out)
}

func (h *handler) sinkList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.cont.ListSinks(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}

func (h *handler) sinkGet(w http.ResponseWriter, r *http.Request) {
	s, ok := h.cont.GetSink(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("sink %q not found", r.PathValue("id")))
		return
	}
	writeJSON(w, s)
}

func (h *handler) sinkDelete(w http.ResponseWriter, r *http.Request) {
	h.cont.DeleteSink(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// decisionList pages through the decision log's in-memory window
// oldest-first. The page token is the last seen sequence number, so a
// poller can tail the log: pass the previous response's
// next_page_token (or the seq of the last decision it processed) and
// receive only what happened since.
func (h *handler) decisionList(w http.ResponseWriter, r *http.Request) {
	afterSeq, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	if h.declog == nil {
		writeJSON(w, listPage{Items: []continuous.Decision{}})
		return
	}
	items := h.declog.List(afterSeq, size)
	if items == nil {
		items = []continuous.Decision{}
	}
	next := ""
	if len(items) == size {
		next = strconv.FormatInt(items[len(items)-1].Seq, 10)
	}
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}
