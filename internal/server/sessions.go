package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/continuous"
	"repro/internal/jobs"
	"repro/internal/rbac"
	"repro/internal/replay"
	"repro/internal/session"
	"repro/internal/store"
)

// Mutation sessions and the drift endpoint: the O(delta) audit
// surface. A session pins a base dataset and keeps the duplicate-role
// indices live as replay events stream in; audits read off the index
// instead of re-running the engine. /v1/drift is the one-shot form —
// reconcile two registered snapshots and replay the delta through a
// throwaway session.

// registerSessions wires the mutation-session lifecycle and the drift
// endpoint. Called from NewHandler.
func (h *handler) registerSessions() {
	h.handle("POST /v1/sessions", h.sessionCreate)
	h.handle("GET /v1/sessions", h.sessionList)
	h.handle("GET /v1/sessions/{id}", h.sessionGet)
	h.handle("DELETE /v1/sessions/{id}", h.sessionDelete)
	h.handle("POST /v1/sessions/{id}/events", h.sessionEvents)
	h.handle("GET /v1/sessions/{id}/audit", h.sessionAudit)
	h.handle("POST /v1/drift", h.drift)
}

// sessionCreateRequest opens a session over a registered dataset.
type sessionCreateRequest struct {
	BaseRef string `json:"base_ref"`
}

// sessionCreateResponse is the create payload: the session Info plus
// the node holding it. Sessions are node-local state — later event and
// audit requests must reach the same node, which Node names. In a
// fleet, creation forwards to the base digest's owner so the session
// lands next to its data; Degraded marks the owner being unreachable
// and the session opening locally instead.
type sessionCreateResponse struct {
	session.Info
	Node     string `json:"node"`
	Owner    string `json:"owner,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
}

// sessionCreate opens a live mutation session from {"base_ref":
// "<digest>"}. The base must be registered (fleet fetch-through
// applies); the session starts as a clone of it with both incremental
// indices built. In a fleet, a non-owner node forwards creation to the
// digest's owner and relays its answer, so the session lives where the
// dataset does; if the owner is unreachable the session opens locally
// with degraded:true.
func (h *handler) sessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	var req sessionCreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.BaseRef == "" {
		writeError(w, http.StatusBadRequest, errors.New(`session needs {"base_ref": "<digest>"}`))
		return
	}
	digest, err := store.ParseDigest(req.BaseRef)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	owner, degraded := "", false
	if h.fleet.Enabled() && r.Header.Get(fleetHeader) == "" {
		owner = h.fleet.Owner(digest)
		if owner != h.fleet.Self() {
			hdr := http.Header{fleetHeader: []string{"forward"}, "Content-Type": []string{"application/json"}}
			resp, ferr := h.fleet.Do(r.Context(), http.MethodPost, owner, "/v1/sessions", body, hdr)
			if ferr == nil {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Fleet-Routed", owner)
				w.WriteHeader(resp.Status)
				_, _ = w.Write(resp.Body)
				return
			}
			h.opts.Logf("fleet: session over %s: owner %s unreachable, opening locally: %v",
				digest, owner, ferr)
			degraded = true
		}
	}

	ds, digest, ok := h.resolveRef(w, r, digest)
	if !ok {
		return
	}
	s, err := h.sessions.Create(digest, ds)
	if err != nil {
		if errors.Is(err, session.ErrTooManySessions) {
			w.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+s.ID())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, sessionCreateResponse{
		Info:     s.Info(),
		Node:     h.nodeID,
		Owner:    owner,
		Degraded: degraded,
	})
}

// lookupSession resolves {id}, answering 404 for unknown or
// idle-expired sessions.
func (h *handler) lookupSession(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	id := r.PathValue("id")
	s, err := h.sessions.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("session %q not found (unknown id, expired, or held by another node)", id))
		return nil, false
	}
	return s, true
}

// sessionList enumerates this node's live sessions, paginated.
func (h *handler) sessionList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.sessions.List(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next, Node: h.nodeID})
}

// sessionGet reports one session's snapshot.
func (h *handler) sessionGet(w http.ResponseWriter, r *http.Request) {
	s, ok := h.lookupSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, s.Info())
}

// sessionDelete closes a session and removes its persisted event log.
func (h *handler) sessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !h.sessions.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("session %q not found", id))
		return
	}
	if err := h.store.RemoveSessionLog(id); err != nil {
		h.opts.Logf("session %s: remove log: %v", id, err)
	}
	writeJSON(w, map[string]string{"closed": id})
}

// sessionEventsResponse acknowledges an applied batch.
type sessionEventsResponse struct {
	ID      string     `json:"id"`
	Applied int        `json:"applied"`
	Events  int        `json:"events"` // lifetime total
	Stats   rbac.Stats `json:"stats"`
}

// sessionEvents applies a JSONL replay.Event batch to the session. The
// body streams straight into the bounded log reader — an overlong line
// or too many events is 400 payload_too_large before anything applies.
// Events apply in order; the first invalid one stops the batch with
// 422 and reports how many of its predecessors applied (the session
// keeps that prefix — mutation streams are not transactional, they are
// logs). The applied prefix is appended to the session's persisted log
// when the store has a directory.
func (h *handler) sessionEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := h.lookupSession(w, r)
	if !ok {
		return
	}
	body, closeBody, ok := h.bodyStream(w, r, h.opts.MaxBodyBytes)
	if !ok {
		return
	}
	defer closeBody()
	events, err := replay.ReadLogLimited(body, replay.Limits{MaxEvents: h.opts.MaxLogEvents})
	if err != nil {
		var le *limitError
		if errors.Is(err, replay.ErrLogTooLarge) || errors.As(err, &le) {
			writeErrorCode(w, http.StatusBadRequest, CodePayloadTooLarge,
				fmt.Errorf("event log: %w", err))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("event log: %w", err))
		return
	}

	applied, aerr := s.Apply(events)
	if applied > 0 {
		var buf bytes.Buffer
		if werr := replay.WriteLog(&buf, events[:applied]); werr == nil {
			if perr := h.store.AppendSessionLog(s.ID(), buf.Bytes()); perr != nil {
				h.opts.Logf("session %s: append log: %v", s.ID(), perr)
			}
		}
	}
	if aerr != nil {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("applied %d of %d events, then: %w", applied, len(events), aerr))
		return
	}
	info := s.Info()
	writeJSON(w, sessionEventsResponse{
		ID:      s.ID(),
		Applied: applied,
		Events:  info.Events,
		Stats:   info.Stats,
	})
}

// sessionAudit reads the duplicate-role groups off the live indices —
// no engine run. ?mode=async submits the audit to the jobs pool
// instead and answers 202 with the job snapshot, putting session
// audits on the same lifecycle (poll, result, cancel) as engine runs.
func (h *handler) sessionAudit(w http.ResponseWriter, r *http.Request) {
	s, ok := h.lookupSession(w, r)
	if !ok {
		return
	}
	if mode := r.URL.Query().Get("mode"); mode == "async" {
		j, err := h.jobs.Submit("session-audit", func(_ context.Context, progress func(string, float64)) (any, error) {
			audit := s.Audit()
			if progress != nil {
				progress("audit", 1)
			}
			return audit, nil
		})
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("job queue full (%d queued), retry later", h.opts.JobQueueDepth))
			return
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("submit audit job: %w", err))
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+j.ID())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, j.Snapshot())
		return
	}
	writeJSON(w, s.Audit())
}

// driftRequest names two registered snapshots. The response is
// session.DriftReport — one schema shared with the rolediet drift
// subcommand.
type driftRequest struct {
	BeforeRef string `json:"before_ref"`
	AfterRef  string `json:"after_ref"`
}

// drift audits the movement between two registered datasets:
// Reconcile computes the event delta, the delta replays through a
// session of before, and the response reports the after-side duplicate
// groups plus which groups appeared and disappeared. The work is
// O(corpus) to diff the snapshots but the audit itself never runs the
// engine, and the result flows through the single-flight cache keyed
// on both digests — the second identical request is a byte-identical
// cache hit.
func (h *handler) drift(w http.ResponseWriter, r *http.Request) {
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	var req driftRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.BeforeRef == "" || req.AfterRef == "" {
		writeError(w, http.StatusBadRequest,
			errors.New(`drift needs {"before_ref": "<digest>", "after_ref": "<digest>"}`))
		return
	}
	before, beforeDigest, ok := h.resolveRef(w, r, req.BeforeRef)
	if !ok {
		return
	}
	after, afterDigest, ok := h.resolveRef(w, r, req.AfterRef)
	if !ok {
		return
	}

	started := time.Now()
	raw, hit, fp, err := h.driftCached(r.Context(), beforeDigest, afterDigest, before, after)
	if h.declog != nil {
		d := continuous.Decision{
			Source:        "api",
			Kind:          "drift",
			Dataset:       beforeDigest + "+" + afterDigest,
			Fingerprint:   fp,
			CacheHit:      hit,
			DurationNanos: time.Since(started).Nanoseconds(),
		}
		if err != nil {
			d.Error = err.Error()
		}
		h.declog.Append(d)
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(hit))
	writeRawJSON(w, raw)
}

// driftCached computes (or serves from cache) the drift report between
// two registered snapshots — the one compute path shared by POST
// /v1/drift and the continuous-audit backend, so a scheduled drift
// check of an already-answered digest pair is a cache hit.
func (h *handler) driftCached(ctx context.Context, beforeDigest, afterDigest string,
	before, after *rbac.Dataset) (raw []byte, hit bool, fp string, err error) {
	fp, err = store.Fingerprint(struct{}{}, "drift-v1")
	if err != nil {
		return nil, false, "", err
	}
	// The "+"-joined dataset key ties the cache line to both digests:
	// deleting either snapshot bars late admission, same as /v1/diff.
	key := store.Key{Dataset: beforeDigest + "+" + afterDigest, Fingerprint: fp, Kind: "drift"}
	raw, hit, err = h.store.Result(ctx, key, func(ctx context.Context) ([]byte, error) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		resp, derr := session.Drift(beforeDigest, afterDigest, before, after)
		if derr != nil {
			return nil, derr
		}
		return json.Marshal(resp)
	})
	return raw, hit, fp, err
}
