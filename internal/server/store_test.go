package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rbac"
	"repro/internal/store"
)

// postJSON sends body to path with optional extra headers and returns
// the response with its fully-read body.
func postJSON(t *testing.T, srv *httptest.Server, path string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// uploadDataset registers a dataset and returns its digest.
func uploadDataset(t *testing.T, srv *httptest.Server, dataset []byte, wantStatus int) string {
	t.Helper()
	resp, body := postJSON(t, srv, "/v1/datasets", dataset, nil)
	if resp.StatusCode != wantStatus {
		t.Fatalf("upload status = %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
	}
	var ack struct {
		Digest  string `json:"digest"`
		Created bool   `json:"created"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if _, err := store.ParseDigest(ack.Digest); err != nil {
		t.Fatalf("upload digest %q: %v", ack.Digest, err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/"+ack.Digest {
		t.Fatalf("Location = %q", loc)
	}
	return ack.Digest
}

// figure1Variant is Figure 1 plus one extra role/user pair, so diffs
// between the two have non-empty structural output.
func figure1Variant(t *testing.T) []byte {
	t.Helper()
	ds := rbac.Figure1()
	ds.EnsureRole("R99")
	ds.EnsureUser("u99")
	ds.AssignUser("R99", "u99")
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func serverStats(t *testing.T, srv *httptest.Server) store.Stats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var out struct {
		Store store.Stats `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Store
}

// TestDatasetLifecycleE2E walks the registry end to end: upload,
// analyze by reference (sync and as a job), diff two stored snapshots,
// delete, and the 404 afterwards.
func TestDatasetLifecycleE2E(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()

	digest := uploadDataset(t, srv, fig1, http.StatusCreated)
	// Same content re-registers idempotently under the same digest.
	if again := uploadDataset(t, srv, fig1, http.StatusOK); again != digest {
		t.Fatalf("re-upload digest = %s, want %s", again, digest)
	}

	// The stored snapshot is the canonical bytes the digest hashes to.
	resp, err := http.Get(srv.URL + "/v1/datasets/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get dataset status = %d", resp.StatusCode)
	}
	reparsed, err := rbac.ReadJSON(bytes.NewReader(canonical))
	if err != nil {
		t.Fatalf("canonical snapshot does not parse: %v", err)
	}
	if got, _, err := store.DigestOf(reparsed); err != nil || got != digest {
		t.Fatalf("served snapshot digests to %s (err %v), want %s", got, err, digest)
	}

	// Sync analyze by reference.
	byRef := []byte(fmt.Sprintf(`{"dataset_ref":%q}`, digest))
	resp1, syncBody := postJSON(t, srv, "/v1/analyze", byRef, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("analyze by ref = %d (body %s)", resp1.StatusCode, syncBody)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first analyze X-Cache = %q, want miss", got)
	}

	// The same analysis as a job: accepted, finishes, and its result is
	// byte-identical to the sync response (it is a cache hit on the same
	// key).
	snap := submitJob(t, srv, []byte(fmt.Sprintf(`{"kind":"analyze","dataset_ref":%q}`, digest)))
	if final := pollUntilTerminal(t, srv, snap.ID); final.Status != "done" {
		t.Fatalf("job status = %s (%s)", final.Status, final.Error)
	}
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	jobBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("job result status = %d", resp2.StatusCode)
	}
	if !bytes.Equal(syncBody, jobBody) {
		t.Fatalf("job result differs from sync response:\nsync %s\njob  %s", syncBody, jobBody)
	}

	// Diff two stored snapshots by reference.
	digest2 := uploadDataset(t, srv, figure1Variant(t), http.StatusCreated)
	diffReq := []byte(fmt.Sprintf(`{"before_ref":%q,"after_ref":%q}`, digest, digest2))
	resp3, diffBody := postJSON(t, srv, "/v1/diff", diffReq, nil)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("diff by refs = %d (body %s)", resp3.StatusCode, diffBody)
	}
	var dr struct {
		Structural struct {
			AddedRoles []rbac.RoleID `json:"addedRoles"`
		} `json:"structural"`
	}
	if err := json.Unmarshal(diffBody, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Structural.AddedRoles) != 1 || dr.Structural.AddedRoles[0] != "R99" {
		t.Fatalf("structural addedRoles = %v, want [R99]", dr.Structural.AddedRoles)
	}
	// Re-diffing the same pair is a cache hit with identical bytes.
	resp4, diffBody2 := postJSON(t, srv, "/v1/diff", diffReq, nil)
	if got := resp4.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat diff X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(diffBody, diffBody2) {
		t.Fatal("cached diff body differs from computed one")
	}

	// Delete, then everything addressed by the digest is gone.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets/"+digest, nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp5.StatusCode)
	}
	for _, probe := range []struct {
		method, path string
		body         []byte
	}{
		{http.MethodGet, "/v1/datasets/" + digest, nil},
		{http.MethodDelete, "/v1/datasets/" + digest, nil},
		{http.MethodPost, "/v1/analyze", byRef},
	} {
		req, _ := http.NewRequest(probe.method, srv.URL+probe.path, bytes.NewReader(probe.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || e.Code != "not_found" {
			t.Fatalf("%s %s after delete = %d code %q, want 404 not_found",
				probe.method, probe.path, resp.StatusCode, e.Code)
		}
	}
}

// TestAnalyzeCacheHitByteIdentical is the acceptance criterion:
// repeating an identical inline /v1/analyze is served from cache — the
// hit counter increments, the engine is not re-invoked — and the body
// is byte-identical to the uncached run.
func TestAnalyzeCacheHitByteIdentical(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()

	before := serverStats(t, srv)
	resp1, body1 := postJSON(t, srv, "/v1/analyze", fig1, nil)
	resp2, body2 := postJSON(t, srv, "/v1/analyze", fig1, nil)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses = %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs:\n1: %s\n2: %s", body1, body2)
	}
	after := serverStats(t, srv)
	if after.Hits != before.Hits+1 {
		t.Fatalf("hits %d -> %d, want +1", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses+1 {
		t.Fatalf("misses %d -> %d, want +1", before.Misses, after.Misses)
	}

	// Different options are a different cache line, not a stale hit.
	resp3, _ := postJSON(t, srv, "/v1/analyze?threshold=3", fig1, nil)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("different-options X-Cache = %q, want miss", got)
	}
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGzipRequestBodies exercises Content-Encoding: gzip on the POST
// endpoints: compressed uploads and analyses succeed and share cache
// lines with their identity-encoded twins; unknown encodings answer
// 415 with a stable code; bodies that only fit under the cap while
// compressed are rejected once decompressed.
func TestGzipRequestBodies(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	zipped := gzipBytes(t, fig1)
	gzHdr := map[string]string{"Content-Encoding": "gzip"}

	resp, body := postJSON(t, srv, "/v1/analyze", zipped, gzHdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip analyze = %d (body %s)", resp.StatusCode, body)
	}
	// Identity-encoded identical request: same content digest, so this
	// is a cache hit with identical bytes.
	resp2, body2 := postJSON(t, srv, "/v1/analyze", fig1, nil)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("identity twin X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("gzip and identity responses differ")
	}

	// Gzip works on the registry too and digests identically.
	d1 := uploadDataset(t, srv, fig1, http.StatusCreated)
	respUp, upBody := postJSON(t, srv, "/v1/datasets", zipped, gzHdr)
	if respUp.StatusCode != http.StatusOK {
		t.Fatalf("gzip re-upload = %d (body %s)", respUp.StatusCode, upBody)
	}
	var ack struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(upBody, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Digest != d1 {
		t.Fatalf("gzip upload digest = %s, want %s", ack.Digest, d1)
	}

	// Unknown encodings are 415 unsupported_media_type.
	resp415, body415 := postJSON(t, srv, "/v1/analyze", fig1,
		map[string]string{"Content-Encoding": "br"})
	var e struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body415, &e); err != nil {
		t.Fatal(err)
	}
	if resp415.StatusCode != http.StatusUnsupportedMediaType || e.Code != "unsupported_media_type" {
		t.Fatalf("unknown encoding = %d code %q, want 415 unsupported_media_type", resp415.StatusCode, e.Code)
	}

	// A body over the limit only while decompressed is still rejected:
	// highly compressible payloads cannot sidestep MaxBodyBytes.
	small := newJobsServer(t, Options{MaxBodyBytes: 256})
	bomb := gzipBytes(t, []byte(`{"pad":"`+strings.Repeat("a", 4096)+`"}`))
	if int64(len(bomb)) >= 256 {
		t.Fatalf("test bomb not compressible enough: %d compressed bytes", len(bomb))
	}
	respBomb, bombBody := postJSON(t, small, "/v1/analyze", bomb, gzHdr)
	if respBomb.StatusCode != http.StatusBadRequest {
		t.Fatalf("gzip bomb = %d (body %s), want 400", respBomb.StatusCode, bombBody)
	}
	if !strings.Contains(string(bombBody), "decompressed body exceeds") {
		t.Fatalf("gzip bomb error = %s", bombBody)
	}
}

// TestDiffMixedInlineAndRef checks each diff side independently
// accepts inline or by-reference form, and that giving both (or
// neither) for a side is rejected.
func TestDiffMixedInlineAndRef(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	digest := uploadDataset(t, srv, fig1, http.StatusCreated)

	mixed := []byte(fmt.Sprintf(`{"before_ref":%q,"after":%s}`, digest, figure1Variant(t)))
	resp, body := postJSON(t, srv, "/v1/diff", mixed, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed diff = %d (body %s)", resp.StatusCode, body)
	}

	for _, bad := range []string{
		fmt.Sprintf(`{"before":%s,"before_ref":%q,"after_ref":%q}`, fig1, digest, digest),
		fmt.Sprintf(`{"after_ref":%q}`, digest),
		`{}`,
	} {
		resp, _ := postJSON(t, srv, "/v1/diff", []byte(bad), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("diff %s = %d, want 400", bad, resp.StatusCode)
		}
	}

	// An unknown digest on either side is 404.
	ghost := strings.Repeat("0", 64)
	resp404, _ := postJSON(t, srv, "/v1/diff",
		[]byte(fmt.Sprintf(`{"before_ref":%q,"after_ref":%q}`, ghost, digest)), nil)
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost diff = %d, want 404", resp404.StatusCode)
	}
}

// TestDatasetListAndStatsShape covers the enumeration endpoint and the
// stats payload fields the smoke script greps for.
func TestDatasetListAndStatsShape(t *testing.T) {
	srv := newJobsServer(t, Options{})
	digest := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)

	resp, err := http.Get(srv.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Items         []store.DatasetInfo `json:"items"`
		NextPageToken string              `json:"next_page_token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Items) != 1 || list.Items[0].Digest != digest {
		t.Fatalf("datasets = %+v", list.Items)
	}
	if list.Items[0].Stats.Roles == 0 || list.Items[0].Bytes == 0 {
		t.Fatalf("dataset info missing stats: %+v", list.Items[0])
	}
	if list.NextPageToken != "" {
		t.Fatalf("one dataset should fit one page, next = %q", list.NextPageToken)
	}

	st := serverStats(t, srv)
	if st.Datasets != 1 || st.DatasetBytes == 0 {
		t.Fatalf("store stats = %+v", st)
	}

	// Malformed digests are 400 before any lookup.
	respBad, _ := http.Get(srv.URL + "/v1/datasets/nothex")
	respBad.Body.Close()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest = %d, want 400", respBad.StatusCode)
	}
}

// TestServerStoreDirPersistence restarts the handler over the same
// -store-dir and checks uploaded datasets stay addressable by digest.
func TestServerStoreDirPersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() (*httptest.Server, *store.Store) {
		st, err := store.New(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(Options{Store: st}))
		return srv, st
	}

	srv1, st1 := open()
	digest := uploadDataset(t, srv1, figure1Body(t).Bytes(), http.StatusCreated)
	srv1.Close()
	st1.Close()

	srv2, st2 := open()
	defer srv2.Close()
	defer st2.Close()
	resp, err := http.Get(srv2.URL + "/v1/datasets/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after restart, dataset %s = %d, want 200", digest, resp.StatusCode)
	}
	canonical, _ := io.ReadAll(resp.Body)
	if got, _, err := store.DigestOf(mustParse(t, canonical)); err != nil || got != digest {
		t.Fatalf("restarted snapshot digests to %s (err %v)", got, err)
	}
}

func mustParse(t *testing.T, data []byte) *rbac.Dataset {
	t.Helper()
	ds, err := rbac.ReadJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
