package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/query"
	"repro/internal/rbac"
)

// registerExtra wires the query and diff endpoints. Called from
// NewHandler.
func (h *handler) registerExtra() {
	h.mux.HandleFunc("POST /v1/query", h.query)
	h.mux.HandleFunc("POST /v1/diff", h.diff)
}

// queryResponse is the /v1/query result; only the fields relevant to
// the request's selectors are populated.
type queryResponse struct {
	Roles       []rbac.RoleID       `json:"roles,omitempty"`
	Permissions []rbac.PermissionID `json:"permissions,omitempty"`
	Users       []rbac.UserID       `json:"users,omitempty"`
	Grants      []query.Grant       `json:"grants,omitempty"`
	HasAccess   *bool               `json:"hasAccess,omitempty"`
}

// query answers access-review questions: ?user=, ?permission=, or both.
// The body is a bare dataset or the v1 envelope (its options are
// irrelevant here and ignored).
func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	user := rbac.UserID(r.URL.Query().Get("user"))
	perm := rbac.PermissionID(r.URL.Query().Get("permission"))
	if user == "" && perm == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query: need user and/or permission"))
		return
	}
	req, ok := h.decodeRequest(w, r)
	if !ok {
		return
	}
	x := query.NewIndex(req.dataset)
	var resp queryResponse
	switch {
	case user != "" && perm != "":
		grants, err := x.Why(user, perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		has := len(grants) > 0
		resp.Grants = grants
		resp.HasAccess = &has
	case user != "":
		roles, err := x.RolesOf(user)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		perms, err := x.PermissionsOf(user)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		resp.Roles = roles
		resp.Permissions = perms
	default:
		roles, err := x.RolesGranting(perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		users, err := x.UsersWith(perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		resp.Roles = roles
		resp.Users = users
	}
	writeJSON(w, resp)
}

// diffRequest carries the two snapshots to compare, plus optional
// analysis options in the shared core.Options wire schema (body wins
// over the method/threshold query parameters).
type diffRequest struct {
	Before  *rbac.Dataset `json:"before"`
	After   *rbac.Dataset `json:"after"`
	Options *core.Options `json:"options"`
}

// diffResponse bundles the structural and audit-count diffs.
type diffResponse struct {
	Structural *diff.DatasetDiff `json:"structural"`
	Counts     *diff.ReportDiff  `json:"counts"`
	Improved   bool              `json:"improved"`
}

// diff compares two posted snapshots structurally and by audit counts.
func (h *handler) diff(w http.ResponseWriter, r *http.Request) {
	opts, _, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	var req diffRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse diff request: %w", err))
		return
	}
	if req.Before == nil || req.After == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff: need before and after datasets"))
		return
	}
	if req.Options != nil {
		opts = *req.Options
	}
	if err := req.Before.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.After.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	repBefore, err := core.AnalyzeContext(r.Context(), req.Before, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	repAfter, err := core.AnalyzeContext(r.Context(), req.After, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	rd := diff.Reports(repBefore, repAfter)
	writeJSON(w, diffResponse{
		Structural: diff.Datasets(req.Before, req.After),
		Counts:     rd,
		Improved:   rd.Improved(),
	})
}
