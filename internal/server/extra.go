package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/query"
	"repro/internal/rbac"
	"repro/internal/store"
)

// registerExtra wires the query and diff endpoints. Called from
// NewHandler.
func (h *handler) registerExtra() {
	h.handle("POST /v1/query", h.query)
	h.handle("POST /v1/diff", h.diff)
}

// queryResponse is the /v1/query result; only the fields relevant to
// the request's selectors are populated.
type queryResponse struct {
	Roles       []rbac.RoleID       `json:"roles,omitempty"`
	Permissions []rbac.PermissionID `json:"permissions,omitempty"`
	Users       []rbac.UserID       `json:"users,omitempty"`
	Grants      []query.Grant       `json:"grants,omitempty"`
	HasAccess   *bool               `json:"hasAccess,omitempty"`
}

// query answers access-review questions: ?user=, ?permission=, or both.
// The body is a bare dataset or the v1 envelope (its options are
// irrelevant here and ignored).
func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	user := rbac.UserID(r.URL.Query().Get("user"))
	perm := rbac.PermissionID(r.URL.Query().Get("permission"))
	if user == "" && perm == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query: need user and/or permission"))
		return
	}
	req, ok := h.decodeRequest(w, r)
	if !ok {
		return
	}
	x := query.NewIndex(req.dataset)
	var resp queryResponse
	switch {
	case user != "" && perm != "":
		grants, err := x.Why(user, perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		has := len(grants) > 0
		resp.Grants = grants
		resp.HasAccess = &has
	case user != "":
		roles, err := x.RolesOf(user)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		perms, err := x.PermissionsOf(user)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		resp.Roles = roles
		resp.Permissions = perms
	default:
		roles, err := x.RolesGranting(perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		users, err := x.UsersWith(perm)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		resp.Roles = roles
		resp.Users = users
	}
	writeJSON(w, resp)
}

// diffRequest carries the two snapshots to compare — each side inline
// or as a digest reference to a registered dataset — plus optional
// analysis options in the shared core.Options wire schema (body wins
// over the method/threshold query parameters).
type diffRequest struct {
	Before    *rbac.Dataset `json:"before"`
	After     *rbac.Dataset `json:"after"`
	BeforeRef string        `json:"before_ref"`
	AfterRef  string        `json:"after_ref"`
	Options   *core.Options `json:"options"`
}

// diffResponse bundles the structural and audit-count diffs.
type diffResponse struct {
	Structural *diff.DatasetDiff `json:"structural"`
	Counts     *diff.ReportDiff  `json:"counts"`
	Improved   bool              `json:"improved"`
}

// diffSide resolves one side of the comparison: exactly one of the
// inline dataset or the digest reference, named so errors read
// "diff: before ...".
func (h *handler) diffSide(w http.ResponseWriter, r *http.Request, name string, inline *rbac.Dataset, ref string) (*rbac.Dataset, string, bool) {
	switch {
	case inline != nil && ref != "":
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("diff: give %s inline or as %s_ref, not both", name, name))
		return nil, "", false
	case inline == nil && ref == "":
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("diff: need %s (inline dataset or %s_ref digest)", name, name))
		return nil, "", false
	case ref != "":
		return h.resolveRef(w, r, ref)
	}
	if err := inline.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff: %s: %w", name, err))
		return nil, "", false
	}
	digest, _, err := store.DigestOf(inline)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return nil, "", false
	}
	return inline, digest, true
}

// diff compares two snapshots — posted inline or referenced by digest —
// structurally and by audit counts. Results are cached under the pair
// of content digests, so re-diffing the same pair (in either form) is
// served from the store.
func (h *handler) diff(w http.ResponseWriter, r *http.Request) {
	opts, _, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	var req diffRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse diff request: %w", err))
		return
	}
	if req.Options != nil {
		opts = *req.Options
	}
	before, beforeDigest, ok := h.diffSide(w, r, "before", req.Before, req.BeforeRef)
	if !ok {
		return
	}
	after, afterDigest, ok := h.diffSide(w, r, "after", req.After, req.AfterRef)
	if !ok {
		return
	}
	fp, err := store.Fingerprint(opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	key := store.Key{
		Dataset:     beforeDigest + "+" + afterDigest,
		Fingerprint: fp,
		Kind:        "diff",
	}
	out, hit, err := h.store.Result(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		repBefore, err := core.AnalyzeContext(ctx, before, opts)
		if err != nil {
			return nil, err
		}
		repAfter, err := core.AnalyzeContext(ctx, after, opts)
		if err != nil {
			return nil, err
		}
		rd := diff.Reports(repBefore, repAfter)
		return json.Marshal(diffResponse{
			Structural: diff.Datasets(before, after),
			Counts:     rd,
			Improved:   rd.Improved(),
		})
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("X-Cache", cacheHeader(hit))
	writeRawJSON(w, out)
}
