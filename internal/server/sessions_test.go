package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rbac"
	"repro/internal/replay"
	"repro/internal/session"
)

// createSession opens a session over digest and returns the decoded
// response.
func createSession(t *testing.T, srv *httptest.Server, digest string, wantStatus int) sessionCreateResponse {
	t.Helper()
	body := []byte(fmt.Sprintf(`{"base_ref":%q}`, digest))
	resp, raw := postJSON(t, srv, "/v1/sessions", body, nil)
	if resp.StatusCode != wantStatus {
		t.Fatalf("session create = %d (body %s), want %d", resp.StatusCode, raw, wantStatus)
	}
	var out sessionCreateResponse
	if wantStatus == http.StatusCreated {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/sessions/"+out.ID {
			t.Fatalf("Location = %q, want /v1/sessions/%s", loc, out.ID)
		}
	}
	return out
}

// eventLog renders events as the JSONL wire format.
func eventLog(t *testing.T, events []replay.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := replay.WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// auditGroupSet canonicalises audit group lists for set comparison.
func auditGroupSet(groups [][]rbac.RoleID) map[string]bool {
	out := make(map[string]bool, len(groups))
	for _, g := range groups {
		ids := make([]string, len(g))
		for i, id := range g {
			ids[i] = string(id)
		}
		sort.Strings(ids)
		out[strings.Join(ids, "|")] = true
	}
	return out
}

// TestSessionLifecycle drives the whole mutation-session surface:
// create from a registered base, apply an event batch, audit off the
// live index, and require the audit to be set-identical to a full
// engine analysis of the same mutations applied offline — then close
// the session and see it 404.
func TestSessionLifecycle(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	digest := uploadDataset(t, srv, fig1, http.StatusCreated)
	created := createSession(t, srv, digest, http.StatusCreated)
	if created.Base != digest || created.Events != 0 {
		t.Fatalf("fresh session = %+v", created.Info)
	}

	// R90/R91 duplicate each other on both sides; a full engine run
	// over the same offline mutation is the ground truth.
	events := []replay.Event{
		{Op: replay.OpAddRole, Role: "R90"},
		{Op: replay.OpAddRole, Role: "R91"},
		{Op: replay.OpAssignUser, Role: "R90", User: "U01"},
		{Op: replay.OpAssignUser, Role: "R91", User: "U01"},
		{Op: replay.OpAssignPermission, Role: "R90", Permission: "P01"},
		{Op: replay.OpAssignPermission, Role: "R91", Permission: "P01"},
	}
	resp, raw := postJSON(t, srv, "/v1/sessions/"+created.ID+"/events", eventLog(t, events), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d (body %s)", resp.StatusCode, raw)
	}
	var ack sessionEventsResponse
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Applied != len(events) || ack.Events != len(events) {
		t.Fatalf("applied %d/%d events, lifetime %d", ack.Applied, len(events), ack.Events)
	}

	respAudit, rawAudit := srvGet(t, srv, "/v1/sessions/"+created.ID+"/audit")
	if respAudit.StatusCode != http.StatusOK {
		t.Fatalf("audit = %d (body %s)", respAudit.StatusCode, rawAudit)
	}
	var audit session.Audit
	if err := json.Unmarshal(rawAudit, &audit); err != nil {
		t.Fatal(err)
	}

	offline, err := rbac.ReadJSON(bytes.NewReader(fig1))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if err := replay.Apply(offline, e); err != nil {
			t.Fatalf("offline event %d: %v", i, err)
		}
	}
	report, err := core.AnalyzeContext(context.Background(), offline, core.Options{SkipSimilar: true})
	if err != nil {
		t.Fatal(err)
	}
	wantUser := make([][]rbac.RoleID, 0, len(report.SameUserGroups))
	for _, g := range report.SameUserGroups {
		wantUser = append(wantUser, g.Roles)
	}
	wantPerm := make([][]rbac.RoleID, 0, len(report.SamePermissionGroups))
	for _, g := range report.SamePermissionGroups {
		wantPerm = append(wantPerm, g.Roles)
	}
	if got, want := auditGroupSet(audit.SameUserGroups), auditGroupSet(wantUser); len(got) == 0 || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("same-user audit %v != engine %v", got, want)
	}
	if got, want := auditGroupSet(audit.SamePermissionGroups), auditGroupSet(wantPerm); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("same-permission audit %v != engine %v", got, want)
	}

	// Async audits ride the jobs lifecycle and agree with sync.
	respAsync, rawAsync := srvGet(t, srv, "/v1/sessions/"+created.ID+"/audit?mode=async")
	if respAsync.StatusCode != http.StatusAccepted {
		t.Fatalf("async audit = %d (body %s)", respAsync.StatusCode, rawAsync)
	}
	loc := respAsync.Header.Get("Location")
	var asyncBody []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err := http.Get(srv.URL + loc + "/result")
		if err != nil {
			t.Fatal(err)
		}
		b2 := readAll(t, r2)
		if r2.StatusCode == http.StatusOK {
			asyncBody = b2
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async audit never finished: %d %s", r2.StatusCode, b2)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var asyncAudit session.Audit
	if err := json.Unmarshal(asyncBody, &asyncAudit); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(auditGroupSet(asyncAudit.SameUserGroups)) != fmt.Sprint(auditGroupSet(audit.SameUserGroups)) {
		t.Fatalf("async audit differs from sync:\nasync: %s\nsync:  %s", asyncBody, rawAudit)
	}

	// Close; further lookups 404.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+created.ID, nil)
	respDel, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respDel.Body.Close()
	if respDel.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", respDel.StatusCode)
	}
	respGone, _ := postJSON(t, srv, "/v1/sessions/"+created.ID+"/events", eventLog(t, events[:1]), nil)
	if respGone.StatusCode != http.StatusNotFound {
		t.Fatalf("events on closed session = %d, want 404", respGone.StatusCode)
	}
}

// readAll drains a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionCreateValidation covers the create-time error surface:
// missing/malformed refs, unknown digests, and the session cap.
func TestSessionCreateValidation(t *testing.T) {
	srv := newJobsServer(t, Options{MaxSessions: 1})
	digest := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)

	for _, bad := range []string{`{}`, `{"base_ref":"zzz"}`, `not json`} {
		resp, _ := postJSON(t, srv, "/v1/sessions", []byte(bad), nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("create with %s = %d, want 400", bad, resp.StatusCode)
		}
	}
	unknown := strings.Repeat("0", 64)
	resp, _ := postJSON(t, srv, "/v1/sessions", []byte(fmt.Sprintf(`{"base_ref":%q}`, unknown)), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("create over unknown digest = %d, want 404", resp.StatusCode)
	}

	createSession(t, srv, digest, http.StatusCreated)
	respFull, rawFull := postJSON(t, srv, "/v1/sessions", []byte(fmt.Sprintf(`{"base_ref":%q}`, digest)), nil)
	if respFull.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create past cap = %d (body %s), want 429", respFull.StatusCode, rawFull)
	}
	if respFull.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestSessionEventLogBomb mirrors the gzip-bomb test for the event
// channel: an overlong line and an over-count batch must both be
// refused with 400 payload_too_large before any event applies.
func TestSessionEventLogBomb(t *testing.T) {
	srv := newJobsServer(t, Options{MaxLogEvents: 2})
	digest := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)
	s := createSession(t, srv, digest, http.StatusCreated)

	requireBomb := func(label string, body []byte) {
		t.Helper()
		resp, raw := postJSON(t, srv, "/v1/sessions/"+s.ID+"/events", body, nil)
		var e struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("%s: unmarshal error body %s: %v", label, raw, err)
		}
		if resp.StatusCode != http.StatusBadRequest || e.Code != CodePayloadTooLarge {
			t.Fatalf("%s = %d code %q (body %.200s), want 400 payload_too_large", label, resp.StatusCode, e.Code, raw)
		}
	}

	// One line longer than the 1 MiB line cap.
	requireBomb("overlong line", []byte(`{"op":"add-role","role":"`+strings.Repeat("x", 2<<20)+`"}`+"\n"))

	// More events than the batch cap.
	requireBomb("over-count batch", eventLog(t, []replay.Event{
		{Op: replay.OpAddRole, Role: "B1"},
		{Op: replay.OpAddRole, Role: "B2"},
		{Op: replay.OpAddRole, Role: "B3"},
	}))

	// Neither bomb applied anything.
	respInfo, rawInfo := srvGet(t, srv, "/v1/sessions/"+s.ID+"/audit")
	if respInfo.StatusCode != http.StatusOK {
		t.Fatalf("audit = %d", respInfo.StatusCode)
	}
	var audit session.Audit
	if err := json.Unmarshal(rawInfo, &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Events != 0 {
		t.Fatalf("bombs applied %d events, want 0 (body %s)", audit.Events, rawInfo)
	}
}

// TestSessionEventsPartialApply: a batch failing mid-way answers 422,
// reports the applied prefix, and the session keeps that prefix.
func TestSessionEventsPartialApply(t *testing.T) {
	srv := newJobsServer(t, Options{})
	digest := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)
	s := createSession(t, srv, digest, http.StatusCreated)

	batch := []replay.Event{
		{Op: replay.OpAddRole, Role: "PX1"},
		{Op: replay.OpAssignUser, Role: "ghost", User: "U01"}, // fails
		{Op: replay.OpAddRole, Role: "PX2"},
	}
	resp, raw := postJSON(t, srv, "/v1/sessions/"+s.ID+"/events", eventLog(t, batch), nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("partial batch = %d (body %s), want 422", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "applied 1 of 3") {
		t.Fatalf("422 body does not report the prefix: %s", raw)
	}
	respInfo, rawInfo := srvGet(t, srv, "/v1/sessions/"+s.ID+"/audit")
	if respInfo.StatusCode != http.StatusOK {
		t.Fatalf("audit = %d", respInfo.StatusCode)
	}
	var audit session.Audit
	if err := json.Unmarshal(rawInfo, &audit); err != nil {
		t.Fatal(err)
	}
	if audit.Events != 1 {
		t.Fatalf("session kept %d events, want the 1-event prefix", audit.Events)
	}
}

// TestStreamingUploadRejects: an upload past -max-upload-bytes fails
// with 400 payload_too_large, a truncated body with 400 bad_request,
// and in both cases the registry admits nothing partial.
func TestStreamingUploadRejects(t *testing.T) {
	fig1 := figure1Body(t).Bytes()
	srv := newJobsServer(t, Options{MaxUploadBytes: int64(len(fig1)) / 2})

	requireEmptyRegistry := func(label string) {
		t.Helper()
		resp, raw := srvGet(t, srv, "/v1/datasets")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: list = %d", label, resp.StatusCode)
		}
		var list struct {
			Items []json.RawMessage `json:"items"`
		}
		if err := json.Unmarshal(raw, &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Items) != 0 {
			t.Fatalf("%s: registry admitted %d datasets from a rejected upload", label, len(list.Items))
		}
	}

	resp, raw := postJSON(t, srv, "/v1/datasets", fig1, nil)
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || e.Code != CodePayloadTooLarge {
		t.Fatalf("oversized upload = %d code %q, want 400 payload_too_large", resp.StatusCode, e.Code)
	}
	requireEmptyRegistry("oversized")

	respTrunc, _ := postJSON(t, srv, "/v1/datasets", fig1[:len(fig1)/2], nil)
	if respTrunc.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated upload = %d, want 400", respTrunc.StatusCode)
	}
	requireEmptyRegistry("truncated")

	// Exactly at the limit is fine: the cap is inclusive.
	exact := newJobsServer(t, Options{MaxUploadBytes: int64(len(fig1))})
	uploadDataset(t, exact, fig1, http.StatusCreated)
}

// srvGet GETs a path and returns response + body.
func srvGet(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readAll(t, resp)
}

// TestDriftEndpoint: /v1/drift reports the movement between two
// registered snapshots, flows through the single-flight cache (miss
// then hit, byte-identical), and rejects incomplete requests.
func TestDriftEndpoint(t *testing.T) {
	srv := newJobsServer(t, Options{})
	before := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)
	after := uploadDataset(t, srv, figure1Variant(t), http.StatusCreated)

	body := []byte(fmt.Sprintf(`{"before_ref":%q,"after_ref":%q}`, before, after))
	resp1, raw1 := postJSON(t, srv, "/v1/drift", body, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("drift = %d (body %s)", resp1.StatusCode, raw1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first drift X-Cache = %q, want miss", got)
	}
	var report session.DriftReport
	if err := json.Unmarshal(raw1, &report); err != nil {
		t.Fatal(err)
	}
	if report.BeforeRef != before || report.AfterRef != after || report.Events == 0 {
		t.Fatalf("drift report = %+v", report)
	}

	resp2, raw2 := postJSON(t, srv, "/v1/drift", body, nil)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second drift X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("cached drift response differs from computed one")
	}

	for _, bad := range []string{`{}`, fmt.Sprintf(`{"before_ref":%q}`, before)} {
		respBad, _ := postJSON(t, srv, "/v1/drift", []byte(bad), nil)
		if respBad.StatusCode != http.StatusBadRequest {
			t.Errorf("drift with %s = %d, want 400", bad, respBad.StatusCode)
		}
	}
}
