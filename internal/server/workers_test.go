package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestWorkersQueryParameter covers the back-compat surface: a bare
// dataset body with ?workers=N must run (parallel grouping is
// result-identical for the default method) and negative or malformed
// values must be rejected with 400 before any analysis starts.
func TestWorkersQueryParameter(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/analyze?workers=4", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.SameUserGroups) != 1 || rep.SameUserGroups[0].Roles[0] != "R02" {
		t.Fatalf("parallel report groups = %+v", rep.SameUserGroups)
	}

	for _, bad := range []string{"workers=-1", "workers=x"} {
		resp, err := http.Post(srv.URL+"/v1/analyze?"+bad, "application/json", figure1Body(t))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestWorkersEnvelopeRejected asserts a negative workers value inside
// the options body is caught by the shared core.Options decoder.
func TestWorkersEnvelopeRejected(t *testing.T) {
	srv := newServer(t)
	body := `{"dataset": ` + figure1Body(t).String() + `, "options": {"workers": -2}}`
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "negative workers") {
		t.Fatalf("error = %q", e.Error)
	}
}

// TestDefaultWorkersOption asserts the daemon-wide default applies when
// a request is silent about workers, and that an analysis run under it
// still yields the serial answer.
func TestDefaultWorkersOption(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{DefaultWorkers: 4}))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.SameUserGroups) != 1 || rep.SameUserGroups[0].Roles[0] != "R02" {
		t.Fatalf("report groups = %+v", rep.SameUserGroups)
	}
}
