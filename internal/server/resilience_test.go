package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// decodeError reads the JSON error envelope every failure response
// carries.
func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v", err)
	}
	return body.Error
}

// TestRequestTimeoutReturns504 exercises the per-request deadline: a
// timeout too short for any analysis must surface as 504 with a JSON
// body, on both the dense and sparse paths.
func TestRequestTimeoutReturns504(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{RequestTimeout: time.Nanosecond}))
	t.Cleanup(srv.Close)

	for _, path := range []string{"/v1/analyze", "/v1/analyze?sparse=true", "/v1/consolidate", "/v1/suggest"} {
		resp, err := http.Post(srv.URL+path, "application/json", figure1Body(t))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("POST %s status = %d, want 504", path, resp.StatusCode)
		}
		if msg := decodeError(t, resp); !strings.Contains(msg, "timeout") {
			t.Fatalf("POST %s error = %q, want a timeout message", path, msg)
		}
	}

	// The health probe bypasses the timeout entirely.
	resp, err := http.Get(srv.URL + healthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
}

// TestPanicRecovery proves a panicking handler yields a 500 JSON error
// and the server keeps answering afterwards.
func TestPanicRecovery(t *testing.T) {
	var logged atomic.Bool
	h := &handler{opts: Options{Logf: func(string, ...any) { logged.Store(true) }}.withDefaults()}
	mux := http.NewServeMux()
	mux.HandleFunc("/panic", func(http.ResponseWriter, *http.Request) { panic("boom") })
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	srv := httptest.NewServer(h.withRecovery(mux))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", resp.StatusCode)
	}
	if msg := decodeError(t, resp); msg == "" {
		t.Fatal("panic response has an empty error message")
	}
	if !logged.Load() {
		t.Fatal("panic was not logged")
	}

	// Same server, next request: still alive.
	resp, err = http.Get(srv.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200 (server should survive the panic)", resp.StatusCode)
	}
}

// TestLoadSheddingReturns429 saturates a MaxConcurrent=1 server with a
// deliberately stalled request and checks that (a) further /v1/*
// requests are shed with 429 + Retry-After, (b) /healthz keeps
// answering 200 throughout, and (c) the server recovers once the
// stalled request goes away.
func TestLoadSheddingReturns429(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{MaxConcurrent: 1, RetryAfter: 2 * time.Second}))
	t.Cleanup(srv.Close)

	// Occupy the single slot: send headers plus an incomplete body so
	// the handler blocks inside the body read while holding the
	// semaphore.
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /v1/analyze HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\n\r\n{"); err != nil {
		t.Fatal(err)
	}

	// The stalled request needs a moment to reach the limiter; poll
	// until shedding kicks in.
	deadline := time.Now().Add(10 * time.Second)
	var shed *http.Response
	for {
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", figure1Body(t))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("saturated server never returned 429 (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := shed.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if msg := decodeError(t, shed); !strings.Contains(msg, "capacity") {
		t.Fatalf("shed error = %q, want a capacity message", msg)
	}

	// Liveness stays green while the service is saturated.
	resp, err := http.Get(srv.URL + healthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status under saturation = %d, want 200", resp.StatusCode)
	}

	// Release the slot and poll until normal service resumes.
	conn.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", figure1Body(t))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		resp.Body.Close()
		if status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after the stalled request ended (last status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInvalidDatasetReturns400 posts a parseable but inconsistent
// dataset (an assignment referencing an unknown role) and expects the
// validation 400, not an engine error.
func TestInvalidDatasetReturns400(t *testing.T) {
	srv := newServer(t)
	body := `{"users":["u1"],"roles":["r1"],"permissions":[],` +
		`"userAssignments":[{"role":"ghost","user":"u1"}],"permissionAssignments":[]}`
	for _, path := range []string{"/v1/analyze", "/v1/consolidate", "/v1/suggest"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s status = %d, want 400", path, resp.StatusCode)
		}
		if msg := decodeError(t, resp); msg == "" {
			t.Fatalf("POST %s: empty error message", path)
		}
	}
}
