package server

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/continuous"
	"repro/internal/rbac"
	"repro/internal/store"
)

// registerDatasets wires the dataset registry lifecycle and the stats
// endpoint. Called from NewHandler.
func (h *handler) registerDatasets() {
	h.handle("POST /v1/datasets", h.datasetPut)
	h.handle("GET /v1/datasets", h.datasetList)
	h.handle("GET /v1/datasets/{digest}", h.datasetGet)
	h.handle("DELETE /v1/datasets/{digest}", h.datasetDelete)
	h.handle("GET /v1/stats", h.statsReport)
}

// datasetPutResponse acknowledges an ingest: the digest every later
// request can reference instead of re-uploading the matrices. In a
// fleet, Owner names the digest's rendezvous owner; Degraded means the
// owner was unreachable and this node kept the upload locally so it is
// not lost (reads find it by walking the ranking).
type datasetPutResponse struct {
	Digest   string     `json:"digest"`
	Created  bool       `json:"created"`
	Bytes    int64      `json:"bytes"`
	Stats    rbac.Stats `json:"stats"`
	Owner    string     `json:"owner,omitempty"`
	Degraded bool       `json:"degraded,omitempty"`
}

// datasetPut registers a dataset export: the body is the dataset JSON
// (optionally gzip-compressed), canonicalized and addressed by its
// SHA-256 content digest. Re-uploading identical content answers 200
// with the same digest; new content answers 201.
//
// The body is decoded incrementally — memory is proportional to the
// dataset's entities and edges, never to the upload's byte length —
// and MaxUploadBytes is enforced as the stream is consumed: an
// oversized body fails with 400 payload_too_large after at most the
// cap has been read, and a truncated or malformed body fails with 400
// before the store admits anything. Nothing partial is ever stored;
// the digest is computed from the fully decoded, canonicalized
// dataset.
//
// In a fleet, the upload is routed to the digest's owner: a non-owner
// node forwards the canonical bytes through the hardened client and
// relays the owner's answer; the owner stores locally and replicates
// asynchronously to the digest's other holders. The X-Rolediet-Fleet
// header distinguishes internal hops (forwarded uploads and replica
// pushes) from client traffic so routing cannot loop. If the owner is
// unreachable the node degrades explicitly: it stores the upload
// locally and marks the response degraded, rather than failing or
// hanging.
func (h *handler) datasetPut(w http.ResponseWriter, r *http.Request) {
	body, closeBody, ok := h.bodyStream(w, r, h.opts.MaxUploadBytes)
	if !ok {
		return
	}
	defer closeBody()
	ds, err := rbac.ReadJSONStream(body)
	if err != nil {
		writeBodyError(w, "parse dataset", err)
		return
	}
	digest, canonical, err := store.DigestOf(ds)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	internal := r.Header.Get(fleetHeader)
	meta := putMeta{}
	if h.fleet.Enabled() {
		meta.owner = h.fleet.Owner(digest)
		switch internal {
		case "":
			if meta.owner != h.fleet.Self() {
				resp, ferr := h.forwardPut(r.Context(), meta.owner, canonical)
				if ferr == nil {
					w.Header().Set("Location", "/v1/datasets/"+digest)
					w.Header().Set("Content-Type", "application/json")
					w.Header().Set("X-Fleet-Routed", meta.owner)
					w.WriteHeader(resp.Status)
					_, _ = w.Write(resp.Body)
					return
				}
				h.opts.Logf("fleet: upload %s: owner %s unreachable, storing locally: %v",
					digest, meta.owner, ferr)
				meta.degraded = true
			} else {
				meta.replicate = true
			}
		case "forward":
			// We are the owner on an internal hop: store and fan out,
			// never forward again.
			meta.replicate = true
		case "replicate":
			// Replica push: store and stop.
		}
	}
	h.putLocal(w, digest, canonical, ds, meta)
}

// putMeta carries the fleet-routing outcome into putLocal.
type putMeta struct {
	owner     string
	replicate bool
	degraded  bool
}

// putLocal admits canonical bytes into the local store and writes the
// ingest response, kicking off async replication when this node is the
// digest's owner.
func (h *handler) putLocal(w http.ResponseWriter, digest string, canonical []byte, ds *rbac.Dataset, meta putMeta) {
	created, err := h.store.PutCanonical(digest, canonical)
	switch {
	case errors.Is(err, store.ErrTooLarge):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if meta.replicate {
		h.replicateAsync(digest, canonical)
	}
	w.Header().Set("Location", "/v1/datasets/"+digest)
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, datasetPutResponse{
		Digest:   digest,
		Created:  created,
		Bytes:    int64(len(canonical)),
		Stats:    ds.Stats(),
		Owner:    meta.owner,
		Degraded: meta.degraded,
	})
}

// datasetList enumerates the registered datasets, paginated.
func (h *handler) datasetList(w http.ResponseWriter, r *http.Request) {
	offset, size, ok := pageParams(w, r)
	if !ok {
		return
	}
	items, next := pageSlice(h.store.ListDatasets(), offset, size)
	writeJSON(w, listPage{Items: items, NextPageToken: next})
}

// pathDigest parses the {digest} path value, answering 400 for
// malformed digests.
func (h *handler) pathDigest(w http.ResponseWriter, r *http.Request) (string, bool) {
	digest, err := store.ParseDigest(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return "", false
	}
	return digest, true
}

// datasetGet serves the canonical snapshot — the exact bytes the
// digest hashes to.
func (h *handler) datasetGet(w http.ResponseWriter, r *http.Request) {
	digest, ok := h.pathDigest(w, r)
	if !ok {
		return
	}
	_, canonical, ok := h.store.GetDataset(digest)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %s not found", digest))
		return
	}
	writeRawJSON(w, canonical)
}

// datasetDelete removes a snapshot from the registry and, when
// persistence is on, from disk. Already-cached analysis results for
// the digest are left to their TTL (content addressing keeps them
// correct should the same content ever be re-registered), but a
// single-flight compute that is still in flight when the delete lands
// is barred from being admitted to the cache afterwards: once DELETE
// returns, no *new* cache entry for the digest can appear (see
// store.DeleteDataset). In a fleet, DELETE is strictly local — each
// holder is deleted from individually.
func (h *handler) datasetDelete(w http.ResponseWriter, r *http.Request) {
	digest, ok := h.pathDigest(w, r)
	if !ok {
		return
	}
	if !h.store.DeleteDataset(digest) {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %s not found", digest))
		return
	}
	writeJSON(w, map[string]string{"deleted": digest})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Store    store.Stats  `json:"store"`
	Jobs     jobStats     `json:"jobs"`
	Sessions sessionStats `json:"sessions"`
	// Continuous carries the continuous-audit subsystem's counters:
	// resource counts, schedule fires, alert trips, sink delivery
	// outcomes, and the decision log's activity.
	Continuous *continuous.Stats `json:"continuous,omitempty"`
}

type jobStats struct {
	// Live counts jobs currently held by the manager in any state.
	Live int `json:"live"`
}

type sessionStats struct {
	// Live counts open mutation sessions on this node.
	Live int `json:"live"`
}

// statsReport surfaces the store's hit/miss/eviction/single-flight
// counters and byte accounting, the live job and session counts, and
// the continuous-audit counters. GET /metrics exposes the same signals
// in Prometheus exposition format.
func (h *handler) statsReport(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Store:    h.store.Stats(),
		Jobs:     jobStats{Live: h.jobs.Len()},
		Sessions: sessionStats{Live: h.sessions.Len()},
	}
	if h.cont != nil {
		cs := h.cont.Stats()
		resp.Continuous = &cs
	}
	writeJSON(w, resp)
}
