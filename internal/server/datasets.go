package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/rbac"
	"repro/internal/store"
)

// registerDatasets wires the dataset registry lifecycle and the stats
// endpoint. Called from NewHandler.
func (h *handler) registerDatasets() {
	h.mux.HandleFunc("POST /v1/datasets", h.datasetPut)
	h.mux.HandleFunc("GET /v1/datasets", h.datasetList)
	h.mux.HandleFunc("GET /v1/datasets/{digest}", h.datasetGet)
	h.mux.HandleFunc("DELETE /v1/datasets/{digest}", h.datasetDelete)
	h.mux.HandleFunc("GET /v1/stats", h.statsReport)
}

// datasetPutResponse acknowledges an ingest: the digest every later
// request can reference instead of re-uploading the matrices.
type datasetPutResponse struct {
	Digest  string     `json:"digest"`
	Created bool       `json:"created"`
	Bytes   int64      `json:"bytes"`
	Stats   rbac.Stats `json:"stats"`
}

// datasetPut registers a dataset export: the body is the dataset JSON
// (optionally gzip-compressed), canonicalized and addressed by its
// SHA-256 content digest. Re-uploading identical content answers 200
// with the same digest; new content answers 201.
func (h *handler) datasetPut(w http.ResponseWriter, r *http.Request) {
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	ds, err := rbac.ReadJSON(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse dataset: %w", err))
		return
	}
	digest, created, err := h.store.PutDataset(ds)
	switch {
	case errors.Is(err, store.ErrTooLarge):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	_, canonical, _ := h.store.GetDataset(digest)
	w.Header().Set("Location", "/v1/datasets/"+digest)
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, datasetPutResponse{
		Digest:  digest,
		Created: created,
		Bytes:   int64(len(canonical)),
		Stats:   ds.Stats(),
	})
}

// datasetList enumerates the registered datasets.
func (h *handler) datasetList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string][]store.DatasetInfo{"datasets": h.store.ListDatasets()})
}

// pathDigest parses the {digest} path value, answering 400 for
// malformed digests.
func (h *handler) pathDigest(w http.ResponseWriter, r *http.Request) (string, bool) {
	digest, err := store.ParseDigest(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return "", false
	}
	return digest, true
}

// datasetGet serves the canonical snapshot — the exact bytes the
// digest hashes to.
func (h *handler) datasetGet(w http.ResponseWriter, r *http.Request) {
	digest, ok := h.pathDigest(w, r)
	if !ok {
		return
	}
	_, canonical, ok := h.store.GetDataset(digest)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %s not found", digest))
		return
	}
	writeRawJSON(w, canonical)
}

// datasetDelete removes a snapshot from the registry and, when
// persistence is on, from disk. Cached analysis results for the digest
// are left to their TTL: content addressing keeps them correct should
// the same content ever be re-registered.
func (h *handler) datasetDelete(w http.ResponseWriter, r *http.Request) {
	digest, ok := h.pathDigest(w, r)
	if !ok {
		return
	}
	if !h.store.DeleteDataset(digest) {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %s not found", digest))
		return
	}
	writeJSON(w, map[string]string{"deleted": digest})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Store store.Stats `json:"store"`
	Jobs  jobStats    `json:"jobs"`
}

type jobStats struct {
	// Live counts jobs currently held by the manager in any state.
	Live int `json:"live"`
}

// statsReport surfaces the store's hit/miss/eviction/single-flight
// counters and byte accounting, plus the live job count.
func (h *handler) statsReport(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, statsResponse{
		Store: h.store.Stats(),
		Jobs:  jobStats{Live: h.jobs.Len()},
	})
}
