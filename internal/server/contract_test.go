package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/core"
)

// decodeReport reads an analyze response body into a Report with the
// timing fields cleared, so two runs of the same analysis compare equal.
func decodeReport(t *testing.T, resp *http.Response) core.Report {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	zeroDurations(&rep)
	return rep
}

// decodeError reads an error response's envelope.
func decodeErrorBody(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" {
		t.Fatal("error envelope has empty message")
	}
	return eb
}

// TestEnvelopeBodyOptions verifies the v1 envelope on sync endpoints:
// options in the body behave exactly like the equivalent query
// parameters, and when both are present the body wins.
func TestEnvelopeBodyOptions(t *testing.T) {
	srv := newServer(t)
	dataset := figure1Body(t).String()

	// Baseline: query-parameter form.
	viaQuery := decodeReport(t, post(t, srv, "/v1/analyze?method=rolediet&threshold=2", dataset))

	// Same options via the body envelope.
	viaBody := decodeReport(t, post(t, srv, "/v1/analyze",
		`{"options":{"method":"rolediet","threshold":2},"dataset":`+dataset+`}`))
	if !reflect.DeepEqual(viaQuery, viaBody) {
		t.Fatalf("body options differ from query options:\nquery: %+v\nbody:  %+v", viaQuery, viaBody)
	}

	// Body wins over conflicting query parameters.
	bodyWins := decodeReport(t, post(t, srv, "/v1/analyze?threshold=1&method=dbscan",
		`{"options":{"method":"rolediet","threshold":2},"dataset":`+dataset+`}`))
	if !reflect.DeepEqual(viaQuery, bodyWins) {
		t.Fatalf("body did not win over query params:\nwant: %+v\ngot:  %+v", viaQuery, bodyWins)
	}

	// Sparse pipeline selected via the envelope matches ?sparse=true.
	sparseQuery := decodeReport(t, post(t, srv, "/v1/analyze?sparse=true&threshold=1", dataset))
	sparseBody := decodeReport(t, post(t, srv, "/v1/analyze",
		`{"sparse":true,"options":{"threshold":1},"dataset":`+dataset+`}`))
	if !reflect.DeepEqual(sparseQuery, sparseBody) {
		t.Fatalf("sparse envelope differs from sparse query form")
	}

	// A bare dataset body (no envelope) still works unchanged.
	bare := decodeReport(t, post(t, srv, "/v1/analyze?method=rolediet&threshold=2", dataset))
	if !reflect.DeepEqual(viaQuery, bare) {
		t.Fatal("bare dataset body broke")
	}
}

// TestEnvelopeOnOtherEndpoints verifies consolidate, suggest, and
// query accept the envelope form too.
func TestEnvelopeOnOtherEndpoints(t *testing.T) {
	srv := newServer(t)
	dataset := figure1Body(t).String()
	env := `{"options":{"threshold":1},"dataset":` + dataset + `}`

	if resp := post(t, srv, "/v1/consolidate", env); resp.StatusCode != http.StatusOK {
		t.Fatalf("consolidate envelope status = %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/v1/suggest", env); resp.StatusCode != http.StatusOK {
		t.Fatalf("suggest envelope status = %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/v1/query?user=U01", env); resp.StatusCode != http.StatusOK {
		t.Fatalf("query envelope status = %d", resp.StatusCode)
	}
}

// TestEnvelopeRejectsBadOptions verifies the shared core.Options wire
// schema rejects unknown methods and negative thresholds with 400 +
// bad_request, on both sync endpoints and diff's body options.
func TestEnvelopeRejectsBadOptions(t *testing.T) {
	srv := newServer(t)
	dataset := figure1Body(t).String()
	cases := []struct {
		name, path, body string
	}{
		{"unknown method", "/v1/analyze", `{"options":{"method":"kmeans"},"dataset":` + dataset + `}`},
		{"negative threshold", "/v1/analyze", `{"options":{"threshold":-3},"dataset":` + dataset + `}`},
		{"unknown method via diff", "/v1/diff", `{"options":{"method":"kmeans"},"before":` + dataset + `,"after":` + dataset + `}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, srv, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if eb := decodeErrorBody(t, resp); eb.Code != CodeBadRequest {
				t.Fatalf("code = %q, want %q", eb.Code, CodeBadRequest)
			}
		})
	}
}

// TestErrorEnvelopeCodes pins writeError's code mapping on live
// responses from representative endpoints.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := newServer(t)
	// 400 bad_request: malformed body.
	if eb := decodeErrorBody(t, post(t, srv, "/v1/analyze", "{broken")); eb.Code != CodeBadRequest {
		t.Fatalf("400 code = %q", eb.Code)
	}
	// 422 unprocessable: structurally valid request the engine rejects.
	resp := post(t, srv, "/v1/query?permission=ghost", figure1Body(t).String())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Code != CodeUnprocessable {
		t.Fatalf("422 code = %q", eb.Code)
	}
}

// TestDiffBodyOptionsWin verifies /v1/diff prefers body options over
// query parameters (a bad query method is overridden by a valid body).
func TestDiffBodyOptionsWin(t *testing.T) {
	srv := newServer(t)
	dataset := figure1Body(t).String()
	resp := post(t, srv, "/v1/diff?threshold=9",
		`{"options":{"method":"rolediet","threshold":1},"before":`+dataset+`,"after":`+dataset+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestCodeForTable pins the status -> code mapping documented in the
// package comment.
func TestCodeForTable(t *testing.T) {
	want := map[int]string{
		http.StatusBadRequest:          CodeBadRequest,
		http.StatusNotFound:            CodeNotFound,
		http.StatusConflict:            CodeConflict,
		http.StatusUnprocessableEntity: CodeUnprocessable,
		http.StatusTooManyRequests:     CodeShed,
		http.StatusServiceUnavailable:  CodeCanceled,
		http.StatusGatewayTimeout:      CodeTimeout,
		http.StatusInternalServerError: CodeInternal,
		http.StatusTeapot:              CodeInternal, // anything unlisted falls back
	}
	for status, code := range want {
		if got := codeFor(status); got != code {
			t.Errorf("codeFor(%d) = %q, want %q", status, got, code)
		}
	}
}
