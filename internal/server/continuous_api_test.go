package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/continuous"
	"repro/internal/rbac"
)

// getJSON fetches a path and decodes the body into v, asserting the
// status code.
func getJSON(t *testing.T, srv *httptest.Server, path string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s status = %d, want %d (body %s)", path, resp.StatusCode, wantStatus, body)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s decode: %v", path, err)
		}
	}
}

// del issues a DELETE and returns the status code.
func del(t *testing.T, srv *httptest.Server, path string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestContinuousResourceContract pins the v1 resource contract on the
// continuous-audit surface: 201 + Location on create, 422
// unknown_reference for dangling refs, 404 on unknown ids, and
// unconditionally idempotent DELETE.
func TestContinuousResourceContract(t *testing.T) {
	srv := newServer(t)
	digest := uploadDataset(t, srv, figure1Body(t).Bytes(), http.StatusCreated)

	// Schedule over an unregistered dataset: 422 unknown_reference.
	ghost := strings.Repeat("0", 64)
	resp := post(t, srv, "/v1/schedules",
		fmt.Sprintf(`{"dataset_ref":%q,"interval":"1h"}`, ghost))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("dangling ref status = %d, want 422", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Code != CodeUnknownReference {
		t.Fatalf("dangling ref code = %q, want %q", eb.Code, CodeUnknownReference)
	}

	// Missing interval: 400 bad_request.
	resp = post(t, srv, "/v1/schedules", fmt.Sprintf(`{"dataset_ref":%q}`, digest))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing interval status = %d, want 400", resp.StatusCode)
	}

	// Valid create: 201 with Location naming the new resource.
	resp = post(t, srv, "/v1/schedules",
		fmt.Sprintf(`{"dataset_ref":%q,"interval":"1h","paused":true}`, digest))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201", resp.StatusCode)
	}
	var sched continuous.Schedule
	if err := json.NewDecoder(resp.Body).Decode(&sched); err != nil {
		t.Fatal(err)
	}
	if sched.ID == "" {
		t.Fatal("created schedule has no id")
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/schedules/"+sched.ID {
		t.Fatalf("Location = %q, want /v1/schedules/%s", loc, sched.ID)
	}

	// The resource reads back, by id and in the list envelope.
	var got continuous.Schedule
	getJSON(t, srv, "/v1/schedules/"+sched.ID, http.StatusOK, &got)
	if got.DatasetRef != digest {
		t.Fatalf("schedule dataset_ref = %q, want %q", got.DatasetRef, digest)
	}
	var page struct {
		Items []continuous.Schedule `json:"items"`
	}
	getJSON(t, srv, "/v1/schedules", http.StatusOK, &page)
	if len(page.Items) != 1 || page.Items[0].ID != sched.ID {
		t.Fatalf("schedule list = %+v", page.Items)
	}

	// Unknown id is 404 with the error envelope.
	resp2, err := http.Get(srv.URL + "/v1/schedules/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp2.StatusCode)
	}

	// DELETE is idempotent: the second delete of the same id (and a
	// delete of an id that never existed) is the same 204.
	for i, path := range []string{
		"/v1/schedules/" + sched.ID,
		"/v1/schedules/" + sched.ID,
		"/v1/schedules/never-existed",
	} {
		if code := del(t, srv, path); code != http.StatusNoContent {
			t.Fatalf("delete #%d status = %d, want 204", i, code)
		}
	}

	// Alert rule referencing an unknown sink: 422 unknown_reference.
	resp = post(t, srv, "/v1/alerts", `{"type":"spike","threshold":2,"sink_ids":["ghost"]}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("dangling sink status = %d, want 422", resp.StatusCode)
	}

	// Sink and alert follow the same create/read/delete contract.
	resp = post(t, srv, "/v1/sinks", `{"url":"http://127.0.0.1:9/hook","name":"test"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sink create status = %d, want 201", resp.StatusCode)
	}
	var sink continuous.Sink
	if err := json.NewDecoder(resp.Body).Decode(&sink); err != nil {
		t.Fatal(err)
	}
	resp = post(t, srv, "/v1/alerts",
		fmt.Sprintf(`{"type":"spike","threshold":2,"sink_ids":[%q]}`, sink.ID))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("alert create status = %d, want 201", resp.StatusCode)
	}
	var rule continuous.Rule
	if err := json.NewDecoder(resp.Body).Decode(&rule); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv, "/v1/alerts/"+rule.ID, http.StatusOK, nil)
	getJSON(t, srv, "/v1/sinks/"+sink.ID, http.StatusOK, nil)
	if code := del(t, srv, "/v1/alerts/"+rule.ID); code != http.StatusNoContent {
		t.Fatalf("alert delete status = %d", code)
	}
	if code := del(t, srv, "/v1/sinks/"+sink.ID); code != http.StatusNoContent {
		t.Fatalf("sink delete status = %d", code)
	}
}

// TestListPaginationContract walks a dataset listing page by page and
// pins the error contract for malformed page parameters.
func TestListPaginationContract(t *testing.T) {
	srv := newServer(t)
	// Three distinct datasets (figure 1 with a different extra user each).
	for i := 0; i < 3; i++ {
		ds := rbac.Figure1()
		if err := ds.AddUser(rbac.UserID(fmt.Sprintf("extra-%d", i))); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		uploadDataset(t, srv, buf.Bytes(), http.StatusCreated)
	}

	type page struct {
		Items         []json.RawMessage `json:"items"`
		NextPageToken string            `json:"next_page_token"`
	}
	var seen int
	token := ""
	for hops := 0; ; hops++ {
		if hops > 4 {
			t.Fatal("pagination did not terminate")
		}
		path := "/v1/datasets?page_size=2"
		if token != "" {
			path += "&page_token=" + token
		}
		var p page
		getJSON(t, srv, path, http.StatusOK, &p)
		if len(p.Items) > 2 {
			t.Fatalf("page overflows page_size: %d items", len(p.Items))
		}
		seen += len(p.Items)
		if p.NextPageToken == "" {
			break
		}
		token = p.NextPageToken
	}
	if seen != 3 {
		t.Fatalf("walked %d datasets, want 3", seen)
	}

	// Malformed tokens answer 400 invalid_page_token; a bad page_size
	// is a plain 400 bad_request.
	resp, err := http.Get(srv.URL + "/v1/datasets?page_token=not-a-token")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token status = %d, want 400", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Code != CodeInvalidPageToken {
		t.Fatalf("bad token code = %q, want %q", eb.Code, CodeInvalidPageToken)
	}
	resp2, err := http.Get(srv.URL + "/v1/datasets?page_size=zero")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad page_size status = %d, want 400", resp2.StatusCode)
	}
	if eb := decodeErrorBody(t, resp2); eb.Code != CodeBadRequest {
		t.Fatalf("bad page_size code = %q, want %q", eb.Code, CodeBadRequest)
	}

	// The jobs, sessions, schedules, alerts, sinks, and decisions lists
	// speak the same envelope.
	for _, path := range []string{
		"/v1/jobs", "/v1/sessions", "/v1/schedules",
		"/v1/alerts", "/v1/sinks", "/v1/decisions",
	} {
		var p page
		getJSON(t, srv, path, http.StatusOK, &p)
		if p.Items == nil {
			t.Fatalf("%s items missing or null", path)
		}
	}
}

// TestMetricsExposition verifies /metrics serves the Prometheus text
// format and that request counters move when traffic flows.
func TestMetricsExposition(t *testing.T) {
	srv := newServer(t)
	if resp := post(t, srv, "/v1/analyze", figure1Body(t).String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`rolediet_http_requests_total{route="POST /v1/analyze",code="200"} 1`,
		`rolediet_http_request_duration_seconds_count{route="POST /v1/analyze"} 1`,
		"# TYPE rolediet_http_requests_total counter",
		"rolediet_schedules 0",
		"rolediet_decisions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestDecisionLogRecordsAPIRuns verifies every sync analysis lands in
// GET /v1/decisions with its source, kind, digest, and cache outcome.
func TestDecisionLogRecordsAPIRuns(t *testing.T) {
	srv := newServer(t)
	body := figure1Body(t).String()
	for i := 0; i < 2; i++ { // second run is a cache hit
		if resp := post(t, srv, "/v1/analyze", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze #%d status = %d", i, resp.StatusCode)
		}
	}
	var page struct {
		Items []continuous.Decision `json:"items"`
	}
	getJSON(t, srv, "/v1/decisions", http.StatusOK, &page)
	if len(page.Items) != 2 {
		t.Fatalf("decisions = %d, want 2 (%+v)", len(page.Items), page.Items)
	}
	first, second := page.Items[0], page.Items[1]
	if first.Source != "api" || first.Kind != "analyze" || first.Dataset == "" || first.Fingerprint == "" {
		t.Fatalf("first decision incomplete: %+v", first)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("cache outcomes = %v,%v, want miss,hit", first.CacheHit, second.CacheHit)
	}
	if second.Seq <= first.Seq {
		t.Fatalf("decision seq not increasing: %d then %d", first.Seq, second.Seq)
	}

	// Cursor pagination: asking for what follows the first seq returns
	// exactly the second decision.
	var tail struct {
		Items []continuous.Decision `json:"items"`
	}
	getJSON(t, srv, fmt.Sprintf("/v1/decisions?page_token=%d", first.Seq), http.StatusOK, &tail)
	if len(tail.Items) != 1 || tail.Items[0].Seq != second.Seq {
		t.Fatalf("cursor tail = %+v", tail.Items)
	}
}

// TestJobsListEndpoint verifies GET /v1/jobs lists a submitted job in
// the page envelope.
func TestJobsListEndpoint(t *testing.T) {
	srv := newServer(t)
	resp := post(t, srv, "/v1/jobs",
		`{"kind":"analyze","dataset":`+figure1Body(t).String()+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	var page struct {
		Items []struct {
			ID string `json:"id"`
		} `json:"items"`
	}
	getJSON(t, srv, "/v1/jobs", http.StatusOK, &page)
	found := false
	for _, it := range page.Items {
		if it.ID == job.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s not in list %+v", job.ID, page.Items)
	}
}

// TestDecisionLogFlushesOnHandlerClose pins the shutdown wiring: the
// handler owns the buffered decision log, and closing it must flush
// pending decisions so a restarted handler on the same path replays
// them and continues the sequence. A daemon that skips the handler
// Close loses every decision buffered since the last timer flush.
func TestDecisionLogFlushesOnHandlerClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	body := figure1Body(t).String()

	h1 := NewHandler(Options{DecisionLogPath: path})
	srv1 := httptest.NewServer(h1)
	if resp := post(t, srv1, "/v1/analyze", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	srv1.Close()
	c, ok := h1.(io.Closer)
	if !ok {
		t.Fatal("NewHandler result does not implement io.Closer")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("handler close: %v", err)
	}

	h2 := NewHandler(Options{DecisionLogPath: path})
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	defer h2.(io.Closer).Close()
	var page struct {
		Items []continuous.Decision `json:"items"`
	}
	getJSON(t, srv2, "/v1/decisions", http.StatusOK, &page)
	if len(page.Items) != 1 || page.Items[0].Seq != 1 {
		t.Fatalf("replayed decisions = %+v, want the one flushed on close", page.Items)
	}
	if resp := post(t, srv2, "/v1/analyze", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze after restart status = %d", resp.StatusCode)
	}
	getJSON(t, srv2, "/v1/decisions", http.StatusOK, &page)
	if len(page.Items) != 2 || page.Items[1].Seq != 2 {
		t.Fatalf("post-restart decisions = %+v, want seq continuing at 2", page.Items)
	}
}
