package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// Uniform pagination for every list endpoint: responses are
//
//	{"items": [...], "next_page_token": "..."}
//
// controlled by ?page_size= (1..maxPageSize, default defaultPageSize)
// and ?page_token= (opaque; the previous response's next_page_token).
// An absent next_page_token means the listing is exhausted. Tokens are
// positions into the snapshot the server holds at request time; a
// malformed or negative token answers 400 invalid_page_token so the
// client knows to restart from the beginning rather than retry.

const (
	defaultPageSize = 100
	maxPageSize     = 1000
)

// listPage is the wire shape of every paginated list response. Items
// is always non-nil so an empty page renders [] rather than null.
type listPage struct {
	Items         any    `json:"items"`
	NextPageToken string `json:"next_page_token,omitempty"`
	// Node names the serving node on node-local listings (sessions,
	// jobs); empty elsewhere.
	Node string `json:"node,omitempty"`
}

// pageParams decodes ?page_size= and ?page_token= (an integer offset
// or sequence cursor rendered opaque to clients), answering 400 —
// bad_request for a broken page_size, invalid_page_token for a broken
// token — when they do not parse.
func pageParams(w http.ResponseWriter, r *http.Request) (offset int64, size int, ok bool) {
	size = defaultPageSize
	q := r.URL.Query()
	if s := q.Get("page_size"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("page_size %q must be a positive integer", s))
			return 0, 0, false
		}
		if n > maxPageSize {
			n = maxPageSize
		}
		size = n
	}
	if t := q.Get("page_token"); t != "" {
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil || n < 0 {
			writeErrorCode(w, http.StatusBadRequest, CodeInvalidPageToken,
				fmt.Errorf("page_token %q is not a token this server issued; restart the listing", t))
			return 0, 0, false
		}
		offset = n
	}
	return offset, size, true
}

// pageSlice windows a snapshot listing by offset, returning the page
// and the next token ("" when the listing is exhausted).
func pageSlice[T any](items []T, offset int64, size int) ([]T, string) {
	if offset >= int64(len(items)) {
		return []T{}, ""
	}
	end := offset + int64(size)
	if end >= int64(len(items)) {
		return items[offset:], ""
	}
	return items[offset:end], strconv.FormatInt(end, 10)
}
