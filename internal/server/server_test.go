package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(Options{}))
	t.Cleanup(srv.Close)
	return srv
}

func figure1Body(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := rbac.Figure1().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
		Node   string `json:"node"`
		State  string `json:"state"`
		Ready  bool   `json:"ready"`
		Boot   string `json:"boot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Fatalf("body = %+v", body)
	}
	if body.Node == "" || body.Boot == "" {
		t.Fatalf("healthz missing node identity: %+v", body)
	}
	if body.State != "ready" || !body.Ready {
		t.Fatalf("healthz not ready: %+v", body)
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.SameUserGroups) != 1 || rep.SameUserGroups[0].Roles[0] != "R02" {
		t.Fatalf("report groups = %+v", rep.SameUserGroups)
	}
	if rep.Method != "rolediet" {
		t.Fatalf("method = %q", rep.Method)
	}
}

func TestAnalyzeQueryParameters(t *testing.T) {
	srv := newServer(t)
	// Explicit method + threshold + sparse.
	resp, err := http.Post(srv.URL+"/v1/analyze?method=rolediet&threshold=2&sparse=true",
		"application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.SimilarThreshold != 2 {
		t.Fatalf("threshold = %d", rep.SimilarThreshold)
	}
}

func TestAnalyzeBadInputs(t *testing.T) {
	srv := newServer(t)
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"bad json", "/v1/analyze", "{nope", http.StatusBadRequest},
		{"bad method", "/v1/analyze?method=kmeans", "{}", http.StatusBadRequest},
		{"bad threshold", "/v1/analyze?threshold=x", "{}", http.StatusBadRequest},
		{"negative threshold", "/v1/analyze?threshold=-1", "{}", http.StatusBadRequest},
		{"bad sparse", "/v1/analyze?sparse=maybe", "{}", http.StatusBadRequest},
		{"sparse dbscan", "/v1/analyze?sparse=true&method=dbscan", "{}", http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := tc.body
			if body == "{}" {
				body = figure1Body(t).String()
			}
			resp, err := http.Post(srv.URL+tc.url, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var e errorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Error == "" {
				t.Fatal("empty error body")
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestConsolidateEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/consolidate", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Plan         *consolidate.Plan `json:"plan"`
		RolesBefore  int               `json:"rolesBefore"`
		RolesAfter   int               `json:"rolesAfter"`
		Consolidated *rbac.Dataset     `json:"consolidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RolesBefore != 5 || out.RolesAfter != 4 {
		t.Fatalf("roles %d -> %d", out.RolesBefore, out.RolesAfter)
	}
	if out.Plan.RolesRemoved() != 1 {
		t.Fatalf("plan = %+v", out.Plan)
	}
	if out.Consolidated.NumRoles() != 4 {
		t.Fatalf("consolidated roles = %d", out.Consolidated.NumRoles())
	}
	// The returned dataset must still pass the safety check.
	if err := consolidate.VerifySafety(rbac.Figure1(), out.Consolidated); err != nil {
		t.Fatal(err)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/suggest?threshold=1", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var suggestions []consolidate.Suggestion
	if err := json.NewDecoder(resp.Body).Decode(&suggestions); err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions returned")
	}
	if !suggestions[0].RiskFree() {
		t.Fatalf("first suggestion not risk-free: %+v", suggestions[0])
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Options{MaxBodyBytes: 64}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status = %d, want 400", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/v1/query?user=U01&permission=P05",
		"application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Grants    []struct{ Via rbac.RoleID } `json:"grants"`
		HasAccess *bool                       `json:"hasAccess"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.HasAccess == nil || !*out.HasAccess || len(out.Grants) != 1 || out.Grants[0].Via != "R04" {
		t.Fatalf("query response: %+v", out)
	}

	// User-only and permission-only selectors.
	resp2, err := http.Post(srv.URL+"/v1/query?user=U01", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("user-only status = %d", resp2.StatusCode)
	}
	resp3, err := http.Post(srv.URL+"/v1/query?permission=P05", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("perm-only status = %d", resp3.StatusCode)
	}

	// Errors: no selector; unknown user.
	resp4, err := http.Post(srv.URL+"/v1/query", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-selector status = %d", resp4.StatusCode)
	}
	resp5, err := http.Post(srv.URL+"/v1/query?user=ghost", "application/json", figure1Body(t))
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	if resp5.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ghost-user status = %d", resp5.StatusCode)
	}
}

func TestDiffEndpoint(t *testing.T) {
	srv := newServer(t)
	before := rbac.Figure1()
	after, _, err := consolidate.Consolidate(before, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]*rbac.Dataset{"before": before, "after": after}
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/diff", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Improved bool `json:"improved"`
		Counts   struct {
			Deltas []struct {
				Name   string `json:"name"`
				Before int    `json:"before"`
				After  int    `json:"after"`
			} `json:"deltas"`
		} `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Improved {
		t.Fatalf("consolidation not reported as improvement: %+v", out)
	}

	// Missing halves are rejected.
	resp2, err := http.Post(srv.URL+"/v1/diff", "application/json",
		strings.NewReader(`{"before":null,"after":null}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing halves status = %d", resp2.StatusCode)
	}
}
