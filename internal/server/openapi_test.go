package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// specRoutes parses api/openapi.yaml line-based (the toolchain has no
// YAML dependency) and returns every documented "METHOD /path". The
// spec's formatting contract — paths at two-space indent under
// "paths:", HTTP methods at four-space indent — is noted at the top
// of the file.
func specRoutes(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "api", "openapi.yaml"))
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	methods := map[string]bool{"get": true, "post": true, "put": true, "patch": true, "delete": true}
	routes := make(map[string]bool)
	inPaths := false
	current := ""
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimRight(line, " \r")
		switch {
		case trimmed == "paths:":
			inPaths = true
		case inPaths && len(trimmed) > 0 && trimmed[0] != ' ' && trimmed[0] != '#':
			inPaths = false // left the paths: block (components:, etc.)
		case inPaths && strings.HasPrefix(trimmed, "  ") && !strings.HasPrefix(trimmed, "   ") &&
			strings.HasSuffix(trimmed, ":"):
			current = strings.TrimSuffix(strings.TrimSpace(trimmed), ":")
		case inPaths && strings.HasPrefix(trimmed, "    ") && !strings.HasPrefix(trimmed, "     ") &&
			strings.HasSuffix(trimmed, ":"):
			m := strings.TrimSuffix(strings.TrimSpace(trimmed), ":")
			if methods[m] && current != "" {
				routes[strings.ToUpper(m)+" "+current] = true
			}
		}
	}
	if len(routes) == 0 {
		t.Fatal("parsed no routes from api/openapi.yaml — formatting contract broken?")
	}
	return routes
}

// TestOpenAPISpecMatchesRoutes is the drift check between the
// documented contract and the live mux: every registered route must
// appear in api/openapi.yaml and every documented route must be
// registered. Run in CI, so adding an endpoint without documenting it
// (or documenting one that does not exist) fails the build.
func TestOpenAPISpecMatchesRoutes(t *testing.T) {
	h, ok := NewHandler(Options{}).(interface{ Routes() []string })
	if !ok {
		t.Fatal("NewHandler result does not expose Routes()")
	}
	registered := make(map[string]bool)
	for _, r := range h.Routes() {
		registered[r] = true
	}
	documented := specRoutes(t)

	var missing, stale []string
	for r := range registered {
		if !documented[r] {
			missing = append(missing, r)
		}
	}
	for r := range documented {
		if !registered[r] {
			stale = append(stale, r)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	var msgs []string
	if len(missing) > 0 {
		msgs = append(msgs, fmt.Sprintf("registered but undocumented in api/openapi.yaml:\n\t%s",
			strings.Join(missing, "\n\t")))
	}
	if len(stale) > 0 {
		msgs = append(msgs, fmt.Sprintf("documented in api/openapi.yaml but not registered:\n\t%s",
			strings.Join(stale, "\n\t")))
	}
	if len(msgs) > 0 {
		t.Fatal(strings.Join(msgs, "\n"))
	}
}
