package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// Fleet-facing HTTP surface. Everything here degrades gracefully: a
// single-node daemon (no -peers) serves the same endpoints with
// enabled=false and strictly local behaviour, and a fleet node whose
// peers are down answers with explicit, bounded errors instead of
// hanging.

// fleetHeader marks node-to-node requests so routing cannot loop:
//
//	forward    a peer relayed a client upload to us (the owner);
//	           store it and fan out replication, but never re-forward
//	replicate  the owner is pushing us a replica; store it and stop
const fleetHeader = "X-Rolediet-Fleet"

// registerFleet wires the internal raw-transfer endpoint and the
// scatter-gather stats endpoint. Called from NewHandler.
func (h *handler) registerFleet() {
	h.handle("GET /v1/datasets/{digest}/raw", h.datasetRaw)
	h.handle("GET /v1/fleet/stats", h.fleetStats)
}

// datasetRaw serves the exact canonical bytes of a locally held
// dataset — the internal peer-transfer endpoint FetchDataset calls.
// Strictly local by design: it must never trigger a recursive fleet
// fetch, so a digest this node does not hold is a plain 404 and the
// caller walks to the next holder itself. No framing newline is added;
// the body hashes to the digest, which is how the fetching peer
// verifies the transfer.
func (h *handler) datasetRaw(w http.ResponseWriter, r *http.Request) {
	digest, ok := h.pathDigest(w, r)
	if !ok {
		return
	}
	_, canonical, ok := h.store.GetDataset(digest)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("dataset %s not held by this node", digest))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(canonical)))
	_, _ = w.Write(canonical)
}

// forwardPut relays an external upload to the digest's owner through
// the hardened client, reporting whether the relay succeeded. The
// owner stores the dataset and fans out replication itself.
func (h *handler) forwardPut(ctx context.Context, owner string, canonical []byte) (*fleet.PeerResponse, error) {
	hdr := http.Header{fleetHeader: []string{"forward"}, "Content-Type": []string{"application/json"}}
	resp, err := h.fleet.Do(ctx, http.MethodPost, owner, "/v1/datasets", canonical, hdr)
	h.fleet.NoteForward(err == nil)
	return resp, err
}

// replicateAsync pushes the canonical bytes to every other holder in
// the background. Replication is best-effort but persistent within its
// window: a replica that is down or still booting is re-tried with a
// pause in between (a startup race must not silently lose the replica
// forever), content addressing makes every re-push idempotent, reads
// fall back to the owner while a replica is missing, and failures are
// counted and logged, never surfaced to the uploader.
func (h *handler) replicateAsync(digest string, canonical []byte) {
	if !h.fleet.Enabled() {
		return
	}
	base := h.opts.BaseContext
	if base == nil {
		base = context.Background()
	}
	for _, peer := range h.fleet.Holders(digest) {
		if peer == h.fleet.Self() {
			continue
		}
		go func(peer string) {
			ctx, cancel := context.WithTimeout(base, 30*time.Second)
			defer cancel()
			hdr := http.Header{fleetHeader: []string{"replicate"}, "Content-Type": []string{"application/json"}}
			var err error
			for {
				_, err = h.fleet.Do(ctx, http.MethodPost, peer, "/v1/datasets", canonical, hdr)
				if err == nil || ctx.Err() != nil {
					break
				}
				t := time.NewTimer(time.Second)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
				}
			}
			h.fleet.NoteReplication(err == nil)
			if err != nil {
				h.opts.Logf("fleet: replicate %s to %s abandoned: %v", digest, peer, err)
			}
		}(peer)
	}
}

// fleetNode is one node's local slice of the fleet stats.
type fleetNode struct {
	Peer  string      `json:"peer,omitempty"`
	Node  string      `json:"node"`
	State string      `json:"state"`
	Boot  string      `json:"boot,omitempty"`
	Store store.Stats `json:"store"`
	Jobs  jobStats    `json:"jobs"`
}

// skippedPeer records a peer the scatter-gather could not reach.
type skippedPeer struct {
	Peer  string `json:"peer"`
	Error string `json:"error"`
}

// fleetStatsResponse is the /v1/fleet/stats payload. Skipped is always
// present so partial failure is visible, not silent.
type fleetStatsResponse struct {
	Enabled bool          `json:"enabled"`
	Self    fleetNode     `json:"self"`
	Fleet   *fleet.Stats  `json:"fleet,omitempty"`
	Nodes   []fleetNode   `json:"nodes"`
	Skipped []skippedPeer `json:"skipped"`
}

// localFleetNode snapshots this node's own slice.
func (h *handler) localFleetNode() fleetNode {
	state := fleet.StateReady
	if h.opts.Readiness != nil && !h.opts.Readiness() {
		state = fleet.StateDraining
	}
	n := fleetNode{
		Node:  h.nodeID,
		State: state,
		Boot:  h.boot,
		Store: h.store.Stats(),
		Jobs:  jobStats{Live: h.jobs.Len()},
	}
	if h.fleet.Enabled() {
		n.Peer = h.fleet.Self()
	}
	return n
}

// fleetStats answers both forms of the stats endpoint:
//
//	?scope=local   this node's slice only (what peers gather)
//	default        scatter-gather across the membership, tolerating
//	               partial failure: unreachable peers land in
//	               "skipped" with their error, reachable ones in
//	               "nodes", and the local fleet client state (per-peer
//	               breaker + health generation counters) rides along
func (h *handler) fleetStats(w http.ResponseWriter, r *http.Request) {
	local := h.localFleetNode()
	if r.URL.Query().Get("scope") == "local" || !h.fleet.Enabled() {
		if r.URL.Query().Get("scope") == "local" {
			writeJSON(w, local)
			return
		}
		writeJSON(w, fleetStatsResponse{
			Enabled: false,
			Self:    local,
			Nodes:   []fleetNode{},
			Skipped: []skippedPeer{},
		})
		return
	}

	fs := h.fleet.Stats()
	resp := fleetStatsResponse{
		Enabled: true,
		Self:    local,
		Fleet:   &fs,
		Nodes:   []fleetNode{},
		Skipped: []skippedPeer{},
	}
	type gathered struct {
		peer string
		node *fleetNode
		err  error
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out []gathered
	)
	for _, peer := range h.fleet.Peers() {
		if peer == h.fleet.Self() {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			g := gathered{peer: peer}
			pr, err := h.fleet.Do(r.Context(), http.MethodGet, peer, "/v1/fleet/stats?scope=local", nil, nil)
			if err != nil {
				g.err = err
			} else {
				var n fleetNode
				if uerr := json.Unmarshal(pr.Body, &n); uerr != nil {
					g.err = fmt.Errorf("parse peer stats: %w", uerr)
				} else {
					n.Peer = peer
					g.node = &n
				}
			}
			mu.Lock()
			out = append(out, g)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	// Deterministic order: walk the membership, not goroutine finish
	// order.
	byPeer := make(map[string]gathered, len(out))
	for _, g := range out {
		byPeer[g.peer] = g
	}
	for _, peer := range h.fleet.Peers() {
		g, ok := byPeer[peer]
		if !ok {
			continue
		}
		if g.err != nil {
			resp.Skipped = append(resp.Skipped, skippedPeer{Peer: peer, Error: g.err.Error()})
		} else {
			resp.Nodes = append(resp.Nodes, *g.node)
		}
	}
	writeJSON(w, resp)
}

// bootID generates the per-process instance identifier /healthz
// reports; the fleet prober uses a change under the same URL to detect
// a restart.
func bootID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// buildVersion reports the module build version for /healthz.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}
