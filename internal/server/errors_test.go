package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// post is a helper hitting an endpoint with a raw body.
func post(t *testing.T, srv *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestConsolidateBadInputs(t *testing.T) {
	srv := newServer(t)
	if resp := post(t, srv, "/v1/consolidate?threshold=x", "{}"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad threshold status = %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/v1/consolidate", "{broken"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	// Unknown method propagates through queryOptions.
	if resp := post(t, srv, "/v1/consolidate?method=kmeans", "{}"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method status = %d", resp.StatusCode)
	}
}

func TestSuggestBadInputs(t *testing.T) {
	srv := newServer(t)
	if resp := post(t, srv, "/v1/suggest?threshold=-2", "{}"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad threshold status = %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/v1/suggest", "nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	// Empty dataset: valid request, empty suggestion list (not null).
	resp := post(t, srv, "/v1/suggest",
		`{"users":[],"roles":[],"permissions":[],"userAssignments":[],"permissionAssignments":[]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty dataset status = %d", resp.StatusCode)
	}
	var suggestions []struct{}
	if err := json.NewDecoder(resp.Body).Decode(&suggestions); err != nil {
		t.Fatal(err)
	}
	if suggestions == nil {
		t.Fatal("null suggestions instead of empty list")
	}
}

func TestQueryBadInputs(t *testing.T) {
	srv := newServer(t)
	if resp := post(t, srv, "/v1/query?user=u", "{broken"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	body := figure1Body(t).String()
	// Unknown permission in perm-only mode.
	if resp := post(t, srv, "/v1/query?permission=ghost", body); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ghost permission status = %d", resp.StatusCode)
	}
	// Unknown permission in why mode.
	if resp := post(t, srv, "/v1/query?user=U01&permission=ghost", body); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ghost why status = %d", resp.StatusCode)
	}
}

func TestDiffBadInputs(t *testing.T) {
	srv := newServer(t)
	if resp := post(t, srv, "/v1/diff", "{broken"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d", resp.StatusCode)
	}
	if resp := post(t, srv, "/v1/diff?threshold=x", "{}"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad threshold status = %d", resp.StatusCode)
	}
	body := figure1Body(t).String()
	// Only one half present.
	if resp := post(t, srv, "/v1/diff", `{"before":`+body+`}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("half diff status = %d", resp.StatusCode)
	}
	// Identical halves: valid, not improved.
	resp := post(t, srv, "/v1/diff", `{"before":`+body+`,"after":`+body+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identity diff status = %d", resp.StatusCode)
	}
	var out struct {
		Improved bool `json:"improved"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Improved {
		t.Fatal("identity diff reported improvement")
	}
}
