// Package server exposes the detection framework as a JSON-over-HTTP
// service, the deployment shape an organisation would actually run the
// periodic audit through: an IAM export is POSTed, the inefficiency
// report (or merge plan, or review suggestions) comes back — either
// synchronously, or through the async jobs API for organisation-scale
// matrices whose hard classes take minutes.
//
// # Endpoints
//
//	GET    /healthz                 liveness probe (JSON: node id, state, boot, version)
//	GET    /metrics                 Prometheus text exposition (per-route latency/counts,
//	                                schedule fires, alert trips, sink deliveries, decisions)
//	POST   /v1/analyze              dataset -> inefficiency report
//	POST   /v1/consolidate          dataset -> {plan, consolidated dataset}
//	POST   /v1/suggest              dataset -> similar-merge suggestions
//	POST   /v1/query                dataset -> access-review answers
//	POST   /v1/diff                 {before, after} -> structural + audit diff
//	POST   /v1/optimize             dataset -> {plan, optimized dataset}; ?mode=async -> 202 + job
//	GET    /v1/optimize/{digest}/plan  paginated plan actions for a registered dataset
//	POST   /v1/jobs                 submit async analyze/consolidate/suggest/optimize -> 202 + job
//	GET    /v1/jobs                 list live jobs (snapshots, oldest first)
//	GET    /v1/jobs/{id}            job status + {stage, fraction} progress
//	GET    /v1/jobs/{id}/result     finished job's result (same shape as the sync endpoint)
//	DELETE /v1/jobs/{id}            cancel a queued or running job
//	POST   /v1/datasets             register a dataset -> content digest (201/200)
//	GET    /v1/datasets             list registered datasets
//	GET    /v1/datasets/{digest}    canonical dataset snapshot
//	DELETE /v1/datasets/{digest}    remove a dataset from registry and disk (local node only)
//	GET    /v1/stats                store cache/registry counters + live job and session counts
//	GET    /v1/datasets/{digest}/raw   canonical bytes, strictly local (internal peer transfer)
//	GET    /v1/fleet/stats          scatter-gathered fleet view; ?scope=local for one node
//	POST   /v1/sessions             open a live mutation session over a base dataset_ref
//	GET    /v1/sessions             list live sessions
//	GET    /v1/sessions/{id}        session snapshot (events applied, dataset stats)
//	DELETE /v1/sessions/{id}        close a session
//	POST   /v1/sessions/{id}/events apply a JSONL replay event batch -> applied count
//	GET    /v1/sessions/{id}/audit  O(answer) duplicate-group audit; ?mode=async runs it as a job
//	POST   /v1/drift                {before_ref, after_ref} -> duplicate groups gained/lost + event count
//	POST   /v1/schedules            create a continuous-audit schedule -> 201 + Location
//	GET    /v1/schedules            list schedules with run/failure counters
//	GET    /v1/schedules/{id}       one schedule
//	DELETE /v1/schedules/{id}       remove a schedule (idempotent: always 204)
//	POST   /v1/alerts               create an alert rule (spike|drift|recall) -> 201 + Location
//	GET    /v1/alerts               list alert rules with trip counters
//	GET    /v1/alerts/{id}          one alert rule
//	DELETE /v1/alerts/{id}          remove an alert rule (idempotent: always 204)
//	POST   /v1/sinks                create a webhook sink -> 201 + Location
//	GET    /v1/sinks                list sinks with delivery and breaker state
//	GET    /v1/sinks/{id}           one sink
//	DELETE /v1/sinks/{id}           remove a sink (idempotent: always 204)
//	GET    /v1/decisions            decision-log window, newest-capable cursor pagination
//
// # Continuous audit
//
// The /v1/schedules, /v1/alerts, /v1/sinks, and /v1/decisions resources
// form the continuous-audit subsystem (see internal/continuous).
// Schedules fire analyze or drift runs on the shared async worker pool
// at a fixed interval; alert rules evaluate each run's outcome against
// the previous one (findings spike, duplicate-group drift, recall
// regression); tripped alerts are delivered to every webhook sink
// through per-sink retry/backoff and a circuit breaker; and every
// analysis decision — API-triggered, job-triggered, or scheduled — is
// appended to a buffered JSONL decision log that survives restarts and
// is readable back through GET /v1/decisions. These resources follow
// the v1 contract: creation answers 201 with a Location header, a body
// referencing an unknown dataset or session answers 422
// unknown_reference, and DELETE is idempotent (204 whether or not the
// id existed).
//
// # Pagination
//
// Every list endpoint (datasets, sessions, jobs, schedules, alerts,
// sinks, decisions) answers the uniform page envelope
//
//	{"items": [...], "next_page_token": "<opaque>"}
//
// and accepts ?page_size= (default 100, max 1000) and ?page_token=
// (the previous page's next_page_token). next_page_token is omitted on
// the final page. A malformed or foreign token answers 400
// invalid_page_token; tokens are opaque and only valid for the
// endpoint that issued them. /v1/decisions pages by log cursor, so a
// page boundary is stable even while new decisions are appended.
//
// In a fleet deployment (Options.Fleet set), POST /v1/datasets routes
// the upload to the digest's rendezvous owner and replicates it, and
// any dataset_ref that is not held locally is fetched from a fleet
// holder, verified, and cached before the request proceeds — see
// internal/fleet and the fleet endpoints above. Without a fleet every
// endpoint is strictly local.
//
// # Request contract
//
// Every dataset-consuming POST accepts two body shapes:
//
//   - A bare dataset export (back-compat): the body is the dataset JSON
//     and analysis options come from query parameters — method
//     (rolediet|dbscan|hnsw|lsh|dbscan-float64), threshold (int >= 0),
//     workers (int >= 0; >= 2 fans grouping out over that many
//     goroutines), sparse (bool). /v1/query takes user and/or
//     permission selectors;
//     /v1/diff accepts method/threshold the same way.
//
//   - A v1 envelope: {"dataset": {...}, "options": {...}, "sparse": bool}
//     where "options" follows the core.Options wire schema (one schema
//     shared with the jobs API and the CLI). When the envelope carries
//     "options" or "sparse" they win over the equivalent query
//     parameters. /v1/jobs additionally requires "kind":
//     "analyze"|"consolidate"|"suggest"|"optimize". /v1/diff keeps its
//     {"before", "after"} body and gains an optional "options" member.
//     /v1/optimize reads its planner knobs from an extra "optimize"
//     member (mine, maxAddedEdges, maxCandidates, maxRounds, workers);
//     analysis options always come from the shared "options" member.
//
// Instead of an inline "dataset", the envelope may carry
// {"dataset_ref": "<digest>"} naming a dataset previously registered
// via POST /v1/datasets (64 hex characters, optionally prefixed
// "sha256:"). /v1/diff likewise accepts "before_ref"/"after_ref" in
// place of the inline snapshots, so two stored snapshots can be
// compared without re-shipping either. An unknown or deleted reference
// answers 404 not_found; supplying both the inline field and its ref is
// a 400.
//
// Request bodies on every POST endpoint may be compressed with
// Content-Encoding: gzip; the decompressed size is bounded by the same
// MaxBodyBytes limit as plain bodies, and any other Content-Encoding
// is rejected with 415.
//
// Sync and async requests share one decode, validation, and dispatch
// path, so a job's result is byte-for-byte the corresponding sync
// endpoint's response (modulo timing fields).
//
// # Result cache
//
// Analyze, consolidate, suggest, optimize, and diff responses are cached in the
// store under (dataset digest, options fingerprint, kind): a repeated
// identical request — whether by reference or with the same inline
// content — is served from cache byte-for-byte without re-running the
// engine, and N concurrent identical requests run the engine once
// (single-flight). Sync responses carry an X-Cache: hit|miss header;
// GET /v1/stats exposes the hit/miss/eviction/single-flight counters.
// Cached entries expire after the store TTL and are bounded by its
// byte-budget LRU; errors are never cached.
//
// # Async jobs
//
// POST /v1/jobs enqueues work on a bounded worker pool instead of
// pinning the HTTP handler: the response is 202 with the job snapshot
// and a Location header. Poll GET /v1/jobs/{id} for status — progress
// is {stage, fraction} with fraction monotonically non-decreasing and
// reaching 1 on completion, fed by the engine at stage boundaries and
// from inside the hard-class grouping loops. GET /v1/jobs/{id}/result
// returns the finished result, 409 while the job is still queued or
// running, and the mapped engine error for failed/canceled jobs.
// DELETE cancels via the job's context; the engine's strided
// cancellation polling frees the worker within a bounded amount of
// work. Finished jobs (results and errors alike) expire after the
// configured TTL, after which the id answers 404. A full queue sheds
// the submission with 429 + Retry-After.
//
// # Resilience and the error contract
//
// The handler is wrapped in a resilience stack so one bad request can
// neither take the daemon down nor pin a core forever:
//
//   - Every synchronous analysis runs under the request's context;
//     async jobs run under the manager's base context. Cancellation is
//     observed inside the engine's hot loops.
//   - Options.RequestTimeout bounds each request end to end; exceeding
//     it returns 504 with a JSON error body. (Job execution is bounded
//     by cancellation and the worker pool, not by this timeout.)
//   - Options.MaxConcurrent caps in-flight /v1/* requests; excess load
//     is shed with 429 and a Retry-After header instead of queueing.
//   - Handler panics are recovered: the stack is logged, the request
//     gets a 500 JSON error, and the server keeps serving.
//   - /healthz bypasses the limiter and the timeout, so liveness
//     probes stay green while the service is saturated or draining.
//
// Every error response is the JSON envelope
//
//	{"error": "<human-readable message>", "code": "<machine code>"}
//
// with a stable, machine-readable code per status:
//
//	400 bad_request    malformed body, unknown method, negative threshold,
//	                   inconsistent dataset (Validate()d before analysis)
//	400 invalid_page_token  unparseable or foreign ?page_token on a list
//	                   endpoint
//	400 payload_too_large  dataset upload exceeding MaxUploadBytes, or an
//	                   event log exceeding the line/event caps; nothing
//	                   partial is admitted
//	404 not_found      unknown or expired job id; unknown dataset digest
//	409 conflict       job result not ready yet, or cancel of a finished job
//	415 unsupported_media_type  Content-Encoding other than gzip/identity
//	422 unprocessable  well-formed input the engine rejects
//	422 unknown_reference  a schedule/alert/sink body names a dataset,
//	                   session, or rule target that does not exist
//	429 shed           load shed (MaxConcurrent) or full job queue
//	500 internal       recovered panic
//	503 canceled       analysis canceled by disconnect, drain, or DELETE
//	503 peer_unavailable  a referenced dataset's fleet holders are all
//	                   unreachable; carries Retry-After (fleet mode only)
//	504 timeout        request exceeded RequestTimeout
package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/consolidate"
	"repro/internal/continuous"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/rbac"
	"repro/internal/session"
	"repro/internal/store"
)

// healthPath and metricsPath are exempt from load shedding and
// timeouts: probes and scrapes must keep answering while the service
// is saturated or draining.
const (
	healthPath  = "/healthz"
	metricsPath = "/metrics"
)

// Options configures the handler.
type Options struct {
	// MaxBodyBytes caps request bodies; defaults to 256 MiB, enough for
	// an organisation-scale dataset export.
	MaxBodyBytes int64
	// MaxUploadBytes caps POST /v1/datasets bodies specifically
	// (decompressed when gzipped). The ingest path decodes the body
	// incrementally and enforces this limit as it reads, so an
	// oversized upload fails with 400 payload_too_large after at most
	// this many bytes — it is never buffered whole. Defaults to
	// MaxBodyBytes.
	MaxUploadBytes int64
	// SessionTTL expires live mutation sessions idle that long;
	// defaults to 30 minutes.
	SessionTTL time.Duration
	// MaxSessions caps live mutation sessions per node; defaults to 128.
	MaxSessions int
	// MaxLogEvents caps one POST /v1/sessions/{id}/events batch;
	// defaults to replay.DefaultMaxEvents. Lines are always capped at
	// replay.DefaultMaxLineBytes.
	MaxLogEvents int
	// RequestTimeout bounds each request's total handling time,
	// synchronous analysis included; exceeding it returns 504. Zero
	// disables the per-request deadline (the engine still honours
	// client disconnects). Async job execution is not subject to it.
	RequestTimeout time.Duration
	// MaxConcurrent caps concurrently handled /v1/* requests; excess
	// requests receive 429 + Retry-After. Zero means unlimited.
	MaxConcurrent int
	// RetryAfter is the hint sent with 429 responses; defaults to 1s.
	RetryAfter time.Duration
	// Logf receives panic reports and operational messages; defaults
	// to log.Printf.
	Logf func(format string, args ...any)
	// JobWorkers is the async worker-pool size; defaults to GOMAXPROCS.
	JobWorkers int
	// JobQueueDepth bounds queued (not yet running) jobs; submissions
	// beyond it are shed with 429. Defaults to 64.
	JobQueueDepth int
	// JobResultTTL is how long finished job results stay fetchable;
	// defaults to 15 minutes.
	JobResultTTL time.Duration
	// BaseContext is the root context for async job execution;
	// cancelling it (daemon drain) cancels every queued and running
	// job. Defaults to context.Background().
	BaseContext context.Context
	// DefaultWorkers is applied to requests that do not set workers
	// themselves (query parameter or options body). 0 keeps the
	// engine's serial default; >= 2 makes parallel grouping the
	// daemon-wide default while individual requests can still pin
	// workers=1 for a serial run.
	DefaultWorkers int
	// Store is the dataset registry and analysis result cache serving
	// /v1/datasets, dataset_ref resolution, and response caching. When
	// nil, NewHandler builds a memory-only store with default limits;
	// the daemon passes a configured (and possibly persistent) one.
	Store *store.Store
	// Fleet is the peer layer for a sharded deployment: uploads are
	// forwarded to the digest's rendezvous owner (and replicated),
	// dataset_ref misses are fetched from a live holder, and
	// /v1/fleet/stats scatter-gathers the membership. Nil (or a
	// single-peer fleet) keeps every endpoint strictly local.
	Fleet *fleet.Fleet
	// NodeID names this node in /healthz and fleet stats; defaults to
	// a per-process identifier.
	NodeID string
	// Readiness, when set, feeds the /healthz readiness state: true is
	// "ready", false is "draining" (alive, finishing in-flight work,
	// not taking new fleet work). The bare-200 liveness contract is
	// unchanged either way.
	Readiness func() bool
	// DecisionLogPath, when set, opens the append-only JSONL decision
	// log there (the daemon derives it from -store-dir). Every analysis
	// decision — api, job, or scheduled — is recorded with its dataset
	// digest and options fingerprint and served by GET /v1/decisions.
	// Empty disables persistence and the decisions endpoint serves only
	// the in-memory window of this process.
	DecisionLogPath string
	// DecisionBuffer and DecisionFlushInterval tune the decision log's
	// buffered flushing; zero keeps the continuous package defaults.
	DecisionBuffer        int
	DecisionFlushInterval time.Duration
	// ScheduleMinInterval floors continuous-audit schedule intervals;
	// zero keeps the continuous package default (100ms).
	ScheduleMinInterval time.Duration
	// Sink delivery knobs for continuous-audit webhook sinks; zero
	// values keep the continuous package defaults.
	SinkAttempts         int
	SinkTimeout          time.Duration
	SinkBreakerThreshold int
	SinkBreakerCooldown  time.Duration
	// SinkTransport is the webhook delivery RoundTripper — the
	// deterministic fault-injection seam (-sink-fault-inject). Nil uses
	// http.DefaultTransport.
	SinkTransport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 256 << 20
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = o.MaxBodyBytes
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// handler carries the configured routes.
type handler struct {
	opts     Options
	mux      *http.ServeMux
	sem      chan struct{} // nil when MaxConcurrent == 0
	inner    http.Handler  // mux wrapped in the middleware stack
	jobs     *jobs.Manager
	store    *store.Store
	fleet    *fleet.Fleet // nil in single-node deployments
	sessions *session.Manager
	cont     *continuous.Manager // continuous-audit subsystem
	declog   *continuous.Log     // nil without a decision log path
	nodeID   string
	boot     string // per-process instance id; restarts change it
	version  string

	// routes lists every registered "METHOD /pattern" — the source of
	// truth the OpenAPI drift check compares the spec against.
	routes []string

	// Prometheus-style exposition served by GET /metrics.
	metrics  *metrics.Registry
	httpDur  *metrics.HistogramVec
	httpReqs *metrics.CounterVec
	optRuns  *metrics.CounterVec
	optDur   *metrics.HistogramVec
}

var _ http.Handler = (*handler)(nil)
var _ io.Closer = (*handler)(nil)

// Close stops the continuous-audit scheduler, waits out in-flight
// scheduled runs, and flushes the buffered decision log to disk. The
// HTTP server must be drained first so no request handler is racing an
// append. Without this, a graceful shutdown silently loses every
// decision buffered since the last timer flush.
func (h *handler) Close() error {
	if h.cont != nil {
		h.cont.Close()
	}
	if h.declog != nil {
		return h.declog.Close()
	}
	return nil
}

// NewHandler builds the service's http.Handler, with the resilience
// middleware (recovery, load shedding, request timeout) applied and
// the async job manager started.
func NewHandler(opts Options) http.Handler {
	h := &handler{opts: opts.withDefaults(), mux: http.NewServeMux()}
	if h.opts.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, h.opts.MaxConcurrent)
	}
	h.jobs = jobs.NewManager(jobs.Options{
		Workers:     h.opts.JobWorkers,
		QueueDepth:  h.opts.JobQueueDepth,
		ResultTTL:   h.opts.JobResultTTL,
		BaseContext: h.opts.BaseContext,
	})
	h.store = h.opts.Store
	if h.store == nil {
		// A memory-only store (no Dir) cannot fail to construct.
		h.store, _ = store.New(store.Options{
			BaseContext: h.opts.BaseContext,
			Logf:        h.opts.Logf,
		})
	}
	h.fleet = h.opts.Fleet
	h.sessions = session.NewManager(session.Options{
		TTL:         h.opts.SessionTTL,
		MaxSessions: h.opts.MaxSessions,
	})
	h.boot = bootID()
	h.version = buildVersion()
	h.nodeID = h.opts.NodeID
	if h.nodeID == "" {
		h.nodeID = "node-" + h.boot
	}
	h.initMetrics()
	h.initContinuous()
	h.handle("GET "+healthPath, h.health)
	h.handle("GET "+metricsPath, h.metricsReport)
	h.handle("POST /v1/analyze", h.analyze)
	h.handle("POST /v1/consolidate", h.consolidate)
	h.handle("POST /v1/suggest", h.suggest)
	h.registerOptimize()
	h.registerExtra()
	h.registerJobs()
	h.registerDatasets()
	h.registerFleet()
	h.registerSessions()
	h.registerContinuous()
	h.inner = h.withRecovery(h.withLoadShedding(h.withTimeout(h.mux)))
	return h
}

// handle registers one route on the mux, records its pattern in the
// route registry (the OpenAPI drift check's source of truth), and
// wraps the handler with per-endpoint metrics: a request counter
// labelled by route and status class, and a latency histogram
// labelled by route. Labels come from the static pattern — never from
// request data — so cardinality is bounded by the route table.
func (h *handler) handle(pattern string, fn http.HandlerFunc) {
	h.routes = append(h.routes, pattern)
	h.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &codeRecorder{ResponseWriter: w, code: http.StatusOK}
		fn(rec, r)
		h.httpDur.With(pattern).Observe(time.Since(start).Seconds())
		h.httpReqs.With(pattern, strconv.Itoa(rec.code)).Inc()
	})
}

// Routes returns every registered "METHOD /pattern". The concrete
// handler type is unexported; callers reach this through a type
// assertion on the NewHandler result.
func (h *handler) Routes() []string {
	return append([]string(nil), h.routes...)
}

// codeRecorder captures the response status for the request counter.
type codeRecorder struct {
	http.ResponseWriter
	code int
}

func (c *codeRecorder) WriteHeader(code int) {
	c.code = code
	c.ResponseWriter.WriteHeader(code)
}

// initMetrics builds the exposition registry and the per-endpoint
// instruments. Subsystem gauges that need the continuous manager are
// added by initContinuous.
func (h *handler) initMetrics() {
	h.metrics = metrics.NewRegistry()
	h.httpReqs = h.metrics.Counter("rolediet_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	h.httpDur = h.metrics.Histogram("rolediet_http_request_duration_seconds",
		"HTTP request latency in seconds, by route pattern.", nil, "route")
	h.optRuns = h.metrics.Counter("rolediet_optimize_runs_total",
		"Optimize runs by outcome (ok|error) and cache disposition (hit|miss).",
		"outcome", "cache")
	h.optDur = h.metrics.Histogram("rolediet_optimize_duration_seconds",
		"End-to-end /v1/optimize run latency in seconds, cache hits included.", nil)
	h.metrics.GaugeFunc("rolediet_jobs_live",
		"Jobs currently held by the async manager in any state.",
		func() float64 { return float64(h.jobs.Len()) })
	h.metrics.GaugeFunc("rolediet_sessions_live",
		"Open mutation sessions on this node.",
		func() float64 { return float64(h.sessions.Len()) })
	h.metrics.GaugeFunc("rolediet_store_datasets",
		"Datasets registered in the content-addressed store.",
		func() float64 { return float64(h.store.Stats().Datasets) })
}

// metricsReport serves the Prometheus text exposition.
func (h *handler) metricsReport(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	h.metrics.WriteText(w)
}

// ServeHTTP implements http.Handler.
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
}

// Stable machine-readable error codes; see the package comment for the
// status -> code table.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeUnsupportedMedia = "unsupported_media_type"
	CodeUnprocessable    = "unprocessable"
	CodeShed             = "shed"
	CodeInternal         = "internal"
	CodeCanceled         = "canceled"
	CodeTimeout          = "timeout"
	// CodePayloadTooLarge is a 400 variant for bodies that exceed a
	// configured cap — an oversized dataset upload (MaxUploadBytes) or
	// an event-log bomb (line/event limits). Distinct from bad_request
	// so clients can tell "shrink your payload" from "fix your JSON".
	CodePayloadTooLarge = "payload_too_large"
	// CodePeerUnavailable is a 503 variant distinct from canceled: a
	// fleet operation needed a peer (the owner or any replica holding
	// a dataset) and none could be reached. It always ships with a
	// Retry-After hint and is returned within the fleet client's
	// bounded retry window — never after an unbounded hang.
	CodePeerUnavailable = "peer_unavailable"
	// CodeInvalidPageToken is a 400 variant for a malformed or
	// out-of-range page_token on a list endpoint. Distinct from
	// bad_request so a paginating client can tell "restart the listing
	// from the beginning" apart from "your request body is broken".
	CodeInvalidPageToken = "invalid_page_token"
	// CodeUnknownReference is a 422 variant for a well-formed
	// continuous-audit resource that points at something that does not
	// exist — a dataset_ref that never registered, a session_id that
	// expired, a schedule_id or sink_id that was deleted. Distinct from
	// unprocessable (an engine rejection) and not_found (the URL names
	// a missing resource): here the URL is fine and the body is valid,
	// but a reference inside it dangles.
	CodeUnknownReference = "unknown_reference"
)

// codeFor maps a status the server emits to its stable error code.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMedia
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeShed
	case http.StatusServiceUnavailable:
		return CodeCanceled
	case http.StatusGatewayTimeout:
		return CodeTimeout
	default:
		return CodeInternal
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorCode(w, status, codeFor(status), err)
}

// writeErrorCode writes the error envelope with an explicit code for
// statuses whose default mapping does not apply (peer_unavailable).
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: code})
}

// writePeerUnavailable is the explicit degraded-mode answer: the
// request needed a peer none of whose holders were reachable. 503 with
// a Retry-After hint and the peer_unavailable code — the client should
// back off and retry once the fleet heals, rather than interpret the
// failure as a missing dataset.
func (h *handler) writePeerUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
	writeErrorCode(w, http.StatusServiceUnavailable, CodePeerUnavailable, err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing recoverable remains.
		return
	}
}

// rawResult is a pre-encoded JSON response body — what the result
// cache stores and serves, so cached and freshly computed responses
// are byte-identical.
type rawResult []byte

// writeRawJSON serves a pre-encoded body with the same framing
// writeJSON's encoder produces (body + newline).
func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

// health answers liveness probes. The response grew a JSON body (node
// id, build info, readiness) for the fleet prober and load balancers,
// but the pre-fleet contract — 200 means the process is alive — is
// unchanged: a draining node still answers 200 with state "draining",
// which is how a prober tells it apart from a dead one (no answer at
// all).
func (h *handler) health(w http.ResponseWriter, _ *http.Request) {
	state, ready := fleet.StateReady, true
	if h.opts.Readiness != nil && !h.opts.Readiness() {
		state, ready = fleet.StateDraining, false
	}
	writeJSON(w, fleet.Health{
		Status:  "ok",
		Node:    h.nodeID,
		State:   state,
		Ready:   ready,
		Version: h.version,
		Boot:    h.boot,
	})
}

// v1Request is the decoded form of a dataset-consuming request,
// produced identically for sync handlers and job submissions.
type v1Request struct {
	kind     string // only set by the envelope form; required for /v1/jobs
	dataset  *rbac.Dataset
	digest   string // content digest; set when resolved by ref, else lazily
	fp       string // options fingerprint; set by runKindCached
	opts     core.Options
	sparse   bool
	optKnobs *optimize.Knobs // planner knobs; only meaningful for kindOptimize
}

// v1Envelope is the unified request body: {"dataset" or "dataset_ref",
// "options", "sparse"} plus "kind" for job submissions. Decoding
// options goes through core.Options.UnmarshalJSON, the schema shared
// with the CLI.
type v1Envelope struct {
	Kind       string          `json:"kind"`
	Dataset    json.RawMessage `json:"dataset"`
	DatasetRef string          `json:"dataset_ref"`
	Options    *core.Options   `json:"options"`
	Sparse     *bool           `json:"sparse"`
	// Optimize carries the /v1/optimize planner knobs. Its analysis
	// member is ignored: analysis options always come from "options",
	// so every kind shares one options schema and one fingerprint.
	Optimize *optimize.Knobs `json:"optimize"`
}

// queryOptions extracts method/threshold/sparse parameters — the
// back-compat surface predating the body envelope.
func queryOptions(r *http.Request) (core.Options, bool, error) {
	opts := core.Options{}
	q := r.URL.Query()
	if m := q.Get("method"); m != "" {
		method, err := core.ParseMethod(m)
		if err != nil {
			return opts, false, err
		}
		opts.Method = method
	}
	if t := q.Get("threshold"); t != "" {
		k, err := strconv.Atoi(t)
		if err != nil {
			return opts, false, fmt.Errorf("threshold: %w", err)
		}
		if k < 0 {
			return opts, false, fmt.Errorf("threshold %d < 0", k)
		}
		opts.SimilarThreshold = k
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil {
			return opts, false, fmt.Errorf("workers: %w", err)
		}
		if n < 0 {
			return opts, false, fmt.Errorf("workers %d < 0", n)
		}
		opts.Workers = n
	}
	sparse := false
	if s := q.Get("sparse"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return opts, false, fmt.Errorf("sparse: %w", err)
		}
		sparse = v
	}
	return opts, sparse, nil
}

// readBody drains the (size-capped) request body, transparently
// decompressing Content-Encoding: gzip. The compressed stream goes
// through MaxBytesReader and the decompressed output is held to the
// same MaxBodyBytes limit, so a gzip bomb cannot sidestep the cap.
// Encodings other than gzip/identity answer 415.
func (h *handler) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	rd := io.Reader(http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes))
	switch enc := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip", "x-gzip":
		gz, err := gzip.NewReader(rd)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("gzip body: %w", err))
			return nil, false
		}
		defer gz.Close()
		rd = io.LimitReader(gz, h.opts.MaxBodyBytes+1)
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Encoding %q (use gzip or no encoding)", enc))
		return nil, false
	}
	body, err := io.ReadAll(rd)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return nil, false
	}
	if int64(len(body)) > h.opts.MaxBodyBytes {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("decompressed body exceeds the %d byte limit", h.opts.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// limitError reports a body exceeding a byte cap on the streaming
// ingest path; the HTTP layer maps it to 400 payload_too_large.
type limitError struct{ limit int64 }

func (e *limitError) Error() string {
	return fmt.Sprintf("body exceeds the %d byte limit", e.limit)
}

// limitedReader hands out at most limit bytes and then fails with a
// typed *limitError instead of a silent EOF — the difference between
// "the upload ended" and "the upload was cut off", which the streaming
// decoder cannot otherwise tell apart. A body of exactly limit bytes
// still reads cleanly: the boundary is probed before erroring.
type limitedReader struct {
	r         io.Reader
	remaining int64
	limit     int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if l.remaining <= 0 {
		// At the cap: only an immediate EOF distinguishes a
		// limit-sized body from an oversized one.
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n > 0 {
			return 0, &limitError{l.limit}
		}
		if err != nil {
			return 0, err
		}
		return 0, nil
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

// bodyStream prepares the request body for incremental decoding: the
// returned reader enforces limit as it is consumed (both on the wire
// bytes and, for gzip, on the decompressed stream) and fails with a
// typed *limitError past it. The caller owns closing via the returned
// func. A false return means the error response was already written
// (415 for unknown encodings, 400 for a broken gzip header).
func (h *handler) bodyStream(w http.ResponseWriter, r *http.Request, limit int64) (io.Reader, func(), bool) {
	rd := io.Reader(&limitedReader{r: http.MaxBytesReader(w, r.Body, limit+1), remaining: limit, limit: limit})
	closeFn := func() {}
	switch enc := strings.ToLower(strings.TrimSpace(r.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip", "x-gzip":
		gz, err := gzip.NewReader(rd)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("gzip body: %w", err))
			return nil, nil, false
		}
		closeFn = func() { gz.Close() }
		rd = &limitedReader{r: gz, remaining: limit, limit: limit}
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Encoding %q (use gzip or no encoding)", enc))
		return nil, nil, false
	}
	return rd, closeFn, true
}

// writeBodyError maps a streaming-decode failure: limit breaches get
// 400 payload_too_large, anything else 400 bad_request.
func writeBodyError(w http.ResponseWriter, context string, err error) {
	var le *limitError
	if errors.As(err, &le) {
		writeErrorCode(w, http.StatusBadRequest, CodePayloadTooLarge,
			fmt.Errorf("%s: %w", context, err))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", context, err))
}

// decodeRequest is the one decode path every dataset-consuming
// endpoint (sync and async) goes through. It merges query parameters
// with the optional body envelope (body wins), resolves "dataset_ref"
// against the registry (404 for unknown digests) or parses and
// Validate()s the inline dataset, and reports decode failures as 400
// with code bad_request.
func (h *handler) decodeRequest(w http.ResponseWriter, r *http.Request) (*v1Request, bool) {
	opts, sparse, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	body, ok := h.readBody(w, r)
	if !ok {
		return nil, false
	}

	req := &v1Request{opts: opts, sparse: sparse}
	datasetJSON := body

	// Envelope sniff: a body whose top-level object carries "dataset"
	// or "dataset_ref" is the v1 envelope; anything else is a bare
	// dataset export.
	var probe struct {
		Dataset    json.RawMessage `json:"dataset"`
		DatasetRef string          `json:"dataset_ref"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && (len(probe.Dataset) > 0 || probe.DatasetRef != "") {
		var env v1Envelope
		if err := json.Unmarshal(body, &env); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parse request envelope: %w", err))
			return nil, false
		}
		req.kind = env.Kind
		req.optKnobs = env.Optimize
		if env.Options != nil {
			req.opts = *env.Options
		}
		if env.Sparse != nil {
			req.sparse = *env.Sparse
		}
		if env.DatasetRef != "" {
			if len(env.Dataset) > 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("request carries both dataset and dataset_ref; send one"))
				return nil, false
			}
			ds, digest, ok := h.resolveRef(w, r, env.DatasetRef)
			if !ok {
				return nil, false
			}
			req.dataset = ds
			req.digest = digest
		}
		datasetJSON = env.Dataset
	}

	if req.opts.Workers == 0 {
		req.opts.Workers = h.opts.DefaultWorkers
	}
	if req.dataset != nil {
		return req, true
	}

	ds, err := rbac.ReadJSON(bytes.NewReader(datasetJSON))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse dataset: %w", err))
		return nil, false
	}
	if err := ds.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid dataset: %w", err))
		return nil, false
	}
	req.dataset = ds
	return req, true
}

// resolveRef maps a digest reference to a registered dataset, writing
// 400 for malformed digests and 404 for unknown ones. In a fleet, a
// local miss degrades to fetching the snapshot from a live holder
// (owner first, then replicas) and caching it locally; when holders
// exist but none is reachable the answer is an explicit 503
// peer_unavailable rather than a misleading 404 or a hang.
func (h *handler) resolveRef(w http.ResponseWriter, r *http.Request, ref string) (*rbac.Dataset, string, bool) {
	digest, err := store.ParseDigest(ref)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	if ds, _, ok := h.store.GetDataset(digest); ok {
		return ds, digest, true
	}
	if h.fleet.Enabled() {
		ds, ok := h.fetchThrough(w, r, digest)
		return ds, digest, ok
	}
	writeError(w, http.StatusNotFound,
		fmt.Errorf("dataset %s not found (never registered, deleted, or evicted)", digest))
	return nil, "", false
}

// fetchThrough pulls a locally missing digest from its fleet holders,
// verifying and caching the bytes locally, and writes the appropriate
// error (503 peer_unavailable, 503 canceled, or 404) when it cannot.
func (h *handler) fetchThrough(w http.ResponseWriter, r *http.Request, digest string) (*rbac.Dataset, bool) {
	raw, peer, err := h.fleet.FetchDataset(r.Context(), digest)
	switch {
	case err == nil:
	case errors.Is(err, fleet.ErrPeerUnavailable):
		h.writePeerUnavailable(w, fmt.Errorf("dataset %s is held by unreachable peers: %w", digest, err))
		return nil, false
	case r.Context().Err() != nil:
		writeEngineError(w, r.Context().Err())
		return nil, false
	default: // fleet.ErrNotFound and anything equally definitive
		writeError(w, http.StatusNotFound,
			fmt.Errorf("dataset %s not found on any fleet peer", digest))
		return nil, false
	}
	if _, perr := h.store.PutCanonical(digest, raw); perr != nil {
		// Too large for the local budget or otherwise inadmissible:
		// still serve this request from the verified bytes.
		h.opts.Logf("fleet: dataset %s fetched from %s not cached locally: %v", digest, peer, perr)
		ds, derr := rbac.ReadJSON(bytes.NewReader(raw))
		if derr != nil {
			writeError(w, http.StatusInternalServerError, derr)
			return nil, false
		}
		return ds, true
	}
	ds, _, ok := h.store.GetDataset(digest)
	if !ok {
		// Cached and immediately evicted (pathological budget); parse
		// the bytes we already hold rather than failing the request.
		ds, derr := rbac.ReadJSON(bytes.NewReader(raw))
		if derr != nil {
			writeError(w, http.StatusInternalServerError, derr)
			return nil, false
		}
		return ds, true
	}
	return ds, true
}

// The job kinds — exactly the sync endpoints that run the engine.
const (
	kindAnalyze     = "analyze"
	kindConsolidate = "consolidate"
	kindSuggest     = "suggest"
	kindOptimize    = "optimize"
)

// consolidateResponse is the /v1/consolidate (and consolidate-job)
// result.
type consolidateResponse struct {
	Plan         *consolidate.Plan `json:"plan"`
	RolesBefore  int               `json:"rolesBefore"`
	RolesAfter   int               `json:"rolesAfter"`
	Consolidated *rbac.Dataset     `json:"consolidated"`
}

// runKind is the single dispatch point for the engine-backed kinds:
// the sync handlers call it with the request context and no progress
// hook, job workers call it with the job's context and the job's
// progress recorder. Keeping one path guarantees sync and async agree
// on options, cancellation, and result shape.
func runKind(ctx context.Context, kind string, req *v1Request,
	progress func(stage string, fraction float64)) (any, error) {
	opts := req.opts
	opts.Progress = progress
	switch kind {
	case kindAnalyze:
		if req.sparse {
			return core.AnalyzeSparseContext(ctx, req.dataset, opts)
		}
		return core.AnalyzeContext(ctx, req.dataset, opts)
	case kindConsolidate:
		after, plan, err := consolidate.ConsolidateContext(ctx, req.dataset, opts)
		if err != nil {
			return nil, err
		}
		return consolidateResponse{
			Plan:         plan,
			RolesBefore:  req.dataset.NumRoles(),
			RolesAfter:   after.NumRoles(),
			Consolidated: after,
		}, nil
	case kindSuggest:
		rep, err := core.AnalyzeContext(ctx, req.dataset, opts)
		if err != nil {
			return nil, err
		}
		suggestions, err := consolidate.SuggestSimilar(req.dataset, rep)
		if err != nil {
			return nil, err
		}
		if suggestions == nil {
			suggestions = []consolidate.Suggestion{}
		}
		return suggestions, nil
	case kindOptimize:
		knobs := planKnobs(req)
		knobs.Analysis = opts
		return optimize.RunContext(ctx, req.dataset, knobs)
	default:
		return nil, fmt.Errorf("unknown kind %q (want analyze, consolidate, suggest, or optimize)", kind)
	}
}

// planKnobs materialises the request's optimize knobs: the envelope's
// "optimize" member when present, zero knobs otherwise, with the
// analysis field cleared in both cases — it is populated from the
// shared options at dispatch and fingerprinted there, never read from
// the envelope's optimize member.
func planKnobs(req *v1Request) optimize.Knobs {
	var k optimize.Knobs
	if req.optKnobs != nil {
		k = *req.optKnobs
	}
	k.Analysis = core.Options{}
	return k
}

// runKindCached wraps runKind with the store's result cache for the
// engine-backed kinds: the response body is cached under (dataset
// digest, options fingerprint, kind) and concurrent identical requests
// share one engine run. Cacheable results come back as rawResult so
// cached and computed responses are byte-identical; hit reports
// whether the engine was skipped.
func (h *handler) runKindCached(ctx context.Context, kind string, req *v1Request,
	progress func(stage string, fraction float64)) (any, bool, error) {
	switch kind {
	case kindAnalyze, kindConsolidate, kindSuggest, kindOptimize:
	default:
		out, err := runKind(ctx, kind, req, progress)
		return out, false, err
	}
	if req.digest == "" {
		// Inline upload: digest the canonical content so identical
		// re-posts hit the same cache line as requests by reference.
		digest, _, err := store.DigestOf(req.dataset)
		if err != nil {
			return nil, false, err
		}
		req.digest = digest
	}
	var extra []string
	if kind == kindAnalyze && req.sparse {
		// Only analyze branches on sparse; keying the others on it
		// would split identical results across cache lines.
		extra = append(extra, "sparse")
	}
	if kind == kindOptimize {
		// The planner knobs change the result, so they join the cache
		// key. planKnobs zeroes the analysis member, which Fingerprint
		// already covers via req.opts — a request with an absent
		// "optimize" member and one carrying {} land on one cache line.
		kb, err := json.Marshal(planKnobs(req))
		if err != nil {
			return nil, false, err
		}
		extra = append(extra, "optimize:"+string(kb))
	}
	fp, err := store.Fingerprint(req.opts, extra...)
	if err != nil {
		return nil, false, err
	}
	req.fp = fp
	key := store.Key{Dataset: req.digest, Fingerprint: fp, Kind: kind}
	body, hit, err := h.store.Result(ctx, key, func(ctx context.Context) ([]byte, error) {
		out, err := runKind(ctx, kind, req, progress)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	})
	if err != nil {
		return nil, false, err
	}
	if hit && progress != nil {
		progress("cached", 1)
	}
	return rawResult(body), hit, nil
}

// runKindLogged wraps runKindCached with a decision-log append: every
// engine-backed decision — served from cache or computed — lands in the
// append-only log with its dataset digest and options fingerprint, so
// any historical answer is reproducible from the content-addressed
// registry. source is "api" for synchronous requests and "job" for
// async submissions; scheduled runs log through the continuous manager
// instead (their decisions carry tripped-alert ids too).
func (h *handler) runKindLogged(ctx context.Context, source, kind string, req *v1Request,
	progress func(stage string, fraction float64)) (any, bool, error) {
	started := time.Now()
	out, hit, err := h.runKindCached(ctx, kind, req, progress)
	if kind == kindOptimize {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		h.optRuns.With(outcome, cacheHeader(hit)).Inc()
		h.optDur.With().Observe(time.Since(started).Seconds())
	}
	if h.declog != nil {
		d := continuous.Decision{
			Source:        source,
			Kind:          kind,
			Dataset:       req.digest,
			Fingerprint:   req.fp,
			CacheHit:      hit,
			DurationNanos: time.Since(started).Nanoseconds(),
		}
		if err != nil {
			d.Error = err.Error()
		}
		h.declog.Append(d)
	}
	return out, hit, err
}

// runSync decodes, dispatches, and writes one synchronous request.
func (h *handler) runSync(kind string, w http.ResponseWriter, r *http.Request) {
	req, ok := h.decodeRequest(w, r)
	if !ok {
		return
	}
	out, hit, err := h.runKindLogged(r.Context(), "api", kind, req, nil)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if raw, ok := out.(rawResult); ok {
		w.Header().Set("X-Cache", cacheHeader(hit))
		writeRawJSON(w, raw)
		return
	}
	writeJSON(w, out)
}

// cacheHeader renders the X-Cache response header value.
func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// analyze runs the five detectors over the posted dataset.
func (h *handler) analyze(w http.ResponseWriter, r *http.Request) {
	h.runSync(kindAnalyze, w, r)
}

// consolidate plans and applies the provably safe class-4 merges.
func (h *handler) consolidate(w http.ResponseWriter, r *http.Request) {
	h.runSync(kindConsolidate, w, r)
}

// suggest returns reviewable similar-merge suggestions.
func (h *handler) suggest(w http.ResponseWriter, r *http.Request) {
	h.runSync(kindSuggest, w, r)
}
