// Package server exposes the detection framework as a JSON-over-HTTP
// service, the deployment shape an organisation would actually run the
// periodic audit through: an IAM export is POSTed, the inefficiency
// report (or merge plan, or review suggestions) comes back.
//
// Endpoints:
//
//	GET  /healthz            liveness probe
//	POST /v1/analyze         dataset JSON -> inefficiency report
//	POST /v1/consolidate     dataset JSON -> {plan, consolidated dataset}
//	POST /v1/suggest         dataset JSON -> similar-merge suggestions
//	POST /v1/query           dataset JSON -> access-review answers
//	POST /v1/diff            {before, after} -> structural + audit diff
//
// Query parameters on /v1/analyze: method (rolediet|dbscan|hnsw|lsh|
// dbscan-float64), threshold (int >= 0), sparse (bool). /v1/consolidate,
// /v1/suggest and /v1/diff accept threshold; /v1/query takes user and/or
// permission selectors.
//
// # Resilience and the error contract
//
// The handler is wrapped in a resilience stack so one bad request can
// neither take the daemon down nor pin a core forever:
//
//   - Every analysis runs under the request's context. When the client
//     disconnects or the daemon drains, the engine's hot loops observe
//     the cancellation and stop within a bounded amount of work.
//   - Options.RequestTimeout bounds each request end to end; exceeding
//     it returns 504 with a JSON error body.
//   - Options.MaxConcurrent caps in-flight /v1/* requests; excess load
//     is shed with 429 and a Retry-After header instead of queueing.
//   - Handler panics are recovered: the stack is logged, the request
//     gets a 500 JSON error, and the server keeps serving.
//   - /healthz bypasses the limiter and the timeout, so liveness
//     probes stay green while the service is saturated or draining.
//
// Every error response is the JSON envelope {"error": "..."}: 400 for
// malformed or inconsistent input (datasets are Validate()d before
// analysis), 422 for well-formed input the engine rejects, 429 for
// shed load, 500 for recovered panics, 503 for analyses canceled by
// disconnect or drain, 504 for request timeouts.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

// healthPath is exempt from load shedding and timeouts.
const healthPath = "/healthz"

// Options configures the handler.
type Options struct {
	// MaxBodyBytes caps request bodies; defaults to 256 MiB, enough for
	// an organisation-scale dataset export.
	MaxBodyBytes int64
	// RequestTimeout bounds each request's total handling time,
	// analysis included; exceeding it returns 504. Zero disables the
	// per-request deadline (the engine still honours client
	// disconnects).
	RequestTimeout time.Duration
	// MaxConcurrent caps concurrently handled /v1/* requests; excess
	// requests receive 429 + Retry-After. Zero means unlimited.
	MaxConcurrent int
	// RetryAfter is the hint sent with 429 responses; defaults to 1s.
	RetryAfter time.Duration
	// Logf receives panic reports and operational messages; defaults
	// to log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 256 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// handler carries the configured routes.
type handler struct {
	opts  Options
	mux   *http.ServeMux
	sem   chan struct{} // nil when MaxConcurrent == 0
	inner http.Handler  // mux wrapped in the middleware stack
}

var _ http.Handler = (*handler)(nil)

// NewHandler builds the service's http.Handler, with the resilience
// middleware (recovery, load shedding, request timeout) applied.
func NewHandler(opts Options) http.Handler {
	h := &handler{opts: opts.withDefaults(), mux: http.NewServeMux()}
	if h.opts.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, h.opts.MaxConcurrent)
	}
	h.mux.HandleFunc("GET "+healthPath, h.health)
	h.mux.HandleFunc("POST /v1/analyze", h.analyze)
	h.mux.HandleFunc("POST /v1/consolidate", h.consolidate)
	h.mux.HandleFunc("POST /v1/suggest", h.suggest)
	h.registerExtra()
	h.inner = h.withRecovery(h.withLoadShedding(h.withTimeout(h.mux)))
	return h
}

// ServeHTTP implements http.Handler.
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.inner.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing recoverable remains.
		return
	}
}

// health answers liveness probes.
func (h *handler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// readDataset parses and validates the request body. Inconsistent
// datasets are rejected with 400 here, before any of them can reach
// the engine.
func (h *handler) readDataset(w http.ResponseWriter, r *http.Request) (*rbac.Dataset, bool) {
	body := http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	ds, err := rbac.ReadJSON(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse dataset: %w", err))
		return nil, false
	}
	if err := ds.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid dataset: %w", err))
		return nil, false
	}
	return ds, true
}

// queryOptions extracts method/threshold/sparse parameters.
func queryOptions(r *http.Request) (core.Options, bool, error) {
	opts := core.Options{}
	q := r.URL.Query()
	if m := q.Get("method"); m != "" {
		method, err := core.ParseMethod(m)
		if err != nil {
			return opts, false, err
		}
		opts.Method = method
	}
	if t := q.Get("threshold"); t != "" {
		k, err := strconv.Atoi(t)
		if err != nil {
			return opts, false, fmt.Errorf("threshold: %w", err)
		}
		if k < 0 {
			return opts, false, fmt.Errorf("threshold %d < 0", k)
		}
		opts.SimilarThreshold = k
	}
	sparse := false
	if s := q.Get("sparse"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return opts, false, fmt.Errorf("sparse: %w", err)
		}
		sparse = v
	}
	return opts, sparse, nil
}

// analyze runs the five detectors over the posted dataset.
func (h *handler) analyze(w http.ResponseWriter, r *http.Request) {
	opts, sparse, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, ok := h.readDataset(w, r)
	if !ok {
		return
	}
	var rep *core.Report
	if sparse {
		rep, err = core.AnalyzeSparseContext(r.Context(), ds, opts)
	} else {
		rep, err = core.AnalyzeContext(r.Context(), ds, opts)
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, rep)
}

// consolidateResponse is the /v1/consolidate result.
type consolidateResponse struct {
	Plan         *consolidate.Plan `json:"plan"`
	RolesBefore  int               `json:"rolesBefore"`
	RolesAfter   int               `json:"rolesAfter"`
	Consolidated *rbac.Dataset     `json:"consolidated"`
}

// consolidate plans and applies the provably safe class-4 merges.
func (h *handler) consolidate(w http.ResponseWriter, r *http.Request) {
	opts, _, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, ok := h.readDataset(w, r)
	if !ok {
		return
	}
	after, plan, err := consolidate.ConsolidateContext(r.Context(), ds, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, consolidateResponse{
		Plan:         plan,
		RolesBefore:  ds.NumRoles(),
		RolesAfter:   after.NumRoles(),
		Consolidated: after,
	})
}

// suggest returns reviewable similar-merge suggestions.
func (h *handler) suggest(w http.ResponseWriter, r *http.Request) {
	opts, _, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, ok := h.readDataset(w, r)
	if !ok {
		return
	}
	rep, err := core.AnalyzeContext(r.Context(), ds, opts)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	suggestions, err := consolidate.SuggestSimilar(ds, rep)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if suggestions == nil {
		suggestions = []consolidate.Suggestion{}
	}
	writeJSON(w, suggestions)
}
