package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/rbac"
)

// newJobsServer starts a test server whose job manager is torn down
// with the test, so cancelled/abandoned jobs cannot leak CPU into
// later tests.
func newJobsServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	opts.BaseContext = ctx
	srv := httptest.NewServer(NewHandler(opts))
	t.Cleanup(func() {
		srv.Close()
		cancel()
	})
	return srv
}

// orgDatasetJSON renders a scaled-down organisation-shaped dataset
// (the paper's §IV-B generator).
func orgDatasetJSON(t *testing.T) []byte {
	t.Helper()
	ds, _, err := gen.Org(gen.DefaultOrgParams().Scaled(200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// slowDatasetJSON builds a dataset whose dbscan-float64 analysis takes
// long enough that a test can reliably observe the job running. The
// run time is irrelevant beyond that: cancellation tests never wait
// for completion.
func slowDatasetJSON(t *testing.T) []byte {
	t.Helper()
	const roles, users = 1500, 600
	rng := rand.New(rand.NewSource(42))
	ds := rbac.NewDataset()
	for u := 0; u < users; u++ {
		ds.EnsureUser(rbac.UserID(fmt.Sprintf("u%04d", u)))
	}
	for r := 0; r < roles; r++ {
		role := rbac.RoleID(fmt.Sprintf("r%04d", r))
		ds.EnsureRole(role)
		for u := 0; u < users; u++ {
			if rng.Float64() < 0.05 {
				ds.AssignUser(role, rbac.UserID(fmt.Sprintf("u%04d", u)))
			}
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// envelope builds a /v1/jobs (or sync v1) request body.
func envelope(t *testing.T, kind string, dataset []byte, options string, sparse *bool) []byte {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("{")
	if kind != "" {
		fmt.Fprintf(&b, "%q:%q,", "kind", kind)
	}
	if options != "" {
		fmt.Fprintf(&b, "%q:%s,", "options", options)
	}
	if sparse != nil {
		fmt.Fprintf(&b, "%q:%v,", "sparse", *sparse)
	}
	b.WriteString(`"dataset":`)
	b.Write(dataset)
	b.WriteString("}")
	return b.Bytes()
}

// submitJob POSTs to /v1/jobs and decodes the accepted snapshot.
func submitJob(t *testing.T, srv *httptest.Server, body []byte) jobs.Snapshot {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Status != jobs.StatusQueued {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	return snap
}

// getJob fetches a job snapshot, failing the test on non-200.
func getJob(t *testing.T, srv *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status fetch = %d", resp.StatusCode)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// pollUntilTerminal polls a job until it finishes, asserting progress
// never decreases along the way.
func pollUntilTerminal(t *testing.T, srv *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	last := -1.0
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		snap := getJob(t, srv, id)
		if snap.Progress.Fraction < last {
			t.Fatalf("progress regressed: %v -> %v (stage %s)", last, snap.Progress.Fraction, snap.Progress.Stage)
		}
		last = snap.Progress.Fraction
		if snap.Status.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.Snapshot{}
}

// zeroDurations clears the timing fields so sync and async reports of
// the same analysis compare equal.
func zeroDurations(rep *core.Report) {
	rep.LinearScanDuration = 0
	rep.SameGroupsDuration = 0
	rep.SimilarGroupDuration = 0
}

// TestJobLifecycleEndToEnd drives submit -> poll (monotonic progress)
// -> result over an organisation-shaped dataset and requires the async
// result to equal the synchronous endpoint's report for the same
// dataset and options.
func TestJobLifecycleEndToEnd(t *testing.T) {
	srv := newJobsServer(t, Options{})
	dataset := orgDatasetJSON(t)
	const options = `{"method":"rolediet","threshold":1}`

	snap := submitJob(t, srv, envelope(t, "analyze", dataset, options, nil))
	final := pollUntilTerminal(t, srv, snap.ID)
	if final.Status != jobs.StatusDone {
		t.Fatalf("final status = %s (error %q)", final.Status, final.Error)
	}
	if final.Progress.Fraction != 1 {
		t.Fatalf("final fraction = %v, want 1", final.Progress.Fraction)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	var async core.Report
	if err := json.NewDecoder(resp.Body).Decode(&async); err != nil {
		t.Fatal(err)
	}

	syncResp, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		bytes.NewReader(envelope(t, "", dataset, options, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer syncResp.Body.Close()
	if syncResp.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d", syncResp.StatusCode)
	}
	var sync core.Report
	if err := json.NewDecoder(syncResp.Body).Decode(&sync); err != nil {
		t.Fatal(err)
	}

	zeroDurations(&async)
	zeroDurations(&sync)
	if !reflect.DeepEqual(async, sync) {
		t.Fatalf("async report differs from sync report:\nasync: %+v\nsync:  %+v", async, sync)
	}
}

// TestJobConsolidateAndSuggestKinds exercises the two other kinds
// through the same lifecycle, comparing against their sync endpoints.
func TestJobConsolidateAndSuggestKinds(t *testing.T) {
	srv := newJobsServer(t, Options{})
	dataset := figure1Body(t).Bytes()
	for _, kind := range []string{"consolidate", "suggest"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			snap := submitJob(t, srv, envelope(t, kind, dataset, "", nil))
			final := pollUntilTerminal(t, srv, snap.ID)
			if final.Status != jobs.StatusDone {
				t.Fatalf("final status = %s (error %q)", final.Status, final.Error)
			}
			resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			asyncBody := new(bytes.Buffer)
			if _, err := asyncBody.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			syncResp, err := http.Post(srv.URL+"/v1/"+kind, "application/json", bytes.NewReader(dataset))
			if err != nil {
				t.Fatal(err)
			}
			defer syncResp.Body.Close()
			syncBody := new(bytes.Buffer)
			if _, err := syncBody.ReadFrom(syncResp.Body); err != nil {
				t.Fatal(err)
			}
			var asyncVal, syncVal any
			if err := json.Unmarshal(asyncBody.Bytes(), &asyncVal); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(syncBody.Bytes(), &syncVal); err != nil {
				t.Fatal(err)
			}
			stripDurations(asyncVal)
			stripDurations(syncVal)
			if !reflect.DeepEqual(asyncVal, syncVal) {
				t.Fatalf("async %s result differs from sync:\nasync: %s\nsync:  %s", kind, asyncBody, syncBody)
			}
		})
	}
}

// stripDurations removes *DurationNanos keys from decoded JSON so
// timing noise does not break result equality.
func stripDurations(v any) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			if strings.HasSuffix(k, "DurationNanos") {
				delete(x, k)
				continue
			}
			stripDurations(sub)
		}
	case []any:
		for _, sub := range x {
			stripDurations(sub)
		}
	}
}

// TestJobCancelFreesWorker cancels a running job and requires (a) the
// job to land in canceled within bounded time and (b) the single
// worker slot to be reusable for a fresh job afterwards.
func TestJobCancelFreesWorker(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: 1})
	slow := slowDatasetJSON(t)
	slowOpts := `{"method":"dbscan-float64","threshold":1}`

	snap := submitJob(t, srv, envelope(t, "analyze", slow, slowOpts, nil))

	// Wait for the worker to pick it up, then cancel mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := getJob(t, srv, snap.ID)
		if s.Status == jobs.StatusRunning {
			break
		}
		if s.Status.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %+v", s)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	delReq, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", delResp.StatusCode)
	}

	final := pollUntilTerminal(t, srv, snap.ID)
	if final.Status != jobs.StatusCanceled {
		t.Fatalf("status after cancel = %s", final.Status)
	}

	// The canceled run's result maps to the canceled error code.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != CodeCanceled {
		t.Fatalf("canceled result = %d/%s", resp.StatusCode, eb.Code)
	}

	// Worker slot is free again: a quick job must complete.
	quick := submitJob(t, srv, envelope(t, "analyze", figure1Body(t).Bytes(), "", nil))
	if final := pollUntilTerminal(t, srv, quick.ID); final.Status != jobs.StatusDone {
		t.Fatalf("post-cancel job = %s (error %q)", final.Status, final.Error)
	}
}

// TestJobQueueFullSheds fills the single-worker, depth-1 queue and
// requires the next submission to shed with 429/shed + Retry-After.
func TestJobQueueFullSheds(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: 1, JobQueueDepth: 1})
	slow := slowDatasetJSON(t)
	slowOpts := `{"method":"dbscan-float64","threshold":1}`
	body := envelope(t, "analyze", slow, slowOpts, nil)

	running := submitJob(t, srv, body)
	// Ensure the worker holds the first job so the second stays queued.
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, srv, running.ID).Status != jobs.StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued := submitJob(t, srv, body)

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != CodeShed {
		t.Fatalf("code = %q, want %q", eb.Code, CodeShed)
	}

	// Cleanup: cancel both jobs so teardown is immediate.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestJobResultExpiry requires finished results to 404 with not_found
// once the TTL lapses.
func TestJobResultExpiry(t *testing.T) {
	srv := newJobsServer(t, Options{JobResultTTL: 30 * time.Millisecond})
	snap := submitJob(t, srv, envelope(t, "analyze", figure1Body(t).Bytes(), "", nil))
	if final := pollUntilTerminal(t, srv, snap.ID); final.Status != jobs.StatusDone {
		t.Fatalf("job = %s (error %q)", final.Status, final.Error)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		var eb errorBody
		if status != http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&eb)
		}
		resp.Body.Close()
		if status == http.StatusNotFound {
			if eb.Code != CodeNotFound {
				t.Fatalf("expired code = %q", eb.Code)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("result never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobSubmissionErrors pins the submit-side error contract.
func TestJobSubmissionErrors(t *testing.T) {
	srv := newJobsServer(t, Options{})
	fig1 := figure1Body(t).Bytes()
	cases := []struct {
		name     string
		body     string
		want     int
		wantCode string
	}{
		{"missing kind", string(envelope(t, "", fig1, "", nil)), http.StatusBadRequest, CodeBadRequest},
		{"unknown kind", string(envelope(t, "mine-roles", fig1, "", nil)), http.StatusBadRequest, CodeBadRequest},
		{"bad options method", string(envelope(t, "analyze", fig1, `{"method":"kmeans"}`, nil)), http.StatusBadRequest, CodeBadRequest},
		{"negative threshold", string(envelope(t, "analyze", fig1, `{"threshold":-1}`, nil)), http.StatusBadRequest, CodeBadRequest},
		{"no dataset", `{"kind":"analyze"}`, http.StatusBadRequest, CodeBadRequest},
		{"broken json", `{nope`, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if eb.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", eb.Code, tc.wantCode)
			}
		})
	}
}

// TestJobStatusAndResultErrors pins the read-side error contract:
// unknown ids 404, unfinished results 409, double cancel 409.
func TestJobStatusAndResultErrors(t *testing.T) {
	srv := newJobsServer(t, Options{JobWorkers: 1})

	// Unknown id.
	resp, err := http.Get(srv.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || eb.Code != CodeNotFound {
		t.Fatalf("unknown id = %d/%s", resp.StatusCode, eb.Code)
	}

	// Result of a still-running job is a conflict.
	slow := submitJob(t, srv,
		envelope(t, "analyze", slowDatasetJSON(t), `{"method":"dbscan-float64","threshold":1}`, nil))
	resp, err = http.Get(srv.URL + "/v1/jobs/" + slow.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || eb.Code != CodeConflict {
		t.Fatalf("unfinished result = %d/%s", resp.StatusCode, eb.Code)
	}

	// Cancel it, then cancel again: the second is a conflict.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+slow.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	final := pollUntilTerminal(t, srv, slow.ID)
	if final.Status != jobs.StatusCanceled {
		t.Fatalf("status = %s", final.Status)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+slow.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || eb.Code != CodeConflict {
		t.Fatalf("double cancel = %d/%s", resp.StatusCode, eb.Code)
	}
}
