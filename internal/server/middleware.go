package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// The resilience middleware stack, applied by NewHandler from the
// outside in:
//
//	recovery -> load shedding -> request timeout -> mux
//
// Recovery is outermost so a panic anywhere below (including in the
// other middlewares) turns into a logged 500 instead of a dead
// connection. The limiter sits above the timeout so shed requests are
// rejected before a timer is armed for them. /healthz and /metrics
// bypass both the limiter and the timeout: liveness probes and metric
// scrapes must keep answering while the service is saturated or
// draining — saturation is exactly when the scrape matters most.

// statusRecorder tracks whether a handler already committed a response,
// so the recovery middleware knows if a 500 can still be written.
type statusRecorder struct {
	http.ResponseWriter
	wroteHeader bool
}

func (s *statusRecorder) WriteHeader(code int) {
	s.wroteHeader = true
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wroteHeader = true
	return s.ResponseWriter.Write(b)
}

// withRecovery converts handler panics into 500 responses and keeps
// the server process alive. http.ErrAbortHandler is re-panicked: it is
// net/http's sanctioned way to abort a connection silently.
func (h *handler) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			h.opts.Logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			if !rec.wroteHeader {
				writeError(rec, http.StatusInternalServerError,
					fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// withLoadShedding caps concurrent non-health requests at
// Options.MaxConcurrent. Excess requests are shed immediately with
// 429 and a Retry-After hint instead of queueing unboundedly.
func (h *handler) withLoadShedding(next http.Handler) http.Handler {
	if h.sem == nil {
		return next
	}
	retryAfter := retryAfterSeconds(h.opts.RetryAfter)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == healthPath || r.URL.Path == metricsPath {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d concurrent requests), retry later", h.opts.MaxConcurrent))
		}
	})
}

// withTimeout bounds each non-health request's handling time by
// deriving a deadline-carrying context. Handlers thread that context
// into the engine, which aborts its hot loops when the deadline
// passes; the error surfaces as 504 via writeEngineError.
func (h *handler) withTimeout(next http.Handler) http.Handler {
	if h.opts.RequestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == healthPath || r.URL.Path == metricsPath {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), h.opts.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// rounded up) from the configured hint.
func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}

// writeEngineError maps an analysis failure to the HTTP error
// contract: request deadline exceeded -> 504 timeout, cancellation
// (client disconnect, server drain, or job DELETE) -> 503 canceled,
// anything else -> 422 unprocessable.
func writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("analysis exceeded the request timeout: %w", err))
	case errors.Is(err, context.Canceled):
		// If the client is gone this response is never read; if the
		// daemon is draining it tells the client to come back.
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("analysis canceled: %w", err))
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}
