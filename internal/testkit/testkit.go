// Package testkit is the differential-correctness harness for the
// class-4/5 group detectors.
//
// The paper's central claim (§III-B, §IV) is that the Role Diet
// algorithm, DBSCAN and HNSW find the *same* same/similar-role groups at
// very different costs. This package turns that claim into enforced
// tooling: a brute-force O(r²) pairwise oracle computes the ground-truth
// partition for any row set and threshold, a backend registry runs every
// clustering implementation over seeded corpora from internal/gen, and
// the results are compared — exact backends (rolediet dense/CSR/parallel,
// dbscan) must reproduce the oracle partition bit for bit, approximate
// backends (hnsw, bitlsh) must stay above documented recall floors and
// may never invent a pair the oracle does not have.
//
// When a comparison fails, the harness prints the corpus seed and
// parameters so the run is reproducible, then shrinks the counterexample
// matrix with a delta-debugging pass and dumps it as JSON under
// testdata/failures/ for offline replay (see shrink.go and
// testdata/README.md).
package testkit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
)

// Oracle computes the exact same/similar-role partition by brute force:
// every one of the r·(r-1)/2 role pairs is tested with the true Hamming
// distance, pairs within the threshold are chained with union-find, and
// connected components with at least two members become groups. This is
// the O(r²) reference all backends are measured against — deliberately
// free of inverted indexes, hash buckets, norm analysis or any other
// shortcut the production implementations use.
//
// The group contract matches the backends: members ascend, groups are
// ordered by smallest member.
func Oracle(rows []*bitvec.Vector, threshold int) [][]int {
	n := len(rows)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rows[i].HammingAtMost(rows[j], threshold) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
	byRoot := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return Normalize(groups)
}

// Normalize sorts each group's members ascending and orders groups by
// their smallest member, the canonical form shared by every backend.
func Normalize(groups [][]int) [][]int {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// SamePartition reports whether two normalized group lists are equal.
func SamePartition(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for gi := range a {
		if len(a[gi]) != len(b[gi]) {
			return false
		}
		for i := range a[gi] {
			if a[gi][i] != b[gi][i] {
				return false
			}
		}
	}
	return true
}

// FormatPartition renders a group list compactly for failure messages,
// e.g. "{0 3 7} {1 2}".
func FormatPartition(groups [][]int) string {
	if len(groups) == 0 {
		return "(no groups)"
	}
	var sb strings.Builder
	for gi, g := range groups {
		if gi > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte('{')
		for i, m := range g {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", m)
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// WithinGroupPairs expands a group list into its set of unordered
// within-group pairs — the unit recall is measured over, matching the
// pair-level recall of results/recall.txt.
func WithinGroupPairs(groups [][]int) map[[2]int]struct{} {
	pairs := make(map[[2]int]struct{})
	for _, g := range groups {
		for ai := 0; ai < len(g); ai++ {
			for bi := ai + 1; bi < len(g); bi++ {
				pairs[[2]int{g[ai], g[bi]}] = struct{}{}
			}
		}
	}
	return pairs
}

// PairStats compares a backend partition against the oracle partition at
// the pair level. Recall is the fraction of oracle within-group pairs the
// backend also placed in one group (1 when the oracle has none).
// FalsePairs counts backend pairs absent from the oracle — for every
// backend in this repository, exact or approximate, that number must be
// zero, because approximate candidate pairs are always verified with the
// true distance before they can join a group.
func PairStats(oracle, got [][]int) (recall float64, falsePairs int) {
	want := WithinGroupPairs(oracle)
	have := WithinGroupPairs(got)
	if len(want) == 0 {
		recall = 1
	} else {
		hit := 0
		for p := range want {
			if _, ok := have[p]; ok {
				hit++
			}
		}
		recall = float64(hit) / float64(len(want))
	}
	for p := range have {
		if _, ok := want[p]; !ok {
			falsePairs++
		}
	}
	return recall, falsePairs
}
