package testkit

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rbac"
	"repro/internal/replay"
	"repro/internal/session"
)

// corpusDataset lifts a corpus matrix into a full tripartite dataset:
// row i becomes role r<i>, column j both user u<j> and permission p<j>,
// and the same bit pattern drives both assignment matrices. That makes
// the expected same-user and same-permission partitions identical and
// both equal to the corpus's threshold-0 oracle.
func corpusDataset(t *testing.T, rows []*bitvec.Vector) *rbac.Dataset {
	t.Helper()
	ds := rbac.NewDataset()
	if len(rows) == 0 {
		return ds
	}
	w := rows[0].Len()
	for j := 0; j < w; j++ {
		if err := ds.AddUser(rbac.UserID(fmt.Sprintf("u%04d", j))); err != nil {
			t.Fatal(err)
		}
		if err := ds.AddPermission(rbac.PermissionID(fmt.Sprintf("p%04d", j))); err != nil {
			t.Fatal(err)
		}
	}
	for i, row := range rows {
		rid := rbac.RoleID(fmt.Sprintf("r%04d", i))
		if err := ds.AddRole(rid); err != nil {
			t.Fatal(err)
		}
		var aerr error
		row.ForEach(func(j int) bool {
			if aerr = ds.AssignUser(rid, rbac.UserID(fmt.Sprintf("u%04d", j))); aerr != nil {
				return false
			}
			aerr = ds.AssignPermission(rid, rbac.PermissionID(fmt.Sprintf("p%04d", j)))
			return aerr == nil
		})
		if aerr != nil {
			t.Fatal(aerr)
		}
	}
	return ds
}

// groupSet canonicalises a [][]RoleID group list into an
// order-independent set-of-sets key for set-identity comparison.
func groupSet(groups [][]rbac.RoleID) map[string]bool {
	out := make(map[string]bool, len(groups))
	for _, g := range groups {
		ids := make([]string, len(g))
		for i, id := range g {
			ids[i] = string(id)
		}
		sort.Strings(ids)
		out[strings.Join(ids, "\x00")] = true
	}
	return out
}

// reportGroupSet extracts the engine's group view in the same key form.
func reportGroupSet(groups []core.RoleGroup) map[string]bool {
	raw := make([][]rbac.RoleID, len(groups))
	for i, g := range groups {
		raw[i] = g.Roles
	}
	return groupSet(raw)
}

// requireSetIdentical fails the test unless the two group views are
// set-identical.
func requireSetIdentical(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: incremental audit missing group {%s}", label, strings.ReplaceAll(k, "\x00", " "))
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: incremental audit invented group {%s}", label, strings.ReplaceAll(k, "\x00", " "))
		}
	}
}

// TestReconcileReplayMatchesAnalyze is the drift-audit differential
// suite: for every seeded corpus, lift the matrix into a dataset
// (before), churn it with generated drift events (after), and check
// that replaying Reconcile(before, after) through the incremental
// session indices lands on exactly the class-4 groups a full engine
// re-analysis of after finds — set-identical on both the same-user and
// same-permission sides. This is the correctness contract behind
// POST /v1/drift and GET /v1/sessions/{id}/audit: an O(delta) audit
// must never be distinguishable from a full re-run.
func TestReconcileReplayMatchesAnalyze(t *testing.T) {
	ctx := context.Background()
	for _, c := range Corpora(false) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rows, err := c.Rows()
			if err != nil {
				t.Fatal(err)
			}
			before := corpusDataset(t, rows)

			// Churn the snapshot: drift events are guaranteed applicable
			// to their base, so after is a valid mutation of before.
			after := before.Clone()
			events, err := gen.Drift(after, gen.DriftParams{Events: 40, Seed: c.Params.Seed + 7})
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range events {
				if err := replay.Apply(after, e); err != nil {
					t.Fatalf("drift event %d: %v", i, err)
				}
			}

			// The O(delta) path: diff the snapshots, replay the delta
			// through the live indices, read the groups off the buckets.
			delta := replay.Reconcile(before, after)
			s := session.New("differential", "base", before)
			if n, aerr := s.Apply(delta); aerr != nil {
				t.Fatalf("replaying reconcile delta stopped at event %d: %v", n, aerr)
			}
			audit := s.Audit()

			// The batch path: full engine re-analysis of after.
			report, err := core.AnalyzeContext(ctx, after, core.Options{SkipSimilar: true})
			if err != nil {
				t.Fatal(err)
			}

			requireSetIdentical(t, "same-user",
				reportGroupSet(report.SameUserGroups), groupSet(audit.SameUserGroups))
			requireSetIdentical(t, "same-permission",
				reportGroupSet(report.SamePermissionGroups), groupSet(audit.SamePermissionGroups))
		})
	}
}
