package testkit

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bitvec"
	"repro/internal/gen"
)

// Shrink minimises a failing row set with a delta-debugging pass. The
// failing predicate must return true for the input (the caller's
// counterexample) and is re-evaluated on every candidate reduction; the
// result is the smallest variant found that still fails.
//
// Two reduction phases run to a fixed point:
//
//  1. row removal — ddmin-style chunk deletion with halving chunk
//     sizes, so a 200-row counterexample typically collapses to a
//     handful of rows in O(n log n) predicate evaluations;
//  2. bit clearing — every set bit of every surviving row is tentatively
//     cleared, shrinking row content and often emptying whole columns.
//
// Cancelling ctx stops the search and returns the smallest failing
// variant found so far — every intermediate state is itself a valid
// counterexample, so a deadline only costs minimality, never
// correctness. Callers shrinking large corpora (where one predicate
// evaluation means re-clustering thousands of rows) should bound ctx.
//
// Rows keep their relative order so group indices in the shrunk case
// remain meaningful. The input slice is not mutated.
func Shrink(ctx context.Context, rows []*bitvec.Vector, failing func([]*bitvec.Vector) bool) []*bitvec.Vector {
	cur := make([]*bitvec.Vector, len(rows))
	for i, r := range rows {
		cur[i] = r.Clone()
	}
	if !failing(cur) {
		return cur
	}

	// Phase 1: remove row chunks, halving the chunk size until single
	// rows have been tried without progress.
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for lo := 0; lo+chunk <= len(cur); {
			if ctx.Err() != nil {
				return cur
			}
			candidate := make([]*bitvec.Vector, 0, len(cur)-chunk)
			candidate = append(candidate, cur[:lo]...)
			candidate = append(candidate, cur[lo+chunk:]...)
			if failing(candidate) {
				cur = candidate
				removed = true
				// Do not advance lo: the next chunk shifted into place.
			} else {
				lo += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur)/2 {
			chunk = len(cur) / 2
		}
	}

	// Phase 2: clear individual bits while the failure persists.
	for {
		cleared := false
		for i := range cur {
			for _, j := range cur[i].Indices() {
				if ctx.Err() != nil {
					return cur
				}
				cur[i].Clear(j)
				if failing(cur) {
					cleared = true
					continue
				}
				cur[i].Set(j)
			}
		}
		if !cleared {
			return cur
		}
	}
}

// Case is a serialised counterexample: everything needed to re-run one
// backend against the oracle on the exact matrix that failed. The rows
// are stored as 0/1 strings (bitvec.Parse round-trips them), and the
// generator seed + parameters of the originating corpus ride along so
// the full-size input can be regenerated too.
type Case struct {
	// Backend names the implementation that disagreed with the oracle.
	Backend string `json:"backend"`
	// Threshold is the Hamming threshold k of the failing run.
	Threshold int `json:"threshold"`
	// GenParams, when present, regenerates the original (unshrunk)
	// corpus via gen.Matrix; GenParams.Seed is the reproducing seed.
	GenParams *gen.MatrixParams `json:"genParams,omitempty"`
	// Rows is the (typically shrunk) matrix, one 0/1 string per role.
	Rows []string `json:"rows"`
	// Note carries free-form context, e.g. the original failure detail.
	Note string `json:"note,omitempty"`
}

// Vectors parses the case rows back into bit vectors.
func (c *Case) Vectors() ([]*bitvec.Vector, error) {
	out := make([]*bitvec.Vector, len(c.Rows))
	for i, s := range c.Rows {
		v, err := bitvec.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("testkit: case row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// NewCase snapshots rows into a serialisable counterexample.
func NewCase(backend string, threshold int, rows []*bitvec.Vector, params *gen.MatrixParams, note string) *Case {
	c := &Case{Backend: backend, Threshold: threshold, GenParams: params, Note: note}
	for _, r := range rows {
		c.Rows = append(c.Rows, r.String())
	}
	return c
}

// DumpCase writes the case as indented JSON under dir, creating the
// directory as needed. The filename is content-addressed
// (<backend>-k<threshold>-<hash>.json) so repeated runs of the same
// failure overwrite one file instead of piling up.
func DumpCase(dir string, c *Case) (string, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", fmt.Errorf("testkit: marshal case: %w", err)
	}
	data = append(data, '\n')
	h := fnv.New64a()
	h.Write(data)
	name := fmt.Sprintf("%s-k%d-%016x.json", c.Backend, c.Threshold, h.Sum64())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("testkit: create case dir: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("testkit: write case: %w", err)
	}
	return path, nil
}

// LoadCase reads a case file written by DumpCase.
func LoadCase(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("testkit: parse case %s: %w", path, err)
	}
	return &c, nil
}

// ReplayCase re-runs the case's backend against the oracle on the
// recorded rows and returns a descriptive error when the disagreement
// still reproduces (nil when the backend now agrees). Unknown backend
// names error out rather than silently passing.
func ReplayCase(ctx context.Context, c *Case) error {
	b := BackendByName(c.Backend)
	if b == nil {
		return fmt.Errorf("testkit: case references unknown backend %q", c.Backend)
	}
	rows, err := c.Vectors()
	if err != nil {
		return err
	}
	oracle := Oracle(rows, c.Threshold)
	if detail := CheckBackend(ctx, *b, rows, c.Threshold, oracle); detail != "" {
		return fmt.Errorf("testkit: case still fails for backend %s at k=%d: %s", c.Backend, c.Threshold, detail)
	}
	return nil
}

// shrinkTimeout bounds one ShrinkAndDump minimisation. Small-corpus
// failures shrink to a handful of rows in well under a second; on a
// TESTKIT_FULL organisation-shaped corpus a single predicate evaluation
// re-clusters thousands of rows, so an unbounded ddmin could grind for
// the better part of an hour. Whatever is reached when the budget
// expires is still a failing input, and the recorded generator seed
// reproduces the full corpus regardless.
const shrinkTimeout = 2 * time.Minute

// ShrinkAndDump minimises a failing corpus run for one backend and
// writes the shrunk counterexample under dir. The predicate re-runs the
// backend against a freshly computed oracle on each candidate, so the
// shrunk matrix is guaranteed to still disagree at dump time. The
// minimisation itself is bounded by shrinkTimeout; candidates evaluated
// after the deadline are rejected outright, so an expiring clustering
// run (which would surface as a spurious "backend error" disagreement)
// can never be accepted into the counterexample.
func ShrinkAndDump(ctx context.Context, dir string, b Backend, c Corpus, rows []*bitvec.Vector, detail string) (string, error) {
	sctx, cancel := context.WithTimeout(ctx, shrinkTimeout)
	defer cancel()
	failing := func(candidate []*bitvec.Vector) bool {
		if len(candidate) == 0 || sctx.Err() != nil {
			return false
		}
		oracle := Oracle(candidate, c.Threshold)
		fails := CheckBackend(sctx, b, candidate, c.Threshold, oracle) != ""
		return fails && sctx.Err() == nil
	}
	shrunk := Shrink(sctx, rows, failing)
	params := c.Params
	return DumpCase(dir, NewCase(b.Name, c.Threshold, shrunk, &params, detail))
}
