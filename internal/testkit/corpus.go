package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/gen"
)

// Corpus is one seeded differential-test input: a generator
// configuration plus the grouping threshold to run the backends at.
// Everything needed to reproduce a run is in the struct — failure
// messages print it verbatim.
type Corpus struct {
	// Name labels the corpus in failures and subtests.
	Name string
	// Params drives the §IV-A synthetic generator; Params.Seed makes the
	// corpus deterministic. Ignored when Gen is set.
	Params gen.MatrixParams
	// Gen, when non-nil, replaces the synthetic generator with a
	// hand-planted deterministic matrix — used for adversarial geometries
	// the generator cannot express, like rows straddling the norm-pruning
	// boundary at exactly the threshold.
	Gen func() ([]*bitvec.Vector, error)
	// Threshold is the Hamming threshold k handed to every backend: 0
	// exercises the class-4 (same users/permissions) paths, k ≥ 1 the
	// class-5 (similar) paths.
	Threshold int
	// RelaxedRecall disables the recall floor for approximate backends
	// on this corpus (the zero-false-pairs invariant still applies).
	// Used for degenerate geometries — e.g. an 8-column matrix at k=1,
	// where almost every row chains into one giant component and a
	// single missed bridge edge costs hundreds of within-group pairs,
	// making pair recall meaningless as an accuracy metric.
	RelaxedRecall bool
}

// Rows materialises the corpus matrix.
func (c Corpus) Rows() ([]*bitvec.Vector, error) {
	if c.Gen != nil {
		return c.Gen()
	}
	g, err := gen.Matrix(c.Params)
	if err != nil {
		return nil, err
	}
	return g.Rows, nil
}

// String renders the reproduction recipe printed on failure.
func (c Corpus) String() string {
	if c.Gen != nil {
		return fmt.Sprintf("%s: hand-planted corpus (see Corpora) threshold=%d", c.Name, c.Threshold)
	}
	p := c.Params
	return fmt.Sprintf("%s: gen.Matrix{Rows:%d Cols:%d ClusterProportion:%g MaxClusterSize:%d Density:%g SimilarNoise:%d Seed:%d} threshold=%d",
		c.Name, p.Rows, p.Cols, p.ClusterProportion, p.MaxClusterSize, p.Density, p.SimilarNoise, p.Seed, c.Threshold)
}

// corpusShape is a matrix geometry the sweep crosses with noise and
// threshold settings.
type corpusShape struct {
	rows, cols int
	density    float64
}

// corpusRegime pairs a planted-noise level with the detection threshold
// run against it. noise ≤ threshold keeps planted clusters recoverable;
// the noise=1/k=0 regime deliberately plants clusters the threshold must
// NOT fully merge, exercising the negative direction.
type corpusRegime struct {
	noise, threshold int
}

// Corpora returns the seeded corpus sweep. The short list (full=false)
// is sized for `go test` latency: every backend including O(n²) DBSCAN
// and HNSW construction completes the whole sweep in a few seconds. The
// full list appends organisation-shaped matrices (thousands of roles)
// for the scheduled CI sweep; it is minutes, not seconds.
func Corpora(full bool) []Corpus {
	shapes := []corpusShape{
		{rows: 80, cols: 96, density: 0.08},
		{rows: 150, cols: 128, density: 0.05},
		{rows: 200, cols: 256, density: 0.03},
		{rows: 120, cols: 64, density: 0.10},
	}
	regimes := []corpusRegime{
		{noise: 0, threshold: 0},
		{noise: 0, threshold: 1},
		{noise: 1, threshold: 1},
		{noise: 2, threshold: 2},
		{noise: 3, threshold: 3},
	}
	var out []Corpus
	seed := int64(1)
	for si, sh := range shapes {
		for ri, rg := range regimes {
			out = append(out, Corpus{
				Name: fmt.Sprintf("sweep-%dx%d-n%d-k%d", sh.rows, sh.cols, rg.noise, rg.threshold),
				Params: gen.MatrixParams{
					Rows:              sh.rows,
					Cols:              sh.cols,
					ClusterProportion: 0.2,
					MaxClusterSize:    10,
					Density:           sh.density,
					SimilarNoise:      rg.noise,
					Seed:              seed + int64(si*len(regimes)+ri),
				},
				Threshold: rg.threshold,
			})
		}
	}

	// Edge corpora: degenerate shapes the sweep grid does not reach.
	out = append(out,
		Corpus{
			Name: "all-clustered",
			Params: gen.MatrixParams{
				Rows: 60, Cols: 64, ClusterProportion: 1.0,
				MaxClusterSize: 6, Density: 0.1, Seed: 101,
			},
			Threshold: 0,
		},
		Corpus{
			Name: "no-planted-clusters",
			Params: gen.MatrixParams{
				Rows: 90, Cols: 48, ClusterProportion: 0,
				Density: 0.15, Seed: 102,
			},
			Threshold: 1,
		},
		Corpus{
			Name: "tiny-width",
			Params: gen.MatrixParams{
				Rows: 40, Cols: 8, ClusterProportion: 0.3,
				MaxClusterSize: 4, Density: 0.3, Seed: 103,
			},
			Threshold:     1,
			RelaxedRecall: true,
		},
		Corpus{
			Name: "dense-rows",
			Params: gen.MatrixParams{
				Rows: 70, Cols: 80, ClusterProportion: 0.25,
				MaxClusterSize: 5, Density: 0.5, SimilarNoise: 2, Seed: 104,
			},
			Threshold: 2,
		},
	)

	// Norm-boundary corpora: every chain plants a base row, a superset
	// at Hamming distance exactly k (norm gap exactly k — the last pair
	// the triangle-inequality pre-pass may NOT prune), and a superset at
	// distance k+1 (norm gap k+1 — the first pair it must). An off-by-one
	// in the pruning comparison drops true boundary pairs, which the
	// brute-force oracle catches as missing groups in the exact backends.
	for _, k := range []int{0, 1, 2, 3} {
		k := k
		out = append(out, Corpus{
			Name: fmt.Sprintf("norm-boundary-k%d", k),
			Gen:  func() ([]*bitvec.Vector, error) { return normBoundaryRows(int64(200+k), 96, k, 12), nil },
			// The corpus exists to catch off-by-ones in the exact kernels'
			// pruning; every planted pair sits at distance exactly k — the
			// minimum collision probability an LSH table can offer — so the
			// probabilistic recall floor is statistically meaningless here.
			RelaxedRecall: true,
			Threshold:     k,
		})
	}

	if full {
		for i, sh := range []corpusShape{
			{rows: 1000, cols: 512, density: 0.03},
			{rows: 2000, cols: 1000, density: 0.02},
			{rows: 4000, cols: 1000, density: 0.01},
		} {
			for _, rg := range regimes {
				out = append(out, Corpus{
					Name: fmt.Sprintf("full-%dx%d-n%d-k%d", sh.rows, sh.cols, rg.noise, rg.threshold),
					Params: gen.MatrixParams{
						Rows:              sh.rows,
						Cols:              sh.cols,
						ClusterProportion: 0.2,
						MaxClusterSize:    10,
						Density:           sh.density,
						SimilarNoise:      rg.noise,
						Seed:              int64(1000 + i),
					},
					Threshold: rg.threshold,
				})
			}
		}
	}
	return out
}

// normBoundaryRows hand-plants the pruning-boundary matrix: chains of
// (base, base+k extra bits, base+(k+1) extra bits) rows. The middle row
// sits at distance k from the base with a norm gap of exactly k, so a
// pruning pre-pass using |‖a‖−‖b‖| >= k instead of > k would skip a
// true pair; the last row sits one past the boundary on both counts.
// Chains use independent random bases, so cross-chain distances are far
// above any small k and the planted structure is the whole truth.
func normBoundaryRows(seed int64, width, k, chains int) []*bitvec.Vector {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]*bitvec.Vector, 0, 3*chains)
	for c := 0; c < chains; c++ {
		base := bitvec.New(width)
		for j := 0; j < width; j++ {
			if rng.Float64() < 0.3 {
				base.Set(j)
			}
		}
		free := make([]int, 0, width)
		for j := 0; j < width; j++ {
			if !base.Get(j) {
				free = append(free, j)
			}
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		atBoundary := base.Clone()
		for _, j := range free[:k] {
			atBoundary.Set(j)
		}
		pastBoundary := base.Clone()
		for _, j := range free[k : 2*k+1] {
			pastBoundary.Set(j)
		}
		rows = append(rows, base, atBoundary, pastBoundary)
	}
	return rows
}
