package testkit

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/gen"
)

// Corpus is one seeded differential-test input: a generator
// configuration plus the grouping threshold to run the backends at.
// Everything needed to reproduce a run is in the struct — failure
// messages print it verbatim.
type Corpus struct {
	// Name labels the corpus in failures and subtests.
	Name string
	// Params drives the §IV-A synthetic generator; Params.Seed makes the
	// corpus deterministic.
	Params gen.MatrixParams
	// Threshold is the Hamming threshold k handed to every backend: 0
	// exercises the class-4 (same users/permissions) paths, k ≥ 1 the
	// class-5 (similar) paths.
	Threshold int
	// RelaxedRecall disables the recall floor for approximate backends
	// on this corpus (the zero-false-pairs invariant still applies).
	// Used for degenerate geometries — e.g. an 8-column matrix at k=1,
	// where almost every row chains into one giant component and a
	// single missed bridge edge costs hundreds of within-group pairs,
	// making pair recall meaningless as an accuracy metric.
	RelaxedRecall bool
}

// Rows materialises the corpus matrix.
func (c Corpus) Rows() ([]*bitvec.Vector, error) {
	g, err := gen.Matrix(c.Params)
	if err != nil {
		return nil, err
	}
	return g.Rows, nil
}

// String renders the reproduction recipe printed on failure.
func (c Corpus) String() string {
	p := c.Params
	return fmt.Sprintf("%s: gen.Matrix{Rows:%d Cols:%d ClusterProportion:%g MaxClusterSize:%d Density:%g SimilarNoise:%d Seed:%d} threshold=%d",
		c.Name, p.Rows, p.Cols, p.ClusterProportion, p.MaxClusterSize, p.Density, p.SimilarNoise, p.Seed, c.Threshold)
}

// corpusShape is a matrix geometry the sweep crosses with noise and
// threshold settings.
type corpusShape struct {
	rows, cols int
	density    float64
}

// corpusRegime pairs a planted-noise level with the detection threshold
// run against it. noise ≤ threshold keeps planted clusters recoverable;
// the noise=1/k=0 regime deliberately plants clusters the threshold must
// NOT fully merge, exercising the negative direction.
type corpusRegime struct {
	noise, threshold int
}

// Corpora returns the seeded corpus sweep. The short list (full=false)
// is sized for `go test` latency: every backend including O(n²) DBSCAN
// and HNSW construction completes the whole sweep in a few seconds. The
// full list appends organisation-shaped matrices (thousands of roles)
// for the scheduled CI sweep; it is minutes, not seconds.
func Corpora(full bool) []Corpus {
	shapes := []corpusShape{
		{rows: 80, cols: 96, density: 0.08},
		{rows: 150, cols: 128, density: 0.05},
		{rows: 200, cols: 256, density: 0.03},
		{rows: 120, cols: 64, density: 0.10},
	}
	regimes := []corpusRegime{
		{noise: 0, threshold: 0},
		{noise: 0, threshold: 1},
		{noise: 1, threshold: 1},
		{noise: 2, threshold: 2},
		{noise: 3, threshold: 3},
	}
	var out []Corpus
	seed := int64(1)
	for si, sh := range shapes {
		for ri, rg := range regimes {
			out = append(out, Corpus{
				Name: fmt.Sprintf("sweep-%dx%d-n%d-k%d", sh.rows, sh.cols, rg.noise, rg.threshold),
				Params: gen.MatrixParams{
					Rows:              sh.rows,
					Cols:              sh.cols,
					ClusterProportion: 0.2,
					MaxClusterSize:    10,
					Density:           sh.density,
					SimilarNoise:      rg.noise,
					Seed:              seed + int64(si*len(regimes)+ri),
				},
				Threshold: rg.threshold,
			})
		}
	}

	// Edge corpora: degenerate shapes the sweep grid does not reach.
	out = append(out,
		Corpus{
			Name: "all-clustered",
			Params: gen.MatrixParams{
				Rows: 60, Cols: 64, ClusterProportion: 1.0,
				MaxClusterSize: 6, Density: 0.1, Seed: 101,
			},
			Threshold: 0,
		},
		Corpus{
			Name: "no-planted-clusters",
			Params: gen.MatrixParams{
				Rows: 90, Cols: 48, ClusterProportion: 0,
				Density: 0.15, Seed: 102,
			},
			Threshold: 1,
		},
		Corpus{
			Name: "tiny-width",
			Params: gen.MatrixParams{
				Rows: 40, Cols: 8, ClusterProportion: 0.3,
				MaxClusterSize: 4, Density: 0.3, Seed: 103,
			},
			Threshold:     1,
			RelaxedRecall: true,
		},
		Corpus{
			Name: "dense-rows",
			Params: gen.MatrixParams{
				Rows: 70, Cols: 80, ClusterProportion: 0.25,
				MaxClusterSize: 5, Density: 0.5, SimilarNoise: 2, Seed: 104,
			},
			Threshold: 2,
		},
	)

	if full {
		for i, sh := range []corpusShape{
			{rows: 1000, cols: 512, density: 0.03},
			{rows: 2000, cols: 1000, density: 0.02},
			{rows: 4000, cols: 1000, density: 0.01},
		} {
			for _, rg := range regimes {
				out = append(out, Corpus{
					Name: fmt.Sprintf("full-%dx%d-n%d-k%d", sh.rows, sh.cols, rg.noise, rg.threshold),
					Params: gen.MatrixParams{
						Rows:              sh.rows,
						Cols:              sh.cols,
						ClusterProportion: 0.2,
						MaxClusterSize:    10,
						Density:           sh.density,
						SimilarNoise:      rg.noise,
						Seed:              int64(1000 + i),
					},
					Threshold: rg.threshold,
				})
			}
		}
	}
	return out
}
