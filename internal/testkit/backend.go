package testkit

import (
	"context"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cluster/bitlsh"
	"repro/internal/cluster/dbscan"
	"repro/internal/cluster/hnsw"
	"repro/internal/cluster/rolediet"
	"repro/internal/incremental"
	"repro/internal/matrix"
)

// Backend is one clustering implementation under differential test. Run
// invokes the package's cancellation-aware *Context entry point and
// returns the partition in canonical form.
type Backend struct {
	// Name identifies the backend in failure messages and case files.
	Name string
	// Exact backends must reproduce the oracle partition exactly.
	Exact bool
	// MinRecall is the pair-level recall floor for approximate backends
	// (ignored when Exact). The floors are derived from the measured
	// sweep in results/recall.txt — see Backends for the derivation.
	MinRecall float64
	// ZeroThresholdOnly marks backends that only detect exact duplicates
	// (threshold 0). Harness call sites skip them at other thresholds —
	// see CheckBackend — and Run rejects nonzero thresholds outright.
	ZeroThresholdOnly bool
	// Run executes the backend over the rows at the given threshold.
	Run func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error)
}

// rowsToCSR densifies the rows into a BitMatrix and converts to CSR;
// corpus rows always share a width, so FromRows cannot fail here.
func rowsToCSR(rows []*bitvec.Vector) (*matrix.CSR, error) {
	m, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return matrix.CSRFromDense(m), nil
}

// hnswSearchEf is the beam width the harness queries with. recall.txt
// measures pair recall 0.945 at ef=128 and 0.980 at ef=256 on a
// 4000×1000 matrix at threshold 0; the harness uses 256 because the
// TESTKIT_FULL sweep reaches that scale at thresholds up to 3, where
// ef=128 drops below the 0.80 floor (0.73 measured on the 4000×1000
// noise=2/k=2 corpus — ef=256 recovers it to ≈0.95).
const hnswSearchEf = 256

// Backends returns every clustering backend in the repository.
//
// Recall floors for the approximate backends come from the measured
// sweep in results/recall.txt (4000×1000 matrix, threshold 0, 800
// planted roles):
//
//   - hnsw at ef=128 measured 0.945 pair recall; the floor is set at
//     0.80 to absorb the variance of the much smaller differential
//     corpora, where a single missed pair moves recall by whole
//     percentage points.
//   - lsh with the default 8 tables measured 1.000 at threshold 0 (bit
//     sampling is exact for identical rows); above the threshold the
//     per-pair collision probability is tuned to ≈0.94 (see
//     bitlsh.defaultBits), and chaining recovers most misses. Floor
//     0.90.
//
// Lowering either floor requires a matching update to the table in
// EXPERIMENTS.md ("Differential correctness harness").
func Backends() []Backend {
	return []Backend{
		{
			Name:  "rolediet",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := rolediet.GroupsContext(ctx, rows, rolediet.Options{Threshold: threshold})
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
		{
			Name:  "rolediet-csr",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				c, err := rowsToCSR(rows)
				if err != nil {
					return nil, err
				}
				res, err := rolediet.GroupsCSRContext(ctx, c, rolediet.Options{Threshold: threshold})
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
		{
			Name:  "rolediet-parallel",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := rolediet.GroupsParallelContext(ctx, rows, rolediet.Options{Threshold: threshold}, 4)
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
		{
			Name:  "rolediet-csr-parallel",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				c, err := rowsToCSR(rows)
				if err != nil {
					return nil, err
				}
				res, err := rolediet.GroupsCSRParallelContext(ctx, c, rolediet.Options{Threshold: threshold}, 4)
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
		{
			Name:  "dbscan",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := dbscan.RunContext(ctx, rows, dbscan.Config{
					// Same epsilon guard as core.FindRoleGroups: distances
					// are integral, so +1e-9 cannot admit a false pair.
					Eps:    float64(threshold) + 1e-9,
					MinPts: 2,
				})
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups()), nil
			},
		},
		{
			Name:  "dbscan-parallel",
			Exact: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := dbscan.RunParallelContext(ctx, rows, dbscan.Config{
					Eps:    float64(threshold) + 1e-9,
					MinPts: 2,
				}, 4)
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups()), nil
			},
		},
		{
			// The live-mutation index (internal/incremental) built from
			// scratch: one role per row, one Assign per set bit, groups
			// read off the Zobrist hash buckets. Exact duplicates only,
			// so it answers at threshold 0 and is skipped elsewhere. It
			// keeps all-zero rows (matching the oracle, which groups
			// them), unlike the engine's class-4 view.
			Name:              "incremental",
			Exact:             true,
			ZeroThresholdOnly: true,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				if threshold != 0 {
					return nil, fmt.Errorf("incremental backend answers threshold 0 only, got %d", threshold)
				}
				idx := incremental.New(0x7465737464696574)
				for i, row := range rows {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					if err := idx.AddRole(i); err != nil {
						return nil, err
					}
					var aerr error
					row.ForEach(func(j int) bool {
						aerr = idx.Assign(i, j)
						return aerr == nil
					})
					if aerr != nil {
						return nil, aerr
					}
				}
				return Normalize(idx.Groups(incremental.GroupOptions{})), nil
			},
		},
		{
			Name:      "hnsw",
			MinRecall: 0.80,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				return hnswGroups(ctx, rows, threshold, hnsw.BuildContext)
			},
		},
		{
			// The parallel build with >= 2 workers produces a valid HNSW
			// graph but not the serial one link for link, so it carries
			// the same recall floor, verified independently.
			Name:      "hnsw-parallel",
			MinRecall: 0.80,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				return hnswGroups(ctx, rows, threshold,
					func(ctx context.Context, rows []*bitvec.Vector, cfg hnsw.Config) (*hnsw.Index, error) {
						return hnsw.BuildParallelContext(ctx, rows, cfg, 4)
					})
			},
		},
		{
			Name:      "lsh",
			MinRecall: 0.90,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := bitlsh.FindGroupsContext(ctx, rows, threshold, bitlsh.Config{})
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
		{
			// lsh-parallel reproduces the serial lsh result exactly for a
			// fixed seed, but it is still approximate relative to the
			// oracle, hence the same floor rather than Exact.
			Name:      "lsh-parallel",
			MinRecall: 0.90,
			Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
				res, err := bitlsh.FindGroupsParallelContext(ctx, rows, threshold, bitlsh.Config{}, 4)
				if err != nil {
					return nil, err
				}
				return Normalize(res.Groups), nil
			},
		},
	}
}

// BackendByName looks a backend up for case replay; nil when unknown.
func BackendByName(name string) *Backend {
	for _, b := range Backends() {
		if b.Name == name {
			b := b
			return &b
		}
	}
	return nil
}

// hnswGroups mirrors the §III-D grouping recipe: build the index over
// all rows, radius-query it once per role, union every hit within the
// threshold. Recall is approximate by construction; precision is exact
// because SearchRadius filters by true distance. The build function is
// a parameter so the serial and parallel constructions share one
// grouping recipe.
func hnswGroups(ctx context.Context, rows []*bitvec.Vector, threshold int,
	build func(context.Context, []*bitvec.Vector, hnsw.Config) (*hnsw.Index, error)) ([][]int, error) {
	idx, err := build(ctx, rows, hnsw.Config{})
	if err != nil {
		return nil, err
	}
	parent := make([]int, len(rows))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hits, err := idx.SearchRadius(row, float64(threshold), hnswSearchEf)
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			if h.ID == i {
				continue
			}
			ri, rh := find(i), find(h.ID)
			if ri != rh {
				parent[rh] = ri
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := range rows {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var groups [][]int
	for _, g := range byRoot {
		if len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return Normalize(groups), nil
}
