package testkit

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cluster/rolediet"
)

// metamorphicCorpora is the subset of the sweep the property tests run
// over: one corpus per regime keeps each property test well under a
// second while still covering exact, similar, noisy and degenerate
// inputs.
func metamorphicCorpora() []Corpus {
	all := Corpora(false)
	picked := []Corpus{all[0], all[2], all[8], all[14], all[19]}
	picked = append(picked, all[len(all)-4:]...) // the edge corpora
	return picked
}

// exactBackends filters the registry down to the implementations that
// must reproduce the oracle partition bit for bit. Threshold-0-only
// backends are excluded: the metamorphic properties probe k and k+1,
// which those backends cannot answer (the differential sweep and the
// dedicated incremental tests cover them instead).
func exactBackends() []Backend {
	var out []Backend
	for _, b := range Backends() {
		if b.Exact && !b.ZeroThresholdOnly {
			out = append(out, b)
		}
	}
	return out
}

// permuteRows returns rows shuffled by a seeded permutation plus the
// permutation itself (perm[newIndex] = oldIndex).
func permuteRows(rows []*bitvec.Vector, seed int64) ([]*bitvec.Vector, []int) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(rows))
	out := make([]*bitvec.Vector, len(rows))
	for ni, oi := range perm {
		out[ni] = rows[oi]
	}
	return out, perm
}

// mapGroups rewrites group member indices through perm (new → old) and
// renormalises, undoing a row permutation.
func mapGroups(groups [][]int, perm []int) [][]int {
	out := make([][]int, len(groups))
	for gi, g := range groups {
		m := make([]int, len(g))
		for i, idx := range g {
			m[i] = perm[idx]
		}
		out[gi] = m
	}
	return Normalize(out)
}

// permuteCols rebuilds every row with its columns shuffled by one
// shared seeded permutation. Hamming distances are column-order
// independent, so the partition must not change.
func permuteCols(rows []*bitvec.Vector, seed int64) []*bitvec.Vector {
	if len(rows) == 0 {
		return nil
	}
	w := rows[0].Len()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(w)
	out := make([]*bitvec.Vector, len(rows))
	for i, r := range rows {
		v := bitvec.New(w)
		r.ForEach(func(j int) bool {
			v.Set(perm[j])
			return true
		})
		out[i] = v
	}
	return out
}

// TestRowPermutationInvariance: shuffling the input rows must not change
// the partition an exact backend finds, once indices are mapped back.
func TestRowPermutationInvariance(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		shuffled, perm := permuteRows(rows, 99)
		for _, b := range exactBackends() {
			base, err := b.Run(ctx, rows, c.Threshold)
			if err != nil {
				t.Fatalf("%s on [%s]: %v", b.Name, c, err)
			}
			got, err := b.Run(ctx, shuffled, c.Threshold)
			if err != nil {
				t.Fatalf("%s on shuffled [%s]: %v", b.Name, c, err)
			}
			if unmapped := mapGroups(got, perm); !SamePartition(base, unmapped) {
				t.Errorf("%s on [%s]: row permutation changed partition\n  base:     %s\n  permuted: %s",
					b.Name, c, FormatPartition(base), FormatPartition(unmapped))
			}
		}
	}
}

// TestColumnPermutationInvariance: relabelling users/permissions is
// distance-preserving, so the partition must be identical.
func TestColumnPermutationInvariance(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		permuted := permuteCols(rows, 17)
		for _, b := range exactBackends() {
			base, err := b.Run(ctx, rows, c.Threshold)
			if err != nil {
				t.Fatalf("%s on [%s]: %v", b.Name, c, err)
			}
			got, err := b.Run(ctx, permuted, c.Threshold)
			if err != nil {
				t.Fatalf("%s on column-permuted [%s]: %v", b.Name, c, err)
			}
			if !SamePartition(base, got) {
				t.Errorf("%s on [%s]: column permutation changed partition\n  base:     %s\n  permuted: %s",
					b.Name, c, FormatPartition(base), FormatPartition(got))
			}
		}
	}
}

// restrictPartition drops member indices >= n and groups that fall
// below two members.
func restrictPartition(groups [][]int, n int) [][]int {
	var out [][]int
	for _, g := range groups {
		var kept []int
		for _, m := range g {
			if m < n {
				kept = append(kept, m)
			}
		}
		if len(kept) >= 2 {
			out = append(out, kept)
		}
	}
	return Normalize(out)
}

// TestDuplicateRowStability: appending an exact copy of an existing row
// must (a) place the copy in the original row's group and (b) leave the
// partition over the original indices unchanged — a duplicate is at
// distance 0 from its source and at the source's distance from
// everything else, so no new connectivity can appear.
func TestDuplicateRowStability(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		n := len(rows)
		augmented := append(append([]*bitvec.Vector{}, rows...), rows[0].Clone())
		for _, b := range exactBackends() {
			base, err := b.Run(ctx, rows, c.Threshold)
			if err != nil {
				t.Fatalf("%s on [%s]: %v", b.Name, c, err)
			}
			got, err := b.Run(ctx, augmented, c.Threshold)
			if err != nil {
				t.Fatalf("%s on augmented [%s]: %v", b.Name, c, err)
			}
			sameGroup := false
			for _, g := range got {
				has0, hasN := false, false
				for _, m := range g {
					has0 = has0 || m == 0
					hasN = hasN || m == n
				}
				if has0 && hasN {
					sameGroup = true
				}
			}
			if !sameGroup {
				t.Errorf("%s on [%s]: duplicate of row 0 not grouped with it: %s",
					b.Name, c, FormatPartition(got))
			}
			if restricted := restrictPartition(got, n); !SamePartition(base, restricted) {
				t.Errorf("%s on [%s]: duplicate row changed the original partition\n  base:       %s\n  restricted: %s",
					b.Name, c, FormatPartition(base), FormatPartition(restricted))
			}
		}
	}
}

// isRefinement reports whether every group of fine is contained in a
// single group of coarse.
func isRefinement(fine, coarse [][]int) bool {
	groupOf := map[int]int{}
	for gi, g := range coarse {
		for _, m := range g {
			groupOf[m] = gi
		}
	}
	for _, g := range fine {
		want, ok := groupOf[g[0]]
		if !ok {
			return false
		}
		for _, m := range g[1:] {
			if gi, ok := groupOf[m]; !ok || gi != want {
				return false
			}
		}
	}
	return true
}

// TestThresholdMonotonicity: the "Hamming <= k" graph is a subgraph of
// the "Hamming <= k+1" graph, so the partition at k must refine the
// partition at k+1 for every exact backend (and the oracle).
func TestThresholdMonotonicity(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		backends := append(exactBackends(), Backend{
			Name:  "oracle",
			Exact: true,
			Run: func(_ context.Context, rows []*bitvec.Vector, k int) ([][]int, error) {
				return Oracle(rows, k), nil
			},
		})
		for _, b := range backends {
			atK, err := b.Run(ctx, rows, c.Threshold)
			if err != nil {
				t.Fatalf("%s on [%s]: %v", b.Name, c, err)
			}
			atK1, err := b.Run(ctx, rows, c.Threshold+1)
			if err != nil {
				t.Fatalf("%s on [%s] at k+1: %v", b.Name, c, err)
			}
			if !isRefinement(atK, atK1) {
				t.Errorf("%s on [%s]: partition at k=%d does not refine k=%d\n  k:   %s\n  k+1: %s",
					b.Name, c, c.Threshold, c.Threshold+1, FormatPartition(atK), FormatPartition(atK1))
			}
		}
	}
}

// TestSequentialParallelEquivalence: the parallel rolediet fan-out must
// be invisible in the result for any worker count.
func TestSequentialParallelEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		opts := rolediet.Options{Threshold: c.Threshold}
		serial, err := rolediet.GroupsContext(ctx, rows, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			par, err := rolediet.GroupsParallelContext(ctx, rows, opts, workers)
			if err != nil {
				t.Fatalf("workers=%d on [%s]: %v", workers, c, err)
			}
			if !SamePartition(Normalize(serial.Groups), Normalize(par.Groups)) {
				t.Errorf("workers=%d on [%s]: parallel partition differs\n  serial:   %s\n  parallel: %s",
					workers, c, FormatPartition(serial.Groups), FormatPartition(par.Groups))
			}
		}
	}
}

// TestDenseCSREquivalence: the CSR variant must agree with the dense
// rows it was derived from.
func TestDenseCSREquivalence(t *testing.T) {
	ctx := context.Background()
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		csr, err := rowsToCSR(rows)
		if err != nil {
			t.Fatal(err)
		}
		opts := rolediet.Options{Threshold: c.Threshold}
		dense, err := rolediet.GroupsContext(ctx, rows, opts)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := rolediet.GroupsCSRContext(ctx, csr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(Normalize(dense.Groups), Normalize(sparse.Groups)) {
			t.Errorf("[%s]: dense and CSR partitions differ\n  dense: %s\n  csr:   %s",
				c, FormatPartition(dense.Groups), FormatPartition(sparse.Groups))
		}
	}
}

// TestZeroRowsAcrossBackends hand-builds a matrix with several all-zero
// rows — a regime the generator cannot produce (it draws distinct rows)
// but production data can (disconnected roles). All-zero rows are
// mutually identical, invisible to inverted indexes, and must still
// group under every backend.
func TestZeroRowsAcrossBackends(t *testing.T) {
	ctx := context.Background()
	const w = 32
	rows := []*bitvec.Vector{
		bitvec.New(w), // zero
		bitvec.FromIndices(w, []int{1, 5, 9}),
		bitvec.New(w), // zero
		bitvec.FromIndices(w, []int{1, 5, 9}),
		bitvec.FromIndices(w, []int{2}),
		bitvec.New(w), // zero
		bitvec.FromIndices(w, []int{30}),
	}
	for _, threshold := range []int{0, 1, 2} {
		oracle := Oracle(rows, threshold)
		for _, b := range Backends() {
			if detail := CheckBackend(ctx, b, rows, threshold, oracle); detail != "" {
				t.Errorf("%s at k=%d on zero-row matrix: %s", b.Name, threshold, detail)
			}
		}
	}
}
