package testkit

import (
	"context"
	"fmt"

	"repro/internal/bitvec"
)

// Failure describes one backend disagreeing with the oracle on one
// corpus. Error() carries the full reproduction recipe.
type Failure struct {
	// Backend names the disagreeing implementation.
	Backend string
	// Corpus is the input that produced the disagreement.
	Corpus Corpus
	// Detail explains the mismatch (partition diff, recall below floor,
	// false pairs, or a backend error).
	Detail string
}

// Error formats the failure with its reproduction recipe.
func (f *Failure) Error() string {
	return fmt.Sprintf("backend %s disagrees with oracle on corpus [%s]: %s", f.Backend, f.Corpus.String(), f.Detail)
}

// CheckBackend runs one backend over rows and compares against the
// already-computed oracle partition. It returns a human-readable detail
// string when the backend disagrees ("" when it agrees):
//
//   - exact backends must match the oracle partition exactly;
//   - approximate backends must have zero false pairs (they verify every
//     candidate with the true distance, so a false pair is a real bug,
//     not an accuracy artefact) and pair recall of at least b.MinRecall.
func CheckBackend(ctx context.Context, b Backend, rows []*bitvec.Vector, threshold int, oracle [][]int) string {
	if b.ZeroThresholdOnly && threshold != 0 {
		// Duplicate-only backends have nothing to say above threshold 0;
		// vacuous agreement keeps corpus sweeps uniform.
		return ""
	}
	got, err := b.Run(ctx, rows, threshold)
	if err != nil {
		return fmt.Sprintf("backend error: %v", err)
	}
	if b.Exact {
		if !SamePartition(oracle, got) {
			return fmt.Sprintf("partition mismatch:\n  oracle:  %s\n  backend: %s",
				FormatPartition(oracle), FormatPartition(got))
		}
		return ""
	}
	recall, falsePairs := PairStats(oracle, got)
	if falsePairs > 0 {
		return fmt.Sprintf("%d false pairs (approximate backends must never invent a pair):\n  oracle:  %s\n  backend: %s",
			falsePairs, FormatPartition(oracle), FormatPartition(got))
	}
	if recall < b.MinRecall {
		return fmt.Sprintf("recall %.3f below floor %.3f:\n  oracle:  %s\n  backend: %s",
			recall, b.MinRecall, FormatPartition(oracle), FormatPartition(got))
	}
	return ""
}

// RunCorpus computes the oracle for the corpus once and checks every
// backend against it, collecting failures instead of stopping at the
// first so a sweep reports the complete disagreement picture.
func RunCorpus(ctx context.Context, c Corpus, backends []Backend) ([]*Failure, error) {
	rows, err := c.Rows()
	if err != nil {
		return nil, fmt.Errorf("testkit: generating corpus %s: %w", c.Name, err)
	}
	oracle := Oracle(rows, c.Threshold)
	var failures []*Failure
	for _, b := range backends {
		if c.RelaxedRecall && !b.Exact {
			b.MinRecall = 0 // zero-false-pairs invariant still applies
		}
		if detail := CheckBackend(ctx, b, rows, c.Threshold, oracle); detail != "" {
			failures = append(failures, &Failure{Backend: b.Name, Corpus: c, Detail: detail})
		}
	}
	return failures, nil
}
