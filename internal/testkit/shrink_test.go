package testkit

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cluster/rolediet"
	"repro/internal/gen"
)

// buggyBackend simulates a realistic defect: it runs the real rolediet
// algorithm but silently drops the last group from the result — the
// kind of off-by-one truncation a refactor could introduce.
func buggyBackend() Backend {
	return Backend{
		Name:  "buggy-drop-last-group",
		Exact: true,
		Run: func(ctx context.Context, rows []*bitvec.Vector, threshold int) ([][]int, error) {
			res, err := rolediet.GroupsContext(ctx, rows, rolediet.Options{Threshold: threshold})
			if err != nil {
				return nil, err
			}
			groups := Normalize(res.Groups)
			if len(groups) > 0 {
				groups = groups[:len(groups)-1]
			}
			return groups, nil
		},
	}
}

// TestShrinkerMinimizesCounterexample plants a fault, lets the
// differential check catch it, and verifies the shrinker reduces the
// 150-row corpus to the minimal failing matrix: with the
// drop-last-group fault at threshold 0 that is exactly one identical
// pair — removing either row (or clearing any single bit) makes the
// failure vanish, so a 1-minimal shrink cannot stop any earlier.
func TestShrinkerMinimizesCounterexample(t *testing.T) {
	ctx := context.Background()
	c := Corpus{
		Name: "shrink-input",
		Params: gen.MatrixParams{
			Rows: 150, Cols: 128, ClusterProportion: 0.2,
			MaxClusterSize: 10, Density: 0.05, Seed: 5,
		},
		Threshold: 0,
	}
	rows, err := c.Rows()
	if err != nil {
		t.Fatal(err)
	}
	bug := buggyBackend()
	oracle := Oracle(rows, c.Threshold)
	if CheckBackend(ctx, bug, rows, c.Threshold, oracle) == "" {
		t.Fatal("planted fault not detected on the full corpus")
	}

	failing := func(candidate []*bitvec.Vector) bool {
		if len(candidate) == 0 {
			return false
		}
		return CheckBackend(ctx, bug, candidate, c.Threshold, Oracle(candidate, c.Threshold)) != ""
	}
	shrunk := Shrink(ctx, rows, failing)
	if !failing(shrunk) {
		t.Fatal("shrunk matrix no longer fails")
	}
	if len(shrunk) != 2 {
		t.Fatalf("shrunk to %d rows, want the minimal 2", len(shrunk))
	}
	if !shrunk[0].Equal(shrunk[1]) {
		t.Errorf("minimal counterexample rows differ: %s vs %s",
			shrunk[0].String(), shrunk[1].String())
	}
}

// TestShrinkAndDumpRoundTrip exercises the dump → load → replay path on
// a shrunk counterexample written to a temp dir.
func TestShrinkAndDumpRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := Corpus{
		Name: "dump-input",
		Params: gen.MatrixParams{
			Rows: 60, Cols: 64, ClusterProportion: 0.3,
			MaxClusterSize: 4, Density: 0.08, Seed: 9,
		},
		Threshold: 0,
	}
	rows, err := c.Rows()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := ShrinkAndDump(ctx, dir, buggyBackend(), c, rows, "planted fault for round-trip test")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("case written to %s, want directory %s", path, dir)
	}
	loaded, err := LoadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Backend != "buggy-drop-last-group" || loaded.Threshold != c.Threshold {
		t.Errorf("case header %s/k=%d does not match run", loaded.Backend, loaded.Threshold)
	}
	if loaded.GenParams == nil || loaded.GenParams.Seed != c.Params.Seed {
		t.Errorf("case lost the reproducing generator seed: %+v", loaded.GenParams)
	}
	vecs, err := loaded.Vectors()
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) == 0 || len(vecs) >= len(rows) {
		t.Errorf("shrunk case has %d rows, want 0 < n < %d", len(vecs), len(rows))
	}
	// The buggy backend is not in the registry, so replay must refuse
	// rather than silently pass.
	err = ReplayCase(ctx, loaded)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("replay of unregistered backend: got %v, want unknown-backend error", err)
	}
}

// TestReplayCommittedCases replays every case committed under
// testdata/cases/. These are regression counterexamples: once a real
// disagreement is fixed, its shrunk case moves from testdata/failures/
// to testdata/cases/ and this test keeps it fixed forever.
func TestReplayCommittedCases(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "cases", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed cases")
	}
	ctx := context.Background()
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			c, err := LoadCase(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := ReplayCase(ctx, c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestShrinkHonorsCancellation: with a cancelled context the shrinker
// must return immediately with what it has — the (still failing) input
// — instead of exploring candidates. This is the mechanism that bounds
// ShrinkAndDump on organisation-shaped corpora, where every predicate
// evaluation re-clusters thousands of rows.
func TestShrinkHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := make([]*bitvec.Vector, 64)
	for i := range rows {
		rows[i] = bitvec.FromIndices(8, []int{0})
	}
	evals := 0
	out := Shrink(ctx, rows, func(c []*bitvec.Vector) bool {
		evals++
		return len(c) > 0
	})
	// One evaluation establishes the input fails; the cancelled context
	// then stops phase 1 before any candidate is tried.
	if evals != 1 {
		t.Errorf("cancelled shrink evaluated %d candidates, want 1 (the input itself)", evals)
	}
	if len(out) != len(rows) {
		t.Errorf("cancelled shrink returned %d rows, want the untouched %d", len(out), len(rows))
	}
}

// TestShrinkKeepsPassingInput documents the contract for a predicate
// that never fails: Shrink returns the input unchanged.
func TestShrinkKeepsPassingInput(t *testing.T) {
	rows := []*bitvec.Vector{
		bitvec.FromIndices(8, []int{0}),
		bitvec.FromIndices(8, []int{1}),
	}
	out := Shrink(context.Background(), rows, func([]*bitvec.Vector) bool { return false })
	if len(out) != len(rows) {
		t.Fatalf("Shrink dropped rows from a passing input: %d != %d", len(out), len(rows))
	}
	for i := range rows {
		if !out[i].Equal(rows[i]) {
			t.Errorf("row %d mutated", i)
		}
	}
}
