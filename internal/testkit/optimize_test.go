package testkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/rbac"
)

// corpusPermSpread is how many permissions the corpus datasets spread
// their roles over. Small enough that many roles share a permission
// (same-permission groups and merge cascades appear), large enough
// that the mining pass has non-trivial covers to find.
const corpusPermSpread = 7

// optimizeCorpusDataset materialises a sweep corpus as an RBAC dataset: each
// matrix row becomes a role whose users are the set columns, and roles
// are spread over a small permission pool so duplicate-user rows form
// class-4 groups on one side and shared permissions form them on the
// other. Zero rows (edge corpora) become disconnected roles, feeding
// the class-1/2 elimination paths.
func optimizeCorpusDataset(rows []*bitvec.Vector) *rbac.Dataset {
	d := rbac.NewDataset()
	width := 0
	if len(rows) > 0 {
		width = rows[0].Len()
	}
	for u := 0; u < width; u++ {
		d.EnsureUser(rbac.UserID(fmt.Sprintf("u%03d", u)))
	}
	for p := 0; p < corpusPermSpread; p++ {
		d.EnsurePermission(rbac.PermissionID(fmt.Sprintf("p%d", p)))
	}
	for i, row := range rows {
		role := rbac.RoleID(fmt.Sprintf("r%03d", i))
		d.EnsureRole(role)
		d.AssignPermission(role, rbac.PermissionID(fmt.Sprintf("p%d", i%corpusPermSpread)))
		row.ForEach(func(u int) bool {
			d.AssignUser(role, rbac.UserID(fmt.Sprintf("u%03d", u)))
			return true
		})
	}
	return d
}

// TestOptimizePreservesReachabilityAcrossCorpora folds the optimization
// planner into the seeded sweep: over every corpus, with and without
// the mining pass, the optimized dataset must grant exactly the input's
// user-permission relation, never grow the role set, and replay
// byte-identically from its serialized plan.
func TestOptimizePreservesReachabilityAcrossCorpora(t *testing.T) {
	for _, c := range Corpora(false) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rows, err := c.Rows()
			if err != nil {
				t.Fatal(err)
			}
			d := optimizeCorpusDataset(rows)
			for _, knobs := range []optimize.Knobs{
				{Analysis: core.Options{SimilarThreshold: c.Threshold}},
				{Analysis: core.Options{SimilarThreshold: c.Threshold}, Mine: true},
			} {
				res, err := optimize.Run(d, knobs)
				if err != nil {
					t.Fatalf("optimize (mine=%v) on [%s]: %v", knobs.Mine, c, err)
				}
				if err := consolidate.VerifySafety(d, res.Optimized); err != nil {
					t.Fatalf("optimize (mine=%v) on [%s] broke reachability: %v", knobs.Mine, c, err)
				}
				if res.Optimized.NumRoles() > d.NumRoles() {
					t.Fatalf("optimize (mine=%v) on [%s] grew roles %d -> %d",
						knobs.Mine, c, d.NumRoles(), res.Optimized.NumRoles())
				}
				replayed, err := optimize.Apply(d, &res.Plan)
				if err != nil {
					t.Fatalf("replay (mine=%v) on [%s]: %v", knobs.Mine, c, err)
				}
				rj, _ := json.Marshal(replayed)
				oj, _ := json.Marshal(res.Optimized)
				if !bytes.Equal(rj, oj) {
					t.Fatalf("replay (mine=%v) on [%s] diverged from the optimized dataset", knobs.Mine, c)
				}
			}
		})
	}
}

// permutedDataset rebuilds the corpus dataset with roles inserted in a
// seeded shuffled order. Role names and contents are unchanged — only
// insertion order differs.
func permutedDataset(rows []*bitvec.Vector, seed int64) *rbac.Dataset {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(rows))
	d := rbac.NewDataset()
	width := 0
	if len(rows) > 0 {
		width = rows[0].Len()
	}
	for u := 0; u < width; u++ {
		d.EnsureUser(rbac.UserID(fmt.Sprintf("u%03d", u)))
	}
	for p := 0; p < corpusPermSpread; p++ {
		d.EnsurePermission(rbac.PermissionID(fmt.Sprintf("p%d", p)))
	}
	for _, i := range perm {
		role := rbac.RoleID(fmt.Sprintf("r%03d", i))
		d.EnsureRole(role)
		d.AssignPermission(role, rbac.PermissionID(fmt.Sprintf("p%d", i%corpusPermSpread)))
		rows[i].ForEach(func(u int) bool {
			d.AssignUser(role, rbac.UserID(fmt.Sprintf("u%03d", u)))
			return true
		})
	}
	return d
}

// TestOptimizeRoleOrderInvariance: over the provably safe classes
// (1-4), the savings a plan achieves must not depend on the order
// roles appear in the export — duplicate groups partition invariantly
// and each collapses to exactly one keeper. The chosen keepers may
// differ (ties break by index), so the property compared is the
// optimized role count, plus reachability on both runs. Class-5 is
// excluded: the greedy risk-free similar-merge subset legitimately
// depends on which roles earlier class-4 rounds claimed, which is
// index-order dependent (the sweep test still proves reachability for
// the full planner on every corpus).
func TestOptimizeRoleOrderInvariance(t *testing.T) {
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		base := optimizeCorpusDataset(rows)
		shuffled := permutedDataset(rows, 73)
		knobs := optimize.Knobs{Analysis: core.Options{SimilarThreshold: c.Threshold, SkipSimilar: true}}
		resBase, err := optimize.Run(base, knobs)
		if err != nil {
			t.Fatalf("optimize on [%s]: %v", c, err)
		}
		resShuffled, err := optimize.Run(shuffled, knobs)
		if err != nil {
			t.Fatalf("optimize on shuffled [%s]: %v", c, err)
		}
		if got, want := resShuffled.After.Roles, resBase.After.Roles; got != want {
			t.Errorf("[%s]: role order changed the optimized role count: %d vs %d", c, got, want)
		}
		if err := consolidate.VerifySafety(shuffled, resShuffled.Optimized); err != nil {
			t.Errorf("[%s]: shuffled optimize broke reachability: %v", c, err)
		}
	}
}

// TestOptimizeDuplicateRoleAbsorbed: appending an exact copy of an
// existing role (same users, same permissions, new name) must not
// change the optimized role count — the copy is a class-4 duplicate on
// both sides and always merges away.
func TestOptimizeDuplicateRoleAbsorbed(t *testing.T) {
	for _, c := range metamorphicCorpora() {
		rows, err := c.Rows()
		if err != nil {
			t.Fatal(err)
		}
		base := optimizeCorpusDataset(rows)
		augmented := base.Clone()
		dup := rbac.RoleID("r-dup")
		augmented.EnsureRole(dup)
		perms, err := base.RolePermissions(rbac.RoleID("r000"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range perms {
			augmented.AssignPermission(dup, p)
		}
		users, err := base.RoleUsers(rbac.RoleID("r000"))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range users {
			augmented.AssignUser(dup, u)
		}
		knobs := optimize.Knobs{Analysis: core.Options{SimilarThreshold: c.Threshold}}
		resBase, err := optimize.Run(base, knobs)
		if err != nil {
			t.Fatalf("optimize on [%s]: %v", c, err)
		}
		resAug, err := optimize.Run(augmented, knobs)
		if err != nil {
			t.Fatalf("optimize on augmented [%s]: %v", c, err)
		}
		if got, want := resAug.After.Roles, resBase.After.Roles; got != want {
			t.Errorf("[%s]: duplicate role survived optimization: %d roles, want %d", c, got, want)
		}
		if err := consolidate.VerifySafety(augmented, resAug.Optimized); err != nil {
			t.Errorf("[%s]: augmented optimize broke reachability: %v", c, err)
		}
	}
}
