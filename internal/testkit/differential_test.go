package testkit

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// failureDir is where shrunk counterexamples land, relative to this
// package (so internal/testkit/testdata/failures/ in the repo).
var failureDir = filepath.Join("testdata", "failures")

// TestDifferentialSweep is the tentpole check: every backend against
// the brute-force oracle over the full seeded corpus sweep. Exact
// backends must match the oracle partition exactly; approximate ones
// must meet their recall floors with zero false pairs. Any failure
// prints the reproducing generator seed + parameters and dumps a
// shrunk counterexample for offline replay.
//
// The short/default sweep (24 corpora × 6 backends) runs in seconds.
// Setting TESTKIT_FULL=1 appends organisation-shaped corpora
// (thousands of roles) — that is the scheduled CI job, not something
// `go test ./...` should pay for.
func TestDifferentialSweep(t *testing.T) {
	full := os.Getenv("TESTKIT_FULL") == "1" && !testing.Short()
	corpora := Corpora(full)
	if len(corpora) < 20 {
		t.Fatalf("sweep has %d corpora, want >= 20", len(corpora))
	}
	backends := Backends()
	for _, c := range corpora {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			failures, err := RunCorpus(ctx, c, backends)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range failures {
				t.Error(f.Error())
				b := BackendByName(f.Backend)
				rows, rerr := c.Rows()
				if b == nil || rerr != nil {
					continue
				}
				path, derr := ShrinkAndDump(ctx, failureDir, *b, c, rows, f.Detail)
				if derr != nil {
					t.Logf("shrink/dump failed: %v", derr)
					continue
				}
				t.Logf("shrunk counterexample written to %s (replay: see testdata/README.md)", path)
			}
		})
	}
}

// TestOracleMatchesPlantedClusters validates the oracle itself against
// the generator's ground truth: with SimilarNoise == 0 the planted
// clusters are the only groups of identical rows, so the oracle
// partition at threshold 0 must equal Planted exactly.
func TestOracleMatchesPlantedClusters(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g, err := gen.Matrix(gen.MatrixParams{
			Rows: 120, Cols: 96, ClusterProportion: 0.3,
			MaxClusterSize: 6, Density: 0.08, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := Oracle(g.Rows, 0)
		if !SamePartition(Normalize(g.Planted), oracle) {
			t.Errorf("seed %d: oracle %s != planted %s",
				seed, FormatPartition(oracle), FormatPartition(g.Planted))
		}
	}
}

// TestPairStats pins the recall/false-pair arithmetic on hand-built
// partitions.
func TestPairStats(t *testing.T) {
	oracle := [][]int{{0, 1, 2}, {4, 5}}
	tests := []struct {
		name       string
		got        [][]int
		recall     float64
		falsePairs int
	}{
		{"perfect", [][]int{{0, 1, 2}, {4, 5}}, 1, 0},
		{"missed group", [][]int{{0, 1, 2}}, 0.75, 0},
		{"split group", [][]int{{0, 1}, {4, 5}}, 0.5, 0},
		{"false merge", [][]int{{0, 1, 2, 3}, {4, 5}}, 1, 3},
		{"empty", nil, 0, 0},
	}
	for _, tc := range tests {
		recall, fp := PairStats(oracle, tc.got)
		if recall != tc.recall || fp != tc.falsePairs {
			t.Errorf("%s: got recall=%v falsePairs=%d, want %v/%d",
				tc.name, recall, fp, tc.recall, tc.falsePairs)
		}
	}
	if r, fp := PairStats(nil, [][]int{{1, 2}}); r != 1 || fp != 1 {
		t.Errorf("empty oracle: recall=%v falsePairs=%d, want 1/1", r, fp)
	}
}
