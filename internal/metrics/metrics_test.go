package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.", "method", "code")
	c.With("GET", "200").Add(3)
	c.With("POST", "500").Inc()
	c.With("GET", "200").Inc()

	out := render(r)
	for _, want := range []string{
		"# HELP test_requests_total Total requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{method="GET",code="200"} 4`,
		`test_requests_total{method="POST",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t.")
	c.With().Add(5)
	c.With().Add(-3)
	if got := c.With().Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_duration_seconds", "Latency.", []float64{0.1, 1}, "path")
	s := h.With("/v1/analyze")
	s.Observe(0.05)
	s.Observe(0.5)
	s.Observe(5)

	out := render(r)
	for _, want := range []string{
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{path="/v1/analyze",le="0.1"} 1`,
		`test_duration_seconds_bucket{path="/v1/analyze",le="1"} 2`,
		`test_duration_seconds_bucket{path="/v1/analyze",le="+Inf"} 3`,
		`test_duration_seconds_sum{path="/v1/analyze"} 5.55`,
		`test_duration_seconds_count{path="/v1/analyze"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if got := s.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestHistogramBoundaryValueLandsInBucket(t *testing.T) {
	// An observation exactly equal to an upper bound belongs to that
	// bucket (le is inclusive).
	r := NewRegistry()
	h := r.Histogram("test_seconds", "t.", []float64{1, 2})
	h.With().Observe(1)
	out := render(r)
	if !strings.Contains(out, `test_seconds_bucket{le="1"} 1`) {
		t.Fatalf("value on bucket boundary not counted inclusively:\n%s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("test_live", "Live things.", func() float64 { return v })
	out := render(r)
	if !strings.Contains(out, "# TYPE test_live gauge") || !strings.Contains(out, "test_live 7") {
		t.Fatalf("gauge missing:\n%s", out)
	}
	v = 9
	if !strings.Contains(render(r), "test_live 9") {
		t.Fatal("gauge not evaluated at scrape time")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t.", "path")
	c.With(`a"b\c` + "\n").Inc()
	out := render(r)
	if !strings.Contains(out, `test_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestRegistrationOrderStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b.")
	r.Counter("a_total", "a.")
	out := render(r)
	if strings.Index(out, "b_total") > strings.Index(out, "a_total") {
		t.Fatalf("families not in registration order:\n%s", out)
	}
	if render(r) != out {
		t.Fatal("output not deterministic across scrapes")
	}
}

func TestReRegistrationReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x.").With().Inc()
	r.Counter("x_total", "x.").With().Inc()
	if got := r.Counter("x_total", "x.").With().Value(); got != 2 {
		t.Fatalf("re-registered counter = %v, want 2", got)
	}
	if n := strings.Count(render(r), "# TYPE x_total"); n != 1 {
		t.Fatalf("family emitted %d times, want 1", n)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c.", "w")
	h := r.Histogram("conc_seconds", "h.", nil, "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lbl := string(rune('a' + i%2))
			for j := 0; j < 500; j++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(0.001)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			render(r)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	total := c.With("a").Value() + c.With("b").Value()
	if total != 4000 {
		t.Fatalf("counter total = %v, want 4000", total)
	}
}
