// Package metrics is a dependency-free Prometheus exposition library:
// counters, histograms, and gauge callbacks registered on a Registry
// that renders the text format (version 0.0.4) a Prometheus scraper
// expects from GET /metrics.
//
// The scope is deliberately the subset the daemon needs — labelled
// counters for schedule fires, alert trips, and sink deliveries,
// per-endpoint latency histograms, and gauge callbacks snapshotting the
// store/jobs/sessions state at scrape time. Cardinality is bounded by
// construction: label values come from route patterns and enum-like
// outcomes, never from request data.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefBuckets are the default latency buckets (seconds), tuned so the
// sub-millisecond cached paths and the multi-second hard-class analyses
// both land in interior buckets.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds the registered metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// family is one named metric with a fixed label-name schema.
type family struct {
	name   string
	help   string
	kind   string // counter, histogram, gauge
	labels []string

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	buckets  []float64
	gauge    func() float64
	order    []string // label-key insertion order for stable output
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		// Re-registration returns the existing family; the caller is
		// expected to use a consistent schema per name.
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// CounterVec is a family of counters sharing a name and label schema.
type CounterVec struct{ f *family }

// Counter registers (or returns) a counter family. labels name the
// label dimensions; a label-less counter passes none.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels)}
}

// Counter is one monotonically increasing series.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// With resolves the series for the given label values (in the schema's
// order), creating it at zero on first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[key]
	if !ok {
		c = &Counter{}
		v.f.counters[key] = c
		v.f.order = append(v.f.order, key)
	}
	return c
}

// HistogramVec is a family of histograms sharing a name, label schema,
// and bucket layout.
type HistogramVec struct{ f *family }

// Histogram registers (or returns) a histogram family with the given
// upper bucket bounds (seconds for latency histograms); nil uses
// DefBuckets. A +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels)
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		f.buckets = bs
	}
	return &HistogramVec{f: f}
}

// Histogram is one series of observations bucketed by upper bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// With resolves the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.hists[key]
	if !ok {
		h = &Histogram{bounds: v.f.buckets, counts: make([]uint64, len(v.f.buckets)+1)}
		v.f.hists[key] = h
		v.f.order = append(v.f.order, key)
	}
	return h
}

// GaugeFunc registers a label-less gauge whose value is computed at
// scrape time — the natural fit for "current live sessions" style
// state the daemon already tracks elsewhere.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.gauge = fn
}

// labelKey encodes label values into the series map key; it panics on
// arity mismatch, which is a programming error, not runtime input.
func labelKey(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(names)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition-format label escaping.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series renders one sample line: name{labels,extra} value.
func series(w io.Writer, name, labels, extra string, value float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, formatValue(value))
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatValue(value))
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(value))
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, formatValue(value))
	}
}

// WriteText renders every family in registration order, series within a
// family in first-use order — stable output a test (or a diff between
// two scrapes) can rely on.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case "gauge":
			if f.gauge != nil {
				series(w, f.name, "", "", f.gauge())
			}
		case "counter":
			f.mu.Lock()
			for _, key := range f.order {
				series(w, f.name, key, "", f.counters[key].Value())
			}
			f.mu.Unlock()
		case "histogram":
			f.mu.Lock()
			for _, key := range f.order {
				h := f.hists[key]
				h.mu.Lock()
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i]
					series(w, f.name+"_bucket", key, `le="`+formatValue(bound)+`"`, float64(cum))
				}
				cum += h.counts[len(h.bounds)]
				series(w, f.name+"_bucket", key, `le="+Inf"`, float64(cum))
				series(w, f.name+"_sum", key, "", h.sum)
				series(w, f.name+"_count", key, "", float64(h.total))
				h.mu.Unlock()
			}
			f.mu.Unlock()
		}
	}
}

// ContentType is the exposition-format content type for /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"
