package ctxcheck

import (
	"context"
	"errors"
	"testing"
)

func TestBackgroundNeverErrors(t *testing.T) {
	c := New(context.Background(), 4)
	for i := 0; i < 100; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

func TestNilContext(t *testing.T) {
	c := New(nil, 0)
	if err := c.Tick(); err != nil {
		t.Fatalf("Tick() = %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
}

func TestCancelObservedWithinStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 8)
	for i := 0; i < 20; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("tick %d before cancel: %v", i, err)
		}
	}
	cancel()
	// At most one full stride of ticks may pass before the error shows.
	var got error
	for i := 0; i < 8; i++ {
		if got = c.Tick(); got != nil {
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("after cancel, Tick() = %v, want context.Canceled", got)
	}
	// Once cancelled it keeps reporting on each stride boundary.
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

func TestErrIgnoresStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 1_000_000)
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

func TestDefaultStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(ctx, -5)
	if c.stride != DefaultStride {
		t.Fatalf("stride = %d, want %d", c.stride, DefaultStride)
	}
}
