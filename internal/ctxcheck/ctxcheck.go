// Package ctxcheck provides a cheap, strided context-cancellation
// probe for the detection engine's hot loops.
//
// Polling ctx.Err() on every row or neighbour expansion would put a
// synchronised channel operation on the critical path of loops that
// otherwise run at a few nanoseconds per iteration. A Checker instead
// pays one integer increment per Tick and only consults the context's
// Done channel once per stride, bounding both the polling overhead and
// the cancellation latency: after a context is cancelled, a loop
// ticking the checker performs at most one stride of extra work before
// observing the error.
//
// A Checker is not safe for concurrent use; parallel code gives each
// worker its own (see rolediet.GroupsParallelContext).
package ctxcheck

import "context"

// DefaultStride is the number of Ticks between context polls when New
// is given a non-positive stride. It is small enough that even loops
// doing real work per tick (a Hamming distance, a neighbour scan)
// observe cancellation within microseconds to low milliseconds.
const DefaultStride = 1024

// Checker polls a context at a fixed tick stride.
type Checker struct {
	ctx    context.Context
	done   <-chan struct{}
	stride uint32
	n      uint32
}

// New builds a checker over ctx. A nil ctx, context.Background(), and
// any other context that can never be cancelled yield a checker whose
// Tick and Err are free and always nil.
func New(ctx context.Context, stride int) *Checker {
	if stride <= 0 {
		stride = DefaultStride
	}
	c := &Checker{stride: uint32(stride)}
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			c.ctx = ctx
			c.done = done
		}
	}
	return c
}

// Tick records one unit of work and, every stride-th call, polls the
// context. It returns the context's error once cancelled, nil before.
func (c *Checker) Tick() error {
	if c.done == nil {
		return nil
	}
	c.n++
	if c.n < c.stride {
		return nil
	}
	c.n = 0
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// Err polls the context immediately, ignoring the stride. Entry points
// call it once up front so an already-cancelled context aborts before
// any work starts.
func (c *Checker) Err() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}
