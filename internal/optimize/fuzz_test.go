package optimize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/consolidate"
	"repro/internal/rbac"
)

// fuzzDataset decodes a byte string into a small dataset: each byte
// pair (role, cell) assigns user cell%U and permission cell/U%P to role
// role%R. Small universes force duplicate roles, dead roles, and
// coverage overlaps — exactly the structures the planner acts on.
func fuzzDataset(data []byte) *rbac.Dataset {
	const nu, np, nr = 5, 6, 8
	d := rbac.NewDataset()
	for i := 0; i < nu; i++ {
		_ = d.AddUser(rbac.UserID(fmt.Sprintf("u%d", i)))
	}
	for i := 0; i < np; i++ {
		_ = d.AddPermission(rbac.PermissionID(fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < nr; i++ {
		_ = d.AddRole(rbac.RoleID(fmt.Sprintf("r%d", i)))
	}
	for i := 0; i+1 < len(data); i += 2 {
		role := rbac.RoleID(fmt.Sprintf("r%d", int(data[i])%nr))
		cell := int(data[i+1])
		if data[i]&0x80 == 0 {
			_ = d.AssignUser(role, rbac.UserID(fmt.Sprintf("u%d", cell%nu)))
		} else {
			_ = d.AssignPermission(role, rbac.PermissionID(fmt.Sprintf("p%d", cell%np)))
		}
	}
	return d
}

// FuzzPlanApplyRoundtrip drives fuzzed datasets through the full
// planner and checks the three contracts a plan must keep: the
// optimized dataset grants exactly the input's user→permission relation
// (never over- or under-grants), the role count never grows, and the
// plan survives a JSON round-trip such that replaying it reproduces the
// optimized dataset byte-for-byte.
func FuzzPlanApplyRoundtrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0, 0x80, 0, 1, 0, 0x81, 0}, false)
	f.Add([]byte{0, 1, 1, 1, 0x80, 2, 0x81, 2, 2, 3, 0x82, 9}, true)
	f.Add([]byte{7, 4, 0x87, 11, 7, 4, 0x86, 11, 6, 4}, true)
	f.Fuzz(func(t *testing.T, data []byte, mine bool) {
		d := fuzzDataset(data)
		res, err := Run(d, Knobs{Mine: mine})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := consolidate.VerifySafety(d, res.Optimized); err != nil {
			t.Fatalf("reachability broken: %v", err)
		}
		if res.Optimized.NumRoles() > d.NumRoles() {
			t.Fatalf("role count grew: %d -> %d", d.NumRoles(), res.Optimized.NumRoles())
		}
		raw, err := json.Marshal(&res.Plan)
		if err != nil {
			t.Fatalf("marshal plan: %v", err)
		}
		var decoded Plan
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("unmarshal plan: %v", err)
		}
		replayed, err := Apply(d, &decoded)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		a, _ := json.Marshal(replayed)
		b, _ := json.Marshal(res.Optimized)
		if !bytes.Equal(a, b) {
			t.Fatalf("replayed dataset differs from optimized:\n%s\nvs\n%s", a, b)
		}
	})
}
