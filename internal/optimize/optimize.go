// Package optimize is the remediation engine: it turns the detection
// report's findings into an ordered, explainable Plan of role-set
// changes, applies them, and proves the result equivalent.
//
// The planner composes three phases:
//
//  1. eliminations — class-1/2 roles (standalone, or connected on one
//     side only) grant nothing and are dropped outright; class-3
//     single-assignment roles are dropped only when every (user,
//     permission) pair they grant is covered by another role, checked
//     sequentially so mutually-covering pairs cannot both vanish;
//  2. merges — class-4 groups (identical users or permissions) merge
//     via consolidate's provably safe fold, and class-5 similar groups
//     merge only when their computed grant delta is empty (risk-free).
//     Merging can create new duplicates, so the phase re-analyses and
//     repeats until a round adds no actions; every executed round
//     removes at least one role, so convergence is bounded by the role
//     count;
//  3. mining (opt-in) — a bounded bottom-up pass (biclique-flavored
//     FastMiner candidates over the effective user-permission relation,
//     greedy set cover) proposes a freshly mined role set, accepted
//     bi-objectively: strictly fewer roles AND no more than
//     MaxAddedEdges extra assignment edges. Mining never changes the
//     effective relation by construction — roles are only assigned to
//     users whose effective row is a superset — so the no-over-granting
//     invariant does not depend on the edge bound.
//
// Equivalence is checked, not assumed: the planner ends every run by
// passing the input and optimized datasets through the consolidate
// safety oracle (bit-exact user→permission reachability comparison on
// bitmat rows) and fails loudly if any phase broke it.
package optimize

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/rbac"
)

// Action kinds, in the vocabulary of the paper's inefficiency classes.
const (
	// KindDropRole removes a role that grants nothing (class 1/2).
	KindDropRole = "drop-role"
	// KindDropRedundant removes a single-assignment role whose every
	// grant is covered by another role (class 3).
	KindDropRedundant = "drop-redundant-role"
	// KindMergeRoles folds a role group into its first member (class 4,
	// or a risk-free class 5).
	KindMergeRoles = "merge-roles"
	// KindMineRoleset replaces the whole role set with a mined
	// decomposition of the effective relation.
	KindMineRoleset = "mine-roleset"
)

// Action is one ordered, explainable step of a Plan. Every action
// carries its own savings so a reviewer can judge steps independently,
// and enough payload that Apply can replay the plan from JSON alone.
type Action struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Class is the paper inefficiency class motivating the action
	// (1-5); 0 for mining, which goes beyond the taxonomy.
	Class int `json:"class,omitempty"`
	// Role is the dropped role for the drop kinds.
	Role rbac.RoleID `json:"role,omitempty"`
	// Keep and Remove describe a merge: Remove folds into Keep.
	Keep   rbac.RoleID   `json:"keep,omitempty"`
	Remove []rbac.RoleID `json:"remove,omitempty"`
	// Side says what a merge unions: "users" (identical user sets, fold
	// permissions), "permissions" (the symmetric case), or "both"
	// (risk-free class-5 merge folding both sides).
	Side string `json:"side,omitempty"`
	// MinedRoles is the full replacement role set for KindMineRoleset —
	// self-contained so the plan replays without re-running the miner.
	MinedRoles []MinedRole `json:"minedRoles,omitempty"`
	// RolesRemoved and EdgesDelta are this action's savings: roles
	// deleted, and the change in direct assignment edges (negative =
	// fewer edges).
	RolesRemoved int `json:"rolesRemoved"`
	EdgesDelta   int `json:"edgesDelta"`
	// Reason explains the action in one sentence.
	Reason string `json:"reason"`
}

// MinedRole is one role of a mined replacement set, by ids.
type MinedRole struct {
	ID          rbac.RoleID         `json:"id"`
	Users       []rbac.UserID       `json:"users"`
	Permissions []rbac.PermissionID `json:"permissions"`
}

// Plan is the ordered action list. Actions must be applied in order:
// later actions reference the dataset state earlier ones produced.
type Plan struct {
	Actions []Action `json:"actions"`
}

// RolesRemoved sums the roles deleted across the plan.
func (p *Plan) RolesRemoved() int {
	n := 0
	for _, a := range p.Actions {
		n += a.RolesRemoved
	}
	return n
}

// EdgesDelta sums the assignment-edge change across the plan.
func (p *Plan) EdgesDelta() int {
	n := 0
	for _, a := range p.Actions {
		n += a.EdgesDelta
	}
	return n
}

// Knobs tunes the planner. The zero value is the safe default: all
// elimination and merge phases on, mining off.
type Knobs struct {
	// Analysis tunes the detection runs driving the phases: method,
	// class-5 threshold, workers. SkipSimilar additionally disables the
	// risk-free class-5 merges. SkipGroups is ignored — the planner owns
	// which classes each phase needs.
	Analysis core.Options `json:"analysis,omitempty"`
	// Mine enables the bounded mining pass after the merge phase.
	Mine bool `json:"mine,omitempty"`
	// MaxAddedEdges is the bi-objective acceptance bound for mining: the
	// mined role set may add at most this many direct assignment edges.
	// Default 0 — mining must not grow the edge count at all.
	MaxAddedEdges int `json:"maxAddedEdges,omitempty"`
	// MaxCandidates caps the mining candidate pool (0 = unlimited); see
	// mining.Options.MaxCandidates.
	MaxCandidates int `json:"maxCandidates,omitempty"`
	// MaxRounds caps merge-convergence rounds; 0 runs to convergence,
	// which is bounded because every executed round removes a role.
	MaxRounds int `json:"maxRounds,omitempty"`
	// Workers fans the mining pass out; see mining.Options.Workers.
	Workers int `json:"workers,omitempty"`
}

// Validate checks the knobs.
func (k Knobs) Validate() error {
	if err := k.Analysis.Validate(); err != nil {
		return err
	}
	if k.MaxAddedEdges < 0 {
		return fmt.Errorf("optimize: negative max added edges %d", k.MaxAddedEdges)
	}
	if k.MaxCandidates < 0 {
		return fmt.Errorf("optimize: negative candidate cap %d", k.MaxCandidates)
	}
	if k.MaxRounds < 0 {
		return fmt.Errorf("optimize: negative max rounds %d", k.MaxRounds)
	}
	if k.Workers < 0 {
		return fmt.Errorf("optimize: negative workers %d", k.Workers)
	}
	return nil
}

// Result is one optimization run: the plan, the optimized dataset, and
// before/after shape metrics. It intentionally carries no wall-time
// fields so identical inputs produce byte-identical results (the server
// caches raw result bytes by digest and knob fingerprint).
type Result struct {
	Plan Plan `json:"plan"`
	// Before and After snapshot the dataset shapes.
	Before rbac.Stats `json:"before"`
	After  rbac.Stats `json:"after"`
	// Rounds is the number of executed merge-convergence rounds.
	Rounds int `json:"rounds"`
	// Mined reports whether a mining pass was accepted; MiningNote
	// explains a skipped or rejected pass.
	Mined      bool   `json:"mined"`
	MiningNote string `json:"miningNote,omitempty"`
	// Optimized is the resulting dataset, proven reachability-equivalent
	// to the input.
	Optimized *rbac.Dataset `json:"optimized"`
}

// Run plans and applies the full optimization pipeline on a copy of the
// dataset. The input is never modified.
func Run(d *rbac.Dataset, k Knobs) (*Result, error) {
	return RunContext(context.Background(), d, k)
}

// RunContext is Run with cooperative cancellation, threaded through
// every analysis and mining pass.
func RunContext(ctx context.Context, d *rbac.Dataset, k Knobs) (*Result, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	p := &planner{ctx: ctx, knobs: k, cur: d.Clone()}
	if err := p.eliminate(); err != nil {
		return nil, err
	}
	if err := p.mergeToConvergence(); err != nil {
		return nil, err
	}
	note, err := p.mine()
	if err != nil {
		return nil, err
	}

	// The oracle pass: the optimized dataset must grant exactly the same
	// user→permission relation, and must never have more roles.
	if err := consolidate.VerifySafety(d, p.cur); err != nil {
		return nil, fmt.Errorf("optimize: plan broke reachability: %w", err)
	}
	if p.cur.NumRoles() > d.NumRoles() {
		return nil, fmt.Errorf("optimize: role count grew from %d to %d",
			d.NumRoles(), p.cur.NumRoles())
	}

	return &Result{
		Plan:       Plan{Actions: p.actions},
		Before:     d.Stats(),
		After:      p.cur.Stats(),
		Rounds:     p.rounds,
		Mined:      note == "",
		MiningNote: note,
		Optimized:  p.cur,
	}, nil
}

// planner carries one run's mutable state.
type planner struct {
	ctx     context.Context
	knobs   Knobs
	cur     *rbac.Dataset
	actions []Action
	rounds  int
}

// analyze runs detection on the current dataset with the planner's
// analysis options, scoped to the classes the caller needs.
func (p *planner) analyze(skipGroups, skipSimilar bool) (*core.Report, error) {
	opts := p.knobs.Analysis
	opts.SkipGroups = skipGroups
	opts.SkipSimilar = opts.SkipSimilar || skipSimilar
	opts.Progress = nil
	return core.AnalyzeContext(p.ctx, p.cur, opts)
}

// edges counts a role's direct assignment edges on both sides.
func edges(d *rbac.Dataset, ri int) int {
	return d.UserRow(ri).Count() + d.PermRow(ri).Count()
}

// eliminate drops class-1/2 roles (they grant nothing) and redundant
// class-3 roles (every grant covered elsewhere).
func (p *planner) eliminate() error {
	rep, err := p.analyze(true, true)
	if err != nil {
		return err
	}

	drop := func(r rbac.RoleID, class int, reason string) error {
		ri, ok := p.cur.RoleIndex(r)
		if !ok {
			return fmt.Errorf("optimize: dropped role %q not in dataset", r)
		}
		p.actions = append(p.actions, Action{
			Kind:         KindDropRole,
			Class:        class,
			Role:         r,
			RolesRemoved: 1,
			EdgesDelta:   -edges(p.cur, ri),
			Reason:       reason,
		})
		return p.cur.RemoveRole(r)
	}
	for _, r := range rep.StandaloneRoles {
		if err := drop(r, 1, "standalone role: no users and no permissions"); err != nil {
			return err
		}
	}
	for _, r := range rep.RolesWithoutUsers {
		if err := drop(r, 2, "grants nothing: no users hold the role"); err != nil {
			return err
		}
	}
	for _, r := range rep.RolesWithoutPermissions {
		if err := drop(r, 2, "grants nothing: the role has no permissions"); err != nil {
			return err
		}
	}

	// Class-3 candidates, deduplicated (a role can be single on both
	// sides) and checked sequentially against the current dataset so
	// two roles covering only each other cannot both drop. The check is
	// a greedy set-cover whose drop count depends on processing order,
	// so candidates are canonicalised by role ID — the same export in a
	// different insertion order yields the same drops.
	seen := make(map[rbac.RoleID]struct{})
	var candidates []rbac.RoleID
	for _, list := range [][]rbac.RoleID{rep.RolesWithSingleUser, rep.RolesWithSinglePermission} {
		for _, r := range list {
			if _, dup := seen[r]; !dup {
				seen[r] = struct{}{}
				candidates = append(candidates, r)
			}
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return candidates[a] < candidates[b] })
	for _, r := range candidates {
		ri, ok := p.cur.RoleIndex(r)
		if !ok {
			continue // already dropped as class 1/2
		}
		if !p.coveredElsewhere(ri) {
			continue
		}
		p.actions = append(p.actions, Action{
			Kind:         KindDropRedundant,
			Class:        3,
			Role:         r,
			RolesRemoved: 1,
			EdgesDelta:   -edges(p.cur, ri),
			Reason:       "single-assignment role: every grant is covered by another role",
		})
		if err := p.cur.RemoveRole(r); err != nil {
			return err
		}
	}
	return nil
}

// coveredElsewhere reports whether every (user, permission) pair role
// index ri grants is also granted by some other role.
func (p *planner) coveredElsewhere(ri int) bool {
	d := p.cur
	covered := true
	d.UserRow(ri).ForEach(func(ui int) bool {
		d.PermRow(ri).ForEach(func(pi int) bool {
			pairCovered := false
			for oi := 0; oi < d.NumRoles() && !pairCovered; oi++ {
				if oi != ri && d.UserRow(oi).Get(ui) && d.PermRow(oi).Get(pi) {
					pairCovered = true
				}
			}
			covered = pairCovered
			return covered
		})
		return covered
	})
	return covered
}

// mergeToConvergence runs merge rounds until one adds no actions (or
// MaxRounds is hit). Each round re-analyses: merges can create new
// identical pairs, and fresh class-5 grant deltas are computed against
// the invariant effective relation, so later rounds stay risk-free.
func (p *planner) mergeToConvergence() error {
	for {
		if p.knobs.MaxRounds > 0 && p.rounds >= p.knobs.MaxRounds {
			return nil
		}
		n, err := p.mergeRound()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		p.rounds++
	}
}

// mergeRound plans and applies one round of class-4 merges plus
// risk-free class-5 merges, returning the number of actions taken.
func (p *planner) mergeRound() (int, error) {
	rep, err := p.analyze(false, false)
	if err != nil {
		return 0, err
	}

	cplan := consolidate.FromReport(rep)
	// Claim every participant — keepers included. A merge grows its
	// keeper's assignment rows, so any class-5 delta involving a
	// participant was computed against stale rows and must wait for the
	// next round's re-analysis.
	claimed := make(map[rbac.RoleID]struct{})
	taken := 0
	for _, m := range cplan.Merges {
		claimed[m.Keep] = struct{}{}
		for _, r := range m.Remove {
			claimed[r] = struct{}{}
		}
		class := 4
		side := m.Side.String()
		p.actions = append(p.actions, Action{
			Kind:         KindMergeRoles,
			Class:        class,
			Keep:         m.Keep,
			Remove:       m.Remove,
			Side:         side,
			RolesRemoved: len(m.Remove),
			EdgesDelta:   p.mergeEdgesDelta(m.Keep, m.Remove, side),
			Reason: fmt.Sprintf("roles share identical %s; folding the other side into %q is provably safe",
				side, m.Keep),
		})
		taken++
	}
	if len(cplan.Merges) > 0 {
		next, err := consolidate.Apply(p.cur, cplan)
		if err != nil {
			return 0, err
		}
		p.cur = next
	}

	if p.knobs.Analysis.SkipSimilar {
		return taken, nil
	}
	suggestions, err := consolidate.SuggestSimilar(p.cur, rep)
	if err != nil {
		// Suggestions reference report roles; a class-4 merge above may
		// have removed one. Those groups are claimed and skipped below,
		// but SuggestSimilar computes deltas for all groups up front, so
		// fall back to skipping class-5 merges this round.
		return taken, nil
	}
	for _, s := range suggestions {
		if !s.RiskFree() || len(s.Roles) < 2 {
			continue
		}
		ok := true
		for _, r := range s.Roles {
			if _, c := claimed[r]; c {
				ok = false
				break
			}
			if _, present := p.cur.RoleIndex(r); !present {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, r := range s.Roles {
			claimed[r] = struct{}{}
		}
		p.actions = append(p.actions, Action{
			Kind:         KindMergeRoles,
			Class:        5,
			Keep:         s.Roles[0],
			Remove:       s.Roles[1:],
			Side:         "both",
			RolesRemoved: len(s.Roles) - 1,
			EdgesDelta:   p.mergeEdgesDelta(s.Roles[0], s.Roles[1:], "both"),
			Reason: fmt.Sprintf("similar roles whose merge adds zero effective grants; folding both sides into %q",
				s.Roles[0]),
		})
		next, err := consolidate.ApplySuggestion(p.cur, s)
		if err != nil {
			return 0, err
		}
		p.cur = next
		taken++
	}
	return taken, nil
}

// mergeEdgesDelta computes the exact direct-edge change of folding the
// removed roles into keep on the current dataset, before application.
// Folding a side unions it into the keeper; the victims' edges vanish.
func (p *planner) mergeEdgesDelta(keep rbac.RoleID, remove []rbac.RoleID, side string) int {
	d := p.cur
	ki, ok := d.RoleIndex(keep)
	if !ok {
		return 0
	}
	userUnion := d.UserRow(ki).Clone()
	permUnion := d.PermRow(ki).Clone()
	victimEdges := 0
	for _, r := range remove {
		ri, ok := d.RoleIndex(r)
		if !ok {
			continue
		}
		victimEdges += edges(d, ri)
		userUnion.Or(d.UserRow(ri))
		permUnion.Or(d.PermRow(ri))
	}
	keepGrowth := 0
	switch side {
	case "users":
		keepGrowth = permUnion.Count() - d.PermRow(ki).Count()
	case "permissions":
		keepGrowth = userUnion.Count() - d.UserRow(ki).Count()
	case "both":
		keepGrowth = permUnion.Count() - d.PermRow(ki).Count() +
			userUnion.Count() - d.UserRow(ki).Count()
	}
	return keepGrowth - victimEdges
}

// mine runs the bounded mining pass when enabled. It returns a non-empty
// note when the pass was skipped or rejected (never an error — a miner
// that cannot improve the role set is a finding, not a failure; only
// context cancellation propagates).
func (p *planner) mine() (string, error) {
	if !p.knobs.Mine {
		return "mining disabled", nil
	}
	upa := mining.UPAFromDataset(p.cur)
	res, err := mining.MineContext(p.ctx, upa, mining.Options{
		MaxCandidates: p.knobs.MaxCandidates,
		Workers:       p.knobs.Workers,
	})
	if err != nil {
		if p.ctx.Err() != nil {
			return "", p.ctx.Err()
		}
		return fmt.Sprintf("mining skipped: %v", err), nil
	}
	mined, err := mining.ToDataset(p.cur, res)
	if err != nil {
		return "", err
	}
	rolesBefore := p.cur.NumRoles()
	edgesBefore := p.cur.NumUserAssignments() + p.cur.NumPermissionAssignments()
	edgesAfter := mined.NumUserAssignments() + mined.NumPermissionAssignments()
	if res.NumRoles() >= rolesBefore {
		return fmt.Sprintf("mining rejected: %d mined roles do not beat %d current",
			res.NumRoles(), rolesBefore), nil
	}
	if added := edgesAfter - edgesBefore; added > p.knobs.MaxAddedEdges {
		return fmt.Sprintf("mining rejected: %d added edges exceed the %d bound",
			added, p.knobs.MaxAddedEdges), nil
	}

	p.actions = append(p.actions, Action{
		Kind:         KindMineRoleset,
		MinedRoles:   minedRoles(p.cur, res),
		RolesRemoved: rolesBefore - res.NumRoles(),
		EdgesDelta:   edgesAfter - edgesBefore,
		Reason: fmt.Sprintf("mined %d-role decomposition of the effective relation replaces %d roles",
			res.NumRoles(), rolesBefore),
	})
	p.cur = mined

	// Mined roles can share user sets; fold any such duplicates with
	// one more convergence pass so the final state is merge-clean.
	return "", p.mergeToConvergence()
}

// minedRoles flattens a mining result into the self-contained id form,
// users and permissions in source index order.
func minedRoles(src *rbac.Dataset, res *mining.Result) []MinedRole {
	out := make([]MinedRole, res.NumRoles())
	for ri, role := range res.Roles {
		mr := MinedRole{ID: rbac.RoleID(fmt.Sprintf("mined-%04d", ri))}
		role.ForEach(func(pi int) bool {
			mr.Permissions = append(mr.Permissions, src.Permission(pi))
			return true
		})
		out[ri] = mr
	}
	for ui, roles := range res.Assignment {
		for _, ri := range roles {
			out[ri].Users = append(out[ri].Users, src.User(ui))
		}
	}
	for i := range out {
		sort.Slice(out[i].Users, func(a, b int) bool { return out[i].Users[a] < out[i].Users[b] })
	}
	return out
}
