package optimize

import (
	"fmt"

	"repro/internal/rbac"
)

// Apply replays a plan on a copy of the dataset and returns the result.
// Plans are self-contained (mine-roleset actions embed the full mined
// role definitions), so a plan decoded from JSON replays without
// re-running any analysis, and replaying the plan Run produced yields a
// dataset identical to Result.Optimized. The input is never modified.
func Apply(d *rbac.Dataset, p *Plan) (*rbac.Dataset, error) {
	out := d.Clone()
	for ai, a := range p.Actions {
		var err error
		switch a.Kind {
		case KindDropRole, KindDropRedundant:
			err = out.RemoveRole(a.Role)
		case KindMergeRoles:
			err = applyMerge(out, a)
		case KindMineRoleset:
			err = applyMined(out, a.MinedRoles)
		default:
			err = fmt.Errorf("unknown action kind %q", a.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("optimize: action %d (%s): %w", ai, a.Kind, err)
		}
	}
	return out, nil
}

// applyMerge folds the removed roles into the keeper along the action's
// side — the same fold order the planner used, so replay is exact.
func applyMerge(d *rbac.Dataset, a Action) error {
	if _, ok := d.RoleIndex(a.Keep); !ok {
		return fmt.Errorf("keep role %q not in dataset", a.Keep)
	}
	foldUsers := a.Side == "permissions" || a.Side == "both"
	foldPerms := a.Side == "users" || a.Side == "both"
	if !foldUsers && !foldPerms {
		return fmt.Errorf("unknown merge side %q", a.Side)
	}
	for _, victim := range a.Remove {
		if foldUsers {
			users, err := d.RoleUsers(victim)
			if err != nil {
				return err
			}
			for _, u := range users {
				if err := d.AssignUser(a.Keep, u); err != nil {
					return err
				}
			}
		}
		if foldPerms {
			perms, err := d.RolePermissions(victim)
			if err != nil {
				return err
			}
			for _, p := range perms {
				if err := d.AssignPermission(a.Keep, p); err != nil {
					return err
				}
			}
		}
		if err := d.RemoveRole(victim); err != nil {
			return err
		}
	}
	return nil
}

// applyMined replaces the entire role set with the embedded mined
// decomposition. Users and permissions are untouched.
func applyMined(d *rbac.Dataset, roles []MinedRole) error {
	for _, r := range d.Roles() {
		if err := d.RemoveRole(r); err != nil {
			return err
		}
	}
	for _, mr := range roles {
		if err := d.AddRole(mr.ID); err != nil {
			return err
		}
		for _, p := range mr.Permissions {
			if err := d.AssignPermission(mr.ID, p); err != nil {
				return err
			}
		}
		for _, u := range mr.Users {
			if err := d.AssignUser(mr.ID, u); err != nil {
				return err
			}
		}
	}
	return nil
}
