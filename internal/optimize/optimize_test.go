package optimize

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

// build assembles a dataset from explicit role assignments.
func build(t *testing.T, users, perms []string, roles map[string][2][]string) *rbac.Dataset {
	t.Helper()
	d := rbac.NewDataset()
	for _, u := range users {
		if err := d.AddUser(rbac.UserID(u)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range perms {
		if err := d.AddPermission(rbac.PermissionID(p)); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic role order: sort the names.
	names := make([]string, 0, len(roles))
	for r := range roles {
		names = append(names, r)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, r := range names {
		if err := d.AddRole(rbac.RoleID(r)); err != nil {
			t.Fatal(err)
		}
		for _, u := range roles[r][0] {
			if err := d.AssignUser(rbac.RoleID(r), rbac.UserID(u)); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range roles[r][1] {
			if err := d.AssignPermission(rbac.RoleID(r), rbac.PermissionID(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

// mustRun runs the planner and asserts the built-in oracle held.
func mustRun(t *testing.T, d *rbac.Dataset, k Knobs) *Result {
	t.Helper()
	res, err := Run(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := consolidate.VerifySafety(d, res.Optimized); err != nil {
		t.Fatalf("reachability broken: %v", err)
	}
	if res.Optimized.NumRoles() > d.NumRoles() {
		t.Fatalf("role count grew: %d -> %d", d.NumRoles(), res.Optimized.NumRoles())
	}
	return res
}

func TestKnobsValidate(t *testing.T) {
	for _, k := range []Knobs{
		{MaxAddedEdges: -1},
		{MaxCandidates: -1},
		{MaxRounds: -1},
		{Workers: -1},
		{Analysis: core.Options{SimilarThreshold: -2}},
	} {
		if err := k.Validate(); err == nil {
			t.Fatalf("knobs %+v accepted", k)
		}
		if _, err := Run(rbac.Figure1(), k); err == nil {
			t.Fatalf("Run accepted knobs %+v", k)
		}
	}
	if err := (Knobs{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationsDropDeadRoles(t *testing.T) {
	d := build(t,
		[]string{"u1", "u2"},
		[]string{"p1", "p2"},
		map[string][2][]string{
			"live":     {{"u1", "u2"}, {"p1"}},
			"lonely":   {nil, nil},           // class 1: standalone
			"no-users": {nil, {"p1", "p2"}},  // class 2
			"no-perms": {{"u1", "u2"}, nil},  // class 2
		})
	res := mustRun(t, d, Knobs{})
	for _, gone := range []rbac.RoleID{"lonely", "no-users", "no-perms"} {
		if _, ok := res.Optimized.RoleIndex(gone); ok {
			t.Fatalf("role %q survived", gone)
		}
	}
	if _, ok := res.Optimized.RoleIndex("live"); !ok {
		t.Fatal("live role dropped")
	}
	if got := res.Plan.RolesRemoved(); got != 3 {
		t.Fatalf("plan removed %d roles, want 3", got)
	}
}

func TestRedundantSingleAssignmentDrops(t *testing.T) {
	// "extra" grants only (u1, p1), which "wide" also grants — droppable.
	// "wide" is single-user but grants p2 that nothing else covers.
	d := build(t,
		[]string{"u1"},
		[]string{"p1", "p2"},
		map[string][2][]string{
			"wide":  {{"u1"}, {"p1", "p2"}},
			"extra": {{"u1"}, {"p1"}},
		})
	res := mustRun(t, d, Knobs{})
	if _, ok := res.Optimized.RoleIndex("extra"); ok {
		t.Fatal("redundant role survived")
	}
	if _, ok := res.Optimized.RoleIndex("wide"); !ok {
		t.Fatal("covering role dropped")
	}
	var kinds []string
	for _, a := range res.Plan.Actions {
		kinds = append(kinds, a.Kind)
	}
	if len(kinds) != 1 || kinds[0] != KindDropRedundant {
		t.Fatalf("actions = %v", kinds)
	}
}

func TestMutuallyCoveringPairKeepsOne(t *testing.T) {
	// Two identical single-assignment roles cover each other; sequential
	// re-checking must drop exactly one (the survivor's coverage is gone).
	// The survivor then has nothing to merge with.
	d := build(t,
		[]string{"u1"},
		[]string{"p1"},
		map[string][2][]string{
			"a": {{"u1"}, {"p1"}},
			"b": {{"u1"}, {"p1"}},
		})
	res := mustRun(t, d, Knobs{})
	if res.Optimized.NumRoles() != 1 {
		t.Fatalf("%d roles survive, want 1", res.Optimized.NumRoles())
	}
}

func TestMergeConvergenceCascades(t *testing.T) {
	// Round 1: r1, r2 share users {u1,u2} and merge into r1 with perms
	// {p1,p2}. Round 2: r1 now shares its permission set with r3 and
	// merges again. One round would leave a detectable class-4 pair.
	d := build(t,
		[]string{"u1", "u2", "u3", "u4"},
		[]string{"p1", "p2"},
		map[string][2][]string{
			"r1": {{"u1", "u2"}, {"p1"}},
			"r2": {{"u1", "u2"}, {"p2"}},
			"r3": {{"u3", "u4"}, {"p1", "p2"}},
		})
	res := mustRun(t, d, Knobs{})
	if res.Optimized.NumRoles() != 1 {
		t.Fatalf("%d roles survive, want 1", res.Optimized.NumRoles())
	}
	if res.Rounds < 2 {
		t.Fatalf("converged in %d rounds, want >= 2", res.Rounds)
	}
	// Convergence means a fresh analysis finds no class-4 groups.
	rep, err := core.Analyze(res.Optimized, core.Options{SkipSimilar: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SameUserGroups)+len(rep.SamePermissionGroups) != 0 {
		t.Fatal("class-4 groups remain after convergence")
	}
}

func TestRiskFreeSimilarMerge(t *testing.T) {
	// r1 {u1,u2} and r2 {u1,u2,u3} are similar at k=1. Merging grants
	// u3 p1 — already held via r3 — so the merge is risk-free.
	d := build(t,
		[]string{"u1", "u2", "u3"},
		[]string{"p1", "p2", "p3"},
		map[string][2][]string{
			"r1": {{"u1", "u2"}, {"p1"}},
			"r2": {{"u1", "u2", "u3"}, {"p2"}},
			"r3": {{"u3"}, {"p1", "p3"}},
		})
	res := mustRun(t, d, Knobs{})
	found := false
	for _, a := range res.Plan.Actions {
		if a.Kind == KindMergeRoles && a.Class == 5 {
			found = true
			if a.Side != "both" {
				t.Fatalf("class-5 merge side %q", a.Side)
			}
		}
	}
	if !found {
		t.Fatalf("no risk-free class-5 merge planned; actions: %+v", res.Plan.Actions)
	}
	if res.Optimized.NumRoles() != 2 {
		t.Fatalf("%d roles survive, want 2", res.Optimized.NumRoles())
	}

	// With class-5 disabled the merge must not happen.
	res = mustRun(t, d, Knobs{Analysis: core.Options{SkipSimilar: true}})
	if res.Optimized.NumRoles() != 3 {
		t.Fatalf("skipSimilar: %d roles survive, want 3", res.Optimized.NumRoles())
	}
}

func TestMiningBeatsMerging(t *testing.T) {
	// No class-4/5 merge applies, but the 3-role set is reducible to the
	// 2 distinct effective rows by mining, shedding one edge too.
	d := build(t,
		[]string{"u1", "u2"},
		[]string{"p1", "p2", "p3"},
		map[string][2][]string{
			"r1": {{"u1"}, {"p1"}},
			"r2": {{"u1", "u2"}, {"p2"}},
			"r3": {{"u2"}, {"p3"}},
		})
	res := mustRun(t, d, Knobs{Mine: true})
	if !res.Mined {
		t.Fatalf("mining not accepted: %s", res.MiningNote)
	}
	if res.Optimized.NumRoles() != 2 {
		t.Fatalf("%d roles survive, want 2", res.Optimized.NumRoles())
	}
	if res.Plan.EdgesDelta() > 0 {
		t.Fatalf("edges grew by %d", res.Plan.EdgesDelta())
	}

	// Without the knob the miner must not run and the roles survive.
	res = mustRun(t, d, Knobs{})
	if res.Mined || res.Optimized.NumRoles() != 3 {
		t.Fatalf("mined=%v roles=%d without the knob", res.Mined, res.Optimized.NumRoles())
	}
}

func TestMiningRejectedWhenNotSmaller(t *testing.T) {
	// A single role already minimal: mining cannot beat it and the note
	// must say so.
	d := build(t,
		[]string{"u1", "u2"},
		[]string{"p1"},
		map[string][2][]string{"only": {{"u1", "u2"}, {"p1"}}})
	res := mustRun(t, d, Knobs{Mine: true})
	if res.Mined {
		t.Fatal("mining accepted with nothing to gain")
	}
	if res.MiningNote == "" {
		t.Fatal("no mining note")
	}
}

func TestPlanApplyMatchesOptimized(t *testing.T) {
	// Replaying the emitted plan — after a JSON round-trip — must
	// reproduce the optimized dataset byte-for-byte.
	for _, k := range []Knobs{{}, {Mine: true}} {
		d := rbac.Figure1()
		res := mustRun(t, d, k)
		raw, err := json.Marshal(&res.Plan)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Plan
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatal(err)
		}
		replayed, err := Apply(d, &decoded)
		if err != nil {
			t.Fatal(err)
		}
		a, err := json.Marshal(replayed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Optimized)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("replay mismatch (mine=%v):\n%s\nvs\n%s", k.Mine, a, b)
		}
	}
}

func TestResultDeterministic(t *testing.T) {
	d := rbac.Figure1()
	r1 := mustRun(t, d, Knobs{Mine: true})
	r2 := mustRun(t, d, Knobs{Mine: true})
	a, _ := json.Marshal(r1)
	b, _ := json.Marshal(r2)
	if !bytes.Equal(a, b) {
		t.Fatal("same input produced different results")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, rbac.Figure1(), Knobs{Mine: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestApplyRejectsMalformedPlans(t *testing.T) {
	d := rbac.Figure1()
	for _, p := range []*Plan{
		{Actions: []Action{{Kind: "warp-roles"}}},
		{Actions: []Action{{Kind: KindDropRole, Role: "no-such-role"}}},
		{Actions: []Action{{Kind: KindMergeRoles, Keep: "R01", Remove: []rbac.RoleID{"R02"}, Side: "sideways"}}},
		{Actions: []Action{{Kind: KindMergeRoles, Keep: "ghost", Remove: []rbac.RoleID{"R02"}, Side: "users"}}},
	} {
		if _, err := Apply(d, p); err == nil {
			t.Fatalf("plan %+v accepted", p)
		}
	}
}

func TestMaxRoundsCapsConvergence(t *testing.T) {
	// The cascade from TestMergeConvergenceCascades needs two rounds;
	// capping at one must stop after the first.
	d := build(t,
		[]string{"u1", "u2", "u3", "u4"},
		[]string{"p1", "p2"},
		map[string][2][]string{
			"r1": {{"u1", "u2"}, {"p1"}},
			"r2": {{"u1", "u2"}, {"p2"}},
			"r3": {{"u3", "u4"}, {"p1", "p2"}},
		})
	res := mustRun(t, d, Knobs{MaxRounds: 1})
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if res.Optimized.NumRoles() != 2 {
		t.Fatalf("%d roles survive, want 2", res.Optimized.NumRoles())
	}
}
