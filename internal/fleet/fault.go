package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Deterministic fault injection for the fleet transport. The daemon
// wires it from -fault-inject / ROLEDIET_FAULT; unit tests and the
// cluster smoke script drive the same seam, so the failure paths they
// exercise are exactly the production code paths.
//
// A spec is a comma-separated list of directives applied to *outbound
// peer requests* in arrival order (counter-based, no randomness — the
// Nth run of a test injects exactly what the first did):
//
//	drop:N       fail the next N requests with a transport error
//	             before any bytes reach the peer
//	5xx:N        answer the next N requests with a synthesized
//	             503 (the peer is never contacted)
//	delay:D      add latency D (a Go duration) to every request
//	slowbody:D   deliver response bodies one byte at a time with D
//	             between reads (a hung-peer simulation the
//	             per-attempt timeout must cut off)
//
// Counted directives consume themselves; duration directives apply to
// every request. Example: "delay:50ms,5xx:2" delays everything and
// 503s the first two requests.

// faultRule is one parsed directive.
type faultRule struct {
	mode      string // drop, 5xx, delay, slowbody
	remaining int    // for counted modes
	d         time.Duration
}

// Injector is an http.RoundTripper injecting the parsed faults ahead
// of a real transport. A nil *Injector is transparent.
type Injector struct {
	next  http.RoundTripper
	mu    sync.Mutex
	rules []*faultRule
}

// NewInjector parses spec and wraps next (nil next means
// http.DefaultTransport). An empty spec returns (nil, nil): no
// injection layer at all.
func NewInjector(spec string, next http.RoundTripper) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if next == nil {
		next = http.DefaultTransport
	}
	var rules []*faultRule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		mode, arg, _ := strings.Cut(part, ":")
		r := &faultRule{mode: mode}
		switch mode {
		case "drop", "5xx":
			r.remaining = 1
			if arg != "" {
				n, err := strconv.Atoi(arg)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fleet: fault %q: want %s:N with N >= 1", part, mode)
				}
				r.remaining = n
			}
		case "delay", "slowbody":
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fleet: fault %q: want %s:duration", part, mode)
			}
			r.d = d
		default:
			return nil, fmt.Errorf("fleet: unknown fault directive %q (want drop, 5xx, delay, slowbody)", part)
		}
		rules = append(rules, r)
	}
	return &Injector{next: next, rules: rules}, nil
}

// take consumes one application of a counted mode, or reports a
// duration mode's parameter.
func (in *Injector) take(mode string) (time.Duration, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.mode != mode {
			continue
		}
		switch mode {
		case "delay", "slowbody":
			return r.d, true
		default:
			if r.remaining > 0 {
				r.remaining--
				return 0, true
			}
		}
	}
	return 0, false
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	if in == nil {
		return http.DefaultTransport.RoundTrip(req)
	}
	if d, ok := in.take("delay"); ok {
		if err := sleepCtx(req.Context(), d); err != nil {
			return nil, err
		}
	}
	if _, ok := in.take("drop"); ok {
		return nil, fmt.Errorf("fleet: injected fault: connection dropped (%s %s)", req.Method, req.URL)
	}
	if _, ok := in.take("5xx"); ok {
		body := []byte(`{"error":"injected fault","code":"internal"}`)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := in.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d, ok := in.take("slowbody"); ok && resp.Body != nil {
		resp.Body = &slowBody{inner: resp.Body, ctx: req.Context(), d: d}
	}
	return resp, nil
}

// slowBody trickles a response body one byte per read with a delay
// between reads, honouring the request context so per-attempt timeouts
// cut it off.
type slowBody struct {
	inner io.ReadCloser
	ctx   context.Context
	d     time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.d > 0 {
		t := time.NewTimer(s.d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.ctx.Done():
			return 0, s.ctx.Err()
		}
	}
	if len(p) > 1 {
		p = p[:1]
	}
	return s.inner.Read(p)
}

func (s *slowBody) Close() error { return s.inner.Close() }
