package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// Async health membership: a single prober goroutine polls every
// peer's /healthz on a fixed cadence and feeds the per-peer breaker,
// so a dead peer is opened (and requests fail fast) within a few
// intervals of dying, and a recovered one is closed without a user
// request paying for the discovery. Peer state carries a revision-
// style generation counter bumped on every observed transition
// (up/down/draining and boot-id changes), the same shape OPA's
// discovery plugin uses to notice a bundle revision moved without
// diffing contents.

// Health is the JSON body of /healthz. Status is "ok" whenever the
// process answers at all — the bare "200 means alive" contract
// predating the fleet — while State distinguishes a node that is
// draining (alive, finishing in-flight work, not accepting new fleet
// work) from one that is gone (no response). Boot identifies the
// process instance: a changed Boot under the same URL means the peer
// restarted and lost its in-memory state.
type Health struct {
	Status  string `json:"status"`
	Node    string `json:"node,omitempty"`
	State   string `json:"state,omitempty"` // "ready" or "draining"
	Ready   bool   `json:"ready"`
	Version string `json:"version,omitempty"`
	Boot    string `json:"boot,omitempty"`
}

// Health states reported by /healthz and tracked per peer.
const (
	StateReady    = "ready"
	StateDraining = "draining"
	StateDown     = "down"
	StateUnknown  = "unknown" // not probed yet
)

// peerState is everything the fleet tracks about one remote peer.
type peerState struct {
	url     string
	breaker *Breaker

	// Guarded by Fleet.mu.
	state      string // StateReady, StateDraining, StateDown, StateUnknown
	node       string // peer-reported node id
	boot       string // peer-reported process instance
	generation uint64 // bumps on every observed state/boot transition
	lastErr    string
	lastProbe  time.Time
}

// probeLoop polls every peer until ctx dies. One immediate round runs
// before the first tick so routing decisions have real data within one
// probe timeout of startup.
func (f *Fleet) probeLoop(ctx context.Context) {
	defer f.wg.Done()
	f.probeAll(ctx)
	t := time.NewTicker(f.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.probeAll(ctx)
		}
	}
}

func (f *Fleet) probeAll(ctx context.Context) {
	for _, ps := range f.peerStates() {
		f.probeOne(ctx, ps)
	}
}

// probeOne performs one /healthz round trip and folds the outcome into
// the peer's state and breaker.
func (f *Fleet) probeOne(ctx context.Context, ps *peerState) {
	pctx, cancel := context.WithTimeout(ctx, f.opts.AttemptTimeout)
	defer cancel()
	h, err := f.fetchHealth(pctx, ps.url)

	f.mu.Lock()
	ps.lastProbe = time.Now()
	prevState, prevBoot := ps.state, ps.boot
	if err != nil {
		ps.state = StateDown
		ps.lastErr = err.Error()
	} else {
		ps.lastErr = ""
		ps.node = h.Node
		ps.boot = h.Boot
		if h.Ready || h.State == "" || h.State == StateReady {
			ps.state = StateReady
		} else {
			ps.state = StateDraining
		}
	}
	if ps.state != prevState || (prevBoot != "" && ps.boot != prevBoot) {
		ps.generation++
	}
	f.mu.Unlock()

	// A draining peer is alive: the breaker stays closed so reads can
	// still reach data only it holds; only the routing layer avoids
	// handing it new work.
	ps.breaker.Record(err == nil)
}

// fetchHealth GETs and decodes one /healthz. A non-200 answer or an
// undecodable body counts as a failed probe.
func (f *Fleet) fetchHealth(ctx context.Context, peer string) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Status: resp.StatusCode, Body: body}
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		// A bare-200 health endpoint (pre-fleet daemon) is alive and,
		// absent richer signal, ready.
		return &Health{Status: "ok", Ready: true, State: StateReady}, nil
	}
	return &h, nil
}
