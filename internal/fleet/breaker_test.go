package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerOpenHalfOpenClosed walks the full transition cycle with a
// fake clock and checks the generation counter bumps exactly once per
// transition.
func TestBreakerOpenHalfOpenClosed(t *testing.T) {
	b, clk := newTestBreaker(3, 5*time.Second)

	if !b.Allow() {
		t.Fatal("closed breaker denied a request")
	}
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.Record(false) // third consecutive failure
	if got := b.Snapshot(); got.State != BreakerOpen || got.Generation != 1 || got.Failures != 3 {
		t.Fatalf("after threshold failures: %+v", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but trial denied")
	}
	if got := b.Snapshot(); got.State != BreakerHalfOpen || got.Generation != 2 {
		t.Fatalf("after cooldown: %+v", got)
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent trial")
	}

	// Failed trial: straight back to open for another cooldown.
	b.Record(false)
	if got := b.Snapshot(); got.State != BreakerOpen || got.Generation != 3 {
		t.Fatalf("after failed trial: %+v", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}

	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but trial denied")
	}
	b.Record(true)
	if got := b.Snapshot(); got.State != BreakerClosed || got.Generation != 5 || got.Failures != 0 {
		t.Fatalf("after successful trial: %+v", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied a request after recovery")
	}
}

// TestBreakerSuccessResetsCount pins that failures must be consecutive:
// any success zeroes the count.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("three consecutive failures did not open the breaker")
	}
}

// TestBreakerTrialReleasedOnRecord checks a finished trial frees the
// half-open slot for the next caller.
func TestBreakerTrialReleasedOnRecord(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Record(false) // open
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("trial denied")
	}
	b.Record(false) // trial failed -> open again, trial slot freed
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second trial denied after the first was recorded")
	}
}

// TestBreakerStateJSON pins the wire rendering /v1/fleet/stats exposes.
func TestBreakerStateJSON(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		txt, err := state.MarshalText()
		if err != nil || string(txt) != want {
			t.Fatalf("MarshalText(%d) = %q, %v; want %q", state, txt, err, want)
		}
	}
}
