package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

func testDigest(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("dataset-%d", i)))
	return hex.EncodeToString(sum[:])
}

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://node%d:8080", i)
	}
	return peers
}

// TestRankPermutationInvariant pins the property placement correctness
// rests on: every node computes the same ranking regardless of the
// order its -peers flag listed the membership.
func TestRankPermutationInvariant(t *testing.T) {
	peers := testPeers(5)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		digest := testDigest(i)
		want := Rank(peers, digest)
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})
		got := Rank(shuffled, digest)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("digest %d: rank differs under permutation:\n %v\n %v", i, want, got)
			}
		}
	}
}

// TestRankIsCompleteOrder verifies Rank is a permutation of the peers:
// nothing dropped, nothing duplicated, input untouched.
func TestRankIsCompleteOrder(t *testing.T) {
	peers := testPeers(7)
	orig := append([]string(nil), peers...)
	ranked := Rank(peers, testDigest(1))
	if len(ranked) != len(peers) {
		t.Fatalf("rank has %d entries, want %d", len(ranked), len(peers))
	}
	seen := map[string]bool{}
	for _, p := range ranked {
		if seen[p] {
			t.Fatalf("peer %s ranked twice", p)
		}
		seen[p] = true
	}
	for i := range orig {
		if peers[i] != orig[i] {
			t.Fatal("Rank mutated its input slice")
		}
	}
}

// TestRankBalance checks ownership spreads roughly evenly: with 3 peers
// and 3000 digests each peer should own about a thousand.
func TestRankBalance(t *testing.T) {
	peers := testPeers(3)
	owned := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		owned[Rank(peers, testDigest(i))[0]]++
	}
	for _, p := range peers {
		if owned[p] < n/3-300 || owned[p] > n/3+300 {
			t.Fatalf("unbalanced ownership: %v", owned)
		}
	}
}

// TestRankMinimalDisruption pins the defining rendezvous property:
// removing a peer reassigns only the datasets that peer owned; every
// other dataset keeps its owner.
func TestRankMinimalDisruption(t *testing.T) {
	peers := testPeers(5)
	removed := peers[2]
	var survivors []string
	for _, p := range peers {
		if p != removed {
			survivors = append(survivors, p)
		}
	}
	moved := 0
	for i := 0; i < 500; i++ {
		digest := testDigest(i)
		before := Rank(peers, digest)[0]
		after := Rank(survivors, digest)[0]
		if before == removed {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("digest %d owner moved %s -> %s though %s was not removed",
				i, before, after, removed)
		}
	}
	if moved == 0 {
		t.Fatal("suspicious: removed peer owned nothing out of 500 digests")
	}
}
