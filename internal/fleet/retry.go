package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// The retry helper every peer call goes through: capped exponential
// backoff with full jitter, a fleet-wide retry budget so a flapping
// peer cannot amplify load, and hard short-circuits on context
// cancellation — a caller whose request died never sleeps into its
// next attempt.

// ErrBudgetExhausted means the retry budget denied another attempt;
// the last attempt's error is wrapped alongside it.
var ErrBudgetExhausted = errors.New("fleet: retry budget exhausted")

// permanentError marks an error that must not be retried (a definitive
// answer, e.g. a 404 from a healthy peer).
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately instead of retrying.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// IsPermanent reports whether err carries the no-retry marker.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Budget is a token bucket bounding the fleet-wide *rate* of retries:
// every success deposits PerSuccess tokens (capped at Max), every
// retry withdraws one. When calls keep failing the bucket drains and
// further failures return after their first attempt — the classic
// retry-budget defence against retry storms. A nil *Budget allows
// every retry.
type Budget struct {
	mu         sync.Mutex
	tokens     float64
	max        float64
	perSuccess float64
}

// NewBudget builds a full bucket. max is the burst of retries allowed
// from a standing start; perSuccess is the fraction of successful
// calls that may be spent on retries (0.1 = one retry per ten
// successes).
func NewBudget(max, perSuccess float64) *Budget {
	if max <= 0 {
		max = 1
	}
	return &Budget{tokens: max, max: max, perSuccess: perSuccess}
}

// OnSuccess deposits the per-success allowance.
func (b *Budget) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.perSuccess
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Allow withdraws one retry token, reporting whether one was
// available.
func (b *Budget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryPolicy drives Do. The zero value retries twice (three attempts)
// with 50ms..2s full-jitter backoff and no budget.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included);
	// defaults to 3.
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; each
	// further retry doubles it up to MaxDelay. Defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. Defaults to 2s.
	MaxDelay time.Duration
	// Budget, when non-nil, gates every retry (never the first
	// attempt) and is credited on success.
	Budget *Budget
	// Jitter yields uniform floats in [0,1) for full-jitter backoff:
	// sleep = ceiling * Jitter(). Defaults to the shared math/rand
	// source; tests inject a seeded one for determinism.
	Jitter func() float64
	// sleep is the test seam for observing computed delays; defaults
	// to a context-aware timer sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == nil {
		p.Jitter = rand.Float64
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	return p
}

// delay computes the full-jitter backoff before retry number retry
// (0-based): uniform in [0, min(MaxDelay, BaseDelay<<retry)).
func (p RetryPolicy) delay(retry int) time.Duration {
	ceiling := p.MaxDelay
	if shifted := p.BaseDelay << uint(retry); shifted > 0 && shifted < ceiling {
		ceiling = shifted
	}
	return time.Duration(p.Jitter() * float64(ceiling))
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// MaxAttempts or the retry budget, or the context dies. Cancellation
// short-circuits both before an attempt and during a backoff sleep,
// returning the context's error rather than the last attempt's.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	for retry := 0; ; retry++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			p.Budget.OnSuccess()
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		if retry+1 >= p.MaxAttempts {
			return err
		}
		if !p.Budget.Allow() {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, retry+1, err)
		}
		if serr := p.sleep(ctx, p.delay(retry)); serr != nil {
			return serr
		}
	}
}

// sleepCtx sleeps for d or until ctx dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
