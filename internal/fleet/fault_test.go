package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okResponse(req *http.Request, body string) *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}

// TestInjectorParse covers the spec grammar: empty means no layer,
// malformed directives are rejected at startup rather than surprising
// at request time.
func TestInjectorParse(t *testing.T) {
	if inj, err := NewInjector("", nil); inj != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", inj, err)
	}
	for _, bad := range []string{"bogus:1", "drop:0", "drop:x", "delay:zzz", "slowbody:-1s", "5xx:-2"} {
		if _, err := NewInjector(bad, nil); err == nil {
			t.Fatalf("spec %q accepted, want parse error", bad)
		}
	}
	if _, err := NewInjector("drop:2, 5xx ,delay:10ms", rtFunc(nil)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestInjectorCountedFaults pins the deterministic counter semantics:
// drop:2,5xx:1 fails exactly requests 1-2 with a transport error,
// synthesizes a 503 for request 3 without contacting the peer, and
// passes request 4 through untouched.
func TestInjectorCountedFaults(t *testing.T) {
	reached := 0
	inj, err := NewInjector("drop:2,5xx:1", rtFunc(func(req *http.Request) (*http.Response, error) {
		reached++
		return okResponse(req, "real"), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "http://peer/x", nil)

	for i := 0; i < 2; i++ {
		if _, err := inj.RoundTrip(req); err == nil {
			t.Fatalf("request %d: want injected transport error", i+1)
		}
	}
	resp, err := inj.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request 3 = (%v, %v), want synthesized 503", resp, err)
	}
	if reached != 0 {
		t.Fatalf("peer contacted %d times during injected faults", reached)
	}
	resp, err = inj.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 4 = (%v, %v), want pass-through", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "real" || reached != 1 {
		t.Fatalf("pass-through body %q, peer reached %d times", body, reached)
	}
}

// TestInjectorDelay checks delay applies to every request and honours
// the request context.
func TestInjectorDelay(t *testing.T) {
	inj, err := NewInjector("delay:30ms", rtFunc(func(req *http.Request) (*http.Response, error) {
		return okResponse(req, "ok"), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "http://peer/x", nil)
	start := time.Now()
	if _, err := inj.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := inj.RoundTrip(req.WithContext(ctx)); err == nil {
		t.Fatal("delayed request outlived its context")
	}
}

// TestInjectorSlowBody checks the hung-peer simulation: the body
// arrives intact when the reader is patient, and a context deadline
// cuts the trickle off.
func TestInjectorSlowBody(t *testing.T) {
	const payload = "0123456789"
	inj, err := NewInjector("slowbody:1ms", rtFunc(func(req *http.Request) (*http.Response, error) {
		return okResponse(req, payload), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := inj.RoundTrip(httptest.NewRequest(http.MethodGet, "http://peer/x", nil))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != payload {
		t.Fatalf("slow body = %q, %v; want full payload", body, err)
	}

	slow, err := NewInjector("slowbody:100ms", rtFunc(func(req *http.Request) (*http.Response, error) {
		return okResponse(req, payload), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	resp, err = slow.RoundTrip(httptest.NewRequest(http.MethodGet, "http://peer/x", nil).WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("slow body read outlived its context deadline")
	}
}
