// Package fleet lets N roledietd instances split a dataset corpus with
// no coordinator and no consensus. Membership is a static peer list;
// placement is rendezvous hashing over content digests (each dataset
// gets an owner and a configurable number of replicas); and every
// node-to-node call goes through one hardened client — per-attempt
// timeouts, capped exponential backoff with full jitter, a fleet-wide
// retry budget, and a per-peer circuit breaker fed by an async
// /healthz prober — so a dead or hung peer costs a bounded, small
// amount of time instead of a queue of stuck requests.
//
// The design follows OPA's bundle/discovery shape: polling plus
// revision-style generation counters, never consensus. Content
// addressing is what makes that sufficient — a digest either exists
// with the right bytes or it does not, so replication is idempotent
// and conflict-free by construction, and any holder is as
// authoritative as the owner.
//
// Failure is an expected state, not an exception: callers that cannot
// reach any holder of a digest get ErrPeerUnavailable quickly (the
// server maps it to 503 + Retry-After), never a hang; scatter-gather
// operations report which peers were skipped instead of failing whole.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// ErrPeerUnavailable means a required peer (or every holder of a
// digest) could not be reached within the retry policy: dead, circuit
// open, or persistently erroring. The HTTP layer maps it to 503 with
// a Retry-After hint and the peer_unavailable error code.
var ErrPeerUnavailable = errors.New("fleet: peer unavailable")

// ErrNotFound means every reachable holder answered 404: the digest is
// not in the fleet (never uploaded, or deleted everywhere).
var ErrNotFound = errors.New("fleet: dataset not held by any reachable peer")

// StatusError is a non-2xx peer answer that is a definitive response
// rather than a peer failure (4xx).
type StatusError struct {
	Status int
	Body   []byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("fleet: peer answered %d: %s", e.Status, bytes.TrimSpace(e.Body))
}

// Options configures a Fleet.
type Options struct {
	// Self is this node's own base URL as it appears in Peers.
	Self string
	// Peers is the full static membership, Self included. Order does
	// not matter: rendezvous ranking is permutation-invariant.
	Peers []string
	// Replicas is how many holders beyond the owner each dataset gets;
	// defaults to 1 (owner + one replica). Capped at len(Peers)-1.
	Replicas int
	// AttemptTimeout bounds every single peer round trip (probes
	// included); defaults to 2s.
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per peer call (first try included);
	// defaults to 3.
	MaxAttempts int
	// BaseDelay / MaxDelay shape the full-jitter backoff between
	// attempts; default 50ms / 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// RetryBudget is the burst of retries allowed from a standing
	// start, refilled by RetryPerSuccess per successful call; defaults
	// to 10 and 0.1. A flapping fleet degrades to first-attempt-only
	// instead of amplifying load.
	RetryBudget     float64
	RetryPerSuccess float64
	// BreakerThreshold consecutive failures open a peer's circuit for
	// BreakerCooldown; defaults 3 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the /healthz polling cadence; defaults to 1s.
	// Negative disables the prober (unit tests drive probes manually).
	ProbeInterval time.Duration
	// FaultSpec, when non-empty, wraps the transport in a
	// deterministic fault Injector (see NewInjector for the syntax).
	FaultSpec string
	// Transport is the underlying RoundTripper, the seam FaultSpec
	// wraps; defaults to http.DefaultTransport.
	Transport http.RoundTripper
	// BaseContext stops the prober when cancelled; defaults to
	// context.Background(). Close also stops it.
	BaseContext context.Context
	// Logf receives prober transitions and replication failures;
	// defaults to log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 10
	}
	if o.RetryPerSuccess <= 0 {
		o.RetryPerSuccess = 0.1
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.BaseContext == nil {
		o.BaseContext = context.Background()
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Counters are the fleet client's cumulative counters.
type Counters struct {
	// Attempts counts individual peer round trips; Retries the subset
	// that were re-attempts after a failure.
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// Forwards / Replications / Fetches count the three fleet
	// operations, with their failure tallies alongside.
	Forwards            uint64 `json:"forwards"`
	ForwardFailures     uint64 `json:"forwardFailures"`
	Replications        uint64 `json:"replications"`
	ReplicationFailures uint64 `json:"replicationFailures"`
	Fetches             uint64 `json:"fetches"`
	FetchFailures       uint64 `json:"fetchFailures"`
}

// Fleet is the peer layer one daemon holds: membership, placement,
// health, and the hardened client.
type Fleet struct {
	opts   Options
	self   string
	peers  []string // normalized, self included
	client *http.Client
	budget *Budget

	mu       sync.Mutex
	states   map[string]*peerState // keyed by peer URL, self excluded
	counters Counters

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New validates the membership and starts the health prober. Self must
// appear in Peers (after URL normalization).
func New(opts Options) (*Fleet, error) {
	opts = opts.withDefaults()
	self, err := normalizePeer(opts.Self)
	if err != nil {
		return nil, fmt.Errorf("fleet: self: %w", err)
	}
	seen := make(map[string]bool)
	var peers []string
	for _, p := range opts.Peers {
		np, err := normalizePeer(p)
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %q: %w", p, err)
		}
		if !seen[np] {
			seen[np] = true
			peers = append(peers, np)
		}
	}
	if !seen[self] {
		return nil, fmt.Errorf("fleet: self %q is not in the peer list %v", self, peers)
	}
	if opts.Replicas > len(peers)-1 {
		opts.Replicas = len(peers) - 1
	}
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	if inj, err := NewInjector(opts.FaultSpec, transport); err != nil {
		return nil, err
	} else if inj != nil {
		transport = inj
	}
	f := &Fleet{
		opts:   opts,
		self:   self,
		peers:  peers,
		client: &http.Client{Transport: transport},
		budget: NewBudget(opts.RetryBudget, opts.RetryPerSuccess),
		states: make(map[string]*peerState),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		f.states[p] = &peerState{
			url:     p,
			state:   StateUnknown,
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
	}
	if opts.ProbeInterval > 0 && len(f.states) > 0 {
		ctx, cancel := context.WithCancel(opts.BaseContext)
		f.cancel = cancel
		f.wg.Add(1)
		go f.probeLoop(ctx)
	}
	return f, nil
}

// normalizePeer canonicalizes one peer base URL.
func normalizePeer(p string) (string, error) {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	u, err := url.Parse(p)
	if err != nil {
		return "", err
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("want http(s)://host[:port], got %q", p)
	}
	return p, nil
}

// Close stops the prober and idle connections.
func (f *Fleet) Close() {
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	f.client.CloseIdleConnections()
}

// Enabled reports whether there is any peer beyond this node.
func (f *Fleet) Enabled() bool { return f != nil && len(f.peers) > 1 }

// Self is this node's normalized base URL.
func (f *Fleet) Self() string { return f.self }

// Peers is the full normalized membership, self included.
func (f *Fleet) Peers() []string { return append([]string(nil), f.peers...) }

// Rank orders all peers for a digest (owner first).
func (f *Fleet) Rank(digest string) []string { return Rank(f.peers, digest) }

// Holders is the prefix of Rank that should hold the digest: the owner
// plus Replicas replicas.
func (f *Fleet) Holders(digest string) []string {
	return f.Rank(digest)[:1+f.opts.Replicas]
}

// Owner is the digest's rank-0 peer.
func (f *Fleet) Owner(digest string) string { return f.Rank(digest)[0] }

// IsHolder reports whether this node is among the digest's holders.
func (f *Fleet) IsHolder(digest string) bool {
	for _, p := range f.Holders(digest) {
		if p == f.self {
			return true
		}
	}
	return false
}

// peerStates snapshots the remote peer state table.
func (f *Fleet) peerStates() []*peerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*peerState, 0, len(f.states))
	for _, p := range f.peers {
		if ps, ok := f.states[p]; ok {
			out = append(out, ps)
		}
	}
	return out
}

// PeerReady reports whether a peer's last probe saw it ready (not
// down, not draining). Unprobed peers count as ready so a cold fleet
// can route before the first probe round lands.
func (f *Fleet) PeerReady(peer string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.states[peer]
	if !ok {
		return false
	}
	return ps.state == StateReady || ps.state == StateUnknown
}

// policy builds the retry policy for one logical call.
func (f *Fleet) policy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: f.opts.MaxAttempts,
		BaseDelay:   f.opts.BaseDelay,
		MaxDelay:    f.opts.MaxDelay,
		Budget:      f.budget,
	}
}

// PeerResponse is a successful (2xx) peer answer.
type PeerResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// Do performs one hardened call against a peer: breaker gate, retries
// with per-attempt timeouts and jittered backoff, 5xx and transport
// errors retried, 4xx returned as a definitive *StatusError. An
// unreachable peer yields an error wrapping ErrPeerUnavailable in a
// bounded amount of time — at most MaxAttempts×(AttemptTimeout+
// backoff), and typically one fast failure once the circuit is open.
func (f *Fleet) Do(ctx context.Context, method, peer, path string, body []byte, header http.Header) (*PeerResponse, error) {
	f.mu.Lock()
	ps, ok := f.states[peer]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: %q is not a known peer", peer)
	}
	var out *PeerResponse
	attempt := 0
	err := f.policy().Do(ctx, func(ctx context.Context) error {
		attempt++
		f.mu.Lock()
		f.counters.Attempts++
		if attempt > 1 {
			f.counters.Retries++
		}
		f.mu.Unlock()
		if !ps.breaker.Allow() {
			return Permanent(fmt.Errorf("%w: %s: circuit open", ErrPeerUnavailable, peer))
		}
		resp, err := f.attempt(ctx, method, peer+path, body, header)
		switch {
		case err != nil:
			ps.breaker.Record(false)
			return fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, peer, err)
		case resp.Status >= 500:
			ps.breaker.Record(false)
			return fmt.Errorf("%w: %s: status %d: %s", ErrPeerUnavailable, peer,
				resp.Status, bytes.TrimSpace(resp.Body))
		case resp.Status >= 400:
			ps.breaker.Record(true) // the peer is healthy; the answer is just "no"
			return Permanent(&StatusError{Status: resp.Status, Body: resp.Body})
		default:
			ps.breaker.Record(true)
			out = resp
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// attempt is one round trip under the per-attempt timeout.
func (f *Fleet) attempt(ctx context.Context, method, u string, body []byte, header http.Header) (*PeerResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, f.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read peer response: %w", err)
	}
	return &PeerResponse{Status: resp.StatusCode, Header: resp.Header, Body: b}, nil
}

// FetchDataset retrieves a digest's canonical bytes from its holders,
// walking the rendezvous ranking (owner first, self skipped) and
// degrading to the next holder on failure. Every fetched body is
// re-verified against the digest, so a corrupt or truncated peer copy
// is rejected, not cached. ErrNotFound means every reachable holder
// answered 404; ErrPeerUnavailable means no holder could be reached.
func (f *Fleet) FetchDataset(ctx context.Context, digest string) (body []byte, peer string, err error) {
	var (
		lastUnavail error
		sawMissing  bool
	)
	for _, p := range f.Holders(digest) {
		if p == f.self {
			continue
		}
		resp, err := f.Do(ctx, http.MethodGet, p, "/v1/datasets/"+digest+"/raw", nil, nil)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				sawMissing = true
				continue
			}
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			lastUnavail = err
			continue
		}
		sum := sha256.Sum256(resp.Body)
		if hex.EncodeToString(sum[:]) != digest {
			f.opts.Logf("fleet: peer %s served corrupt bytes for %s; trying next holder", p, digest)
			lastUnavail = fmt.Errorf("%w: %s: served bytes not matching digest", ErrPeerUnavailable, p)
			continue
		}
		f.mu.Lock()
		f.counters.Fetches++
		f.mu.Unlock()
		return resp.Body, p, nil
	}
	f.mu.Lock()
	f.counters.FetchFailures++
	f.mu.Unlock()
	switch {
	case lastUnavail != nil:
		return nil, "", lastUnavail
	case sawMissing:
		return nil, "", fmt.Errorf("%w: %s", ErrNotFound, digest)
	default:
		// Every holder was self: the digest should be local and is not.
		return nil, "", fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
}

// NoteForward / NoteReplication let the HTTP layer tally its fleet
// operations into the shared counters.
func (f *Fleet) NoteForward(ok bool) {
	f.note(func(c *Counters) {
		c.Forwards++
		if !ok {
			c.ForwardFailures++
		}
	})
}

func (f *Fleet) NoteReplication(ok bool) {
	f.note(func(c *Counters) {
		c.Replications++
		if !ok {
			c.ReplicationFailures++
		}
	})
}

func (f *Fleet) note(fn func(*Counters)) {
	f.mu.Lock()
	fn(&f.counters)
	f.mu.Unlock()
}

// PeerStats is one remote peer's health and circuit view.
type PeerStats struct {
	URL        string          `json:"url"`
	Node       string          `json:"node,omitempty"`
	State      string          `json:"state"`
	Generation uint64          `json:"generation"`
	Breaker    BreakerSnapshot `json:"breaker"`
	Boot       string          `json:"boot,omitempty"`
	LastError  string          `json:"lastError,omitempty"`
	LastProbe  int64           `json:"lastProbeUnixMs,omitempty"`
}

// Stats is the fleet client's JSON-ready observability payload.
type Stats struct {
	Self     string      `json:"self"`
	Replicas int         `json:"replicas"`
	Peers    []PeerStats `json:"peers"`
	Counters Counters    `json:"counters"`
}

// unixMs renders a probe timestamp for the stats payload (0 = never).
func unixMs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// Stats snapshots membership, per-peer breaker/health state, and the
// client counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{Self: f.self, Replicas: f.opts.Replicas, Counters: f.counters}
	for _, p := range f.peers {
		ps, ok := f.states[p]
		if !ok {
			continue
		}
		st.Peers = append(st.Peers, PeerStats{
			URL:        ps.url,
			Node:       ps.node,
			State:      ps.state,
			Generation: ps.generation,
			Breaker:    ps.breaker.Snapshot(),
			Boot:       ps.boot,
			LastError:  ps.lastErr,
			LastProbe:  unixMs(ps.lastProbe),
		})
	}
	return st
}
