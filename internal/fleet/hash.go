package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Rendezvous (highest-random-weight) hashing assigns every dataset
// digest a total order over the fleet's peers: each (peer, digest)
// pair hashes to a score and peers are ranked by descending score.
// Every node computes the same ranking from the same static peer list,
// so ownership needs no coordination, no ring state, and no
// rebalancing metadata — and removing one peer reassigns only that
// peer's datasets (the defining property rendezvous hashing has over
// modulo assignment).
//
// Rank[0] is the digest's owner, Rank[1] its first replica, and so on;
// a reader that misses locally walks the ranking until it finds a live
// holder, which is exactly the order writes were placed in.

// Rank orders peers for a digest by descending rendezvous score.
// The input slice is not modified. Ties (practically impossible with a
// 64-bit score, but the determinism contract must not depend on that)
// break by peer name so every node agrees.
func Rank(peers []string, digest string) []string {
	ranked := make([]string, len(peers))
	copy(ranked, peers)
	scores := make(map[string]uint64, len(peers))
	for _, p := range peers {
		scores[p] = score(p, digest)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// score hashes one (peer, digest) pair. SHA-256 is already the
// digest's own hash; reusing it keeps the dependency surface zero and
// the distribution quality beyond doubt. A NUL separator keeps
// ("ab","c") and ("a","bc") from colliding.
func score(peer, digest string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(digest))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}
