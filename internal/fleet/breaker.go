package fleet

import (
	"fmt"
	"sync"
	"time"
)

// Breaker is a per-peer circuit breaker. Closed passes requests
// through and counts consecutive failures; Threshold consecutive
// failures open it. Open fails fast — callers get ErrPeerUnavailable
// without a connection attempt, so requests never queue behind a dead
// peer. After Cooldown the next caller is admitted as a half-open
// trial; its success closes the circuit, its failure re-opens it for
// another cooldown.
//
// The breaker is fed from two sides: every real peer call records its
// outcome, and the async health prober records every probe — so a
// peer that dies between requests is opened by the prober within a few
// probe intervals, and a peer that recovers is closed by the prober
// without a user request having to pay for the discovery.

// BreakerState enumerates the circuit states.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for stats payloads.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// MarshalText makes the state JSON-friendly in stats payloads.
func (s BreakerState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the textual state back, so clients (and tests)
// can round-trip stats payloads that embed a BreakerSnapshot.
func (s *BreakerState) UnmarshalText(b []byte) error {
	switch string(b) {
	case "closed":
		*s = BreakerClosed
	case "open":
		*s = BreakerOpen
	case "half-open":
		*s = BreakerHalfOpen
	default:
		return fmt.Errorf("unknown breaker state %q", b)
	}
	return nil
}

// Breaker is safe for concurrent use.
type Breaker struct {
	mu         sync.Mutex
	state      BreakerState
	failures   int
	threshold  int
	cooldown   time.Duration
	openedAt   time.Time
	trial      bool   // a half-open trial is in flight
	generation uint64 // bumps on every state transition
	now        func() time.Time
}

// NewBreaker builds a closed breaker opening after threshold
// consecutive failures and probing again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	b.generation++
	if to == BreakerOpen {
		b.openedAt = b.now()
	}
}

// Allow reports whether a request may proceed. In the open state it
// admits nothing until the cooldown elapses, then flips to half-open
// and admits exactly one trial at a time; every admitted caller must
// pair its Allow with a Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Record feeds one outcome. A success closes the circuit and clears
// the failure count; a failure in half-open (or the threshold-th
// consecutive one in closed) opens it.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if ok {
		b.failures = 0
		b.transitionLocked(BreakerClosed)
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		// Re-opening from open refreshes the cooldown window so a
		// stream of failures keeps the circuit open, not flapping.
		if b.state == BreakerOpen {
			b.openedAt = b.now()
		}
		b.transitionLocked(BreakerOpen)
	}
}

// BreakerSnapshot is the JSON-ready view for /v1/fleet/stats.
type BreakerSnapshot struct {
	State      BreakerState `json:"state"`
	Failures   int          `json:"consecutiveFailures"`
	Generation uint64       `json:"generation"`
}

// Snapshot reads the current state atomically.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{State: b.state, Failures: b.failures, Generation: b.generation}
}

// State reports the current circuit state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
