package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// recordingPolicy returns a policy whose jitter is a seeded PRNG and
// whose sleeps are recorded instead of slept, so backoff sequences are
// observable and deterministic.
func recordingPolicy(seed int64, delays *[]time.Duration) RetryPolicy {
	rng := rand.New(rand.NewSource(seed))
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Jitter:      rng.Float64,
		sleep: func(ctx context.Context, d time.Duration) error {
			*delays = append(*delays, d)
			return ctx.Err()
		},
	}
}

// TestRetryJitterDeterministic runs the same failing op under the same
// seed twice and demands identical backoff sequences, each delay inside
// the full-jitter envelope [0, min(MaxDelay, BaseDelay<<retry)).
func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var delays []time.Duration
		p := recordingPolicy(7, &delays)
		err := p.Do(context.Background(), func(context.Context) error {
			return errors.New("flaky")
		})
		if err == nil || err.Error() != "flaky" {
			t.Fatalf("Do = %v, want the last attempt's error", err)
		}
		return delays
	}
	first, second := run(), run()
	if len(first) != 3 || len(second) != 3 {
		t.Fatalf("want 3 backoffs for 4 attempts, got %d and %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed produced different backoffs: %v vs %v", first, second)
		}
		ceiling := 10 * time.Millisecond << uint(i)
		if ceiling > 40*time.Millisecond {
			ceiling = 40 * time.Millisecond
		}
		if first[i] < 0 || first[i] >= ceiling {
			t.Fatalf("backoff %d = %v outside [0, %v)", i, first[i], ceiling)
		}
	}
}

// TestRetryBudgetExhaustion drains a 2-token budget and checks Do stops
// with ErrBudgetExhausted instead of burning its remaining attempts.
func TestRetryBudgetExhaustion(t *testing.T) {
	var delays []time.Duration
	p := recordingPolicy(1, &delays)
	p.MaxAttempts = 10
	p.Budget = NewBudget(2, 0)
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return fmt.Errorf("down")
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Do = %v, want ErrBudgetExhausted", err)
	}
	if attempts != 3 { // first try + the 2 budgeted retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

// TestBudgetRefill pins the deposit arithmetic: successes refill the
// bucket at PerSuccess per call, capped at Max.
func TestBudgetRefill(t *testing.T) {
	b := NewBudget(1, 0.5)
	if !b.Allow() {
		t.Fatal("fresh budget denied its burst")
	}
	if b.Allow() {
		t.Fatal("empty budget allowed a retry")
	}
	b.OnSuccess()
	if b.Allow() {
		t.Fatal("half a token should not buy a retry")
	}
	b.OnSuccess()
	if !b.Allow() {
		t.Fatal("two successes at 0.5/success should buy one retry")
	}
	for i := 0; i < 10; i++ {
		b.OnSuccess()
	}
	if !b.Allow() || b.Allow() {
		t.Fatal("refill must cap at Max=1")
	}
	var nilBudget *Budget
	nilBudget.OnSuccess()
	if !nilBudget.Allow() {
		t.Fatal("nil budget must allow everything")
	}
}

// TestRetryContextCanceled pins the short-circuits: a context cancelled
// mid-sequence stops Do with the context's error — before the next
// attempt and without sleeping out the backoff.
func TestRetryContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	err := p.Do(ctx, func(context.Context) error {
		attempts++
		cancel() // dies during the first attempt
		return errors.New("failed")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts after cancel = %d, want 1", attempts)
	}

	// Already-dead context: zero attempts.
	attempts = 0
	err = p.Do(ctx, func(context.Context) error { attempts++; return nil })
	if !errors.Is(err, context.Canceled) || attempts != 0 {
		t.Fatalf("pre-cancelled Do = %v after %d attempts, want Canceled after 0", err, attempts)
	}
}

// TestRetryCancelDuringBackoff cancels while Do is sleeping a long
// backoff; the sleep must end immediately with the context error.
func TestRetryCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Minute,
		MaxDelay:    time.Minute,
		Jitter:      func() float64 { return 0.99 }, // force a ~1min sleep
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- p.Do(ctx, func(context.Context) error { return errors.New("down") })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, backoff sleep was not interrupted", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do still sleeping long after cancellation")
	}
}

// TestRetryPermanentStops checks the no-retry marker: one attempt, the
// wrapped error surfaces, errors.Is still sees through it.
func TestRetryPermanentStops(t *testing.T) {
	inner := errors.New("404 definitive")
	attempts := 0
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return Permanent(inner)
	})
	if attempts != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts)
	}
	if !errors.Is(err, inner) || !IsPermanent(err) {
		t.Fatalf("Do = %v, want permanent wrapper around inner error", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}
