package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// swapHandler lets a test replace a running httptest server's behaviour
// mid-test (healthy -> failing -> healthy) without restarting it.
type swapHandler struct{ v atomic.Value }

func newSwapHandler(h http.HandlerFunc) *swapHandler {
	s := &swapHandler{}
	s.v.Store(h)
	return s
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(http.HandlerFunc)(w, r)
}

func (s *swapHandler) set(h http.HandlerFunc) { s.v.Store(h) }

func healthzOK(node, boot string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_ = json.NewEncoder(w).Encode(Health{
				Status: "ok", Node: node, State: StateReady, Ready: true, Boot: boot,
			})
			return
		}
		http.NotFound(w, r)
	}
}

// newTestFleet starts n swappable httptest peers and builds a fleet
// whose self is a never-dialled placeholder URL, so every remote peer
// is a real server the test controls.
func newTestFleet(t *testing.T, n int, mutate func(*Options)) (*Fleet, []*swapHandler) {
	t.Helper()
	const self = "http://self.invalid:9"
	peers := []string{self}
	handlers := make([]*swapHandler, n)
	for i := range handlers {
		handlers[i] = newSwapHandler(healthzOK("n", "b"))
		srv := httptest.NewServer(handlers[i])
		t.Cleanup(srv.Close)
		peers = append(peers, srv.URL)
	}
	opts := Options{
		Self:           self,
		Peers:          peers,
		Replicas:       n, // every peer holds every digest
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    2,
		BaseDelay:      time.Millisecond,
		MaxDelay:       2 * time.Millisecond,
		ProbeInterval:  -1, // tests drive probes explicitly
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&opts)
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, handlers
}

// remotePeer returns the fleet's single non-self peer URL.
func remotePeer(t *testing.T, f *Fleet) string {
	t.Helper()
	for _, p := range f.Peers() {
		if p != f.Self() {
			return p
		}
	}
	t.Fatal("no remote peer")
	return ""
}

func TestNewValidation(t *testing.T) {
	base := Options{ProbeInterval: -1}

	o := base
	o.Self = "http://a:1"
	o.Peers = []string{"http://b:1"}
	if _, err := New(o); err == nil {
		t.Fatal("self outside the peer list accepted")
	}

	o = base
	o.Self = "ftp://a:1"
	o.Peers = []string{"ftp://a:1"}
	if _, err := New(o); err == nil {
		t.Fatal("non-http peer URL accepted")
	}

	// Dedup, trailing-slash normalization, replica capping.
	o = base
	o.Self = "http://a:1/"
	o.Peers = []string{"http://a:1", "http://a:1/", " http://b:1 ", "http://c:1"}
	o.Replicas = 99
	f, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := f.Peers(); len(got) != 3 {
		t.Fatalf("peers = %v, want 3 deduped entries", got)
	}
	if h := f.Holders("abc"); len(h) != 3 {
		t.Fatalf("holders = %v, want replicas capped at fleet size", h)
	}
	if !f.Enabled() {
		t.Fatal("3-peer fleet not enabled")
	}

	// Single-node fleet: valid but disabled.
	o = base
	o.Self = "http://a:1"
	o.Peers = []string{"http://a:1"}
	single, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.Enabled() {
		t.Fatal("single-peer fleet claims enabled")
	}
	var nilFleet *Fleet
	if nilFleet.Enabled() {
		t.Fatal("nil fleet claims enabled")
	}
}

// TestDoRetriesTransientFailures pins the happy retry path: two 500s
// then a 200 succeeds within one Do call and the counters record the
// re-attempts.
func TestDoRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	f, handlers := newTestFleet(t, 1, func(o *Options) { o.MaxAttempts = 3 })
	handlers[0].set(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte("recovered"))
	})
	peer := remotePeer(t, f)
	resp, err := f.Do(context.Background(), http.MethodGet, peer, "/x", nil, nil)
	if err != nil || string(resp.Body) != "recovered" {
		t.Fatalf("Do = (%v, %v), want recovery on third attempt", resp, err)
	}
	st := f.Stats()
	if st.Counters.Attempts != 3 || st.Counters.Retries != 2 {
		t.Fatalf("counters = %+v, want 3 attempts / 2 retries", st.Counters)
	}
}

// TestDo4xxDefinitive pins that a 4xx is an answer, not a failure: no
// retry, a typed *StatusError, and a breaker success.
func TestDo4xxDefinitive(t *testing.T) {
	var calls atomic.Int32
	f, handlers := newTestFleet(t, 1, nil)
	handlers[0].set(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such thing", http.StatusNotFound)
	})
	_, err := f.Do(context.Background(), http.MethodGet, remotePeer(t, f), "/x", nil, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("Do = %v, want *StatusError 404", err)
	}
	if !IsPermanent(err) || calls.Load() != 1 {
		t.Fatalf("4xx was retried (%d calls) or not permanent", calls.Load())
	}
	if st := f.Stats(); st.Peers[0].Breaker.State != BreakerClosed {
		t.Fatal("definitive 4xx answer counted as a peer failure")
	}

	if _, err := f.Do(context.Background(), http.MethodGet, "http://stranger:1", "/x", nil, nil); err == nil {
		t.Fatal("Do against an unknown peer accepted")
	}
}

// TestDoBreakerFailsFast drives a peer's breaker open through real
// failures and checks the next call is rejected without touching the
// network.
func TestDoBreakerFailsFast(t *testing.T) {
	var calls atomic.Int32
	f, handlers := newTestFleet(t, 1, func(o *Options) {
		o.MaxAttempts = 1
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour // stays open for the whole test
	})
	handlers[0].set(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	})
	peer := remotePeer(t, f)
	for i := 0; i < 2; i++ {
		if _, err := f.Do(context.Background(), http.MethodGet, peer, "/x", nil, nil); !errors.Is(err, ErrPeerUnavailable) {
			t.Fatalf("call %d = %v, want ErrPeerUnavailable", i, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("network calls = %d, want 2", calls.Load())
	}
	_, err := f.Do(context.Background(), http.MethodGet, peer, "/x", nil, nil)
	if !errors.Is(err, ErrPeerUnavailable) || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("Do with open breaker = %v, want fast circuit-open rejection", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("open breaker still contacted the peer (%d calls)", calls.Load())
	}
	if st := f.Stats(); st.Peers[0].Breaker.State != BreakerOpen {
		t.Fatalf("stats breaker = %+v, want open", st.Peers[0].Breaker)
	}
}

// serveRaw answers the internal raw-transfer endpoint with body for
// digest, 404 otherwise.
func serveRaw(digest string, body []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/datasets/"+digest+"/raw" {
			_, _ = w.Write(body)
			return
		}
		http.NotFound(w, r)
	}
}

// TestFetchDatasetWalksHolders pins degradation order: a holder that
// answers 404 or serves corrupt bytes is skipped and the next holder
// tried; all-404 is ErrNotFound; nobody-reachable is ErrPeerUnavailable.
func TestFetchDatasetWalksHolders(t *testing.T) {
	payload := []byte(`{"fleet":"payload"}`)
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])

	f, handlers := newTestFleet(t, 2, func(o *Options) { o.BreakerThreshold = 100 })

	// One holder missing, one good: fetch succeeds whichever the
	// ranking visits first.
	handlers[0].set(http.NotFound)
	handlers[1].set(serveRaw(digest, payload))
	body, peer, err := f.FetchDataset(context.Background(), digest)
	if err != nil || string(body) != string(payload) || peer == "" {
		t.Fatalf("FetchDataset = (%q, %q, %v), want the payload", body, peer, err)
	}

	// One holder corrupt (200 with wrong bytes — must be rejected by
	// digest re-verification), one good.
	handlers[0].set(serveRaw(digest, []byte(`{"fleet":"tampered"}`)))
	body, _, err = f.FetchDataset(context.Background(), digest)
	if err != nil || string(body) != string(payload) {
		t.Fatalf("FetchDataset with corrupt holder = (%q, %v), want the verified payload", body, err)
	}

	// Both corrupt: no holder serves verifiable bytes.
	handlers[1].set(serveRaw(digest, []byte(`{"fleet":"tampered"}`)))
	if _, _, err := f.FetchDataset(context.Background(), digest); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("FetchDataset all-corrupt = %v, want ErrPeerUnavailable", err)
	}

	// Every holder answers 404: the digest is not in the fleet.
	handlers[0].set(http.NotFound)
	handlers[1].set(http.NotFound)
	if _, _, err := f.FetchDataset(context.Background(), digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("FetchDataset all-404 = %v, want ErrNotFound", err)
	}

	// Every holder down: unavailable, not not-found.
	down := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dying", http.StatusInternalServerError)
	}
	handlers[0].set(down)
	handlers[1].set(down)
	if _, _, err := f.FetchDataset(context.Background(), digest); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("FetchDataset all-down = %v, want ErrPeerUnavailable", err)
	}
}

// TestProbeTransitions drives the prober by hand through
// ready -> draining -> down -> recovered and checks state, generation
// counter, readiness gating, and the probe-fed breaker at each step.
func TestProbeTransitions(t *testing.T) {
	f, handlers := newTestFleet(t, 1, func(o *Options) {
		o.BreakerThreshold = 3
		o.BreakerCooldown = time.Hour
	})
	peer := remotePeer(t, f)
	ctx := context.Background()

	if !f.PeerReady(peer) {
		t.Fatal("unprobed peer must count as ready (cold-start routing)")
	}

	f.probeAll(ctx)
	st := f.Stats()
	if st.Peers[0].State != StateReady || st.Peers[0].Generation != 1 || st.Peers[0].Node != "n" {
		t.Fatalf("after first probe: %+v", st.Peers[0])
	}

	// Draining: alive (breaker success) but not routable for new work.
	handlers[0].set(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(Health{Status: "ok", State: StateDraining, Ready: false, Boot: "b"})
	})
	f.probeAll(ctx)
	st = f.Stats()
	if st.Peers[0].State != StateDraining || st.Peers[0].Generation != 2 {
		t.Fatalf("after draining probe: %+v", st.Peers[0])
	}
	if f.PeerReady(peer) {
		t.Fatal("draining peer reported ready")
	}
	if st.Peers[0].Breaker.State != BreakerClosed {
		t.Fatal("draining peer opened the breaker; it is alive and must stay reachable")
	}

	// Dead: threshold probes open the breaker without any user request.
	handlers[0].set(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "crashed", http.StatusInternalServerError)
	})
	for i := 0; i < 3; i++ {
		f.probeAll(ctx)
	}
	st = f.Stats()
	if st.Peers[0].State != StateDown || st.Peers[0].Generation != 3 {
		t.Fatalf("after down probes: %+v", st.Peers[0])
	}
	if st.Peers[0].Breaker.State != BreakerOpen || st.Peers[0].LastError == "" {
		t.Fatalf("prober did not open the dead peer's breaker: %+v", st.Peers[0])
	}
	if _, err := f.Do(ctx, http.MethodGet, peer, "/x", nil, nil); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("Do against probed-dead peer = %v, want fast ErrPeerUnavailable", err)
	}

	// Recovery closes the breaker from the prober too, with a restart
	// (new boot id) bumping the generation once more.
	handlers[0].set(healthzOK("n", "b2"))
	f.probeAll(ctx)
	st = f.Stats()
	if st.Peers[0].State != StateReady || st.Peers[0].Breaker.State != BreakerClosed {
		t.Fatalf("after recovery probe: %+v", st.Peers[0])
	}
	// down->ready and boot b->b2 were observed in one probe: one bump
	// for the transition is the contract floor.
	if st.Peers[0].Generation < 4 || st.Peers[0].Boot != "b2" {
		t.Fatalf("restart not reflected: %+v", st.Peers[0])
	}
	if st.Peers[0].LastProbe == 0 {
		t.Fatal("lastProbe timestamp missing")
	}
}
