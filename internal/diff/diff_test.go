package diff

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

func TestDatasetsIdentical(t *testing.T) {
	d := rbac.Figure1()
	if got := Datasets(d, d.Clone()); !got.Empty() {
		t.Fatalf("diff of identical datasets not empty: %+v", got)
	}
}

func TestDatasetsEntityChanges(t *testing.T) {
	before := rbac.Figure1()
	after := before.Clone()
	if err := after.AddUser("U99"); err != nil {
		t.Fatal(err)
	}
	if err := after.RemoveRole("R03"); err != nil {
		t.Fatal(err)
	}
	if err := after.AddRole("R99"); err != nil {
		t.Fatal(err)
	}
	got := Datasets(before, after)
	if !reflect.DeepEqual(got.AddedUsers, []rbac.UserID{"U99"}) {
		t.Fatalf("AddedUsers = %v", got.AddedUsers)
	}
	if !reflect.DeepEqual(got.RemovedRoles, []rbac.RoleID{"R03"}) {
		t.Fatalf("RemovedRoles = %v", got.RemovedRoles)
	}
	if !reflect.DeepEqual(got.AddedRoles, []rbac.RoleID{"R99"}) {
		t.Fatalf("AddedRoles = %v", got.AddedRoles)
	}
	if got.Empty() {
		t.Fatal("diff reported empty")
	}
}

func TestDatasetsEdgeChanges(t *testing.T) {
	before := rbac.Figure1()
	after := before.Clone()
	if err := after.AssignUser("R03", "U04"); err != nil {
		t.Fatal(err)
	}
	if err := after.RevokePermission("R04", "P05"); err != nil {
		t.Fatal(err)
	}
	got := Datasets(before, after)
	if !reflect.DeepEqual(got.AddedUserEdges, []UserEdge{{Role: "R03", User: "U04"}}) {
		t.Fatalf("AddedUserEdges = %v", got.AddedUserEdges)
	}
	if !reflect.DeepEqual(got.RemovedPermEdges, []PermEdge{{Role: "R04", Permission: "P05"}}) {
		t.Fatalf("RemovedPermEdges = %v", got.RemovedPermEdges)
	}
	if len(got.RemovedUserEdges) != 0 || len(got.AddedPermEdges) != 0 {
		t.Fatalf("spurious edge changes: %+v", got)
	}
}

func TestDatasetsIgnoresEdgesOfRemovedRoles(t *testing.T) {
	before := rbac.Figure1()
	after := before.Clone()
	if err := after.RemoveRole("R04"); err != nil {
		t.Fatal(err)
	}
	got := Datasets(before, after)
	for _, e := range got.RemovedUserEdges {
		if e.Role == "R04" {
			t.Fatalf("edge diff includes removed role: %+v", e)
		}
	}
}

func TestReportsConsolidationImproves(t *testing.T) {
	ds := rbac.Figure1()
	repBefore, err := core.Analyze(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := consolidate.Consolidate(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repAfter, err := core.Analyze(after, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd := Reports(repBefore, repAfter)
	// Consolidation removes the same-user pair; that counter must drop.
	var sameUsers CountDelta
	for _, d := range rd.Deltas {
		if d.Name == "roles sharing the same users" {
			sameUsers = d
		}
	}
	if sameUsers.Delta() >= 0 {
		t.Fatalf("same-user roles did not improve: %+v", sameUsers)
	}
	s := rd.Summary()
	if !strings.Contains(s, "improved") {
		t.Fatalf("summary lacks improvement marker:\n%s", s)
	}
}

func TestReportsRegression(t *testing.T) {
	ds := rbac.Figure1()
	repBefore, err := core.Analyze(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worse := ds.Clone()
	// Clone R05's user set onto a fresh role: a new same-user pair.
	if err := worse.AddRole("R06"); err != nil {
		t.Fatal(err)
	}
	if err := worse.AssignUser("R06", "U04"); err != nil {
		t.Fatal(err)
	}
	repAfter, err := core.Analyze(worse, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd := Reports(repBefore, repAfter)
	if rd.Improved() {
		t.Fatal("regression reported as improvement")
	}
	if !strings.Contains(rd.Summary(), "REGRESSED") {
		t.Fatalf("summary lacks regression marker:\n%s", rd.Summary())
	}
}

func TestImprovedRequiresChange(t *testing.T) {
	ds := rbac.Figure1()
	rep, err := core.Analyze(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd := Reports(rep, rep)
	if rd.Improved() {
		t.Fatal("no-change diff reported as improvement")
	}
}

func TestDiffSortedTails(t *testing.T) {
	// Exercise the tail-append branches of the sorted-list merges.
	addedU, removedU := diffSortedUsers(
		[]rbac.UserID{"a", "b", "z"},
		[]rbac.UserID{"a", "c", "d"},
	)
	if len(addedU) != 2 || len(removedU) != 2 {
		t.Fatalf("users diff = +%v -%v", addedU, removedU)
	}
	addedU, removedU = diffSortedUsers(nil, []rbac.UserID{"x"})
	if len(addedU) != 1 || len(removedU) != 0 {
		t.Fatalf("nil-before diff = +%v -%v", addedU, removedU)
	}
	addedP, removedP := diffSortedPerms([]rbac.PermissionID{"p", "q"}, nil)
	if len(addedP) != 0 || len(removedP) != 2 {
		t.Fatalf("nil-after diff = +%v -%v", addedP, removedP)
	}
}
