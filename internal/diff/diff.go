// Package diff compares two RBAC dataset snapshots and two inefficiency
// reports. The paper's cleanup model is periodic: the framework runs,
// administrators approve fixes, and the next run converges further.
// Diffing consecutive snapshots and reports is how operators see the
// trend — which inefficiencies were fixed, which regressed, and what
// structurally changed in between.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rbac"
)

// DatasetDiff lists structural changes between two dataset snapshots.
type DatasetDiff struct {
	AddedUsers   []rbac.UserID `json:"addedUsers"`
	RemovedUsers []rbac.UserID `json:"removedUsers"`

	AddedRoles   []rbac.RoleID `json:"addedRoles"`
	RemovedRoles []rbac.RoleID `json:"removedRoles"`

	AddedPermissions   []rbac.PermissionID `json:"addedPermissions"`
	RemovedPermissions []rbac.PermissionID `json:"removedPermissions"`

	// AddedUserEdges / RemovedUserEdges are user-assignment changes on
	// roles present in both snapshots.
	AddedUserEdges   []UserEdge `json:"addedUserEdges"`
	RemovedUserEdges []UserEdge `json:"removedUserEdges"`

	AddedPermEdges   []PermEdge `json:"addedPermissionEdges"`
	RemovedPermEdges []PermEdge `json:"removedPermissionEdges"`
}

// UserEdge is one user–role assignment.
type UserEdge struct {
	Role rbac.RoleID `json:"role"`
	User rbac.UserID `json:"user"`
}

// PermEdge is one role–permission assignment.
type PermEdge struct {
	Role       rbac.RoleID       `json:"role"`
	Permission rbac.PermissionID `json:"permission"`
}

// Empty reports whether the diff contains no changes.
func (d *DatasetDiff) Empty() bool {
	return len(d.AddedUsers) == 0 && len(d.RemovedUsers) == 0 &&
		len(d.AddedRoles) == 0 && len(d.RemovedRoles) == 0 &&
		len(d.AddedPermissions) == 0 && len(d.RemovedPermissions) == 0 &&
		len(d.AddedUserEdges) == 0 && len(d.RemovedUserEdges) == 0 &&
		len(d.AddedPermEdges) == 0 && len(d.RemovedPermEdges) == 0
}

// Datasets computes the structural diff from before to after.
func Datasets(before, after *rbac.Dataset) *DatasetDiff {
	d := &DatasetDiff{}

	d.AddedUsers, d.RemovedUsers = diffIDs(
		toStrings(before.Users()), toStrings(after.Users()),
		func(s string) rbac.UserID { return rbac.UserID(s) })
	d.AddedRoles, d.RemovedRoles = diffIDs(
		toStrings2(before.Roles()), toStrings2(after.Roles()),
		func(s string) rbac.RoleID { return rbac.RoleID(s) })
	d.AddedPermissions, d.RemovedPermissions = diffIDs(
		toStrings3(before.Permissions()), toStrings3(after.Permissions()),
		func(s string) rbac.PermissionID { return rbac.PermissionID(s) })

	// Edge diffs over roles present in both.
	for _, role := range after.Roles() {
		if _, inBefore := before.RoleIndex(role); !inBefore {
			continue
		}
		bu, _ := before.RoleUsers(role)
		au, _ := after.RoleUsers(role)
		addedU, removedU := diffSortedUsers(bu, au)
		for _, u := range addedU {
			d.AddedUserEdges = append(d.AddedUserEdges, UserEdge{Role: role, User: u})
		}
		for _, u := range removedU {
			d.RemovedUserEdges = append(d.RemovedUserEdges, UserEdge{Role: role, User: u})
		}
		bp, _ := before.RolePermissions(role)
		ap, _ := after.RolePermissions(role)
		addedP, removedP := diffSortedPerms(bp, ap)
		for _, p := range addedP {
			d.AddedPermEdges = append(d.AddedPermEdges, PermEdge{Role: role, Permission: p})
		}
		for _, p := range removedP {
			d.RemovedPermEdges = append(d.RemovedPermEdges, PermEdge{Role: role, Permission: p})
		}
	}
	return d
}

func toStrings(ids []rbac.UserID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func toStrings2(ids []rbac.RoleID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func toStrings3(ids []rbac.PermissionID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

// diffIDs returns (added, removed) id sets, sorted.
func diffIDs[T ~string](before, after []string, conv func(string) T) (added, removed []T) {
	bset := make(map[string]struct{}, len(before))
	for _, id := range before {
		bset[id] = struct{}{}
	}
	aset := make(map[string]struct{}, len(after))
	for _, id := range after {
		aset[id] = struct{}{}
	}
	for id := range aset {
		if _, ok := bset[id]; !ok {
			added = append(added, conv(id))
		}
	}
	for id := range bset {
		if _, ok := aset[id]; !ok {
			removed = append(removed, conv(id))
		}
	}
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return added, removed
}

// diffSortedUsers diffs two ascending user lists with a linear merge.
func diffSortedUsers(before, after []rbac.UserID) (added, removed []rbac.UserID) {
	i, j := 0, 0
	for i < len(before) && j < len(after) {
		switch {
		case before[i] == after[j]:
			i++
			j++
		case before[i] < after[j]:
			removed = append(removed, before[i])
			i++
		default:
			added = append(added, after[j])
			j++
		}
	}
	removed = append(removed, before[i:]...)
	added = append(added, after[j:]...)
	return added, removed
}

func diffSortedPerms(before, after []rbac.PermissionID) (added, removed []rbac.PermissionID) {
	i, j := 0, 0
	for i < len(before) && j < len(after) {
		switch {
		case before[i] == after[j]:
			i++
			j++
		case before[i] < after[j]:
			removed = append(removed, before[i])
			i++
		default:
			added = append(added, after[j])
			j++
		}
	}
	removed = append(removed, before[i:]...)
	added = append(added, after[j:]...)
	return added, removed
}

// CountDelta is one inefficiency counter's movement between two runs.
type CountDelta struct {
	Name   string `json:"name"`
	Before int    `json:"before"`
	After  int    `json:"after"`
}

// Delta returns After - Before (negative = improvement).
func (c CountDelta) Delta() int { return c.After - c.Before }

// ReportDiff summarises how the inefficiency counts moved between two
// detection reports.
type ReportDiff struct {
	Deltas []CountDelta `json:"deltas"`
}

// Reports compares two detection reports counter by counter.
func Reports(before, after *core.Report) *ReportDiff {
	row := func(name string, b, a int) CountDelta {
		return CountDelta{Name: name, Before: b, After: a}
	}
	return &ReportDiff{Deltas: []CountDelta{
		row("standalone users", len(before.StandaloneUsers), len(after.StandaloneUsers)),
		row("standalone permissions", len(before.StandalonePermissions), len(after.StandalonePermissions)),
		row("standalone roles", len(before.StandaloneRoles), len(after.StandaloneRoles)),
		row("roles without users", len(before.RolesWithoutUsers), len(after.RolesWithoutUsers)),
		row("roles without permissions", len(before.RolesWithoutPermissions), len(after.RolesWithoutPermissions)),
		row("roles with a single user", len(before.RolesWithSingleUser), len(after.RolesWithSingleUser)),
		row("roles with a single permission", len(before.RolesWithSinglePermission), len(after.RolesWithSinglePermission)),
		row("roles sharing the same users",
			core.StatsOf(before.SameUserGroups).RolesInGroups,
			core.StatsOf(after.SameUserGroups).RolesInGroups),
		row("roles sharing the same permissions",
			core.StatsOf(before.SamePermissionGroups).RolesInGroups,
			core.StatsOf(after.SamePermissionGroups).RolesInGroups),
		row("roles in similar-user groups",
			core.StatsOf(before.SimilarUserGroups).RolesInGroups,
			core.StatsOf(after.SimilarUserGroups).RolesInGroups),
		row("roles in similar-permission groups",
			core.StatsOf(before.SimilarPermissionGroups).RolesInGroups,
			core.StatsOf(after.SimilarPermissionGroups).RolesInGroups),
	}}
}

// Improved reports whether no counter regressed and at least one
// shrank.
func (r *ReportDiff) Improved() bool {
	improved := false
	for _, d := range r.Deltas {
		if d.Delta() > 0 {
			return false
		}
		if d.Delta() < 0 {
			improved = true
		}
	}
	return improved
}

// Summary renders the report diff as an aligned table.
func (r *ReportDiff) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %8s %8s\n", "inefficiency", "before", "after", "delta")
	for _, d := range r.Deltas {
		marker := ""
		switch {
		case d.Delta() < 0:
			marker = "  improved"
		case d.Delta() > 0:
			marker = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-40s %8d %8d %+8d%s\n", d.Name, d.Before, d.After, d.Delta(), marker)
	}
	return b.String()
}
