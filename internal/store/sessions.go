package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Session event-log persistence: each live mutation session appends
// its accepted JSONL event batches under sessions/<id>.jsonl, so the
// stream that produced a session's state survives the process (the
// base digest plus the log replays to the session's dataset). The log
// is append-only by construction — the server only ever appends the
// prefix of a batch that applied cleanly.
//
// A memory-only store (no Dir) makes these no-ops: the session itself
// is in-memory state, and without a directory there is nothing durable
// to anchor the log to.

func (s *Store) sessionDir() string { return filepath.Join(s.opts.Dir, "sessions") }

// sessionLogPath validates the id (defensively — the server mints hex
// ids) so a hostile id cannot traverse outside the session directory.
func (s *Store) sessionLogPath(id string) (string, error) {
	if id == "" || id != filepath.Base(id) || strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("store: invalid session id %q", id)
	}
	return filepath.Join(s.sessionDir(), id+".jsonl"), nil
}

// AppendSessionLog appends raw JSONL event bytes to the session's
// persisted log. No-op without persistence.
func (s *Store) AppendSessionLog(id string, data []byte) error {
	if s.opts.Dir == "" || len(data) == 0 {
		return nil
	}
	path, err := s.sessionLogPath(id)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.sessionDir(), 0o755); err != nil {
		return fmt.Errorf("store: create %s: %w", s.sessionDir(), err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// ReadSessionLog returns the session's full persisted log; a session
// that never appended (or a memory-only store) reads as empty.
func (s *Store) ReadSessionLog(id string) ([]byte, error) {
	if s.opts.Dir == "" {
		return nil, nil
	}
	path, err := s.sessionLogPath(id)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return raw, err
}

// RemoveSessionLog deletes the persisted log when a session closes.
func (s *Store) RemoveSessionLog(id string) error {
	if s.opts.Dir == "" {
		return nil
	}
	path, err := s.sessionLogPath(id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
