package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/rbac"
	"repro/internal/ttl"
)

// On-disk layout under Options.Dir:
//
//	datasets/<digest>.json   canonical dataset encoding; the filename
//	                         IS the expected SHA-256, re-verified on
//	                         every load so corruption is rejected
//	results/<keyhash>.json   resultFile envelope; keyhash = SHA-256 of
//	                         the cache key string, re-verified against
//	                         the envelope's own key fields on load
//
// Every write goes through a temp file + rename in the same directory,
// so a crash mid-write leaves either the old content or nothing —
// never a half-written snapshot that could hash-mismatch spuriously.

// resultFile is the persisted form of one cached analysis result.
type resultFile struct {
	Dataset     string          `json:"dataset"`
	Fingerprint string          `json:"fingerprint"`
	Kind        string          `json:"kind"`
	CreatedAt   time.Time       `json:"createdAt"`
	Body        json.RawMessage `json:"body"`
}

func (s *Store) datasetDir() string { return filepath.Join(s.opts.Dir, "datasets") }
func (s *Store) resultDir() string  { return filepath.Join(s.opts.Dir, "results") }

func (s *Store) datasetPath(digest string) string {
	return filepath.Join(s.datasetDir(), digest+".json")
}

func (s *Store) resultPath(keyStr string) string {
	return filepath.Join(s.resultDir(), hashKey(keyStr)+".json")
}

func (s *Store) ensureDirs() error {
	for _, dir := range []string{s.datasetDir(), s.resultDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: create %s: %w", dir, err)
		}
	}
	return nil
}

// atomicWrite lands data at path via a same-directory temp file and
// rename.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func (s *Store) writeDatasetFile(digest string, canonical []byte) error {
	return atomicWrite(s.datasetPath(digest), canonical)
}

// removeDatasetFile deletes the persisted copy; removed reports
// whether a file existed.
func (s *Store) removeDatasetFile(digest string) (removed bool, err error) {
	err = os.Remove(s.datasetPath(digest))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// loadDatasetFile reads and verifies one persisted dataset. A missing
// file is (nil, nil); a digest mismatch or unparsable content is an
// error — the snapshot is rejected, never served.
func (s *Store) loadDatasetFile(digest string) (*dsEntry, error) {
	raw, err := os.ReadFile(s.datasetPath(digest))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != digest {
		return nil, fmt.Errorf("digest mismatch: file hashes to %s (corrupted or tampered with)", got)
	}
	ds, err := rbac.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("parse verified snapshot: %w", err)
	}
	return &dsEntry{digest: digest, ds: ds, canonical: raw, stats: ds.Stats()}, nil
}

func (s *Store) writeResultFile(key Key, keyStr string, body []byte) error {
	env, err := json.Marshal(resultFile{
		Dataset:     key.Dataset,
		Fingerprint: key.Fingerprint,
		Kind:        key.Kind,
		CreatedAt:   time.Now(),
		Body:        json.RawMessage(body),
	})
	if err != nil {
		return err
	}
	return atomicWrite(s.resultPath(keyStr), env)
}

// loadResultFile reads one persisted cache entry, verifying the
// envelope's key fields against the requested key and its age against
// the TTL. Missing, mismatched, or expired files yield (nil, nil);
// expired and mismatched ones are removed.
func (s *Store) loadResultFile(key Key, keyStr string) ([]byte, error) {
	path := s.resultPath(keyStr)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var env resultFile
	if err := json.Unmarshal(raw, &env); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("corrupt cache entry removed: %w", err)
	}
	if env.Dataset != key.Dataset || env.Fingerprint != key.Fingerprint || env.Kind != key.Kind {
		os.Remove(path)
		return nil, fmt.Errorf("cache entry key mismatch (removed)")
	}
	if ttl.Expired(env.CreatedAt, time.Now(), s.opts.TTL) {
		os.Remove(path)
		return nil, nil
	}
	return []byte(env.Body), nil
}

// loadAll warms the in-memory store from Dir at startup: every
// digest-verified dataset and every unexpired cache entry, oldest
// first so the LRU budget keeps the newest. Corrupt files are skipped
// with a logged warning; expired cache entries are deleted.
func (s *Store) loadAll() {
	type candidate struct {
		name  string
		mtime time.Time
	}
	scan := func(dir string) []candidate {
		entries, err := os.ReadDir(dir)
		if err != nil {
			s.opts.Logf("store: scan %s: %v", dir, err)
			return nil
		}
		var out []candidate
		for _, de := range entries {
			if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			out = append(out, candidate{name: de.Name(), mtime: info.ModTime()})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].mtime.Before(out[j].mtime) })
		return out
	}

	for _, c := range scan(s.datasetDir()) {
		digest, err := ParseDigest(c.name[:len(c.name)-len(".json")])
		if err != nil {
			s.opts.Logf("store: skipping %s: %v", c.name, err)
			continue
		}
		e, err := s.loadDatasetFile(digest)
		if err != nil {
			s.opts.Logf("store: rejecting dataset %s at load: %v", digest, err)
			continue
		}
		if e == nil {
			continue
		}
		s.mu.Lock()
		s.insertDatasetLocked(e)
		s.mu.Unlock()
	}

	for _, c := range scan(s.resultDir()) {
		path := filepath.Join(s.resultDir(), c.name)
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var env resultFile
		if err := json.Unmarshal(raw, &env); err != nil {
			s.opts.Logf("store: rejecting cache entry %s at load: %v", c.name, err)
			os.Remove(path)
			continue
		}
		key := Key{Dataset: env.Dataset, Fingerprint: env.Fingerprint, Kind: env.Kind}
		keyStr := key.String()
		if hashKey(keyStr)+".json" != c.name {
			s.opts.Logf("store: rejecting cache entry %s at load: key fields do not hash to filename", c.name)
			os.Remove(path)
			continue
		}
		if ttl.Expired(env.CreatedAt, time.Now(), s.opts.TTL) {
			os.Remove(path)
			continue
		}
		s.mu.Lock()
		if _, ok := s.results[keyStr]; !ok && int64(len(env.Body)) <= s.opts.MaxBytes {
			e := &resEntry{key: keyStr, body: []byte(env.Body), created: env.CreatedAt}
			e.elem = s.lru.PushFront(lruItem{key: keyStr})
			s.results[keyStr] = e
			s.bytes += int64(len(env.Body))
			s.evictLocked()
		}
		s.mu.Unlock()
	}
}
