package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rbac"
)

// testDataset builds a small distinct dataset per tag.
func testDataset(t *testing.T, tag string, roles int) *rbac.Dataset {
	t.Helper()
	ds := rbac.NewDataset()
	for u := 0; u < 4; u++ {
		if err := ds.AddUser(rbac.UserID(fmt.Sprintf("%s-u%d", tag, u))); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 3; p++ {
		if err := ds.AddPermission(rbac.PermissionID(fmt.Sprintf("%s-p%d", tag, p))); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < roles; r++ {
		id := rbac.RoleID(fmt.Sprintf("%s-r%d", tag, r))
		if err := ds.AddRole(id); err != nil {
			t.Fatal(err)
		}
		_ = ds.AssignUser(id, rbac.UserID(fmt.Sprintf("%s-u%d", tag, r%4)))
		_ = ds.AssignPermission(id, rbac.PermissionID(fmt.Sprintf("%s-p%d", tag, r%3)))
	}
	return ds
}

func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestDigestDeterministicAndParse(t *testing.T) {
	ds := testDataset(t, "a", 5)
	d1, canon1, err := DigestOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	d2, canon2, err := DigestOf(ds.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || !bytes.Equal(canon1, canon2) {
		t.Fatalf("digest not deterministic across clones: %s vs %s", d1, d2)
	}
	for _, in := range []string{d1, "sha256:" + d1, "SHA256:" + strings.ToUpper(d1)} {
		got, err := ParseDigest(in)
		if err != nil || got != d1 {
			t.Errorf("ParseDigest(%q) = %q, %v; want %q", in, got, err, d1)
		}
	}
	for _, in := range []string{"", "abc", d1 + "ff", strings.Replace(d1, d1[:1], "z", 1)} {
		if _, err := ParseDigest(in); err == nil {
			t.Errorf("ParseDigest(%q) accepted invalid digest", in)
		}
	}
}

func TestPutGetDeleteDataset(t *testing.T) {
	s := newStore(t, Options{})
	ds := testDataset(t, "a", 5)
	digest, created, err := s.PutDataset(ds)
	if err != nil || !created {
		t.Fatalf("first put: created=%v err=%v", created, err)
	}
	if _, created, err = s.PutDataset(ds.Clone()); err != nil || created {
		t.Fatalf("identical re-put: created=%v err=%v, want false nil", created, err)
	}
	got, canonical, ok := s.GetDataset(digest)
	if !ok || got.NumRoles() != 5 || len(canonical) == 0 {
		t.Fatalf("GetDataset: ok=%v", ok)
	}
	if infos := s.ListDatasets(); len(infos) != 1 || infos[0].Digest != digest {
		t.Fatalf("ListDatasets = %+v", infos)
	}
	if !s.DeleteDataset(digest) {
		t.Fatal("delete reported nothing removed")
	}
	if _, _, ok := s.GetDataset(digest); ok {
		t.Fatal("deleted dataset still resolvable")
	}
	if s.DeleteDataset(digest) {
		t.Fatal("second delete reported success")
	}
}

func TestResultSingleFlight(t *testing.T) {
	s := newStore(t, Options{})
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}
	var computes atomic.Int64
	const n = 32
	var (
		wg     sync.WaitGroup
		bodies [n][]byte
		errs   [n]error
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			bodies[i], _, errs[i] = s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return []byte(`{"v":1}`), nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("engine invoked %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || !bytes.Equal(bodies[i], []byte(`{"v":1}`)) {
			t.Fatalf("caller %d: body %q err %v", i, bodies[i], errs[i])
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Shared != n-1 {
		t.Errorf("singleflight shared = %d, want %d", st.Shared, n-1)
	}
}

func TestResultHitCountsAndBytesIdentical(t *testing.T) {
	s := newStore(t, Options{})
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}
	first, hit, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte(`{"report":"x"}`), nil
	})
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	second, hit, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("engine re-invoked on cached key")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached body differs: %q vs %q", first, second)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestResultErrorsNotCached(t *testing.T) {
	s := newStore(t, Options{})
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}
	boom := errors.New("boom")
	if _, _, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	ran := false
	if _, _, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		ran = true
		return []byte(`{}`), nil
	}); err != nil || !ran {
		t.Fatalf("recompute after error: ran=%v err=%v", ran, err)
	}
}

func TestWaiterTakesOverAfterLeaderCancellation(t *testing.T) {
	s := newStore(t, Options{})
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := s.Result(leaderCtx, key, func(ctx context.Context) ([]byte, error) {
			close(leaderStarted)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want canceled", err)
		}
	}()
	<-leaderStarted
	waiterBody := make(chan []byte, 1)
	go func() {
		body, _, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
			return []byte(`{"v":2}`), nil
		})
		if err != nil {
			t.Errorf("waiter err = %v", err)
		}
		waiterBody <- body
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	cancelLeader()
	<-leaderDone
	select {
	case body := <-waiterBody:
		if !bytes.Equal(body, []byte(`{"v":2}`)) {
			t.Fatalf("waiter body = %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recovered from the leader's cancellation")
	}
}

// TestLazyExpiryBeforeJanitor proves the shared lazy-expiry contract:
// with the sweeper pinned to an hour, an entry past its TTL is already
// unreachable long before any sweep fires.
func TestLazyExpiryBeforeJanitor(t *testing.T) {
	s := newStore(t, Options{TTL: 20 * time.Millisecond, SweepInterval: time.Hour})
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}
	if _, _, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte(`{}`), nil
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	ran := false
	_, hit, err := s.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		ran = true
		return []byte(`{}`), nil
	})
	if err != nil || hit || !ran {
		t.Fatalf("expired entry served before the janitor fired: hit=%v ran=%v err=%v", hit, ran, err)
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Errorf("expired counter = %d, want 1", st.Expired)
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	a := testDataset(t, "a", 4)
	_, canonical, err := DigestOf(a)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly two datasets of this shape.
	s := newStore(t, Options{MaxBytes: int64(len(canonical))*2 + 64})
	digestA, _, err := s.PutDataset(a)
	if err != nil {
		t.Fatal(err)
	}
	digestB, _, err := s.PutDataset(testDataset(t, "b", 4))
	if err != nil {
		t.Fatal(err)
	}
	// Touch A so B is the least recently used.
	if _, _, ok := s.GetDataset(digestA); !ok {
		t.Fatal("A missing before eviction")
	}
	if _, _, err := s.PutDataset(testDataset(t, "c", 4)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetDataset(digestB); ok {
		t.Fatal("least-recently-used dataset survived over-budget insert")
	}
	if _, _, ok := s.GetDataset(digestA); !ok {
		t.Fatal("recently-touched dataset was evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("eviction counter did not move")
	}
	if st.DatasetBytes > s.opts.MaxBytes {
		t.Errorf("dataset bytes %d exceed budget %d", st.DatasetBytes, s.opts.MaxBytes)
	}

	// A dataset bigger than the whole budget is rejected outright.
	huge := newStore(t, Options{MaxBytes: 16})
	if _, _, err := huge.PutDataset(a); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized put err = %v, want ErrTooLarge", err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key{Dataset: "d", Fingerprint: "f", Kind: "analyze"}

	s1 := newStore(t, Options{Dir: dir})
	digest, _, err := s1.PutDataset(testDataset(t, "a", 5))
	if err != nil {
		t.Fatal(err)
	}
	body1, _, err := s1.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte(`{"warm":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := newStore(t, Options{Dir: dir})
	ds, canonical, ok := s2.GetDataset(digest)
	if !ok || ds.NumRoles() != 5 {
		t.Fatalf("dataset did not survive restart (ok=%v)", ok)
	}
	if d, _, _ := DigestOf(ds); d != digest {
		t.Fatalf("reloaded dataset re-digests to %s, want %s", d, digest)
	}
	if len(canonical) == 0 {
		t.Fatal("canonical bytes lost across restart")
	}
	body2, hit, err := s2.Result(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("engine re-invoked despite warm persisted cache entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(body1, body2) {
		t.Fatalf("warm cache entry: hit=%v err=%v body=%q want %q", hit, err, body2, body1)
	}
}

func TestCorruptedFilesRejectedAtLoad(t *testing.T) {
	dir := t.TempDir()
	s1 := newStore(t, Options{Dir: dir})
	digest, _, err := s1.PutDataset(testDataset(t, "a", 5))
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Flip bytes in the persisted snapshot: same filename, new content.
	path := filepath.Join(dir, "datasets", digest+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(raw, []byte("a-r0"), []byte("a-rX"), 1)
	if bytes.Equal(corrupted, raw) {
		t.Fatal("corruption did not change the file")
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	var mu sync.Mutex
	s2 := newStore(t, Options{Dir: dir, Logf: func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	if _, _, ok := s2.GetDataset(digest); ok {
		t.Fatal("digest-mismatched snapshot was served")
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, line := range logged {
		if strings.Contains(line, "digest mismatch") {
			found = true
		}
	}
	if !found {
		t.Errorf("no digest-mismatch warning logged; got %q", logged)
	}
}

func TestDatasetReloadedFromDiskAfterEviction(t *testing.T) {
	dir := t.TempDir()
	a := testDataset(t, "a", 4)
	_, canonical, err := DigestOf(a)
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, Options{Dir: dir, MaxBytes: int64(len(canonical)) + 32})
	digestA, _, err := s.PutDataset(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.PutDataset(testDataset(t, "b", 4)); err != nil {
		t.Fatal(err)
	}
	// A no longer fits in memory, but its persisted copy keeps the
	// digest addressable.
	ds, _, ok := s.GetDataset(digestA)
	if !ok || ds.NumRoles() != 4 {
		t.Fatalf("evicted-but-persisted dataset not reloadable (ok=%v)", ok)
	}
}
