package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// TestDeleteInvalidatesInflightResult pins the DELETE vs single-flight
// semantics: a compute that started before the delete finishes and
// hands its body to the caller, but the result is not admitted to the
// cache (memory or disk) — a later identical request recomputes.
func TestDeleteInvalidatesInflightResult(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, Options{Dir: dir})
	ds := testDataset(t, "del", 6)
	digest, _, err := s.PutDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Dataset: digest, Fingerprint: "fp", Kind: "analyze"}

	started := make(chan struct{})
	release := make(chan struct{})
	var (
		wg   sync.WaitGroup
		body []byte
		hit  bool
		rerr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, hit, rerr = s.Result(context.Background(), key, func(ctx context.Context) ([]byte, error) {
			close(started)
			<-release
			return []byte(`{"slow":true}`), nil
		})
	}()
	<-started
	if !s.DeleteDataset(digest) {
		t.Fatal("DeleteDataset reported nothing deleted")
	}
	close(release)
	wg.Wait()

	if rerr != nil || hit {
		t.Fatalf("in-flight Result = hit=%v err=%v, want computed result", hit, rerr)
	}
	if string(body) != `{"slow":true}` {
		t.Fatalf("in-flight caller got %q, want the computed body", body)
	}

	// The result must not have been cached: a repeat request computes
	// again rather than serving the deleted snapshot's result.
	recomputed := false
	body2, hit2, err := s.Result(context.Background(), key, func(ctx context.Context) ([]byte, error) {
		recomputed = true
		return []byte(`{"fresh":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed || hit2 {
		t.Fatalf("post-delete Result served stale cache (hit=%v recomputed=%v body=%q)", hit2, recomputed, body2)
	}
}

// TestDeleteRaceManyFlights hammers the same digest with concurrent
// computes and deletes under the race detector; afterwards no cached
// result may survive the final delete's barrier.
func TestDeleteRaceManyFlights(t *testing.T) {
	s := newStore(t, Options{})
	ds := testDataset(t, "race", 4)
	digest, _, err := s.PutDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key{Dataset: digest, Fingerprint: fmt.Sprintf("fp%d", i), Kind: "analyze"}
			for j := 0; j < 20; j++ {
				_, _, _ = s.Result(context.Background(), key, func(ctx context.Context) ([]byte, error) {
					return []byte("{}"), nil
				})
			}
		}(i)
	}
	for j := 0; j < 20; j++ {
		s.DeleteDataset(digest)
		_, _, _ = s.PutDataset(ds)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
}

// TestPutCanonical covers the peer-transfer ingest path: digest
// verification, rejection of corrupt bytes, idempotent re-put, and
// persistence.
func TestPutCanonical(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, Options{Dir: dir})
	ds := testDataset(t, "canon", 5)
	digest, canonical, err := DigestOf(ds)
	if err != nil {
		t.Fatal(err)
	}

	created, err := s.PutCanonical(digest, canonical)
	if err != nil || !created {
		t.Fatalf("PutCanonical = created=%v err=%v, want created", created, err)
	}
	created, err = s.PutCanonical(digest, canonical)
	if err != nil || created {
		t.Fatalf("repeat PutCanonical = created=%v err=%v, want not created", created, err)
	}
	got, raw, ok := s.GetDataset(digest)
	if !ok || got == nil || string(raw) != string(canonical) {
		t.Fatalf("GetDataset after PutCanonical: ok=%v", ok)
	}
	if _, err := os.Stat(s.datasetPath(digest)); err != nil {
		t.Fatalf("PutCanonical did not persist: %v", err)
	}

	// Corrupt bytes must be rejected outright.
	bad := append([]byte(nil), canonical...)
	bad[0] ^= 0xff
	if _, err := s.PutCanonical(digest, bad); err == nil {
		t.Fatal("PutCanonical accepted bytes not hashing to the digest")
	}
	// Bytes that hash correctly but are not a dataset must fail parse,
	// not get stored.
	junk := []byte("not json")
	sum := sha256.Sum256(junk)
	if _, err := s.PutCanonical(hex.EncodeToString(sum[:]), junk); err == nil {
		t.Fatal("PutCanonical accepted unparsable bytes")
	}
}
