package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/rbac"
)

// DigestOf canonicalizes a dataset and returns its content digest: the
// lowercase hex SHA-256 of the deterministic rbac JSON encoding
// (entities in insertion order, edges sorted). Two uploads carrying the
// same entities and edges in the same insertion order therefore map to
// the same digest, however their edge lists were ordered on the wire.
// The canonical bytes are returned alongside so callers can store or
// re-serve exactly what was hashed.
func DigestOf(ds *rbac.Dataset) (digest string, canonical []byte, err error) {
	canonical, err = json.Marshal(ds)
	if err != nil {
		return "", nil, fmt.Errorf("store: canonicalize dataset: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), canonical, nil
}

// ParseDigest normalizes a client-supplied digest reference: an
// optional "sha256:" prefix followed by 64 hex characters, case
// insensitive. It returns the bare lowercase hex form used as the
// store key and in URLs.
func ParseDigest(s string) (string, error) {
	d := strings.TrimPrefix(strings.TrimSpace(strings.ToLower(s)), "sha256:")
	if len(d) != sha256.Size*2 {
		return "", fmt.Errorf("store: digest %q: want 64 hex characters (optionally prefixed sha256:)", s)
	}
	if _, err := hex.DecodeString(d); err != nil {
		return "", fmt.Errorf("store: digest %q is not hex", s)
	}
	return d, nil
}

// Fingerprint hashes an options value (its deterministic JSON encoding)
// together with any extra discriminators into a short hex key. The
// server uses it to derive the options part of a cache key from the
// shared core.Options wire schema plus flags like sparse that live
// outside it.
func Fingerprint(v any, extra ...string) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: fingerprint options: %w", err)
	}
	h := sha256.New()
	h.Write(b)
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashKey derives the filesystem name of a cache key.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
