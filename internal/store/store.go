// Package store is the content-addressed dataset registry and analysis
// result cache sitting between the HTTP surface and the detection
// engines.
//
// The paper's operating model is periodic re-analysis of the same RBAC
// database, so the dominant waste at scale is re-shipping and
// re-analysing unchanged data. The store removes both: a dataset is
// ingested once, canonicalized, and addressed by the SHA-256 digest of
// its canonical encoding; analysis results are cached under
// (dataset digest, options fingerprint, kind) with single-flight
// de-duplication so N concurrent identical requests run the engine
// exactly once and N-1 callers wait for the first.
//
// Memory is bounded by a byte-budget LRU across datasets and cached
// results together. Cached results additionally expire after a TTL —
// checked lazily on every lookup (an expired entry is unreachable the
// instant its TTL lapses) and swept in the background by the shared
// ttl helper, the same pattern the async job store uses. Datasets have
// an explicit lifecycle (PUT/DELETE) and do not expire; under byte
// pressure they are evicted least-recently-used.
//
// With Options.Dir set, datasets and warm cache entries persist across
// restarts: files are written atomically (temp file + rename) and
// re-verified against their digest on load, so a corrupted or
// tampered-with snapshot is rejected rather than served. A dataset
// evicted from memory under byte pressure remains addressable through
// its on-disk copy and is transparently reloaded (and re-verified) on
// the next reference.
package store

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rbac"
	"repro/internal/ttl"
)

// ErrTooLarge means a dataset's canonical encoding alone exceeds the
// store's byte budget, so admitting it could never be useful.
var ErrTooLarge = errors.New("store: dataset exceeds the store byte budget")

// Options configures a Store.
type Options struct {
	// MaxBytes is the byte budget shared by datasets and cached results;
	// least-recently-used entries are evicted beyond it. Defaults to
	// 512 MiB.
	MaxBytes int64
	// TTL is how long a cached analysis result stays servable; expired
	// entries are unreachable immediately and swept in the background.
	// Defaults to 1 hour. Datasets do not expire.
	TTL time.Duration
	// Dir, when non-empty, persists datasets and warm cache entries
	// across restarts. Files are written atomically and digest-verified
	// on load.
	Dir string
	// BaseContext stops the background sweeper when cancelled (daemon
	// drain); defaults to context.Background(). Close also stops it.
	BaseContext context.Context
	// Logf receives load-time warnings (corrupt files skipped) and
	// persistence errors; defaults to log.Printf.
	Logf func(format string, args ...any)
	// SweepInterval overrides the sweep cadence derived from TTL; tests
	// use it to prove lazy expiry alone makes entries unreachable.
	SweepInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 512 << 20
	}
	if o.TTL <= 0 {
		o.TTL = time.Hour
	}
	if o.BaseContext == nil {
		o.BaseContext = context.Background()
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = ttl.Interval(o.TTL)
	}
	return o
}

// Key addresses one cached analysis result.
type Key struct {
	// Dataset is the content digest of the analysed dataset (bare hex;
	// for two-dataset kinds like diff, both digests joined with "+").
	Dataset string
	// Fingerprint condenses the effective analysis options (see
	// Fingerprint).
	Fingerprint string
	// Kind is the endpoint kind: analyze, consolidate, suggest, diff.
	Kind string
}

// String joins the key fields into the map/file key.
func (k Key) String() string {
	return k.Dataset + "|" + k.Fingerprint + "|" + k.Kind
}

// Stats are the store's observability counters, JSON-ready for the
// /v1/stats endpoint.
type Stats struct {
	// Datasets / DatasetBytes count in-memory registered datasets.
	Datasets     int   `json:"datasets"`
	DatasetBytes int64 `json:"datasetBytes"`
	// Results / ResultBytes count in-memory cached analysis results.
	Results     int   `json:"results"`
	ResultBytes int64 `json:"resultBytes"`
	// Hits counts result lookups served without running the engine
	// (memory or warm disk entry). Misses counts engine runs. Shared
	// counts callers that piggybacked on another request's in-flight
	// computation (single-flight). Evictions counts LRU byte-budget
	// evictions; Expired counts TTL-collected results.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Shared    uint64 `json:"singleflightShared"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
}

// DatasetInfo summarises one registered dataset.
type DatasetInfo struct {
	Digest string     `json:"digest"`
	Bytes  int64      `json:"bytes"`
	Stats  rbac.Stats `json:"stats"`
}

// dsEntry is one registered dataset. The parsed form is kept so
// analyses by reference skip re-parsing; the canonical bytes are what
// was hashed and what GET serves.
type dsEntry struct {
	digest    string
	ds        *rbac.Dataset
	canonical []byte
	stats     rbac.Stats
	elem      *list.Element
}

// resEntry is one cached analysis result body.
type resEntry struct {
	key     string
	body    []byte
	created time.Time
	elem    *list.Element
}

// lruItem tags an LRU list element with the map it belongs to.
type lruItem struct {
	dataset bool
	key     string
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Store is the registry + cache. All state is guarded by mu; compute
// and file I/O run outside it.
type Store struct {
	opts    Options
	sweeper *ttl.Sweeper

	mu       sync.Mutex
	datasets map[string]*dsEntry
	results  map[string]*resEntry
	flights  map[string]*flight
	lru      *list.List // front = most recently used
	bytes    int64
	stats    Stats
	// delGen counts completed DeleteDataset calls per digest. A
	// single-flight compute snapshots the generations of its key's
	// digests when it starts; if any changed by the time it finishes,
	// the result is handed to its waiters but not admitted to the
	// cache — DELETE is a barrier against in-flight results of the
	// deleted snapshot becoming newly cacheable after it returns.
	delGen map[string]uint64
}

// New builds a Store and, when Dir is set, creates the layout and
// loads persisted datasets and unexpired cache entries (digest-verified;
// corrupt files are skipped with a logged warning). The only error is
// an unusable Dir.
func New(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		opts:     opts,
		datasets: make(map[string]*dsEntry),
		results:  make(map[string]*resEntry),
		flights:  make(map[string]*flight),
		lru:      list.New(),
		delGen:   make(map[string]uint64),
	}
	if opts.Dir != "" {
		if err := s.ensureDirs(); err != nil {
			return nil, err
		}
		s.loadAll()
	}
	s.sweeper = ttl.NewSweeper(opts.BaseContext, opts.SweepInterval, s.sweep)
	return s, nil
}

// Close stops the background sweeper. Lookups keep working (lazy
// expiry needs no goroutine); Close exists so tests and the daemon can
// shut down without leaking it.
func (s *Store) Close() { s.sweeper.Stop() }

// PutDataset canonicalizes and registers a dataset, returning its
// digest. Registering content that is already present refreshes its
// LRU position and reports created == false. The store retains the
// dataset pointer; callers must not mutate it afterwards.
func (s *Store) PutDataset(ds *rbac.Dataset) (digest string, created bool, err error) {
	digest, canonical, err := DigestOf(ds)
	if err != nil {
		return "", false, err
	}
	if int64(len(canonical)) > s.opts.MaxBytes {
		return "", false, fmt.Errorf("%w: %d canonical bytes > budget %d", ErrTooLarge, len(canonical), s.opts.MaxBytes)
	}
	s.mu.Lock()
	if e, ok := s.datasets[digest]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return digest, false, nil
	}
	s.insertDatasetLocked(&dsEntry{digest: digest, ds: ds, canonical: canonical, stats: ds.Stats()})
	s.mu.Unlock()
	if s.opts.Dir != "" {
		if werr := s.writeDatasetFile(digest, canonical); werr != nil {
			s.opts.Logf("store: persist dataset %s: %v", digest, werr)
		}
	}
	return digest, true, nil
}

// insertDatasetLocked registers the entry and applies the byte budget.
func (s *Store) insertDatasetLocked(e *dsEntry) {
	e.elem = s.lru.PushFront(lruItem{dataset: true, key: e.digest})
	s.datasets[e.digest] = e
	s.bytes += int64(len(e.canonical))
	s.evictLocked()
}

// GetDataset resolves a (normalized, see ParseDigest) digest to the
// parsed dataset and its canonical bytes. A dataset evicted from
// memory but persisted on disk is reloaded and digest-verified
// transparently.
func (s *Store) GetDataset(digest string) (*rbac.Dataset, []byte, bool) {
	s.mu.Lock()
	if e, ok := s.datasets[digest]; ok {
		s.lru.MoveToFront(e.elem)
		ds, canonical := e.ds, e.canonical
		s.mu.Unlock()
		return ds, canonical, true
	}
	s.mu.Unlock()
	if s.opts.Dir == "" {
		return nil, nil, false
	}
	e, err := s.loadDatasetFile(digest)
	if err != nil || e == nil {
		if err != nil {
			s.opts.Logf("store: load dataset %s: %v", digest, err)
		}
		return nil, nil, false
	}
	s.mu.Lock()
	// Another goroutine may have raced the reload; keep the first.
	if have, ok := s.datasets[digest]; ok {
		s.lru.MoveToFront(have.elem)
		e = have
	} else {
		s.insertDatasetLocked(e)
	}
	ds, canonical := e.ds, e.canonical
	s.mu.Unlock()
	return ds, canonical, true
}

// DeleteDataset removes a dataset from memory and disk. It reports
// whether anything was deleted.
//
// Deletion races an in-flight single-flight compute over the same
// digest with defined semantics: the compute (which resolved the
// dataset before the delete) finishes and its waiters get the result,
// but the result is not admitted to the cache — by the time
// DeleteDataset returns, the digest's delete generation has advanced,
// and the flight's admission check sees it. The disk copy is removed
// before the generation bump so a post-delete reload cannot resurrect
// the snapshot either.
func (s *Store) DeleteDataset(digest string) bool {
	var removedFile bool
	if s.opts.Dir != "" {
		var err error
		if removedFile, err = s.removeDatasetFile(digest); err != nil {
			s.opts.Logf("store: delete dataset file %s: %v", digest, err)
		}
	}
	s.mu.Lock()
	e, ok := s.datasets[digest]
	if ok {
		s.removeDatasetLocked(e)
	}
	if ok || removedFile {
		s.delGen[digest]++
	}
	s.mu.Unlock()
	return ok || removedFile
}

// genLocked folds the delete generations of every digest a cache key
// depends on (diff keys join two digests with "+").
func (s *Store) genLocked(key Key) uint64 {
	var gen uint64
	for _, d := range strings.Split(key.Dataset, "+") {
		gen += s.delGen[d]
	}
	return gen
}

// PutCanonical registers a dataset from its canonical bytes — the
// fleet replication/fetch path, where the bytes arrived from a peer
// already canonicalized. The bytes are verified against the expected
// digest (a corrupt transfer is rejected, never stored) and the parsed
// dataset is validated like any upload.
func (s *Store) PutCanonical(digest string, raw []byte) (created bool, err error) {
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != digest {
		return false, fmt.Errorf("store: bytes hash to %s, not the expected %s", got, digest)
	}
	if int64(len(raw)) > s.opts.MaxBytes {
		return false, fmt.Errorf("%w: %d canonical bytes > budget %d", ErrTooLarge, len(raw), s.opts.MaxBytes)
	}
	ds, err := rbac.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return false, fmt.Errorf("store: parse verified snapshot: %w", err)
	}
	if err := ds.Validate(); err != nil {
		return false, fmt.Errorf("store: invalid dataset %s: %w", digest, err)
	}
	s.mu.Lock()
	if e, ok := s.datasets[digest]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return false, nil
	}
	s.insertDatasetLocked(&dsEntry{digest: digest, ds: ds, canonical: raw, stats: ds.Stats()})
	s.mu.Unlock()
	if s.opts.Dir != "" {
		if werr := s.writeDatasetFile(digest, raw); werr != nil {
			s.opts.Logf("store: persist dataset %s: %v", digest, werr)
		}
	}
	return true, nil
}

func (s *Store) removeDatasetLocked(e *dsEntry) {
	s.lru.Remove(e.elem)
	delete(s.datasets, e.digest)
	s.bytes -= int64(len(e.canonical))
}

// ListDatasets returns the registered datasets sorted by digest.
func (s *Store) ListDatasets() []DatasetInfo {
	s.mu.Lock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for _, e := range s.datasets {
		out = append(out, DatasetInfo{Digest: e.digest, Bytes: int64(len(e.canonical)), Stats: e.stats})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Result serves the cached body for key, or runs compute exactly once
// to fill it. Concurrent callers with the same key share one
// computation: the first becomes the leader, the rest wait for its
// outcome. hit reports whether the body came from cache (memory or
// warm disk entry, or a shared flight) rather than this caller's own
// compute. Errors are never cached; if the leader fails because its
// own request was cancelled or timed out, a still-live waiter retries
// as the new leader instead of inheriting the foreign cancellation.
func (s *Store) Result(ctx context.Context, key Key, compute func(ctx context.Context) ([]byte, error)) (body []byte, hit bool, err error) {
	keyStr := key.String()
	for {
		s.mu.Lock()
		if e, ok := s.results[keyStr]; ok {
			if ttl.Expired(e.created, time.Now(), s.opts.TTL) {
				s.removeResultLocked(e)
				s.stats.Expired++
			} else {
				s.lru.MoveToFront(e.elem)
				s.stats.Hits++
				body := e.body
				s.mu.Unlock()
				return body, true, nil
			}
		}
		if f, ok := s.flights[keyStr]; ok {
			s.stats.Shared++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.body, true, nil
			}
			if (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue // the leader's request died, not ours: take over
			}
			return nil, false, f.err
		}
		f := &flight{done: make(chan struct{})}
		s.flights[keyStr] = f
		gen := s.genLocked(key)
		s.mu.Unlock()

		body, fromDisk := s.loadWarmResult(key, keyStr)
		if body == nil {
			body, err = compute(ctx)
		}
		s.mu.Lock()
		delete(s.flights, keyStr)
		// A delete of any underlying dataset while this flight ran
		// makes the result non-admissible: waiters still get it, the
		// cache does not.
		stale := s.genLocked(key) != gen
		if err == nil {
			if fromDisk {
				s.stats.Hits++
			} else {
				s.stats.Misses++
			}
			if _, ok := s.results[keyStr]; !ok && !stale && int64(len(body)) <= s.opts.MaxBytes {
				e := &resEntry{key: keyStr, body: body, created: time.Now()}
				e.elem = s.lru.PushFront(lruItem{key: keyStr})
				s.results[keyStr] = e
				s.bytes += int64(len(body))
				s.evictLocked()
			}
		}
		s.mu.Unlock()
		f.body, f.err = body, err
		close(f.done)
		if err == nil && !fromDisk && !stale && s.opts.Dir != "" {
			if werr := s.writeResultFile(key, keyStr, body); werr != nil {
				s.opts.Logf("store: persist result %s: %v", keyStr, werr)
			}
		}
		return body, fromDisk, err
	}
}

// loadWarmResult consults the persisted cache for an unexpired entry.
func (s *Store) loadWarmResult(key Key, keyStr string) (body []byte, ok bool) {
	if s.opts.Dir == "" {
		return nil, false
	}
	body, err := s.loadResultFile(key, keyStr)
	if err != nil {
		s.opts.Logf("store: load result %s: %v", keyStr, err)
		return nil, false
	}
	return body, body != nil
}

func (s *Store) removeResultLocked(e *resEntry) {
	s.lru.Remove(e.elem)
	delete(s.results, e.key)
	s.bytes -= int64(len(e.body))
	if s.opts.Dir != "" {
		// Collect the persisted copy too, outside the hot path's way:
		// the file is keyed deterministically, so a stale remove is safe.
		path := s.resultPath(e.key)
		go func() { _ = os.Remove(path) }()
	}
}

// evictLocked enforces the byte budget, least-recently-used first. An
// evicted dataset's disk copy (when persistence is on) is kept, so the
// digest stays addressable via reload; without persistence the
// reference dangles and the server reports it not_found.
func (s *Store) evictLocked() {
	for s.bytes > s.opts.MaxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		item := back.Value.(lruItem)
		if item.dataset {
			s.removeDatasetLocked(s.datasets[item.key])
		} else {
			e := s.results[item.key]
			s.lru.Remove(e.elem)
			delete(s.results, e.key)
			s.bytes -= int64(len(e.body))
		}
		s.stats.Evictions++
	}
}

// sweep collects expired cache entries; it is the ttl.Sweeper's
// callback. Lazy expiry in Result covers re-requested keys; the sweep
// bounds memory for abandoned ones.
func (s *Store) sweep(now time.Time) {
	s.mu.Lock()
	for _, e := range s.results {
		if ttl.Expired(e.created, now, s.opts.TTL) {
			s.removeResultLocked(e)
			s.stats.Expired++
		}
	}
	s.mu.Unlock()
}

// Stats snapshots the counters and byte accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Datasets = len(s.datasets)
	st.Results = len(s.results)
	for _, e := range s.datasets {
		st.DatasetBytes += int64(len(e.canonical))
	}
	for _, e := range s.results {
		st.ResultBytes += int64(len(e.body))
	}
	return st
}
