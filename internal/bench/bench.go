// Package bench is the measurement harness behind the paper's
// evaluation (§IV): timing statistics over repeated runs, the Figure 2
// and Figure 3 parameter sweeps comparing the three group-finding
// methods, and the §IV-B organisation-scale audit table.
package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// Stat summarises repeated duration measurements.
type Stat struct {
	Mean time.Duration `json:"meanNanos"`
	Std  time.Duration `json:"stdNanos"`
	Runs int           `json:"runs"`
}

// String renders "mean ± std".
func (s Stat) String() string {
	return fmt.Sprintf("%v ± %v", s.Mean.Round(time.Microsecond), s.Std.Round(time.Microsecond))
}

// Measure times fn over the given number of runs, mirroring the paper's
// protocol of five repetitions with mean and standard deviation.
func Measure(runs int, fn func() error) (Stat, error) {
	if runs < 1 {
		return Stat{}, fmt.Errorf("bench: runs %d < 1", runs)
	}
	durations := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return Stat{}, err
		}
		durations = append(durations, time.Since(start))
	}
	var sum time.Duration
	for _, d := range durations {
		sum += d
	}
	mean := sum / time.Duration(runs)
	var varSum float64
	for _, d := range durations {
		diff := float64(d - mean)
		varSum += diff * diff
	}
	std := time.Duration(math.Sqrt(varSum / float64(runs)))
	return Stat{Mean: mean, Std: std, Runs: runs}, nil
}

// Axis selects which dimension a sweep varies.
type Axis int

// Sweep axes.
const (
	// AxisUsers varies the column count (Figure 2).
	AxisUsers Axis = iota + 1
	// AxisRoles varies the row count (Figure 3).
	AxisRoles
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case AxisUsers:
		return "users"
	case AxisRoles:
		return "roles"
	default:
		return fmt.Sprintf("bench.Axis(%d)", int(a))
	}
}

// SweepConfig parameterises a Figure 2/3 style sweep.
type SweepConfig struct {
	// Axis is the varied dimension; the other is held at Fixed.
	Axis Axis
	// Fixed is the constant dimension size (1,000 in the paper).
	Fixed int
	// Values are the sizes the varied dimension takes (1,000..10,000).
	Values []int
	// Methods are the algorithms to compare; defaults to all three.
	Methods []core.Method
	// Runs is the repetition count per point; defaults to 5 as in the
	// paper.
	Runs int
	// Threshold is the group threshold (0 = same users, the measured
	// task in the paper).
	Threshold int
	// ClusterProportion and MaxClusterSize feed the generator; defaults
	// 0.2 and 10, the paper's fixed values.
	ClusterProportion float64
	MaxClusterSize    int
	// Seed drives the generator.
	Seed int64
	// Progress, when non-nil, receives one line per completed
	// measurement for long sweeps.
	Progress func(string)
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Methods) == 0 {
		c.Methods = []core.Method{core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.ClusterProportion == 0 {
		c.ClusterProportion = 0.2
	}
	if c.MaxClusterSize == 0 {
		c.MaxClusterSize = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the sweep configuration.
func (c SweepConfig) Validate() error {
	if c.Axis != AxisUsers && c.Axis != AxisRoles {
		return fmt.Errorf("bench: unknown axis %d", int(c.Axis))
	}
	if c.Fixed <= 0 {
		return fmt.Errorf("bench: fixed dimension %d <= 0", c.Fixed)
	}
	if len(c.Values) == 0 {
		return fmt.Errorf("bench: no sweep values")
	}
	for _, v := range c.Values {
		if v <= 0 {
			return fmt.Errorf("bench: sweep value %d <= 0", v)
		}
	}
	if c.Threshold < 0 {
		return fmt.Errorf("bench: negative threshold %d", c.Threshold)
	}
	return nil
}

// SweepPoint is one x-position of the sweep with per-method timings and
// the group counts each method reported (for recall comparison).
type SweepPoint struct {
	X       int             `json:"x"`
	Timings map[string]Stat `json:"timings"`
	Groups  map[string]int  `json:"groups"`
	Found   map[string]int  `json:"rolesInGroups"`
	Planted int             `json:"planted"`
}

// SweepResult is the full sweep output.
type SweepResult struct {
	Config SweepConfig  `json:"config"`
	Points []SweepPoint `json:"points"`
}

// RunSweep executes the sweep: for every value of the varied dimension
// it generates a fresh matrix with the paper's cluster parameters and
// times each method on the identical input. Generation time is excluded
// from the measurements, matching the paper (it times "the clustering
// process").
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	result := &SweepResult{Config: cfg}
	for vi, v := range cfg.Values {
		rows, cols := cfg.Fixed, v
		if cfg.Axis == AxisRoles {
			rows, cols = v, cfg.Fixed
		}
		g, err := gen.Matrix(gen.MatrixParams{
			Rows:              rows,
			Cols:              cols,
			ClusterProportion: cfg.ClusterProportion,
			MaxClusterSize:    cfg.MaxClusterSize,
			Seed:              cfg.Seed + int64(vi),
		})
		if err != nil {
			return nil, err
		}
		planted := 0
		for _, grp := range g.Planted {
			planted += len(grp)
		}
		point := SweepPoint{
			X:       v,
			Timings: make(map[string]Stat, len(cfg.Methods)),
			Groups:  make(map[string]int, len(cfg.Methods)),
			Found:   make(map[string]int, len(cfg.Methods)),
			Planted: planted,
		}
		for _, m := range cfg.Methods {
			var groups [][]int
			stat, err := Measure(cfg.Runs, func() error {
				var innerErr error
				groups, innerErr = core.FindRoleGroups(g.Rows, core.GroupOptions{
					Method:    m,
					Threshold: cfg.Threshold,
				})
				return innerErr
			})
			if err != nil {
				return nil, fmt.Errorf("%s at %d: %w", m, v, err)
			}
			inGroups := 0
			for _, grp := range groups {
				inGroups += len(grp)
			}
			point.Timings[m.String()] = stat
			point.Groups[m.String()] = len(groups)
			point.Found[m.String()] = inGroups
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("%s=%d method=%s %s (groups=%d roles=%d/%d)",
					cfg.Axis, v, m, stat, len(groups), inGroups, planted))
			}
		}
		result.Points = append(result.Points, point)
	}
	return result, nil
}

// Table renders the sweep as an aligned text table, one row per x
// value, one timing column per method — the series behind Figure 2/3.
func (r *SweepResult) Table() string {
	var b strings.Builder
	methods := make([]string, 0, len(r.Config.Methods))
	for _, m := range r.Config.Methods {
		methods = append(methods, m.String())
	}
	fmt.Fprintf(&b, "%-8s", r.Config.Axis.String())
	for _, m := range methods {
		fmt.Fprintf(&b, " %28s", m)
	}
	fmt.Fprintf(&b, " %10s\n", "recall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d", p.X)
		for _, m := range methods {
			fmt.Fprintf(&b, " %28s", p.Timings[m].String())
		}
		// Recall of the last (typically approximate) method vs planted.
		last := methods[len(methods)-1]
		recall := 1.0
		if p.Planted > 0 {
			recall = float64(p.Found[last]) / float64(p.Planted)
		}
		fmt.Fprintf(&b, " %9.3f\n", recall)
	}
	return b.String()
}

// CSV renders the sweep as comma-separated series for plotting.
func (r *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString(r.Config.Axis.String())
	for _, m := range r.Config.Methods {
		fmt.Fprintf(&b, ",%s_mean_s,%s_std_s", m, m)
	}
	b.WriteString("\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d", p.X)
		for _, m := range r.Config.Methods {
			s := p.Timings[m.String()]
			fmt.Fprintf(&b, ",%.6f,%.6f", s.Mean.Seconds(), s.Std.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}
