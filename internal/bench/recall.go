package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster/bitlsh"
	"repro/internal/cluster/hnsw"
	"repro/internal/core"
	"repro/internal/gen"
)

// RecallConfig parameterises the approximate-methods quality sweep: one
// matrix, a range of effort knobs, recall and duration per setting.
// This quantifies the paper's §IV-A remark that approximate clustering
// "may miss some entries within clusters" and relies on periodic re-runs.
type RecallConfig struct {
	// Rows and Cols shape the matrix (defaults 4000 x 1000).
	Rows, Cols int
	// EfSearch values swept for HNSW; defaults to 16..256.
	EfSearch []int
	// Tables values swept for bit-sampling LSH; defaults to 2..16.
	Tables []int
	// Threshold for grouping; default 0 (exact duplicates).
	Threshold int
	// Seed drives the generator.
	Seed int64
}

func (c RecallConfig) withDefaults() RecallConfig {
	if c.Rows == 0 {
		c.Rows = 4000
	}
	if c.Cols == 0 {
		c.Cols = 1000
	}
	if len(c.EfSearch) == 0 {
		c.EfSearch = []int{16, 32, 64, 128, 256}
	}
	if len(c.Tables) == 0 {
		c.Tables = []int{2, 4, 8, 16}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RecallPoint is one parameter setting's outcome.
type RecallPoint struct {
	Method   string        `json:"method"`
	Setting  string        `json:"setting"`
	Duration time.Duration `json:"durationNanos"`
	Recall   float64       `json:"recall"`
}

// RecallResult is the full quality sweep.
type RecallResult struct {
	Config  RecallConfig  `json:"config"`
	Planted int           `json:"planted"`
	Points  []RecallPoint `json:"points"`
}

// RunRecall measures group recall (fraction of planted cluster roles
// recovered) and duration for HNSW across EfSearch and LSH across
// Tables, on one generated matrix.
func RunRecall(cfg RecallConfig) (*RecallResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("bench: negative threshold %d", cfg.Threshold)
	}
	g, err := gen.Matrix(gen.MatrixParams{
		Rows:              cfg.Rows,
		Cols:              cfg.Cols,
		ClusterProportion: 0.2,
		MaxClusterSize:    10,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	planted := 0
	for _, grp := range g.Planted {
		planted += len(grp)
	}
	res := &RecallResult{Config: cfg, Planted: planted}

	measure := func(method, setting string, run func() (found int, err error)) error {
		start := time.Now()
		found, err := run()
		if err != nil {
			return fmt.Errorf("%s %s: %w", method, setting, err)
		}
		recall := 1.0
		if planted > 0 {
			recall = float64(found) / float64(planted)
		}
		res.Points = append(res.Points, RecallPoint{
			Method:   method,
			Setting:  setting,
			Duration: time.Since(start),
			Recall:   recall,
		})
		return nil
	}

	for _, ef := range cfg.EfSearch {
		ef := ef
		err := measure("hnsw", fmt.Sprintf("ef=%d", ef), func() (int, error) {
			groups, err := core.FindRoleGroups(g.Rows, core.GroupOptions{
				Method:       core.MethodHNSW,
				Threshold:    cfg.Threshold,
				HNSW:         hnsw.Config{Seed: cfg.Seed},
				HNSWSearchEf: ef,
			})
			if err != nil {
				return 0, err
			}
			return countMembers(groups), nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, tables := range cfg.Tables {
		tables := tables
		err := measure("lsh", fmt.Sprintf("tables=%d", tables), func() (int, error) {
			r, err := bitlsh.FindGroups(g.Rows, cfg.Threshold, bitlsh.Config{
				Tables: tables,
				Seed:   cfg.Seed,
			})
			if err != nil {
				return 0, err
			}
			return countMembers(r.Groups), nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func countMembers(groups [][]int) int {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	return n
}

// Table renders the quality sweep.
func (r *RecallResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recall sweep: %dx%d matrix, threshold %d, %d planted roles\n",
		r.Config.Rows, r.Config.Cols, r.Config.Threshold, r.Planted)
	fmt.Fprintf(&b, "%-8s %-12s %14s %8s\n", "method", "setting", "duration", "recall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %-12s %14s %7.3f\n",
			p.Method, p.Setting, p.Duration.Round(time.Microsecond), p.Recall)
	}
	return b.String()
}
