package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeSweep builds a deterministic result without running anything.
func fakeSweep() *SweepResult {
	mk := func(ms int) Stat {
		return Stat{Mean: time.Duration(ms) * time.Millisecond, Runs: 5}
	}
	return &SweepResult{
		Config: SweepConfig{
			Axis:    AxisRoles,
			Fixed:   1000,
			Values:  []int{1000, 2000, 4000},
			Methods: []core.Method{core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW},
		},
		Points: []SweepPoint{
			{X: 1000, Timings: map[string]Stat{"rolediet": mk(1), "dbscan": mk(30), "hnsw": mk(200)}},
			{X: 2000, Timings: map[string]Stat{"rolediet": mk(2), "dbscan": mk(90), "hnsw": mk(400)}},
			{X: 4000, Timings: map[string]Stat{"rolediet": mk(4), "dbscan": mk(320), "hnsw": mk(900)}},
		},
	}
}

func TestPlotRenders(t *testing.T) {
	p := fakeSweep().Plot(60, 12)
	for _, want := range []string{
		"duration vs roles",
		"legend: R=rolediet, D=dbscan, H=hnsw",
		"R", "D", "H",
		"1000", "4000",
	} {
		if !strings.Contains(p, want) {
			t.Fatalf("plot missing %q:\n%s", want, p)
		}
	}
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	// Header + height rows + axis + x labels + legend.
	if len(lines) != 1+12+1+1+1 {
		t.Fatalf("plot has %d lines:\n%s", len(lines), p)
	}
}

func TestPlotOrderingOnGrid(t *testing.T) {
	// The fastest method must appear strictly below the slowest on the
	// grid (log y axis grows upward): find the row index of R and H in
	// the first data column region.
	p := fakeSweep().Plot(60, 16)
	lines := strings.Split(p, "\n")
	rowOf := func(marker byte) int {
		for i, line := range lines {
			if strings.IndexByte(line, marker) >= 0 && i > 0 && i < 18 {
				return i
			}
		}
		return -1
	}
	rRow, hRow := rowOf('R'), rowOf('H')
	if rRow < 0 || hRow < 0 {
		t.Fatalf("markers not found:\n%s", p)
	}
	if hRow >= rRow {
		t.Fatalf("hnsw (slow) row %d not above rolediet (fast) row %d:\n%s", hRow, rRow, p)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	empty := &SweepResult{Config: SweepConfig{Axis: AxisUsers}}
	if got := empty.Plot(40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty plot = %q", got)
	}
	// Single point and zero durations must not panic or divide by zero.
	single := &SweepResult{
		Config: SweepConfig{
			Axis:    AxisUsers,
			Methods: []core.Method{core.MethodRoleDiet},
		},
		Points: []SweepPoint{
			{X: 500, Timings: map[string]Stat{"rolediet": {}}},
		},
	}
	if got := single.Plot(40, 10); !strings.Contains(got, "R") {
		t.Fatalf("single-point plot:\n%s", got)
	}
}

func TestPlotTinyDimensionsClamped(t *testing.T) {
	p := fakeSweep().Plot(1, 1)
	if len(p) == 0 {
		t.Fatal("clamped plot empty")
	}
}

func TestFullReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	cfg := QuickReportConfig()
	cfg.Values = []int{60, 120}
	cfg.Fixed = 80
	cfg.Runs = 1
	cfg.OrgScale = 200
	var progress int
	cfg.Progress = func(string) { progress++ }
	md, err := FullReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Evaluation report",
		"Figure 2 — duration vs users",
		"Figure 3 — duration vs roles",
		"Organisation-scale audit",
		"match the planted ground truth exactly",
		"| rolediet |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	if progress == 0 {
		t.Fatal("no progress lines")
	}
}

func TestReportConfigPresets(t *testing.T) {
	q := QuickReportConfig().withDefaults()
	f := FullReportConfig().withDefaults()
	if q.Fixed >= f.Fixed {
		t.Fatal("quick preset not smaller than full")
	}
	if len(f.Methods) != 3 {
		t.Fatalf("full preset methods = %v", f.Methods)
	}
}

func TestRunRecallSmall(t *testing.T) {
	res, err := RunRecall(RecallConfig{
		Rows:     200,
		Cols:     100,
		EfSearch: []int{8, 64},
		Tables:   []int{2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	byMethod := map[string][]RecallPoint{}
	for _, p := range res.Points {
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("recall out of range: %+v", p)
		}
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	// More effort must never *reduce* recall dramatically; check the
	// weak monotone property that the largest setting is at least as
	// good as the smallest minus tolerance.
	for m, pts := range byMethod {
		if pts[len(pts)-1].Recall+0.1 < pts[0].Recall {
			t.Fatalf("%s recall fell with more effort: %+v", m, pts)
		}
	}
	table := res.Table()
	if !strings.Contains(table, "ef=64") || !strings.Contains(table, "tables=8") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestRunRecallValidation(t *testing.T) {
	if _, err := RunRecall(RecallConfig{Threshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
