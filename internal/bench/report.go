package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// ReportConfig sizes a full evaluation run: both figure sweeps plus the
// organisation-scale audit, rendered as one Markdown document. Quick
// presets let CI regenerate a miniature of the whole evaluation in
// seconds; the full preset reproduces the paper's axes.
type ReportConfig struct {
	// Fixed is the constant dimension for both sweeps (paper: 1,000).
	Fixed int
	// Values are the swept sizes (paper: 1,000..10,000).
	Values []int
	// Runs per measurement (paper: 5).
	Runs int
	// OrgScale divides the §IV-B dataset (1 = full 50k-role scale).
	OrgScale int
	// Methods compared in the sweeps; defaults to the paper's three.
	Methods []core.Method
	// Progress receives one line per completed measurement.
	Progress func(string)
}

// QuickReportConfig is a fast preset exercising every experiment shape.
func QuickReportConfig() ReportConfig {
	return ReportConfig{
		Fixed:    200,
		Values:   []int{100, 200, 400},
		Runs:     2,
		OrgScale: 100,
	}
}

// FullReportConfig is the paper's configuration.
func FullReportConfig() ReportConfig {
	return ReportConfig{
		Fixed:    1000,
		Values:   []int{1000, 2000, 4000, 7000, 10000},
		Runs:     5,
		OrgScale: 1,
	}
}

func (c ReportConfig) withDefaults() ReportConfig {
	if c.Fixed == 0 {
		c.Fixed = 1000
	}
	if len(c.Values) == 0 {
		c.Values = []int{1000, 2000, 4000, 7000, 10000}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.OrgScale == 0 {
		c.OrgScale = 1
	}
	if len(c.Methods) == 0 {
		c.Methods = []core.Method{core.MethodRoleDiet, core.MethodDBSCAN, core.MethodHNSW}
	}
	return c
}

// FullReport runs the complete evaluation — Figure 2 sweep, Figure 3
// sweep, and the §IV-B organisation audit — and renders a Markdown
// document with one table per experiment.
func FullReport(cfg ReportConfig) (string, error) {
	cfg = cfg.withDefaults()

	fig2, err := RunSweep(SweepConfig{
		Axis:     AxisUsers,
		Fixed:    cfg.Fixed,
		Values:   cfg.Values,
		Methods:  cfg.Methods,
		Runs:     cfg.Runs,
		Progress: cfg.Progress,
	})
	if err != nil {
		return "", fmt.Errorf("figure 2 sweep: %w", err)
	}
	fig3, err := RunSweep(SweepConfig{
		Axis:     AxisRoles,
		Fixed:    cfg.Fixed,
		Values:   cfg.Values,
		Methods:  cfg.Methods,
		Runs:     cfg.Runs,
		Progress: cfg.Progress,
	})
	if err != nil {
		return "", fmt.Errorf("figure 3 sweep: %w", err)
	}
	org, err := RunOrg(cfg.OrgScale)
	if err != nil {
		return "", fmt.Errorf("org audit: %w", err)
	}

	var b strings.Builder
	b.WriteString("# Evaluation report\n\n")
	fmt.Fprintf(&b, "Sweeps: fixed dimension %d, %d runs per point. Org scale 1/%d.\n\n",
		cfg.Fixed, cfg.Runs, cfg.OrgScale)

	writeSweepMarkdown(&b, "Figure 2 — duration vs users (roles fixed)", fig2)
	writeSweepMarkdown(&b, "Figure 3 — duration vs roles (users fixed)", fig3)

	b.WriteString("## Organisation-scale audit (paper section IV-B)\n\n```\n")
	b.WriteString(org.Table())
	b.WriteString("```\n\n")
	if org.Matches() {
		b.WriteString("All detected counts match the planted ground truth exactly.\n")
	} else {
		b.WriteString("WARNING: detected counts diverge from planted ground truth.\n")
	}
	return b.String(), nil
}

// writeSweepMarkdown renders one sweep as a Markdown table.
func writeSweepMarkdown(b *strings.Builder, title string, res *SweepResult) {
	fmt.Fprintf(b, "## %s\n\n", title)
	methods := make([]string, 0, len(res.Config.Methods))
	for _, m := range res.Config.Methods {
		methods = append(methods, m.String())
	}
	sort.Strings(methods)

	fmt.Fprintf(b, "| %s |", res.Config.Axis)
	for _, m := range methods {
		fmt.Fprintf(b, " %s |", m)
	}
	b.WriteString(" recall |\n|")
	for i := 0; i < len(methods)+2; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, p := range res.Points {
		fmt.Fprintf(b, "| %d |", p.X)
		for _, m := range methods {
			fmt.Fprintf(b, " %s |", p.Timings[m])
		}
		recall := 1.0
		if p.Planted > 0 {
			// Report the worst method's recall at this point.
			recall = 2.0
			for _, m := range methods {
				r := float64(p.Found[m]) / float64(p.Planted)
				if r < recall {
					recall = r
				}
			}
		}
		fmt.Fprintf(b, " %.3f |\n", recall)
	}
	b.WriteString("\n")
}
