package bench

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestMeasureBasics(t *testing.T) {
	calls := 0
	stat, err := Measure(5, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || stat.Runs != 5 {
		t.Fatalf("calls = %d, stat = %+v", calls, stat)
	}
	if stat.Mean < 0 || stat.Std < 0 {
		t.Fatalf("negative stats: %+v", stat)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure(0, func() error { return nil }); err == nil {
		t.Fatal("runs=0 accepted")
	}
	boom := errors.New("boom")
	if _, err := Measure(3, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureTimesWork(t *testing.T) {
	stat, err := Measure(2, func() error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stat.Mean < 4*time.Millisecond {
		t.Fatalf("mean %v too small for 5ms sleeps", stat.Mean)
	}
}

func TestAxisString(t *testing.T) {
	if AxisUsers.String() != "users" || AxisRoles.String() != "roles" {
		t.Fatal("axis names wrong")
	}
	if !strings.Contains(Axis(9).String(), "9") {
		t.Fatal("unknown axis name")
	}
}

func TestSweepValidate(t *testing.T) {
	bad := []SweepConfig{
		{Axis: Axis(0), Fixed: 10, Values: []int{1}},
		{Axis: AxisUsers, Fixed: 0, Values: []int{1}},
		{Axis: AxisUsers, Fixed: 10, Values: nil},
		{Axis: AxisUsers, Fixed: 10, Values: []int{0}},
		{Axis: AxisUsers, Fixed: 10, Values: []int{5}, Threshold: -1},
	}
	for i, cfg := range bad {
		if _, err := RunSweep(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestSmallSweepAllMethods(t *testing.T) {
	var progress []string
	res, err := RunSweep(SweepConfig{
		Axis:     AxisRoles,
		Fixed:    60,
		Values:   []int{40, 80},
		Runs:     2,
		Progress: func(s string) { progress = append(progress, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		for _, m := range []string{"rolediet", "dbscan", "hnsw"} {
			if _, ok := p.Timings[m]; !ok {
				t.Fatalf("missing timing for %s", m)
			}
		}
		// Exact methods must find every planted role.
		if p.Found["rolediet"] != p.Planted {
			t.Fatalf("rolediet found %d of %d planted", p.Found["rolediet"], p.Planted)
		}
		if p.Found["dbscan"] != p.Planted {
			t.Fatalf("dbscan found %d of %d planted", p.Found["dbscan"], p.Planted)
		}
		// HNSW is approximate but cannot invent roles beyond planted on
		// this workload (all non-cluster rows are distinct).
		if p.Found["hnsw"] > p.Planted {
			t.Fatalf("hnsw found %d > planted %d", p.Found["hnsw"], p.Planted)
		}
	}
	if len(progress) != 6 {
		t.Fatalf("progress lines = %d, want 6", len(progress))
	}
	table := res.Table()
	if !strings.Contains(table, "rolediet") || !strings.Contains(table, "40") {
		t.Fatalf("table rendering:\n%s", table)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "roles,rolediet_mean_s") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv rows:\n%s", csv)
	}
}

func TestSweepUsersAxis(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Axis:    AxisUsers,
		Fixed:   50,
		Values:  []int{30},
		Runs:    1,
		Methods: []core.Method{core.MethodRoleDiet},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].X != 30 {
		t.Fatalf("point X = %d", res.Points[0].X)
	}
	if res.Points[0].Found["rolediet"] != res.Points[0].Planted {
		t.Fatal("rolediet missed planted roles on users axis")
	}
}

func TestRunOrgSmallScaleMatches(t *testing.T) {
	res, err := RunOrg(100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches() {
		t.Fatalf("detected counts do not match ground truth:\n%s", res.Table())
	}
	table := res.Table()
	if strings.Contains(table, "MISMATCH") {
		t.Fatalf("table reports mismatch:\n%s", table)
	}
	for _, want := range []string{
		"standalone users", "roles sharing the same users", "consolidating class-4",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunOrgScaleFloor(t *testing.T) {
	// scaleDiv < 1 is clamped; use a big divisor to keep it fast while
	// exercising the clamp logic path separately via Scaled.
	res, err := RunOrg(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleDiv != 500 {
		t.Fatalf("ScaleDiv = %d", res.ScaleDiv)
	}
	if !res.Matches() {
		t.Fatalf("tiny org mismatch:\n%s", res.Table())
	}
}

func TestOrgMemoryComparison(t *testing.T) {
	res, err := RunOrg(100)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Memory
	if m.SparseBytes <= 0 || m.DenseBytes <= 0 || m.FullAdjacencyBytes <= 0 {
		t.Fatalf("memory comparison not populated: %+v", m)
	}
	// The paper's section III-B ordering: full adjacency > dense
	// sub-matrices > sparse.
	if !(m.FullAdjacencyBytes > m.DenseBytes && m.DenseBytes > m.SparseBytes) {
		t.Fatalf("memory ordering violated: %+v", m)
	}
	if !strings.Contains(res.Table(), "storage (paper section III-B)") {
		t.Fatal("table missing storage line")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
	}
	for n, want := range cases {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
