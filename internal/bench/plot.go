package bench

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the sweep as an ASCII line chart in the spirit of the
// paper's Figures 2 and 3: x axis is the varied dimension, y axis is
// log10 of the mean duration in seconds (the series span three orders
// of magnitude, so a linear axis would flatten the fast methods).
// Each method gets a marker; overlapping points show the later marker.
func (r *SweepResult) Plot(width, height int) string {
	if len(r.Points) == 0 {
		return "(no data)\n"
	}
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}

	methods := make([]string, 0, len(r.Config.Methods))
	for _, m := range r.Config.Methods {
		methods = append(methods, m.String())
	}
	markers := []byte{'R', 'D', 'H', 'F', 'L', '*'}

	// Collect log10(seconds) values and their range.
	minY, maxY := math.Inf(1), math.Inf(-1)
	ys := make(map[string][]float64, len(methods))
	for _, m := range methods {
		series := make([]float64, len(r.Points))
		for i, p := range r.Points {
			sec := p.Timings[m].Mean.Seconds()
			if sec <= 0 {
				sec = 1e-9
			}
			v := math.Log10(sec)
			series[i] = v
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
		ys[m] = series
	}
	if maxY == minY {
		maxY = minY + 1
	}

	minX, maxX := float64(r.Points[0].X), float64(r.Points[len(r.Points)-1].X)
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plotCell := func(x, yv float64, marker byte) {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := int((maxY - yv) / (maxY - minY) * float64(height-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = marker
	}
	for mi, m := range methods {
		marker := markers[mi%len(markers)]
		series := ys[m]
		for i, p := range r.Points {
			plotCell(float64(p.X), series[i], marker)
			// Linear interpolation toward the next point for a line feel.
			if i+1 < len(r.Points) {
				x0, y0 := float64(p.X), series[i]
				x1, y1 := float64(r.Points[i+1].X), series[i+1]
				const steps = 12
				for s := 1; s < steps; s++ {
					f := float64(s) / steps
					plotCell(x0+f*(x1-x0), y0+f*(y1-y0), markerLine(marker))
				}
			}
		}
	}
	// Re-plot the markers so they sit on top of the interpolation dots.
	for mi, m := range methods {
		marker := markers[mi%len(markers)]
		for i, p := range r.Points {
			plotCell(float64(p.X), ys[m][i], marker)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "duration vs %s (log10 seconds, %.2g .. %.2g s)\n",
		r.Config.Axis, math.Pow(10, minY), math.Pow(10, maxY))
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", minY)
		case height / 2:
			label = fmt.Sprintf("%7.1f ", (minY+maxY)/2)
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("        " + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "        %-10d%s%10d\n", r.Points[0].X,
		strings.Repeat(" ", max(0, width-20)), r.Points[len(r.Points)-1].X)
	b.WriteString("legend: ")
	for mi, m := range methods {
		if mi > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[mi%len(markers)], m)
	}
	b.WriteString("\n")
	return b.String()
}

// markerLine is the low-key glyph for interpolated segments.
func markerLine(marker byte) byte {
	switch marker {
	case 'R':
		return '.'
	case 'D':
		return ':'
	case 'H':
		return '\''
	default:
		return '`'
	}
}
