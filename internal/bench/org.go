package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// OrgResult is the outcome of the organisation-scale audit (§IV-B):
// the detection report, the planted ground truth, and phase timings.
type OrgResult struct {
	Report      *core.Report        `json:"report"`
	GroundTruth *gen.OrgGroundTruth `json:"groundTruth"`
	GenerateDur time.Duration       `json:"generateDurationNanos"`
	AnalyzeDur  time.Duration       `json:"analyzeDurationNanos"`
	ScaleDiv    int                 `json:"scaleDivisor"`
	Memory      MemoryComparison    `json:"memory"`
}

// MemoryComparison reports the §III-B storage trade-off for a dataset:
// the full adjacency matrix, the two dense sub-matrices, and the CSR
// sparse form, in bytes of bit/index storage.
type MemoryComparison struct {
	FullAdjacencyBytes int `json:"fullAdjacencyBytes"`
	DenseBytes         int `json:"denseBytes"`
	SparseBytes        int `json:"sparseBytes"`
}

// RunOrg generates the organisation-scale dataset (optionally shrunk by
// scaleDiv) and analyses it with the sparse Role Diet pipeline — the
// only configuration that completes at full scale, mirroring the
// paper's finding that both baselines had to be halted after 24 hours
// while the custom algorithm finished in about two minutes.
func RunOrg(scaleDiv int) (*OrgResult, error) {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	params := gen.DefaultOrgParams().Scaled(scaleDiv)

	start := time.Now()
	ds, gt, err := gen.Org(params)
	if err != nil {
		return nil, err
	}
	genDur := time.Since(start)

	start = time.Now()
	rep, err := core.AnalyzeSparse(ds, core.Options{SimilarThreshold: 1})
	if err != nil {
		return nil, err
	}
	analyzeDur := time.Since(start)

	s := ds.Stats()
	full := s.Users + s.Roles + s.Permissions
	mem := MemoryComparison{
		// (u+r+p)^2 bits, in bytes.
		FullAdjacencyBytes: full * full / 8,
		DenseBytes: matrix.MemoryBytesDense(s.Roles, s.Users) +
			matrix.MemoryBytesDense(s.Roles, s.Permissions),
		SparseBytes: ds.RUAMCSR().MemoryBytes() + ds.RPAMCSR().MemoryBytes(),
	}
	return &OrgResult{
		Report:      rep,
		GroundTruth: gt,
		GenerateDur: genDur,
		AnalyzeDur:  analyzeDur,
		ScaleDiv:    scaleDiv,
		Memory:      mem,
	}, nil
}

// Table renders the §IV-B comparison: one row per reported figure,
// planted vs detected. "similar (detected)" counts include the exact
// groups, which are within any positive threshold by definition; the
// "similar only" rows subtract them to match the paper's phrasing
// "share the same users, except for one".
func (o *OrgResult) Table() string {
	rep, gt := o.Report, o.GroundTruth
	var b strings.Builder
	fmt.Fprintf(&b, "organisation-scale audit (scale 1/%d): %d users, %d roles, %d permissions\n",
		o.ScaleDiv, rep.Stats.Users, rep.Stats.Roles, rep.Stats.Permissions)
	fmt.Fprintf(&b, "generate %v, analyze %v (linear %v, same %v, similar %v)\n\n",
		o.GenerateDur.Round(time.Millisecond), o.AnalyzeDur.Round(time.Millisecond),
		rep.LinearScanDuration.Round(time.Millisecond),
		rep.SameGroupsDuration.Round(time.Millisecond),
		rep.SimilarGroupDuration.Round(time.Millisecond))

	fmt.Fprintf(&b, "%-44s %10s %10s\n", "inefficiency", "planted", "detected")
	row := func(name string, planted, detected int) {
		mark := ""
		if planted != detected {
			mark = "  <- MISMATCH"
		}
		fmt.Fprintf(&b, "%-44s %10d %10d%s\n", name, planted, detected, mark)
	}
	row("standalone users", gt.StandaloneUsers, len(rep.StandaloneUsers))
	row("standalone permissions", gt.StandalonePermissions, len(rep.StandalonePermissions))
	row("roles without users", gt.RolesWithoutUsers, len(rep.RolesWithoutUsers))
	row("roles without permissions", gt.RolesWithoutPermissions, len(rep.RolesWithoutPermissions))
	row("roles with a single user", gt.SingleUserRoles, len(rep.RolesWithSingleUser))
	row("roles with a single permission", gt.SinglePermissionRoles, len(rep.RolesWithSinglePermission))

	same := core.StatsOf(rep.SameUserGroups)
	samep := core.StatsOf(rep.SamePermissionGroups)
	row("roles sharing the same users", gt.SameUserGroupRoles, same.RolesInGroups)
	row("roles sharing the same permissions", gt.SamePermissionGroupRoles, samep.RolesInGroups)

	sim := core.StatsOf(rep.SimilarUserGroups)
	simp := core.StatsOf(rep.SimilarPermissionGroups)
	row("roles sharing all but one user (similar only)",
		gt.SimilarUserGroupRoles, sim.RolesInGroups-same.RolesInGroups)
	row("roles sharing all but one permission (similar only)",
		gt.SimilarPermissionGroupRoles, simp.RolesInGroups-samep.RolesInGroups)

	reducible := rep.TotalReducibleRoles()
	fmt.Fprintf(&b, "\nconsolidating class-4 groups removes %d of %d roles (%.1f%%)\n",
		reducible, rep.Stats.Roles, 100*float64(reducible)/float64(rep.Stats.Roles))
	fmt.Fprintf(&b, "storage (paper section III-B): full adjacency %s, dense RUAM+RPAM %s, CSR %s\n",
		formatBytes(o.Memory.FullAdjacencyBytes), formatBytes(o.Memory.DenseBytes),
		formatBytes(o.Memory.SparseBytes))
	return b.String()
}

// Matches reports whether every detected count equals its planted
// ground truth.
func (o *OrgResult) Matches() bool {
	rep, gt := o.Report, o.GroundTruth
	same := core.StatsOf(rep.SameUserGroups)
	samep := core.StatsOf(rep.SamePermissionGroups)
	sim := core.StatsOf(rep.SimilarUserGroups)
	simp := core.StatsOf(rep.SimilarPermissionGroups)
	return len(rep.StandaloneUsers) == gt.StandaloneUsers &&
		len(rep.StandalonePermissions) == gt.StandalonePermissions &&
		len(rep.RolesWithoutUsers) == gt.RolesWithoutUsers &&
		len(rep.RolesWithoutPermissions) == gt.RolesWithoutPermissions &&
		len(rep.RolesWithSingleUser) == gt.SingleUserRoles &&
		len(rep.RolesWithSinglePermission) == gt.SinglePermissionRoles &&
		same.RolesInGroups == gt.SameUserGroupRoles &&
		samep.RolesInGroups == gt.SamePermissionGroupRoles &&
		sim.RolesInGroups-same.RolesInGroups == gt.SimilarUserGroupRoles &&
		simp.RolesInGroups-samep.RolesInGroups == gt.SimilarPermissionGroupRoles
}
