// Package session maintains live mutation sessions: a dataset snapshot
// plus two incremental duplicate-role indices (user side and
// permission side) that are kept current as replay events apply, so a
// duplicate-group audit reads off the index in time proportional to
// the answer instead of re-running the detection engine over the
// corpus.
//
// A Session is the O(delta) counterpart of core.Analyze's class-4
// findings: after any event sequence, Audit() returns exactly the
// same-user and same-permission groups a full re-analysis of the
// mutated dataset would report (the differential suite in
// internal/testkit proves this over every seeded corpus).
package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/incremental"
	"repro/internal/rbac"
	"repro/internal/replay"
	"repro/internal/ttl"
)

// Sentinel errors.
var (
	// ErrNotFound reports an unknown or expired session id.
	ErrNotFound = errors.New("session: not found")
	// ErrTooManySessions reports the manager's live-session cap.
	ErrTooManySessions = errors.New("session: too many live sessions")
)

// defaultSeed perturbs the Zobrist column hashes. Any fixed value is
// fine for correctness (collisions are verified away); a constant keeps
// audits reproducible across restarts.
const defaultSeed = 0x726f6c6564696574 // "rolediet"

// Session is one live mutation stream over a base dataset. All methods
// are safe for concurrent use.
//
// Role identities inside the indices are session-stable ints that are
// never reused: rbac.Dataset indices shift when entities are removed,
// so the session keeps its own id maps and mirrors every event into
// them alongside the dataset itself.
type Session struct {
	mu sync.Mutex

	id      string
	base    string // content digest of the base dataset
	created time.Time
	touched time.Time

	ds    *rbac.Dataset
	users *incremental.Index // role -> assigned user set
	perms *incremental.Index // role -> granted permission set

	roleInt map[rbac.RoleID]int
	roleOf  map[int]rbac.RoleID
	userInt map[rbac.UserID]int
	permInt map[rbac.PermissionID]int

	// Reverse adjacency: column int -> set of role ints holding it, so
	// removing a user/permission revokes only its own edges (O(degree),
	// not O(roles)).
	userRoles map[int]map[int]struct{}
	permRoles map[int]map[int]struct{}

	nextRole, nextUser, nextPerm int

	applied int // events applied over the session's lifetime
}

// New builds a session over its own clone of base. The digest is
// carried verbatim into Info/Audit for correlation; it is not
// recomputed here.
func New(id, digest string, base *rbac.Dataset) *Session {
	s := &Session{
		id:        id,
		base:      digest,
		created:   time.Now(),
		touched:   time.Now(),
		ds:        base.Clone(),
		users:     incremental.New(defaultSeed),
		perms:     incremental.New(defaultSeed ^ 0x5045524d), // "PERM"
		roleInt:   make(map[rbac.RoleID]int),
		roleOf:    make(map[int]rbac.RoleID),
		userInt:   make(map[rbac.UserID]int),
		permInt:   make(map[rbac.PermissionID]int),
		userRoles: make(map[int]map[int]struct{}),
		permRoles: make(map[int]map[int]struct{}),
	}
	for _, u := range s.ds.Users() {
		s.userInt[u] = s.nextUser
		s.userRoles[s.nextUser] = make(map[int]struct{})
		s.nextUser++
	}
	for _, p := range s.ds.Permissions() {
		s.permInt[p] = s.nextPerm
		s.permRoles[s.nextPerm] = make(map[int]struct{})
		s.nextPerm++
	}
	for _, r := range s.ds.Roles() {
		ri := s.nextRole
		s.nextRole++
		s.roleInt[r] = ri
		s.roleOf[ri] = r
		_ = s.users.AddRole(ri)
		_ = s.perms.AddRole(ri)
		us, _ := s.ds.RoleUsers(r)
		for _, u := range us {
			ui := s.userInt[u]
			_ = s.users.Assign(ri, ui)
			s.userRoles[ui][ri] = struct{}{}
		}
		ps, _ := s.ds.RolePermissions(r)
		for _, p := range ps {
			pi := s.permInt[p]
			_ = s.perms.Assign(ri, pi)
			s.permRoles[pi][ri] = struct{}{}
		}
	}
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Base returns the base dataset's content digest.
func (s *Session) Base() string { return s.base }

// Apply validates and applies events in order, mutating the dataset
// and both indices. It stops at the first failing event and reports
// how many events before it applied cleanly — the session stays
// consistent at that prefix; nothing of the failed event takes effect.
func (s *Session) Apply(events []replay.Event) (applied int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched = time.Now()
	for i, e := range events {
		if err := replay.Apply(s.ds, e); err != nil {
			return i, fmt.Errorf("event %d (%s): %w", i, e.Op, err)
		}
		if err := s.mirror(e); err != nil {
			// The dataset accepted the event, so a mirror failure is an
			// internal invariant break, not bad input.
			return i, fmt.Errorf("event %d (%s): index mirror: %w", i, e.Op, err)
		}
		s.applied++
	}
	return len(events), nil
}

// mirror folds one already-dataset-applied event into the indices and
// id maps. replay.Apply has validated the event against the dataset,
// so entity lookups here cannot miss.
func (s *Session) mirror(e replay.Event) error {
	switch e.Op {
	case replay.OpAddUser:
		s.userInt[e.User] = s.nextUser
		s.userRoles[s.nextUser] = make(map[int]struct{})
		s.nextUser++
	case replay.OpRemoveUser:
		ui := s.userInt[e.User]
		for ri := range s.userRoles[ui] {
			if err := s.users.Revoke(ri, ui); err != nil {
				return err
			}
		}
		delete(s.userRoles, ui)
		delete(s.userInt, e.User)
	case replay.OpAddPermission:
		s.permInt[e.Permission] = s.nextPerm
		s.permRoles[s.nextPerm] = make(map[int]struct{})
		s.nextPerm++
	case replay.OpRemovePermission:
		pi := s.permInt[e.Permission]
		for ri := range s.permRoles[pi] {
			if err := s.perms.Revoke(ri, pi); err != nil {
				return err
			}
		}
		delete(s.permRoles, pi)
		delete(s.permInt, e.Permission)
	case replay.OpAddRole:
		ri := s.nextRole
		s.nextRole++
		s.roleInt[e.Role] = ri
		s.roleOf[ri] = e.Role
		if err := s.users.AddRole(ri); err != nil {
			return err
		}
		if err := s.perms.AddRole(ri); err != nil {
			return err
		}
	case replay.OpRemoveRole:
		ri := s.roleInt[e.Role]
		ucols, _ := s.users.Columns(ri)
		for _, ui := range ucols {
			delete(s.userRoles[ui], ri)
		}
		pcols, _ := s.perms.Columns(ri)
		for _, pi := range pcols {
			delete(s.permRoles[pi], ri)
		}
		if err := s.users.RemoveRole(ri); err != nil {
			return err
		}
		if err := s.perms.RemoveRole(ri); err != nil {
			return err
		}
		delete(s.roleInt, e.Role)
		delete(s.roleOf, ri)
	case replay.OpAssignUser:
		ri, ui := s.roleInt[e.Role], s.userInt[e.User]
		if err := s.users.Assign(ri, ui); err != nil {
			return err
		}
		s.userRoles[ui][ri] = struct{}{}
	case replay.OpRevokeUser:
		ri, ui := s.roleInt[e.Role], s.userInt[e.User]
		if err := s.users.Revoke(ri, ui); err != nil {
			return err
		}
		delete(s.userRoles[ui], ri)
	case replay.OpAssignPermission:
		ri, pi := s.roleInt[e.Role], s.permInt[e.Permission]
		if err := s.perms.Assign(ri, pi); err != nil {
			return err
		}
		s.permRoles[pi][ri] = struct{}{}
	case replay.OpRevokePermission:
		ri, pi := s.roleInt[e.Role], s.permInt[e.Permission]
		if err := s.perms.Revoke(ri, pi); err != nil {
			return err
		}
		delete(s.permRoles[pi], ri)
	default:
		return fmt.Errorf("session: unknown op %q", e.Op)
	}
	return nil
}

// Audit is the O(answer) duplicate-group report: role groups sharing
// identical user sets and identical permission sets, matching the
// class-4 findings of a full core.Analyze of the mutated dataset
// (empty assignment sets are excluded, as the framework files those
// under class 2). Groups and members are sorted lexically so equal
// audits are byte-identical when encoded.
type Audit struct {
	Base                 string          `json:"base"`
	Events               int             `json:"events"`
	Stats                rbac.Stats      `json:"stats"`
	SameUserGroups       [][]rbac.RoleID `json:"sameUserGroups"`
	SamePermissionGroups [][]rbac.RoleID `json:"samePermissionGroups"`
}

// Audit snapshots the current duplicate groups off the indices — no
// engine run, no matrix materialisation.
func (s *Session) Audit() Audit {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched = time.Now()
	return Audit{
		Base:                 s.base,
		Events:               s.applied,
		Stats:                s.ds.Stats(),
		SameUserGroups:       s.groupIDs(s.users),
		SamePermissionGroups: s.groupIDs(s.perms),
	}
}

// groupIDs reads one index's duplicate groups and maps session ints
// back to role ids in canonical order.
func (s *Session) groupIDs(idx *incremental.Index) [][]rbac.RoleID {
	raw := idx.Groups(incremental.GroupOptions{IgnoreEmpty: true})
	out := make([][]rbac.RoleID, 0, len(raw))
	for _, g := range raw {
		ids := make([]rbac.RoleID, 0, len(g))
		for _, ri := range g {
			ids = append(ids, s.roleOf[ri])
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, ids)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Dataset returns a snapshot clone of the session's current dataset.
func (s *Session) Dataset() *rbac.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ds.Clone()
}

// Info is a session snapshot for listings and create responses.
type Info struct {
	ID      string     `json:"id"`
	Base    string     `json:"base"`
	Events  int        `json:"events"`
	Stats   rbac.Stats `json:"stats"`
	Created time.Time  `json:"created"`
	Touched time.Time  `json:"touched"`
}

// Info snapshots identity, event count, and dataset stats.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		ID:      s.id,
		Base:    s.base,
		Events:  s.applied,
		Stats:   s.ds.Stats(),
		Created: s.created,
		Touched: s.touched,
	}
}

// Options configures a Manager.
type Options struct {
	// TTL expires sessions idle (no Apply/Audit/Get) that long;
	// defaults to 30 minutes. Expiry is checked lazily on access and
	// garbage-collected by a background sweeper.
	TTL time.Duration
	// MaxSessions caps live sessions; Create past it fails with
	// ErrTooManySessions. Defaults to 128.
	MaxSessions int
}

func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = 30 * time.Minute
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 128
	}
	return o
}

// Manager owns the live sessions of one node: creation, lookup with
// idle-TTL expiry, and a background sweep bounding memory for
// abandoned ids.
type Manager struct {
	opts    Options
	mu      sync.Mutex
	live    map[string]*Session
	sweeper *ttl.Sweeper
	closed  bool
}

// NewManager builds a manager and starts its sweeper.
func NewManager(opts Options) *Manager {
	m := &Manager{opts: opts.withDefaults(), live: make(map[string]*Session)}
	m.sweeper = ttl.NewSweeper(nil, ttl.Interval(m.opts.TTL), m.sweep)
	return m
}

// Create opens a session over base (identified by its content digest)
// and registers it under a fresh id.
func (m *Manager) Create(digest string, base *rbac.Dataset) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("session: manager closed")
	}
	if len(m.live) >= m.opts.MaxSessions {
		return nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, len(m.live))
	}
	s := New(newID(), digest, base)
	m.live[s.id] = s
	return s, nil
}

// Get resolves a live session, touching its idle timer. An expired
// session is removed and reported as ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.live[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	s.mu.Lock()
	expired := ttl.Expired(s.touched, time.Now(), m.opts.TTL)
	if !expired {
		s.touched = time.Now()
	}
	s.mu.Unlock()
	if expired {
		delete(m.live, id)
		return nil, fmt.Errorf("%w: %q (expired)", ErrNotFound, id)
	}
	return s, nil
}

// Delete closes a session; it reports whether the id was live.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.live[id]
	delete(m.live, id)
	return ok
}

// Len counts live sessions (including not-yet-swept expired ones).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// List snapshots every live session, ordered by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.live))
	for _, s := range m.live {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close stops the sweeper and drops every session.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.live = make(map[string]*Session)
	m.mu.Unlock()
	m.sweeper.Stop()
}

// sweep garbage-collects idle-expired sessions.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, s := range m.live {
		s.mu.Lock()
		expired := ttl.Expired(s.touched, now, m.opts.TTL)
		s.mu.Unlock()
		if expired {
			delete(m.live, id)
		}
	}
}

// newID mints a 16-hex-character session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a time-derived id
		// keeps the daemon limping rather than panicking.
		return fmt.Sprintf("s%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
