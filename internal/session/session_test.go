package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rbac"
	"repro/internal/replay"
)

// groupsKey renders a group partition order-independently: members are
// sorted before keying, so engine order (dataset index) and session
// order (lexical) compare as sets.
func groupsKey(groups [][]rbac.RoleID) map[string]bool {
	out := make(map[string]bool, len(groups))
	for _, g := range groups {
		ids := append([]rbac.RoleID(nil), g...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		key := ""
		for _, id := range ids {
			key += string(id) + "\x00"
		}
		out[key] = true
	}
	return out
}

func reportGroups(groups []core.RoleGroup) [][]rbac.RoleID {
	out := make([][]rbac.RoleID, 0, len(groups))
	for _, g := range groups {
		ids := append([]rbac.RoleID(nil), g.Roles...)
		out = append(out, ids)
	}
	return out
}

// requireSameGroups asserts two partitions are set-identical.
func requireSameGroups(t *testing.T, label string, got, want [][]rbac.RoleID) {
	t.Helper()
	gk, wk := groupsKey(got), groupsKey(want)
	if len(gk) != len(wk) {
		t.Fatalf("%s: %d groups, want %d\ngot:  %v\nwant: %v", label, len(gk), len(wk), got, want)
	}
	for k := range wk {
		if !gk[k] {
			t.Fatalf("%s: missing group %q\ngot:  %v\nwant: %v", label, k, got, want)
		}
	}
}

// requireMatchesAnalyze audits the session and checks both sides
// against a full engine run over the same dataset.
func requireMatchesAnalyze(t *testing.T, s *Session) {
	t.Helper()
	audit := s.Audit()
	rep, err := core.AnalyzeContext(context.Background(), s.Dataset(), core.Options{SkipSimilar: true})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	requireSameGroups(t, "same-user", audit.SameUserGroups, reportGroups(rep.SameUserGroups))
	requireSameGroups(t, "same-permission", audit.SamePermissionGroups, reportGroups(rep.SamePermissionGroups))
}

func smallBase(t *testing.T) *rbac.Dataset {
	t.Helper()
	d := rbac.NewDataset()
	for u := 0; u < 12; u++ {
		if err := d.AddUser(rbac.UserID(fmt.Sprintf("u%02d", u))); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 8; p++ {
		if err := d.AddPermission(rbac.PermissionID(fmt.Sprintf("p%02d", p))); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 10; r++ {
		id := rbac.RoleID(fmt.Sprintf("r%02d", r))
		if err := d.AddRole(id); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 12; u++ {
			if (u+r)%3 == 0 {
				_ = d.AssignUser(id, rbac.UserID(fmt.Sprintf("u%02d", u)))
			}
		}
		for p := 0; p < 8; p++ {
			if (p*r)%5 == 1 {
				_ = d.AssignPermission(id, rbac.PermissionID(fmt.Sprintf("p%02d", p)))
			}
		}
	}
	return d
}

// TestAuditMatchesAnalyzeAtBase: the freshly built session already
// agrees with the engine, before any events.
func TestAuditMatchesAnalyzeAtBase(t *testing.T) {
	s := New("t", "d", smallBase(t))
	requireMatchesAnalyze(t, s)
}

// TestAuditMatchesAnalyzeUnderDrift: after every batch of generated
// churn — including entity removals, which shift rbac indices — the
// incremental audit stays identical to a full re-analysis.
func TestAuditMatchesAnalyzeUnderDrift(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := smallBase(t)
		events, err := gen.Drift(base, gen.DriftParams{Events: 120, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s := New("t", "d", base)
		for i := 0; i < len(events); i += 30 {
			end := i + 30
			if end > len(events) {
				end = len(events)
			}
			if n, err := s.Apply(events[i:end]); err != nil {
				t.Fatalf("seed %d: apply[%d:%d] stopped at %d: %v", seed, i, end, n, err)
			}
			requireMatchesAnalyze(t, s)
		}
	}
}

// TestRemoveOpsExplicit drives every remove op through a handmade
// sequence (drift streams are add-heavy) and checks consistency.
func TestRemoveOpsExplicit(t *testing.T) {
	s := New("t", "d", smallBase(t))
	events := []replay.Event{
		{Op: replay.OpRemoveUser, User: "u03"},
		{Op: replay.OpRemovePermission, Permission: "p02"},
		{Op: replay.OpRemoveRole, Role: "r04"},
		{Op: replay.OpAddRole, Role: "r04"}, // re-add under a fresh session int
		{Op: replay.OpAssignUser, Role: "r04", User: "u00"},
		{Op: replay.OpAssignUser, Role: "r04", User: "u06"},
		{Op: replay.OpRemoveUser, User: "u00"},
		{Op: replay.OpAddUser, User: "u00"}, // re-added user starts unassigned
		{Op: replay.OpAssignPermission, Role: "r01", Permission: "p07"},
		{Op: replay.OpRevokePermission, Role: "r01", Permission: "p07"},
	}
	if n, err := s.Apply(events); err != nil {
		t.Fatalf("apply stopped at %d: %v", n, err)
	}
	requireMatchesAnalyze(t, s)
}

// TestApplyStopsAtFirstBadEvent: the failing event reports its index,
// nothing after it applies, and the applied prefix stays consistent.
func TestApplyStopsAtFirstBadEvent(t *testing.T) {
	s := New("t", "d", smallBase(t))
	events := []replay.Event{
		{Op: replay.OpAddUser, User: "u99"},
		{Op: replay.OpAssignUser, Role: "no-such-role", User: "u99"},
		{Op: replay.OpAddUser, User: "u98"},
	}
	n, err := s.Apply(events)
	if err == nil || n != 1 {
		t.Fatalf("applied %d, err %v; want 1 applied and an error", n, err)
	}
	if _, ok := s.Dataset().UserIndex("u98"); ok {
		t.Fatal("event after the failing one was applied")
	}
	if _, ok := s.Dataset().UserIndex("u99"); !ok {
		t.Fatal("event before the failing one was lost")
	}
	requireMatchesAnalyze(t, s)
}

// TestDriftReplayFromReconcile is the drift-endpoint shape: reconcile
// two snapshots, replay the delta through a session of before, and the
// audit matches analyzing after.
func TestDriftReplayFromReconcile(t *testing.T) {
	before := smallBase(t)
	after := before.Clone()
	events, err := gen.Drift(after, gen.DriftParams{Events: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep := &replay.Replayer{Dataset: after}
	if _, err := rep.Run(events); err != nil {
		t.Fatal(err)
	}

	delta := replay.Reconcile(before, after)
	s := New("t", "d", before)
	if n, err := s.Apply(delta); err != nil {
		t.Fatalf("apply reconcile delta stopped at %d: %v", n, err)
	}
	requireMatchesAnalyze(t, s)
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(Options{TTL: 50 * time.Millisecond, MaxSessions: 2})
	defer m.Close()

	s1, err := m.Create("d1", smallBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(s1.ID()); err != nil {
		t.Fatalf("get live: %v", err)
	}
	if _, err := m.Create("d2", smallBase(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("d3", smallBase(t)); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("cap not enforced: %v", err)
	}
	if !m.Delete(s1.ID()) {
		t.Fatal("delete live session reported false")
	}
	if _, err := m.Get(s1.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session still resolves: %v", err)
	}

	s3, err := m.Create("d3", smallBase(t))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := m.Get(s3.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle-expired session still resolves: %v", err)
	}
}

// orgBase builds the paper-scaled-down org dataset once per benchmark
// run.
func orgBase(b *testing.B) *rbac.Dataset {
	b.Helper()
	ds, _, err := gen.Org(gen.DefaultOrgParams().Scaled(10))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkFullReanalysisOneMutation is the batch path for a 1-event
// delta: mutate the dataset, re-run the engine's class-4 detectors.
func BenchmarkFullReanalysisOneMutation(b *testing.B) {
	ds := orgBase(b)
	users := ds.Users()
	roles := ds.Roles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := replay.Event{Op: replay.OpAssignUser, Role: roles[i%len(roles)], User: users[i%len(users)]}
		if err := replay.Apply(ds, e); err != nil {
			b.Fatal(err)
		}
		if _, err := core.AnalyzeContext(context.Background(), ds, core.Options{SkipSimilar: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalAuditOneMutation is the session path for the
// same delta: apply one event to the live index, read the groups off.
func BenchmarkIncrementalAuditOneMutation(b *testing.B) {
	ds := orgBase(b)
	s := New("bench", "d", ds)
	users := ds.Users()
	roles := ds.Roles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := replay.Event{Op: replay.OpAssignUser, Role: roles[i%len(roles)], User: users[i%len(users)]}
		if n, err := s.Apply([]replay.Event{e}); err != nil {
			b.Fatalf("applied %d: %v", n, err)
		}
		_ = s.Audit()
	}
}
