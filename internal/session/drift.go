package session

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rbac"
	"repro/internal/replay"
)

// DriftSide reports one assignment side's duplicate-group movement
// between two snapshots: the after-side groups, plus the groups that
// appeared (Gained) and disappeared (Lost) relative to before. Groups
// compare as exact member sets.
type DriftSide struct {
	Groups [][]rbac.RoleID `json:"groups"`
	Gained [][]rbac.RoleID `json:"gained"`
	Lost   [][]rbac.RoleID `json:"lost"`
}

// DriftReport is the drift-audit result — the schema POST /v1/drift
// serves and the rolediet drift subcommand prints.
type DriftReport struct {
	BeforeRef      string    `json:"before_ref"`
	AfterRef       string    `json:"after_ref"`
	Events         int       `json:"events"`
	SameUser       DriftSide `json:"sameUser"`
	SamePermission DriftSide `json:"samePermission"`
}

// Drift audits the movement between two snapshots: Reconcile computes
// the event delta, the delta replays through a throwaway session of
// before, and the report carries the after-side duplicate groups plus
// the set difference per side. Computing the delta walks both corpora
// once; the audits themselves read off the incremental index without
// an engine run.
func Drift(beforeRef, afterRef string, before, after *rbac.Dataset) (*DriftReport, error) {
	events := replay.Reconcile(before, after)
	s := New("drift", beforeRef, before)
	beforeAudit := s.Audit()
	if n, err := s.Apply(events); err != nil {
		// Reconcile guarantees replayability onto before; failure here
		// is an internal invariant break, not bad input.
		return nil, fmt.Errorf("session: replay drift delta stopped at event %d: %w", n, err)
	}
	afterAudit := s.Audit()
	return &DriftReport{
		BeforeRef: beforeRef,
		AfterRef:  afterRef,
		Events:    len(events),
		SameUser: diffGroupSets(
			beforeAudit.SameUserGroups, afterAudit.SameUserGroups),
		SamePermission: diffGroupSets(
			beforeAudit.SamePermissionGroups, afterAudit.SamePermissionGroups),
	}, nil
}

// diffGroupSets reports after's groups plus the set difference against
// before.
func diffGroupSets(before, after [][]rbac.RoleID) DriftSide {
	side := DriftSide{Groups: after, Gained: [][]rbac.RoleID{}, Lost: [][]rbac.RoleID{}}
	if side.Groups == nil {
		side.Groups = [][]rbac.RoleID{}
	}
	bk := make(map[string]bool, len(before))
	for _, g := range before {
		bk[groupKey(g)] = true
	}
	ak := make(map[string]bool, len(after))
	for _, g := range after {
		k := groupKey(g)
		ak[k] = true
		if !bk[k] {
			side.Gained = append(side.Gained, g)
		}
	}
	for _, g := range before {
		if !ak[groupKey(g)] {
			side.Lost = append(side.Lost, g)
		}
	}
	SortGroups(side.Gained)
	SortGroups(side.Lost)
	return side
}

// groupKey renders a member list as an order-independent map key.
func groupKey(g []rbac.RoleID) string {
	ids := make([]string, len(g))
	for i, id := range g {
		ids[i] = string(id)
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x00")
}

// SortGroups orders groups canonically: members lexically inside each
// group, groups by first member. Audit output is already in this
// order; exported for callers normalising engine reports against it.
func SortGroups(groups [][]rbac.RoleID) {
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i]) == 0 || len(groups[j]) == 0 {
			return len(groups[i]) < len(groups[j])
		}
		return groups[i][0] < groups[j][0]
	})
}
