// Package parallel provides the chunked fan-out primitive shared by
// every clustering backend's multi-core path.
//
// The pattern was first proven in rolediet's co-occurrence pass: split
// the work range into contiguous near-equal chunks, give each worker a
// private ctxcheck.Checker (Checkers are not safe for concurrent use,
// and independent polling means every worker stops within its own
// stride of a cancellation), collect per-chunk results without shared
// mutable state, and merge serially at the end. This package hoists
// that skeleton so dbscan, hnsw, and bitlsh gain the same fan-out with
// the same cancellation semantics instead of re-deriving it.
//
// Progress aggregation across workers goes through Progress, which
// keeps the engine's hook contract — (done, total) with done
// monotonically non-decreasing — even though workers complete rows out
// of order.
package parallel

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/ctxcheck"
)

// Chunk is a half-open index range [Lo, Hi).
type Chunk struct {
	Lo, Hi int
}

// Len returns the number of indices in the chunk.
func (c Chunk) Len() int { return c.Hi - c.Lo }

// Workers normalises a worker-count knob for a job of the given size:
// requested <= 0 selects GOMAXPROCS, and the result is clamped to
// [1, items] so no worker ever starts with an empty range (items == 0
// still yields 1 so SplitRange stays well-defined).
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if items > 0 && w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SplitRange divides [0, n) into at most parts contiguous chunks of
// near-equal size (the first n%parts chunks are one element longer).
func SplitRange(n, parts int) []Chunk {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Chunk, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		out = append(out, Chunk{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEachChunk runs fn once per chunk, each call on its own goroutine
// with a private context checker of the given stride (<= 0 selects
// ctxcheck.DefaultStride). It waits for every worker. If the context
// was cancelled it returns ctx.Err(), discarding whatever partial work
// the callers produced; otherwise it returns the first non-nil fn
// error in chunk order. The chunk index w is stable, so callers can
// write per-chunk results into pre-sized slices without locks.
func ForEachChunk(ctx context.Context, chunks []Chunk, stride int, fn func(w int, c Chunk, chk *ctxcheck.Checker) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(chunks) == 1 {
		// Single chunk: run on the calling goroutine, skipping the
		// fan-out machinery (the workers=1 overhead floor).
		if err := fn(0, chunks[0], ctxcheck.New(ctx, stride)); err != nil {
			return err
		}
		return ctx.Err()
	}
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for w, c := range chunks {
		w, c := w, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[w] = fn(w, c, ctxcheck.New(ctx, stride))
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Progress fans one (done, total) hook out to many workers while
// preserving the hook contract: done is monotonically non-decreasing
// and the hook is never invoked concurrently. Workers report through
// per-worker Tickers, which amortise the shared mutex to one
// acquisition per stride ticks.
type Progress struct {
	mu        sync.Mutex
	fn        func(done, total int)
	total     int
	perWorker []int
	reported  int
}

// NewProgress builds an aggregator for the given hook over workers
// fan-out lanes. A nil fn yields a nil aggregator whose Tickers are
// free no-ops, mirroring rolediet's progressTicker.
func NewProgress(fn func(done, total int), total, workers int) *Progress {
	if fn == nil {
		return nil
	}
	return &Progress{fn: fn, total: total, perWorker: make([]int, workers)}
}

// Ticker returns worker w's local ticker with the given flush stride
// (<= 0 selects ctxcheck.DefaultStride).
func (p *Progress) Ticker(w, stride int) *Ticker {
	if p == nil {
		return nil
	}
	if stride <= 0 {
		stride = ctxcheck.DefaultStride
	}
	return &Ticker{p: p, w: w, stride: stride}
}

// Finish reports completion: fn(total, total). Call it once, after
// every worker has returned.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reported = p.total
	p.fn(p.total, p.total)
	p.mu.Unlock()
}

// Ticker is one worker's progress lane. Not safe for concurrent use;
// each worker gets its own.
type Ticker struct {
	p      *Progress
	w      int
	stride int
	n      int
}

// Tick records one unit of loop work with done items of this worker's
// chunk completed. Every stride-th call folds the worker's count into
// the aggregate and, if the global done advanced, invokes the hook.
func (t *Ticker) Tick(done int) {
	if t == nil {
		return
	}
	t.n++
	if t.n < t.stride {
		return
	}
	t.n = 0
	t.flush(done)
}

// Flush folds the worker's final count in without waiting for a stride
// boundary; call it when the worker finishes its chunk.
func (t *Ticker) Flush(done int) {
	if t == nil {
		return
	}
	t.flush(done)
}

func (t *Ticker) flush(done int) {
	p := t.p
	p.mu.Lock()
	if done > p.perWorker[t.w] {
		p.perWorker[t.w] = done
	}
	sum := 0
	for _, d := range p.perWorker {
		sum += d
	}
	if sum > p.total {
		sum = p.total
	}
	if sum > p.reported {
		p.reported = sum
		p.fn(sum, p.total)
	}
	p.mu.Unlock()
}
