package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/ctxcheck"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4, 100); got != 4 {
		t.Fatalf("Workers(4, 100) = %d, want 4", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (clamped to items)", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Fatalf("Workers(0, 100) = %d, want >= 1", got)
	}
	if got := Workers(-5, 0); got != 1 {
		t.Fatalf("Workers(-5, 0) = %d, want 1", got)
	}
}

func TestSplitRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 7}, {5, 5}, {3, 10},
	} {
		chunks := SplitRange(tc.n, tc.parts)
		covered := 0
		lo := 0
		for _, c := range chunks {
			if c.Lo != lo {
				t.Fatalf("SplitRange(%d,%d): chunk starts at %d, want %d", tc.n, tc.parts, c.Lo, lo)
			}
			if c.Hi < c.Lo {
				t.Fatalf("SplitRange(%d,%d): inverted chunk %+v", tc.n, tc.parts, c)
			}
			covered += c.Len()
			lo = c.Hi
		}
		if covered != tc.n {
			t.Fatalf("SplitRange(%d,%d) covers %d indices", tc.n, tc.parts, covered)
		}
		if tc.n > 0 && len(chunks) > tc.parts {
			t.Fatalf("SplitRange(%d,%d) made %d chunks", tc.n, tc.parts, len(chunks))
		}
	}
}

func TestForEachChunkVisitsAll(t *testing.T) {
	const n = 1000
	seen := make([]int32, n)
	chunks := SplitRange(n, 4)
	err := ForEachChunk(context.Background(), chunks, 0, func(w int, c Chunk, chk *ctxcheck.Checker) error {
		for i := c.Lo; i < c.Hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachChunkFirstErrorWins(t *testing.T) {
	errBoom := errors.New("boom")
	chunks := SplitRange(100, 4)
	err := ForEachChunk(context.Background(), chunks, 0, func(w int, c Chunk, chk *ctxcheck.Checker) error {
		if w == 2 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
}

func TestForEachChunkCancelledContextWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	chunks := SplitRange(100, 4)
	err := ForEachChunk(ctx, chunks, 0, func(w int, c Chunk, chk *ctxcheck.Checker) error {
		return errors.New("worker error that must not mask ctx.Err")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachChunkSingleChunkRunsInline(t *testing.T) {
	chunks := SplitRange(10, 1)
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	ran := false
	err := ForEachChunk(context.Background(), chunks, 0, func(w int, c Chunk, chk *ctxcheck.Checker) error {
		ran = true
		if w != 0 || c.Lo != 0 || c.Hi != 10 {
			t.Fatalf("unexpected chunk %d %+v", w, c)
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
}

func TestProgressMonotonicAndConcurrencySafe(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
		total   = workers * perW
	)
	var last int64 = -1
	violations := int32(0)
	p := NewProgress(func(done, tot int) {
		// The aggregator holds its mutex across the hook, so plain
		// reads/writes of last are safe here; the race detector would
		// flag it otherwise.
		if int64(done) < last {
			atomic.AddInt32(&violations, 1)
		}
		last = int64(done)
		if tot != total {
			atomic.AddInt32(&violations, 1)
		}
		if done > tot {
			atomic.AddInt32(&violations, 1)
		}
	}, total, workers)

	chunks := SplitRange(total, workers)
	err := ForEachChunk(context.Background(), chunks, 0, func(w int, c Chunk, chk *ctxcheck.Checker) error {
		tick := p.Ticker(w, 64)
		for i := c.Lo; i < c.Hi; i++ {
			tick.Tick(i - c.Lo + 1)
		}
		tick.Flush(c.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Finish()
	if violations != 0 {
		t.Fatalf("%d progress contract violations", violations)
	}
	if last != int64(total) {
		t.Fatalf("final done = %d, want %d", last, total)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress = NewProgress(nil, 10, 2)
	if p != nil {
		t.Fatal("NewProgress(nil, ...) should be nil")
	}
	tick := p.Ticker(0, 8)
	for i := 0; i < 100; i++ {
		tick.Tick(i)
	}
	tick.Flush(100)
	p.Finish() // must not panic
}
