package consolidate_test

import (
	"fmt"

	"repro/internal/consolidate"
	"repro/internal/core"
	"repro/internal/rbac"
)

// ExampleConsolidate shows the one-call cleanup pipeline: detect
// class-4 groups, plan merges, apply them, and verify no effective
// permission changed.
func ExampleConsolidate() {
	ds := rbac.Figure1()
	after, plan, err := consolidate.Consolidate(ds, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, m := range plan.Merges {
		fmt.Printf("merge %v into %s (identical %s)\n", m.Remove, m.Keep, m.Side)
	}
	fmt.Printf("roles: %d -> %d\n", ds.NumRoles(), after.NumRoles())
	fmt.Println("safe:", consolidate.VerifySafety(ds, after) == nil)
	// Output:
	// merge [R04] into R02 (identical users)
	// roles: 5 -> 4
	// safe: true
}

// ExampleSuggestSimilar produces reviewable merge proposals for similar
// (class-5) groups, with the exact grant delta each merge would cause.
func ExampleSuggestSimilar() {
	ds := rbac.Figure1()
	rep, err := core.Analyze(ds, core.Options{SimilarThreshold: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	suggestions, err := consolidate.SuggestSimilar(ds, rep)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, s := range suggestions {
		fmt.Printf("merge %v (similar %s): %d new grants\n",
			s.Roles, s.Side, len(s.AddedGrants))
	}
	// Output:
	// merge [R02 R04] (similar users): 0 new grants
	// merge [R04 R05] (similar permissions): 0 new grants
}
