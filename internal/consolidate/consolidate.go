// Package consolidate turns detected class-4 role groups into concrete,
// provably safe merge plans — the paper's headline that consolidating
// roles sharing the same users or permissions can remove ~10% of all
// roles, "without granting extra permissions" (§II, §IV-B).
//
// Safety argument: if roles r₁…rₙ have identical user sets U, every
// u ∈ U already holds every rᵢ, so u's effective permissions are
// ⋃ perms(rᵢ). Replacing the group with one role (users U, permissions
// ⋃ perms(rᵢ)) leaves every user's effective permissions unchanged.
// Symmetrically for identical permission sets. Similar (class-5) groups
// are NOT safe to merge automatically — a merge would grant the union —
// so the planner only reports them for administrator review.
package consolidate

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/rbac"
)

// Side says which side of a group is identical.
type Side int

// Sides of the tripartite graph a group can share.
const (
	// SideUsers marks groups sharing the same user set.
	SideUsers Side = iota + 1
	// SidePermissions marks groups sharing the same permission set.
	SidePermissions
)

// String names the side.
func (s Side) String() string {
	switch s {
	case SideUsers:
		return "users"
	case SidePermissions:
		return "permissions"
	default:
		return fmt.Sprintf("consolidate.Side(%d)", int(s))
	}
}

// Merge collapses one role group into its first member.
type Merge struct {
	// Keep is the surviving role.
	Keep rbac.RoleID `json:"keep"`
	// Remove lists the roles to delete after folding their assignments
	// into Keep.
	Remove []rbac.RoleID `json:"remove"`
	// Side is the identical side; the other side is unioned into Keep.
	Side Side `json:"side"`
}

// Plan is an ordered set of merges. Each role appears in at most one
// merge, so the plan can be applied in any order.
type Plan struct {
	Merges []Merge `json:"merges"`
}

// RolesRemoved returns the number of roles the plan deletes.
func (p *Plan) RolesRemoved() int {
	n := 0
	for _, m := range p.Merges {
		n += len(m.Remove)
	}
	return n
}

// FromReport builds a plan from a detection report's class-4 groups.
// Same-user groups are planned first; a role already claimed by one
// merge is skipped by later groups (the paper notes the same role can
// be linked to multiple inefficiencies — it can still only be merged
// once per cleanup round; re-running the framework converges).
func FromReport(rep *core.Report) *Plan {
	plan := &Plan{}
	claimed := make(map[rbac.RoleID]struct{})
	addGroups := func(groups []core.RoleGroup, side Side) {
		for _, g := range groups {
			free := make([]rbac.RoleID, 0, len(g.Roles))
			for _, r := range g.Roles {
				if _, taken := claimed[r]; !taken {
					free = append(free, r)
				}
			}
			if len(free) < 2 {
				continue
			}
			for _, r := range free {
				claimed[r] = struct{}{}
			}
			plan.Merges = append(plan.Merges, Merge{
				Keep:   free[0],
				Remove: free[1:],
				Side:   side,
			})
		}
	}
	addGroups(rep.SameUserGroups, SideUsers)
	addGroups(rep.SamePermissionGroups, SidePermissions)
	return plan
}

// Apply executes the plan on a copy of the dataset and returns the
// consolidated copy. The input dataset is not modified.
func Apply(d *rbac.Dataset, plan *Plan) (*rbac.Dataset, error) {
	out := d.Clone()
	for mi, m := range plan.Merges {
		if len(m.Remove) == 0 {
			continue
		}
		for _, victim := range m.Remove {
			switch m.Side {
			case SideUsers:
				// Fold the victim's permissions into the keeper.
				perms, err := out.RolePermissions(victim)
				if err != nil {
					return nil, fmt.Errorf("merge %d: %w", mi, err)
				}
				for _, p := range perms {
					if err := out.AssignPermission(m.Keep, p); err != nil {
						return nil, fmt.Errorf("merge %d: %w", mi, err)
					}
				}
			case SidePermissions:
				// Fold the victim's users into the keeper.
				users, err := out.RoleUsers(victim)
				if err != nil {
					return nil, fmt.Errorf("merge %d: %w", mi, err)
				}
				for _, u := range users {
					if err := out.AssignUser(m.Keep, u); err != nil {
						return nil, fmt.Errorf("merge %d: %w", mi, err)
					}
				}
			default:
				return nil, fmt.Errorf("merge %d: unknown side %d", mi, int(m.Side))
			}
			if err := out.RemoveRole(victim); err != nil {
				return nil, fmt.Errorf("merge %d: %w", mi, err)
			}
		}
	}
	return out, nil
}

// VerifySafety checks that consolidation preserved every user's
// effective permissions exactly: nothing granted, nothing revoked. It
// returns the first discrepancy found.
//
// The comparison runs in before's permission index space on a two-row
// bitmat arena allocated once and reused for every user: both effective
// rows are OR-ed together straight from the role permission sets (no
// per-user maps, no id round-trips), compared word-wise with RowEqual,
// then sparsely cleared for the next user. A full 2n-row pack was
// measured and rejected: at paper/10 scale it is an ~80 MB arena whose
// cells are touched about once each, so the page-fault and zeroing tax
// dwarfs the word-wise comparison it buys, while the two hot rows here
// stay L1-resident. The original map-of-maps implementation is kept as
// verifySafetyMaps — the benchmark baseline and differential oracle.
func VerifySafety(before, after *rbac.Dataset) error {
	n := before.NumUsers()
	if after.NumUsers() != n {
		return fmt.Errorf("consolidate: user count changed from %d to %d",
			n, after.NumUsers())
	}

	// Index remaps from before's id spaces into after's. Consolidation
	// clones the input, so the spaces almost always align and the remaps
	// stay nil; the general path covers independently built datasets.
	var userMap []int32
	for ui := 0; ui < n; ui++ {
		if before.User(ui) != after.User(ui) {
			userMap = make([]int32, n)
			break
		}
	}
	if userMap != nil {
		for ui := 0; ui < n; ui++ {
			aui, ok := after.UserIndex(before.User(ui))
			if !ok {
				return fmt.Errorf("consolidate: user %q disappeared", before.User(ui))
			}
			userMap[ui] = int32(aui)
		}
	}
	var permMap []int32
	if before.NumPermissions() != after.NumPermissions() {
		permMap = make([]int32, after.NumPermissions())
	} else {
		for pi := 0; pi < after.NumPermissions(); pi++ {
			if before.Permission(pi) != after.Permission(pi) {
				permMap = make([]int32, after.NumPermissions())
				break
			}
		}
	}
	if permMap != nil {
		for pi := range permMap {
			// -1 marks a permission before never defined — an over-grant
			// the moment any user effectively holds it.
			permMap[pi] = -1
			if bpi, ok := before.PermissionIndex(after.Permission(pi)); ok {
				permMap[pi] = int32(bpi)
			}
		}
	}

	bRoles := rolesByUser(before)
	aRoles := rolesByUser(after)

	arena := bitmat.New(2, before.NumPermissions())
	touched := make([]int32, 0, 64)
	for ui := 0; ui < n; ui++ {
		for _, ri := range bRoles[ui] {
			before.ForEachRolePermission(int(ri), func(pi int) bool {
				arena.Set(0, pi)
				touched = append(touched, int32(pi))
				return true
			})
		}
		aui := ui
		if userMap != nil {
			aui = int(userMap[ui])
		}
		gained := -1
		for _, ri := range aRoles[aui] {
			after.ForEachRolePermission(int(ri), func(pi int) bool {
				col := pi
				if permMap != nil {
					if col = int(permMap[pi]); col < 0 {
						gained = pi
						return false
					}
				}
				arena.Set(1, col)
				touched = append(touched, int32(col))
				return true
			})
			if gained >= 0 {
				return fmt.Errorf("consolidate: user %q gained permission %q",
					before.User(ui), after.Permission(gained))
			}
		}
		if !arena.RowEqual(0, 1) {
			return rowDiffError(before, arena, ui)
		}
		for _, c := range touched {
			arena.Clear(0, int(c))
			arena.Clear(1, int(c))
		}
		touched = touched[:0]
	}
	return nil
}

// rolesByUser inverts the role→user assignment into per-user role index
// lists, in role index order.
func rolesByUser(d *rbac.Dataset) [][]int32 {
	out := make([][]int32, d.NumUsers())
	for ri := 0; ri < d.NumRoles(); ri++ {
		d.ForEachRoleUser(ri, func(ui int) bool {
			out[ui] = append(out[ui], int32(ri))
			return true
		})
	}
	return out
}

// rowDiffError names the first differing permission between user ui's
// before row (arena row 0) and after row (arena row 1), turning a
// failed RowEqual back into the precise lost/gained message the
// map-based checker produced.
func rowDiffError(before *rbac.Dataset, arena *bitmat.Matrix, ui int) error {
	uid := before.User(ui)
	bw := arena.RowWords(0)
	aw := arena.RowWords(1)
	for k := range bw {
		diff := bw[k] ^ aw[k]
		if diff == 0 {
			continue
		}
		j := k<<6 + bits.TrailingZeros64(diff)
		pid := before.Permission(j)
		if bw[k]&(1<<(uint(j)&63)) != 0 {
			return fmt.Errorf("consolidate: user %q lost permission %q", uid, pid)
		}
		return fmt.Errorf("consolidate: user %q gained permission %q", uid, pid)
	}
	return fmt.Errorf("consolidate: user %q effective permissions changed", uid)
}

// verifySafetyMaps is the original map-of-maps implementation of
// VerifySafety, retained as the benchmark baseline and the differential
// oracle for the arena version.
func verifySafetyMaps(before, after *rbac.Dataset) error {
	beforeEff := effectiveByID(before)
	afterEff := effectiveByID(after)
	if len(beforeEff) != len(afterEff) {
		return fmt.Errorf("consolidate: user count changed from %d to %d",
			len(beforeEff), len(afterEff))
	}
	for uid, b := range beforeEff {
		a, ok := afterEff[uid]
		if !ok {
			return fmt.Errorf("consolidate: user %q disappeared", uid)
		}
		for pid := range b {
			if _, ok := a[pid]; !ok {
				return fmt.Errorf("consolidate: user %q lost permission %q", uid, pid)
			}
		}
		for pid := range a {
			if _, ok := b[pid]; !ok {
				return fmt.Errorf("consolidate: user %q gained permission %q", uid, pid)
			}
		}
	}
	return nil
}

// effectiveByID maps each user id to its effective permission id set.
func effectiveByID(d *rbac.Dataset) map[rbac.UserID]map[rbac.PermissionID]struct{} {
	eff := d.EffectivePermissions()
	out := make(map[rbac.UserID]map[rbac.PermissionID]struct{}, len(eff))
	for ui, perms := range eff {
		set := make(map[rbac.PermissionID]struct{}, len(perms))
		for pi := range perms {
			set[d.Permission(pi)] = struct{}{}
		}
		out[d.User(ui)] = set
	}
	return out
}

// Consolidate is the one-call pipeline: analyse, plan, apply, verify.
// It returns the consolidated dataset and the applied plan.
func Consolidate(d *rbac.Dataset, opts core.Options) (*rbac.Dataset, *Plan, error) {
	return ConsolidateContext(context.Background(), d, opts)
}

// ConsolidateContext is Consolidate with cooperative cancellation. The
// detection phase — the expensive part — polls the context inside its
// hot loops; the plan/apply/verify phases check it at their
// boundaries. Once cancelled, the pipeline aborts with ctx.Err() and
// the input dataset is left untouched (Apply always works on a clone).
func ConsolidateContext(ctx context.Context, d *rbac.Dataset, opts core.Options) (*rbac.Dataset, *Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.SkipSimilar = true // plans use class-4 groups only
	rep, err := core.AnalyzeContext(ctx, d, opts)
	if err != nil {
		return nil, nil, err
	}
	plan := FromReport(rep)
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	after, err := Apply(d, plan)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := VerifySafety(d, after); err != nil {
		return nil, nil, err
	}
	return after, plan, nil
}
