package consolidate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rbac"
)

// TestVerifySafetyDifferential pins the arena-based VerifySafety to the
// map-based original: on every scenario — pass, revocation, over-grant,
// user removal — both implementations must agree on whether the pair is
// safe.
func TestVerifySafetyDifferential(t *testing.T) {
	agree := func(t *testing.T, before, after *rbac.Dataset) {
		t.Helper()
		fast := VerifySafety(before, after)
		slow := verifySafetyMaps(before, after)
		if (fast == nil) != (slow == nil) {
			t.Fatalf("implementations disagree: arena=%v maps=%v", fast, slow)
		}
	}

	fig := rbac.Figure1()
	agree(t, fig, fig.Clone())

	revoked := fig.Clone()
	if err := revoked.RevokePermission("R01", "P02"); err != nil {
		t.Fatal(err)
	}
	agree(t, fig, revoked)
	if VerifySafety(fig, revoked) == nil {
		t.Fatal("arena checker missed a revocation")
	}

	granted := fig.Clone()
	if err := granted.AssignPermission("R01", "P05"); err != nil {
		t.Fatal(err)
	}
	agree(t, fig, granted)
	if VerifySafety(fig, granted) == nil {
		t.Fatal("arena checker missed an over-grant")
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r)
		after, _, err := Consolidate(ds, core.Options{})
		if err != nil {
			return false
		}
		fast := VerifySafety(ds, after)
		slow := verifySafetyMaps(ds, after)
		return (fast == nil) == (slow == nil) && fast == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// benchVerifyPair builds the paper/10 organisation and its consolidated
// counterpart once per benchmark run.
func benchVerifyPair(b *testing.B) (*rbac.Dataset, *rbac.Dataset) {
	b.Helper()
	ds, _, err := gen.Org(gen.DefaultOrgParams().Scaled(10))
	if err != nil {
		b.Fatal(err)
	}
	after, _, err := Consolidate(ds, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return ds, after
}

func BenchmarkVerifySafetyArena(b *testing.B) {
	before, after := benchVerifyPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifySafety(before, after); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifySafetyMaps(b *testing.B) {
	before, after := benchVerifyPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := verifySafetyMaps(before, after); err != nil {
			b.Fatal(err)
		}
	}
}
