package consolidate

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rbac"
)

// The paper stops at *detecting* class-5 (similar roles) and class-3
// (single-assignment roles) inefficiencies: "the approach for
// consolidating roles related to [these] inefficienc[ies] still needs
// to be developed", and fixes "must not be [applied] automatically".
// SuggestSimilar develops that approach as a review workflow: for every
// similar-role group it computes the exact grant delta a merge would
// cause — the (user, permission) pairs that would newly come into
// existence — so an administrator can approve or reject each merge with
// full knowledge of its blast radius. Zero-delta suggestions are safe
// in the class-4 sense and sorted first.

// Grant is one user–permission pair that a merge would newly create.
type Grant struct {
	User       rbac.UserID       `json:"user"`
	Permission rbac.PermissionID `json:"permission"`
}

// Suggestion is a reviewable merge proposal for one similar-role group.
type Suggestion struct {
	// Side says whether the group shares similar users or permissions.
	Side Side `json:"side"`
	// Roles lists the group members; the merge would collapse them into
	// the first.
	Roles []rbac.RoleID `json:"roles"`
	// AddedGrants are the effective permissions that would newly exist
	// if the merge were applied (union of users × union of permissions,
	// minus what users already hold through any role). Empty means the
	// merge is provably safe.
	AddedGrants []Grant `json:"addedGrants"`
}

// RiskFree reports whether applying the suggestion adds no grants.
func (s Suggestion) RiskFree() bool { return len(s.AddedGrants) == 0 }

// SuggestSimilar converts a report's class-5 groups into reviewable
// merge suggestions, sorted by ascending grant delta (risk-free merges
// first), ties broken by the first role id. The dataset must be the one
// the report was computed from.
func SuggestSimilar(d *rbac.Dataset, rep *core.Report) ([]Suggestion, error) {
	eff := d.EffectivePermissions()

	var out []Suggestion
	build := func(groups []core.RoleGroup, side Side) error {
		for _, g := range groups {
			s, err := suggestionFor(d, eff, g.Roles, side)
			if err != nil {
				return err
			}
			out = append(out, s)
		}
		return nil
	}
	if err := build(rep.SimilarUserGroups, SideUsers); err != nil {
		return nil, err
	}
	if err := build(rep.SimilarPermissionGroups, SidePermissions); err != nil {
		return nil, err
	}

	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].AddedGrants) != len(out[j].AddedGrants) {
			return len(out[i].AddedGrants) < len(out[j].AddedGrants)
		}
		if len(out[i].Roles) > 0 && len(out[j].Roles) > 0 {
			return out[i].Roles[0] < out[j].Roles[0]
		}
		return false
	})
	return out, nil
}

// suggestionFor computes the grant delta of merging one group.
func suggestionFor(d *rbac.Dataset, eff []map[int]struct{},
	roles []rbac.RoleID, side Side) (Suggestion, error) {
	userUnion := make(map[int]struct{})
	permUnion := make(map[int]struct{})
	for _, r := range roles {
		ri, ok := d.RoleIndex(r)
		if !ok {
			return Suggestion{}, fmt.Errorf("consolidate: role %q not in dataset", r)
		}
		d.UserRow(ri).ForEach(func(u int) bool {
			userUnion[u] = struct{}{}
			return true
		})
		d.PermRow(ri).ForEach(func(p int) bool {
			permUnion[p] = struct{}{}
			return true
		})
	}

	users := make([]int, 0, len(userUnion))
	for u := range userUnion {
		users = append(users, u)
	}
	sort.Ints(users)
	perms := make([]int, 0, len(permUnion))
	for p := range permUnion {
		perms = append(perms, p)
	}
	sort.Ints(perms)

	var added []Grant
	for _, u := range users {
		for _, p := range perms {
			if _, held := eff[u][p]; !held {
				added = append(added, Grant{User: d.User(u), Permission: d.Permission(p)})
			}
		}
	}
	return Suggestion{Side: side, Roles: roles, AddedGrants: added}, nil
}

// ApplySuggestion merges a suggestion's roles into the first, unioning
// both sides, on a copy of the dataset. The caller is expected to have
// reviewed AddedGrants; the new grants are exactly those pairs.
func ApplySuggestion(d *rbac.Dataset, s Suggestion) (*rbac.Dataset, error) {
	if len(s.Roles) < 2 {
		return nil, fmt.Errorf("consolidate: suggestion needs >= 2 roles, has %d", len(s.Roles))
	}
	out := d.Clone()
	keep := s.Roles[0]
	if _, ok := out.RoleIndex(keep); !ok {
		return nil, fmt.Errorf("consolidate: role %q not in dataset", keep)
	}
	for _, victim := range s.Roles[1:] {
		users, err := out.RoleUsers(victim)
		if err != nil {
			return nil, err
		}
		for _, u := range users {
			if err := out.AssignUser(keep, u); err != nil {
				return nil, err
			}
		}
		perms, err := out.RolePermissions(victim)
		if err != nil {
			return nil, err
		}
		for _, p := range perms {
			if err := out.AssignPermission(keep, p); err != nil {
				return nil, err
			}
		}
		if err := out.RemoveRole(victim); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GrantDelta computes the exact effective-permission additions going
// from before to after (pairs in after but not before). Deletions are
// not reported; use VerifySafety when none are allowed.
func GrantDelta(before, after *rbac.Dataset) []Grant {
	b := effectiveByID(before)
	a := effectiveByID(after)
	var out []Grant
	for uid, perms := range a {
		for pid := range perms {
			if _, held := b[uid][pid]; !held {
				out = append(out, Grant{User: uid, Permission: pid})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Permission < out[j].Permission
	})
	return out
}
