package consolidate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rbac"
)

func TestSideString(t *testing.T) {
	if SideUsers.String() != "users" || SidePermissions.String() != "permissions" {
		t.Fatal("side names wrong")
	}
	if !strings.Contains(Side(7).String(), "7") {
		t.Fatal("unknown side name")
	}
}

func TestConsolidateFigure1(t *testing.T) {
	ds := rbac.Figure1()
	after, plan, err := Consolidate(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 has two class-4 groups: {R02,R04} same users and
	// {R04,R05} same permissions. R04 is claimed by the first merge, so
	// the permission group has fewer than 2 free members and is skipped
	// this round.
	if len(plan.Merges) != 1 {
		t.Fatalf("merges = %+v, want 1", plan.Merges)
	}
	if plan.RolesRemoved() != 1 {
		t.Fatalf("roles removed = %d, want 1", plan.RolesRemoved())
	}
	if after.NumRoles() != ds.NumRoles()-1 {
		t.Fatalf("roles after = %d", after.NumRoles())
	}
	// R02 survives, R04 removed, and R02 now carries R04's permissions.
	if _, ok := after.RoleIndex("R04"); ok {
		t.Fatal("R04 still present")
	}
	if !after.HasPermission("R02", "P05") || !after.HasPermission("R02", "P06") {
		t.Fatal("merged role missing folded permissions")
	}
	if err := VerifySafety(ds, after); err != nil {
		t.Fatal(err)
	}
}

func TestSecondRoundConverges(t *testing.T) {
	// After the first round removes R04, a second round can merge the
	// remaining same-permission pair if one still exists.
	ds := rbac.Figure1()
	after1, _, err := Consolidate(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after2, plan2, err := Consolidate(after1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// R02 (with P05,P06 folded in) and R05 now share the same
	// permission set {P05,P06}? R02 has P05,P06; R05 has P05,P06. Yes.
	if plan2.RolesRemoved() != 1 {
		t.Fatalf("second round removed %d roles, want 1", plan2.RolesRemoved())
	}
	if err := VerifySafety(after1, after2); err != nil {
		t.Fatal(err)
	}
}

func TestFromReportSkipsClaimedRoles(t *testing.T) {
	rep := &core.Report{
		SameUserGroups: []core.RoleGroup{
			{Roles: []rbac.RoleID{"a", "b", "c"}},
		},
		SamePermissionGroups: []core.RoleGroup{
			{Roles: []rbac.RoleID{"b", "c"}},      // fully claimed -> skipped
			{Roles: []rbac.RoleID{"c", "d", "e"}}, // c claimed -> d,e merge
		},
	}
	plan := FromReport(rep)
	if len(plan.Merges) != 2 {
		t.Fatalf("merges = %+v", plan.Merges)
	}
	if plan.Merges[0].Keep != "a" || len(plan.Merges[0].Remove) != 2 {
		t.Fatalf("first merge = %+v", plan.Merges[0])
	}
	if plan.Merges[1].Keep != "d" || len(plan.Merges[1].Remove) != 1 ||
		plan.Merges[1].Remove[0] != "e" {
		t.Fatalf("second merge = %+v", plan.Merges[1])
	}
}

func TestApplyUnknownSide(t *testing.T) {
	ds := rbac.Figure1()
	plan := &Plan{Merges: []Merge{{Keep: "R01", Remove: []rbac.RoleID{"R02"}, Side: Side(9)}}}
	if _, err := Apply(ds, plan); err == nil {
		t.Fatal("unknown side accepted")
	}
}

func TestApplyMissingRole(t *testing.T) {
	ds := rbac.Figure1()
	plan := &Plan{Merges: []Merge{{Keep: "R01", Remove: []rbac.RoleID{"ghost"}, Side: SideUsers}}}
	if _, err := Apply(ds, plan); err == nil {
		t.Fatal("missing role accepted")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	ds := rbac.Figure1()
	before := ds.NumRoles()
	plan := &Plan{Merges: []Merge{{Keep: "R02", Remove: []rbac.RoleID{"R04"}, Side: SideUsers}}}
	if _, err := Apply(ds, plan); err != nil {
		t.Fatal(err)
	}
	if ds.NumRoles() != before {
		t.Fatal("Apply mutated input dataset")
	}
}

func TestEmptyPlan(t *testing.T) {
	ds := rbac.Figure1()
	after, err := Apply(ds, &Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if after.NumRoles() != ds.NumRoles() {
		t.Fatal("empty plan changed roles")
	}
	if err := VerifySafety(ds, after); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySafetyCatchesGrant(t *testing.T) {
	before := rbac.Figure1()
	after := before.Clone()
	if err := after.AssignPermission("R02", "P01"); err != nil {
		t.Fatal(err)
	}
	if err := VerifySafety(before, after); err == nil {
		t.Fatal("extra grant not caught")
	}
}

func TestVerifySafetyCatchesRevocation(t *testing.T) {
	before := rbac.Figure1()
	after := before.Clone()
	if err := after.RevokePermission("R01", "P02"); err != nil {
		t.Fatal(err)
	}
	if err := VerifySafety(before, after); err == nil {
		t.Fatal("revocation not caught")
	}
}

func TestConsolidateOrgRemovesPlannedShare(t *testing.T) {
	// On the miniature org the class-4 groups are planted pairs, so the
	// plan must remove exactly half the grouped roles.
	p := gen.DefaultOrgParams().Scaled(100)
	ds, gt, err := gen.Org(p)
	if err != nil {
		t.Fatal(err)
	}
	after, plan, err := Consolidate(ds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := gt.SameUserGroups + gt.SamePermissionGroups
	if plan.RolesRemoved() != want {
		t.Fatalf("removed %d roles, want %d", plan.RolesRemoved(), want)
	}
	if after.NumRoles() != ds.NumRoles()-want {
		t.Fatalf("after roles = %d", after.NumRoles())
	}
}

func TestPropertyConsolidationAlwaysSafe(t *testing.T) {
	// Random datasets with planted duplicate roles: consolidation must
	// always pass the safety check and never increase the role count.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r)
		after, plan, err := Consolidate(ds, core.Options{})
		if err != nil {
			return false
		}
		if after.NumRoles() != ds.NumRoles()-plan.RolesRemoved() {
			return false
		}
		return VerifySafety(ds, after) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomDataset builds a small random dataset with duplicated roles.
func randomDataset(r *rand.Rand) *rbac.Dataset {
	d := rbac.NewDataset()
	nu, np, nr := 3+r.Intn(8), 3+r.Intn(8), 4+r.Intn(10)
	for i := 0; i < nu; i++ {
		_ = d.AddUser(rbac.UserID(rune('a' + i)))
	}
	for i := 0; i < np; i++ {
		_ = d.AddPermission(rbac.PermissionID(rune('A' + i)))
	}
	for i := 0; i < nr; i++ {
		id := rbac.RoleID(fmt2(i))
		_ = d.AddRole(id)
		for u := 0; u < nu; u++ {
			if r.Intn(3) == 0 {
				_ = d.AssignUser(id, rbac.UserID(rune('a'+u)))
			}
		}
		for p := 0; p < np; p++ {
			if r.Intn(3) == 0 {
				_ = d.AssignPermission(id, rbac.PermissionID(rune('A'+p)))
			}
		}
	}
	// Duplicate a couple of roles on the user side.
	for k := 0; k < 2 && nr >= 2; k++ {
		src, dst := r.Intn(nr), r.Intn(nr)
		if src == dst {
			continue
		}
		srcUsers, _ := d.RoleUsers(rbac.RoleID(fmt2(src)))
		dstID := rbac.RoleID(fmt2(dst))
		dstUsers, _ := d.RoleUsers(dstID)
		for _, u := range dstUsers {
			_ = d.RevokeUser(dstID, u)
		}
		for _, u := range srcUsers {
			_ = d.AssignUser(dstID, u)
		}
	}
	return d
}

func fmt2(i int) string { return string(rune('r')) + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestApplySkipsEmptyMerges(t *testing.T) {
	ds := rbac.Figure1()
	plan := &Plan{Merges: []Merge{{Keep: "R01", Side: SideUsers}}} // no victims
	after, err := Apply(ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	if after.NumRoles() != ds.NumRoles() {
		t.Fatal("empty merge changed roles")
	}
}

func TestApplyPermissionSideMergeDirect(t *testing.T) {
	ds := rbac.Figure1()
	plan := &Plan{Merges: []Merge{
		{Keep: "R04", Remove: []rbac.RoleID{"R05"}, Side: SidePermissions},
	}}
	after, err := Apply(ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	// R04 gains R05's user U04 and R05 is gone.
	if !after.HasAssignment("R04", "U04") {
		t.Fatal("users not folded on permission-side merge")
	}
	if _, ok := after.RoleIndex("R05"); ok {
		t.Fatal("victim survived")
	}
	if err := VerifySafety(ds, after); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidatePropagatesAnalyzeError(t *testing.T) {
	if _, _, err := Consolidate(rbac.Figure1(), core.Options{SimilarThreshold: -3}); err == nil {
		t.Fatal("invalid options accepted")
	}
}
