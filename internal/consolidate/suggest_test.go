package consolidate

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rbac"
)

// similarDataset builds roles r1={u1,u2}/{pA} and r2={u1,u2,u3}/{pB}:
// similar on the user side (distance 1). Merging would give u1,u2,u3
// both permissions; u3 lacks pA today and u1,u2 lack pB.
func similarDataset(t *testing.T) *rbac.Dataset {
	t.Helper()
	d := rbac.NewDataset()
	for _, u := range []rbac.UserID{"u1", "u2", "u3"} {
		if err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []rbac.PermissionID{"pA", "pB"} {
		if err := d.AddPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []rbac.RoleID{"r1", "r2"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []rbac.UserID{"u1", "u2"} {
		if err := d.AssignUser("r1", u); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range []rbac.UserID{"u1", "u2", "u3"} {
		if err := d.AssignUser("r2", u); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AssignPermission("r1", "pA"); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPermission("r2", "pB"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSuggestSimilarDelta(t *testing.T) {
	d := similarDataset(t)
	rep, err := core.Analyze(d, core.Options{SimilarThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	suggestions, err := SuggestSimilar(d, rep)
	if err != nil {
		t.Fatal(err)
	}
	var userSide *Suggestion
	for i := range suggestions {
		if suggestions[i].Side == SideUsers {
			userSide = &suggestions[i]
		}
	}
	if userSide == nil {
		t.Fatalf("no user-side suggestion in %+v", suggestions)
	}
	if !reflect.DeepEqual(userSide.Roles, []rbac.RoleID{"r1", "r2"}) {
		t.Fatalf("roles = %v", userSide.Roles)
	}
	// Merging grants: only u3 gains pA — u1 and u2 already hold pB
	// effectively through r2, so the union adds nothing for them.
	want := []Grant{
		{User: "u3", Permission: "pA"},
	}
	got := append([]Grant(nil), userSide.AddedGrants...)
	sort.Slice(got, func(i, j int) bool {
		if got[i].User != got[j].User {
			return got[i].User < got[j].User
		}
		return got[i].Permission < got[j].Permission
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AddedGrants = %v, want %v", got, want)
	}
	if userSide.RiskFree() {
		t.Fatal("suggestion with grants reported risk-free")
	}
}

func TestSuggestSimilarRiskFreeFirst(t *testing.T) {
	// Figure 1's class-5 groups at k=1 include the exact class-4 pairs,
	// whose merge deltas are empty; those must sort before risky ones.
	d := rbac.Figure1()
	rep, err := core.Analyze(d, core.Options{SimilarThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	suggestions, err := SuggestSimilar(d, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	for i := 1; i < len(suggestions); i++ {
		if len(suggestions[i-1].AddedGrants) > len(suggestions[i].AddedGrants) {
			t.Fatalf("suggestions not sorted by risk: %+v", suggestions)
		}
	}
	if !suggestions[0].RiskFree() {
		t.Fatalf("first suggestion not risk-free: %+v", suggestions[0])
	}
}

func TestSuggestSimilarUnknownRole(t *testing.T) {
	d := similarDataset(t)
	rep := &core.Report{
		SimilarUserGroups: []core.RoleGroup{{Roles: []rbac.RoleID{"ghost", "r1"}}},
	}
	if _, err := SuggestSimilar(d, rep); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestApplySuggestionMatchesDelta(t *testing.T) {
	d := similarDataset(t)
	rep, err := core.Analyze(d, core.Options{SimilarThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	suggestions, err := SuggestSimilar(d, rep)
	if err != nil {
		t.Fatal(err)
	}
	var s *Suggestion
	for i := range suggestions {
		if suggestions[i].Side == SideUsers {
			s = &suggestions[i]
		}
	}
	if s == nil {
		t.Fatal("no user-side suggestion")
	}
	after, err := ApplySuggestion(d, *s)
	if err != nil {
		t.Fatal(err)
	}
	if after.NumRoles() != d.NumRoles()-1 {
		t.Fatalf("roles after = %d", after.NumRoles())
	}
	// The realised delta equals the predicted delta exactly.
	delta := GrantDelta(d, after)
	predicted := append([]Grant(nil), s.AddedGrants...)
	sort.Slice(predicted, func(i, j int) bool {
		if predicted[i].User != predicted[j].User {
			return predicted[i].User < predicted[j].User
		}
		return predicted[i].Permission < predicted[j].Permission
	})
	if !reflect.DeepEqual(delta, predicted) {
		t.Fatalf("realised delta %v != predicted %v", delta, predicted)
	}
}

func TestApplySuggestionValidation(t *testing.T) {
	d := similarDataset(t)
	if _, err := ApplySuggestion(d, Suggestion{Roles: []rbac.RoleID{"r1"}}); err == nil {
		t.Fatal("single-role suggestion accepted")
	}
	if _, err := ApplySuggestion(d, Suggestion{Roles: []rbac.RoleID{"ghost", "r1"}}); err == nil {
		t.Fatal("unknown keeper accepted")
	}
	if _, err := ApplySuggestion(d, Suggestion{Roles: []rbac.RoleID{"r1", "ghost"}}); err == nil {
		t.Fatal("unknown victim accepted")
	}
}

func TestPropertyPredictedDeltaAlwaysRealised(t *testing.T) {
	// For random datasets, every suggestion's predicted delta must
	// match the realised delta when applied, and risk-free suggestions
	// must pass the full safety check.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDataset(r)
		rep, err := core.Analyze(d, core.Options{SimilarThreshold: 1 + r.Intn(2)})
		if err != nil {
			return false
		}
		suggestions, err := SuggestSimilar(d, rep)
		if err != nil {
			return false
		}
		for _, s := range suggestions {
			after, err := ApplySuggestion(d, s)
			if err != nil {
				return false
			}
			delta := GrantDelta(d, after)
			if len(delta) != len(s.AddedGrants) {
				return false
			}
			if s.RiskFree() && VerifySafety(d, after) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGrantDeltaEmptyOnIdentical(t *testing.T) {
	d := rbac.Figure1()
	if delta := GrantDelta(d, d.Clone()); len(delta) != 0 {
		t.Fatalf("delta on identical datasets = %v", delta)
	}
}
