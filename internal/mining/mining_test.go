package mining

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/consolidate"
	"repro/internal/matrix"
	"repro/internal/rbac"
)

// upaFromRows builds a UPA from 0/1 strings.
func upaFromRows(t *testing.T, rows ...string) *matrix.BitMatrix {
	t.Helper()
	vecs := make([]*bitvec.Vector, len(rows))
	for i, s := range rows {
		v, err := bitvec.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		vecs[i] = v
	}
	m, err := matrix.FromRows(vecs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStrategyString(t *testing.T) {
	if DistinctRows.String() != "distinct-rows" ||
		PairwiseIntersections.String() != "pairwise-intersections" {
		t.Fatal("strategy names wrong")
	}
	if !strings.Contains(CandidateStrategy(9).String(), "9") {
		t.Fatal("unknown strategy name")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Strategy: CandidateStrategy(42)}).Validate(); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if err := (Options{MaxCandidates: -1}).Validate(); err == nil {
		t.Fatal("negative cap accepted")
	}
	upa := matrix.NewBitMatrix(1, 1)
	if _, err := Mine(upa, Options{MaxCandidates: -1}); err == nil {
		t.Fatal("Mine accepted invalid options")
	}
}

func TestMineExactCoverSimple(t *testing.T) {
	// Three users; users 0 and 1 have the same permissions, user 2 a
	// subset. Distinct-rows mining needs 2 roles; intersections find
	// the shared sub-role.
	upa := upaFromRows(t,
		"1100",
		"1100",
		"1000",
	)
	res, err := Mine(upa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconstruct(3, 4).Equal(upa) {
		t.Fatal("reconstruction mismatch")
	}
	if res.NumRoles() > 2 {
		t.Fatalf("mined %d roles, want <= 2", res.NumRoles())
	}
}

func TestMineSharedSubRole(t *testing.T) {
	// Users: {A,B}, {B,C}, {B}. Intersections expose {B}; greedy can
	// cover with roles {B}, {A}, {C}... but fewer cells argue for
	// {A,B}, {B,C}, giving user 2 role... {B} must exist for user 2.
	upa := upaFromRows(t,
		"110",
		"011",
		"010",
	)
	res, err := Mine(upa, Options{Strategy: PairwiseIntersections})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconstruct(3, 3).Equal(upa) {
		t.Fatal("reconstruction mismatch")
	}
	if res.NumRoles() > 3 {
		t.Fatalf("mined %d roles", res.NumRoles())
	}
}

func TestMineEmptyUPA(t *testing.T) {
	upa := matrix.NewBitMatrix(3, 4)
	res, err := Mine(upa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRoles() != 0 {
		t.Fatalf("mined %d roles from empty UPA", res.NumRoles())
	}
	if !res.Reconstruct(3, 4).Equal(upa) {
		t.Fatal("empty reconstruction mismatch")
	}
}

func TestMineNoOverGranting(t *testing.T) {
	// Reconstruct must never set a cell the UPA does not have: a role is
	// only assigned to users whose row is a superset.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users := 2 + r.Intn(10)
		perms := 2 + r.Intn(12)
		upa := matrix.NewBitMatrix(users, perms)
		for u := 0; u < users; u++ {
			for p := 0; p < perms; p++ {
				if r.Float64() < 0.35 {
					upa.Set(u, p)
				}
			}
		}
		for _, strat := range []CandidateStrategy{DistinctRows, PairwiseIntersections} {
			res, err := Mine(upa, Options{Strategy: strat})
			if err != nil {
				return false
			}
			if !res.Reconstruct(users, perms).Equal(upa) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMineRoleCountBounded(t *testing.T) {
	// With the DistinctRows strategy every chosen candidate is a
	// distinct user row and is used at most once, so the mined role
	// count never exceeds the distinct non-empty row count. (The
	// intersection strategy can exceed it: a shared sub-role plus
	// per-user top-ups may need more roles, trading role count for
	// smaller roles — the classic role-mining tension.)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users := 2 + r.Intn(12)
		perms := 2 + r.Intn(10)
		upa := matrix.NewBitMatrix(users, perms)
		for u := 0; u < users; u++ {
			for p := 0; p < perms; p++ {
				if r.Float64() < 0.3 {
					upa.Set(u, p)
				}
			}
		}
		distinct := map[string]struct{}{}
		for u := 0; u < users; u++ {
			if upa.Row(u).Any() {
				distinct[upa.Row(u).String()] = struct{}{}
			}
		}
		res, err := Mine(upa, Options{Strategy: DistinctRows})
		if err != nil {
			return false
		}
		return res.NumRoles() <= len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCandidatesStillCovers(t *testing.T) {
	// Capping candidates to the distinct-row count keeps the cover
	// feasible (the distinct rows come first in the pool).
	upa := upaFromRows(t,
		"1100",
		"0110",
		"0011",
		"1100",
	)
	res, err := Mine(upa, Options{Strategy: PairwiseIntersections, MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconstruct(4, 4).Equal(upa) {
		t.Fatal("capped pool failed to cover")
	}
}

func TestUPAFromDatasetAndToDataset(t *testing.T) {
	src := rbac.Figure1()
	upa := UPAFromDataset(src)
	if upa.Rows() != src.NumUsers() || upa.Cols() != src.NumPermissions() {
		t.Fatalf("UPA shape %dx%d", upa.Rows(), upa.Cols())
	}
	// U01 effectively holds P05 and P06 (via R04).
	u01, _ := src.UserIndex("U01")
	p05, _ := src.PermissionIndex("P05")
	if !upa.Get(u01, p05) {
		t.Fatal("UPA missing effective permission")
	}

	res, err := Mine(upa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := ToDataset(src, res)
	if err != nil {
		t.Fatal(err)
	}
	// The mined dataset must grant exactly the same effective
	// permissions — the consolidation safety checker is the oracle.
	if err := consolidate.VerifySafety(src, mined); err != nil {
		t.Fatalf("mined dataset changed effective permissions: %v", err)
	}
	// Figure 1's users need at most 2 distinct permission sets.
	if mined.NumRoles() > 2 {
		t.Fatalf("mined %d roles for Figure 1, want <= 2", mined.NumRoles())
	}
}

func TestMineContextWorkersBitIdentical(t *testing.T) {
	// The parallel gain evaluation must be bit-identical to the serial
	// run for any worker count: same roles in the same order, same
	// assignments, same candidate accounting.
	for _, seed := range []int64{1, 7, 42} {
		r := rand.New(rand.NewSource(seed))
		users := 20 + r.Intn(30)
		perms := 24 + r.Intn(40)
		upa := matrix.NewBitMatrix(users, perms)
		for u := 0; u < users; u++ {
			for p := 0; p < perms; p++ {
				if r.Float64() < 0.25 {
					upa.Set(u, p)
				}
			}
		}
		serial, err := Mine(upa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := MineContext(context.Background(), upa, Options{Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("seed=%d workers=%d: decomposition differs from serial", seed, workers)
			}
		}
	}
}

func TestMineContextCancellation(t *testing.T) {
	// A pre-cancelled context must abort with ctx.Err() for both the
	// serial and parallel paths — the candidate and gain loops all poll.
	r := rand.New(rand.NewSource(5))
	upa := matrix.NewBitMatrix(40, 64)
	for u := 0; u < 40; u++ {
		for p := 0; p < 64; p++ {
			if r.Float64() < 0.3 {
				upa.Set(u, p)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 4} {
		if _, err := MineContext(ctx, upa, Options{Workers: workers}); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

func TestOptionsValidateWorkers(t *testing.T) {
	if err := (Options{Workers: -1}).Validate(); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestMineDeterministic(t *testing.T) {
	upa := upaFromRows(t,
		"1100",
		"0110",
		"0011",
		"1010",
	)
	a, err := Mine(upa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(upa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRoles() != b.NumRoles() {
		t.Fatal("non-deterministic role count")
	}
	for i := range a.Roles {
		if !a.Roles[i].Equal(b.Roles[i]) {
			t.Fatal("non-deterministic roles")
		}
	}
}
