// Package mining implements bottom-up role mining: deriving a role set
// from an existing user-permission assignment (UPA) matrix.
//
// The paper positions Role Diet against this line of work (§II: Vaidya
// et al.'s RoleMiner, Molloy et al., Tripunitara): role *mining* builds
// new roles from scratch, while Role Diet only combines existing roles.
// Having a miner in the repository completes that comparison: after
// consolidation one can check how far the cleaned role set still is
// from a freshly mined decomposition.
//
// Two classic pieces are provided:
//
//   - candidate generation in the style of FastMiner: the distinct user
//     rows of the UPA (each user's full permission set) plus, optionally,
//     all pairwise intersections of those rows — exactly the initial
//     role set of Vaidya et al. (2006);
//   - a greedy set-cover pass for the Role Minimization Problem: pick
//     the candidate covering the most uncovered UPA cells until every
//     cell is covered. Greedy set cover gives the usual ln(n)
//     approximation to the minimal role count.
//
// The mined decomposition is lossless: UA x PA reconstructs the UPA
// exactly (no over- or under-assignment), which Reconstruct verifies.
package mining

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/matrix"
	"repro/internal/rbac"
)

// CandidateStrategy selects how initial candidate roles are generated.
type CandidateStrategy int

// Candidate strategies.
const (
	// DistinctRows uses each distinct user row as a candidate role.
	DistinctRows CandidateStrategy = iota + 1
	// PairwiseIntersections additionally adds the intersection of every
	// pair of distinct user rows — FastMiner's candidate set, which can
	// expose shared sub-roles and reduce the final role count.
	PairwiseIntersections
)

// String names the strategy.
func (s CandidateStrategy) String() string {
	switch s {
	case DistinctRows:
		return "distinct-rows"
	case PairwiseIntersections:
		return "pairwise-intersections"
	default:
		return fmt.Sprintf("mining.CandidateStrategy(%d)", int(s))
	}
}

// Options tunes the miner.
type Options struct {
	// Strategy selects candidate generation; defaults to
	// PairwiseIntersections.
	Strategy CandidateStrategy
	// MaxCandidates caps the candidate pool (0 = unlimited). Pairwise
	// intersection pools grow quadratically in distinct rows; the cap
	// keeps the miner usable on large UPAs, trading optimality.
	MaxCandidates int
}

// Validate checks the options.
func (o Options) Validate() error {
	switch o.Strategy {
	case 0, DistinctRows, PairwiseIntersections:
	default:
		return fmt.Errorf("mining: unknown strategy %d", int(o.Strategy))
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("mining: negative candidate cap %d", o.MaxCandidates)
	}
	return nil
}

// Result is a mined role decomposition.
type Result struct {
	// Roles holds each mined role's permission set.
	Roles []*bitvec.Vector
	// Assignment lists, per user, the mined-role indices assigned to
	// that user (ascending).
	Assignment [][]int
	// CandidateCount is the size of the candidate pool the greedy pass
	// selected from.
	CandidateCount int
}

// NumRoles returns the number of mined roles.
func (r *Result) NumRoles() int { return len(r.Roles) }

// Reconstruct rebuilds the UPA implied by the decomposition: cell
// (u, p) is set iff some role assigned to u grants p.
func (r *Result) Reconstruct(users, perms int) *matrix.BitMatrix {
	m := matrix.NewBitMatrix(users, perms)
	for u, roles := range r.Assignment {
		for _, ri := range roles {
			r.Roles[ri].ForEach(func(p int) bool {
				m.Set(u, p)
				return true
			})
		}
	}
	return m
}

// Mine derives a role set covering the UPA exactly.
func Mine(upa *matrix.BitMatrix, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Strategy == 0 {
		opts.Strategy = PairwiseIntersections
	}
	users := upa.Rows()

	candidates := generateCandidates(upa, opts)

	// Greedy set cover over UPA cells. For each candidate role, the
	// users it can serve are those whose row is a superset of the role
	// (assigning it to anyone else would over-grant).
	covered := matrix.NewBitMatrix(upa.Rows(), upa.Cols())
	var chosen []*bitvec.Vector
	assignment := make([][]int, users)

	remaining := upa.Count()
	for remaining > 0 {
		bestGain := 0
		bestIdx := -1
		var bestUsers []int
		for ci, cand := range candidates {
			if cand == nil || cand.IsZero() {
				continue
			}
			gain := 0
			var served []int
			for u := 0; u < users; u++ {
				if !cand.IsSubsetOf(upa.Row(u)) {
					continue
				}
				// New cells this role would cover for u.
				newBits := cand.Clone()
				newBits.AndNot(covered.Row(u))
				if c := newBits.Count(); c > 0 {
					gain += c
					served = append(served, u)
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = ci
				bestUsers = served
			}
		}
		if bestIdx < 0 {
			// Cannot happen when candidates include the distinct rows
			// themselves, but guard against a capped pool that lost them.
			return nil, fmt.Errorf("mining: %d cells uncoverable with the candidate pool", remaining)
		}
		role := candidates[bestIdx]
		roleIdx := len(chosen)
		chosen = append(chosen, role.Clone())
		for _, u := range bestUsers {
			newBits := role.Clone()
			newBits.AndNot(covered.Row(u))
			remaining -= newBits.Count()
			covered.Row(u).Or(role)
			assignment[u] = append(assignment[u], roleIdx)
		}
		candidates[bestIdx] = nil // each candidate used at most once
	}

	for _, a := range assignment {
		sort.Ints(a)
	}
	return &Result{
		Roles:          chosen,
		Assignment:     assignment,
		CandidateCount: countNonNil(candidates) + len(chosen),
	}, nil
}

func countNonNil(cands []*bitvec.Vector) int {
	n := 0
	for _, c := range cands {
		if c != nil {
			n++
		}
	}
	return n
}

// generateCandidates builds the candidate pool: distinct non-empty user
// rows, plus pairwise intersections under the FastMiner strategy,
// deduplicated, optionally capped (distinct rows are kept first so an
// exact cover always exists).
func generateCandidates(upa *matrix.BitMatrix, opts Options) []*bitvec.Vector {
	seen := make(map[uint64][]*bitvec.Vector)
	var out []*bitvec.Vector
	add := func(v *bitvec.Vector) {
		if v.IsZero() {
			return
		}
		h := v.Hash()
		for _, existing := range seen[h] {
			if existing.Equal(v) {
				return
			}
		}
		seen[h] = append(seen[h], v)
		out = append(out, v)
	}

	var distinct []*bitvec.Vector
	for u := 0; u < upa.Rows(); u++ {
		before := len(out)
		add(upa.Row(u).Clone())
		if len(out) > before {
			distinct = append(distinct, out[len(out)-1])
		}
	}

	if opts.Strategy == PairwiseIntersections {
		for i := 0; i < len(distinct); i++ {
			for j := i + 1; j < len(distinct); j++ {
				if opts.MaxCandidates > 0 && len(out) >= opts.MaxCandidates {
					return out
				}
				inter := distinct[i].Clone()
				inter.And(distinct[j])
				add(inter)
			}
		}
	}
	if opts.MaxCandidates > 0 && len(out) > opts.MaxCandidates {
		out = out[:opts.MaxCandidates]
	}
	return out
}

// UPAFromDataset flattens a dataset's effective permissions into a
// user-permission assignment matrix — the input a bottom-up miner
// starts from when the existing role structure is to be rebuilt.
func UPAFromDataset(d *rbac.Dataset) *matrix.BitMatrix {
	eff := d.EffectivePermissions()
	m := matrix.NewBitMatrix(d.NumUsers(), d.NumPermissions())
	for u, perms := range eff {
		for p := range perms {
			m.Set(u, p)
		}
	}
	return m
}

// ToDataset converts a mined decomposition back into an rbac.Dataset,
// naming entities after their indices in the given source dataset.
func ToDataset(src *rbac.Dataset, res *Result) (*rbac.Dataset, error) {
	out := rbac.NewDataset()
	for _, u := range src.Users() {
		if err := out.AddUser(u); err != nil {
			return nil, err
		}
	}
	for _, p := range src.Permissions() {
		if err := out.AddPermission(p); err != nil {
			return nil, err
		}
	}
	for ri, role := range res.Roles {
		id := rbac.RoleID(fmt.Sprintf("mined-%04d", ri))
		if err := out.AddRole(id); err != nil {
			return nil, err
		}
		var assignErr error
		role.ForEach(func(p int) bool {
			assignErr = out.AssignPermission(id, src.Permission(p))
			return assignErr == nil
		})
		if assignErr != nil {
			return nil, assignErr
		}
	}
	for u, roles := range res.Assignment {
		for _, ri := range roles {
			id := rbac.RoleID(fmt.Sprintf("mined-%04d", ri))
			if err := out.AssignUser(id, src.User(u)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
