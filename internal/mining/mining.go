// Package mining implements bottom-up role mining: deriving a role set
// from an existing user-permission assignment (UPA) matrix.
//
// The paper positions Role Diet against this line of work (§II: Vaidya
// et al.'s RoleMiner, Molloy et al., Tripunitara): role *mining* builds
// new roles from scratch, while Role Diet only combines existing roles.
// Having a miner in the repository completes that comparison: after
// consolidation one can check how far the cleaned role set still is
// from a freshly mined decomposition.
//
// Two classic pieces are provided:
//
//   - candidate generation in the style of FastMiner: the distinct user
//     rows of the UPA (each user's full permission set) plus, optionally,
//     all pairwise intersections of those rows — exactly the initial
//     role set of Vaidya et al. (2006);
//   - a greedy set-cover pass for the Role Minimization Problem: pick
//     the candidate covering the most uncovered UPA cells until every
//     cell is covered. Greedy set cover gives the usual ln(n)
//     approximation to the minimal role count.
//
// The mined decomposition is lossless: UA x PA reconstructs the UPA
// exactly (no over- or under-assignment), which Reconstruct verifies.
package mining

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/ctxcheck"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/rbac"
)

// CandidateStrategy selects how initial candidate roles are generated.
type CandidateStrategy int

// Candidate strategies.
const (
	// DistinctRows uses each distinct user row as a candidate role.
	DistinctRows CandidateStrategy = iota + 1
	// PairwiseIntersections additionally adds the intersection of every
	// pair of distinct user rows — FastMiner's candidate set, which can
	// expose shared sub-roles and reduce the final role count.
	PairwiseIntersections
)

// String names the strategy.
func (s CandidateStrategy) String() string {
	switch s {
	case DistinctRows:
		return "distinct-rows"
	case PairwiseIntersections:
		return "pairwise-intersections"
	default:
		return fmt.Sprintf("mining.CandidateStrategy(%d)", int(s))
	}
}

// Options tunes the miner.
type Options struct {
	// Strategy selects candidate generation; defaults to
	// PairwiseIntersections.
	Strategy CandidateStrategy
	// MaxCandidates caps the candidate pool (0 = unlimited). Pairwise
	// intersection pools grow quadratically in distinct rows; the cap
	// keeps the miner usable on large UPAs, trading optimality.
	MaxCandidates int
	// Workers fans the per-round candidate-gain evaluation (the greedy
	// set cover's hot loop) out over this many goroutines. 0 and 1 run
	// serially; >= 2 parallelises. The mined decomposition is
	// bit-identical to the serial run regardless of the value: gains are
	// exact integer sums collected into a pre-sized slice and the argmax
	// scan stays serial in candidate order, so tie-breaking cannot
	// depend on goroutine scheduling.
	Workers int
}

// Validate checks the options.
func (o Options) Validate() error {
	switch o.Strategy {
	case 0, DistinctRows, PairwiseIntersections:
	default:
		return fmt.Errorf("mining: unknown strategy %d", int(o.Strategy))
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("mining: negative candidate cap %d", o.MaxCandidates)
	}
	if o.Workers < 0 {
		return fmt.Errorf("mining: negative workers %d", o.Workers)
	}
	return nil
}

// Result is a mined role decomposition.
type Result struct {
	// Roles holds each mined role's permission set.
	Roles []*bitvec.Vector
	// Assignment lists, per user, the mined-role indices assigned to
	// that user (ascending).
	Assignment [][]int
	// CandidateCount is the size of the candidate pool the greedy pass
	// selected from.
	CandidateCount int
}

// NumRoles returns the number of mined roles.
func (r *Result) NumRoles() int { return len(r.Roles) }

// Reconstruct rebuilds the UPA implied by the decomposition: cell
// (u, p) is set iff some role assigned to u grants p.
func (r *Result) Reconstruct(users, perms int) *matrix.BitMatrix {
	m := matrix.NewBitMatrix(users, perms)
	for u, roles := range r.Assignment {
		for _, ri := range roles {
			r.Roles[ri].ForEach(func(p int) bool {
				m.Set(u, p)
				return true
			})
		}
	}
	return m
}

// Mine derives a role set covering the UPA exactly.
func Mine(upa *matrix.BitMatrix, opts Options) (*Result, error) {
	return MineContext(context.Background(), upa, opts)
}

// MineContext is Mine with cooperative cancellation and optional
// parallelism. The greedy cover's hot loop — re-scoring every live
// candidate against every user it can serve, each round — polls the
// context on a ctxcheck stride (per worker when Workers >= 2, so every
// goroutine stops within its own stride of a cancellation) and fans out
// over Options.Workers. The decomposition is bit-identical to the
// serial run for any worker count; see Options.Workers.
func MineContext(ctx context.Context, upa *matrix.BitMatrix, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Strategy == 0 {
		opts.Strategy = PairwiseIntersections
	}
	users := upa.Rows()

	candidates, err := generateCandidates(ctx, upa, opts)
	if err != nil {
		return nil, err
	}

	// For each candidate role, the users it can serve are exactly those
	// whose row is a superset of the role (assigning it to anyone else
	// would over-grant). Serving sets are static — coverage growth never
	// changes subset relations against the original UPA — so they are
	// computed once up front instead of once per greedy round.
	served := make([][]int32, len(candidates))
	workers := 1
	if opts.Workers >= 2 {
		workers = parallel.Workers(opts.Workers, len(candidates))
	}
	chunks := parallel.SplitRange(len(candidates), workers)
	err = parallel.ForEachChunk(ctx, chunks, 0, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
		for ci := c.Lo; ci < c.Hi; ci++ {
			cand := candidates[ci]
			if cand == nil || cand.IsZero() {
				continue
			}
			for u := 0; u < users; u++ {
				if err := chk.Tick(); err != nil {
					return err
				}
				if cand.IsSubsetOf(upa.Row(u)) {
					served[ci] = append(served[ci], int32(u))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Greedy set cover over UPA cells: each round picks the candidate
	// covering the most still-uncovered cells across its serving users.
	// Gains are recomputed in parallel into a pre-sized slice; the
	// argmax scan stays serial in candidate order so the strict-greater
	// tie-break (first candidate wins) is identical for any Workers.
	covered := matrix.NewBitMatrix(upa.Rows(), upa.Cols())
	var chosen []*bitvec.Vector
	assignment := make([][]int, users)
	gains := make([]int, len(candidates))

	remaining := upa.Count()
	for remaining > 0 {
		err := parallel.ForEachChunk(ctx, chunks, 0, func(_ int, c parallel.Chunk, chk *ctxcheck.Checker) error {
			for ci := c.Lo; ci < c.Hi; ci++ {
				cand := candidates[ci]
				gains[ci] = 0
				if cand == nil || cand.IsZero() {
					continue
				}
				cw := cand.Words()
				gain := 0
				for _, u := range served[ci] {
					if err := chk.Tick(); err != nil {
						return err
					}
					gain += uncoveredCount(cw, covered.Row(int(u)).Words())
				}
				gains[ci] = gain
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		bestGain, bestIdx := 0, -1
		for ci, g := range gains {
			if g > bestGain {
				bestGain = g
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			// Cannot happen when candidates include the distinct rows
			// themselves, but guard against a capped pool that lost them.
			return nil, fmt.Errorf("mining: %d cells uncoverable with the candidate pool", remaining)
		}
		role := candidates[bestIdx]
		roleIdx := len(chosen)
		chosen = append(chosen, role.Clone())
		for _, u := range served[bestIdx] {
			newBits := role.Clone()
			newBits.AndNot(covered.Row(int(u)))
			if c := newBits.Count(); c > 0 {
				remaining -= c
				covered.Row(int(u)).Or(role)
				assignment[u] = append(assignment[u], roleIdx)
			}
		}
		candidates[bestIdx] = nil // each candidate used at most once
	}

	for _, a := range assignment {
		sort.Ints(a)
	}
	return &Result{
		Roles:          chosen,
		Assignment:     assignment,
		CandidateCount: countNonNil(candidates) + len(chosen),
	}, nil
}

// uncoveredCount counts the bits of cand not present in covered —
// |cand AND NOT covered| — straight off the word slices, so the greedy
// re-scoring loop allocates nothing.
func uncoveredCount(cand, covered []uint64) int {
	n := 0
	for i, w := range cand {
		n += bits.OnesCount64(w &^ covered[i])
	}
	return n
}

func countNonNil(cands []*bitvec.Vector) int {
	n := 0
	for _, c := range cands {
		if c != nil {
			n++
		}
	}
	return n
}

// generateCandidates builds the candidate pool: distinct non-empty user
// rows, plus pairwise intersections under the FastMiner strategy,
// deduplicated, optionally capped (distinct rows are kept first so an
// exact cover always exists). The pairwise loop — quadratic in distinct
// rows — polls the context on a ctxcheck stride.
func generateCandidates(ctx context.Context, upa *matrix.BitMatrix, opts Options) ([]*bitvec.Vector, error) {
	seen := make(map[uint64][]*bitvec.Vector)
	var out []*bitvec.Vector
	add := func(v *bitvec.Vector) {
		if v.IsZero() {
			return
		}
		h := v.Hash()
		for _, existing := range seen[h] {
			if existing.Equal(v) {
				return
			}
		}
		seen[h] = append(seen[h], v)
		out = append(out, v)
	}

	var distinct []*bitvec.Vector
	for u := 0; u < upa.Rows(); u++ {
		before := len(out)
		add(upa.Row(u).Clone())
		if len(out) > before {
			distinct = append(distinct, out[len(out)-1])
		}
	}

	if opts.Strategy == PairwiseIntersections {
		chk := ctxcheck.New(ctx, 0)
		for i := 0; i < len(distinct); i++ {
			for j := i + 1; j < len(distinct); j++ {
				if err := chk.Tick(); err != nil {
					return nil, err
				}
				if opts.MaxCandidates > 0 && len(out) >= opts.MaxCandidates {
					return out, nil
				}
				inter := distinct[i].Clone()
				inter.And(distinct[j])
				add(inter)
			}
		}
	}
	if opts.MaxCandidates > 0 && len(out) > opts.MaxCandidates {
		out = out[:opts.MaxCandidates]
	}
	return out, nil
}

// UPAFromDataset flattens a dataset's effective permissions into a
// user-permission assignment matrix — the input a bottom-up miner
// starts from when the existing role structure is to be rebuilt.
func UPAFromDataset(d *rbac.Dataset) *matrix.BitMatrix {
	eff := d.EffectivePermissions()
	m := matrix.NewBitMatrix(d.NumUsers(), d.NumPermissions())
	for u, perms := range eff {
		for p := range perms {
			m.Set(u, p)
		}
	}
	return m
}

// ToDataset converts a mined decomposition back into an rbac.Dataset,
// naming entities after their indices in the given source dataset.
func ToDataset(src *rbac.Dataset, res *Result) (*rbac.Dataset, error) {
	out := rbac.NewDataset()
	for _, u := range src.Users() {
		if err := out.AddUser(u); err != nil {
			return nil, err
		}
	}
	for _, p := range src.Permissions() {
		if err := out.AddPermission(p); err != nil {
			return nil, err
		}
	}
	for ri, role := range res.Roles {
		id := rbac.RoleID(fmt.Sprintf("mined-%04d", ri))
		if err := out.AddRole(id); err != nil {
			return nil, err
		}
		var assignErr error
		role.ForEach(func(p int) bool {
			assignErr = out.AssignPermission(id, src.Permission(p))
			return assignErr == nil
		})
		if assignErr != nil {
			return nil, assignErr
		}
	}
	for u, roles := range res.Assignment {
		for _, ri := range roles {
			id := rbac.RoleID(fmt.Sprintf("mined-%04d", ri))
			if err := out.AssignUser(id, src.User(u)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
