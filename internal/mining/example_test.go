package mining_test

import (
	"fmt"

	"repro/internal/mining"
	"repro/internal/rbac"
)

// Example mines a minimal role set for the paper's Figure 1 dataset
// from its effective user-permission assignment.
func Example() {
	src := rbac.Figure1()
	upa := mining.UPAFromDataset(src)
	res, err := mining.Mine(upa, mining.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("existing roles:", src.NumRoles())
	fmt.Println("mined roles:", res.NumRoles())
	fmt.Println("lossless:", res.Reconstruct(upa.Rows(), upa.Cols()).Equal(upa))
	// Output:
	// existing roles: 5
	// mined roles: 2
	// lossless: true
}
