package continuous

import (
	"fmt"
	"time"
)

// Alert rules watch the observations scheduled runs produce. A rule
// binds a threshold to one of three signals:
//
//   - spike: the reducible-finding count grew by at least Threshold
//     since the previous run of the same schedule ("the snapshot got
//     worse fast");
//   - drift: at least Threshold duplicate groups appeared or
//     disappeared between the previous digest and the current one (the
//     O(delta) /v1/drift signal);
//   - recall: the measured class-4 recall of the configured
//     approximate method fell below Threshold (only fires on schedules
//     created with measure_recall).
//
// A rule may be scoped to one schedule (schedule_id) or watch all of
// them, and may route to specific sinks (sink_ids) or fan out to every
// registered sink.

// RuleType enumerates the rule signals.
type RuleType string

const (
	RuleSpike  RuleType = "spike"
	RuleDrift  RuleType = "drift"
	RuleRecall RuleType = "recall"
)

// valid reports whether t is a known rule type.
func (t RuleType) valid() bool {
	return t == RuleSpike || t == RuleDrift || t == RuleRecall
}

// Rule is one thresholded alert rule.
type Rule struct {
	ID string `json:"id"`
	// ScheduleID scopes the rule to one schedule; empty watches all.
	ScheduleID string   `json:"schedule_id,omitempty"`
	Type       RuleType `json:"type"`
	// Threshold is the trip point; see the type docs for per-type
	// semantics. Spike and drift thresholds must be >= 1; recall must
	// be in (0, 1].
	Threshold float64 `json:"threshold"`
	// SinkIDs routes trips to specific sinks; empty fans out to all.
	SinkIDs   []string  `json:"sink_ids,omitempty"`
	CreatedAt time.Time `json:"createdAt"`
	// Trips counts how often the rule has fired (read-only).
	Trips int `json:"trips"`
}

// validate checks the user-settable fields.
func (r Rule) validate() error {
	if !r.Type.valid() {
		return fmt.Errorf("%w: rule type %q (want spike, drift, or recall)", ErrInvalid, r.Type)
	}
	switch r.Type {
	case RuleRecall:
		if r.Threshold <= 0 || r.Threshold > 1 {
			return fmt.Errorf("%w: recall threshold %v (want 0 < t <= 1)", ErrInvalid, r.Threshold)
		}
	default:
		if r.Threshold < 1 {
			return fmt.Errorf("%w: %s threshold %v (want >= 1)", ErrInvalid, r.Type, r.Threshold)
		}
	}
	return nil
}

// DriftStats condenses a drift report for rule evaluation and the
// decision log.
type DriftStats struct {
	// Events is the reconcile delta length between the digests.
	Events int `json:"events"`
	// Gained and Lost count duplicate groups that appeared/disappeared
	// (both assignment sides summed).
	Gained int `json:"gained"`
	Lost   int `json:"lost"`
}

// Observation is what one scheduled run observed — the input to rule
// evaluation and the per-schedule history entry.
type Observation struct {
	// Run is the 1-based fire count of the schedule.
	Run  int       `json:"run"`
	Time time.Time `json:"time"`
	// Digest is the snapshot analysed in this run.
	Digest string `json:"digest"`
	// Fingerprint is the options fingerprint of the analysis.
	Fingerprint string `json:"fingerprint"`
	// Findings is the reducible-role total of the report.
	Findings int `json:"findings"`
	// DupGroups is the class-4 duplicate group count (both sides).
	DupGroups int `json:"dupGroups"`
	// Recall is the measured class-4 recall vs the exact method; nil
	// unless the schedule measures it.
	Recall *float64 `json:"recall,omitempty"`
	// Drift compares against the previous run's digest; nil on the
	// first run and when the digest did not change.
	Drift         *DriftStats `json:"drift,omitempty"`
	CacheHit      bool        `json:"cache_hit"`
	DurationNanos int64       `json:"durationNanos"`
}

// Alert is one rule trip, the payload delivered to sinks.
type Alert struct {
	RuleID     string   `json:"rule_id"`
	Type       RuleType `json:"type"`
	ScheduleID string   `json:"schedule_id"`
	// Digest (and PrevDigest for spike/drift) identify the snapshots
	// behind the trip, so the alert is reproducible from the registry.
	Digest     string `json:"digest"`
	PrevDigest string `json:"prev_digest,omitempty"`
	// Value is the observed signal, Threshold the configured trip point.
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	Message   string    `json:"message"`
	Time      time.Time `json:"time"`
}

// Evaluate runs one rule against consecutive observations of a
// schedule. prev is nil on the schedule's first run. It returns the
// alert and whether the rule tripped.
func Evaluate(r Rule, scheduleID string, prev *Observation, cur Observation) (Alert, bool) {
	if r.ScheduleID != "" && r.ScheduleID != scheduleID {
		return Alert{}, false
	}
	a := Alert{
		RuleID:     r.ID,
		Type:       r.Type,
		ScheduleID: scheduleID,
		Digest:     cur.Digest,
		Threshold:  r.Threshold,
		Time:       cur.Time,
	}
	switch r.Type {
	case RuleSpike:
		if prev == nil {
			return Alert{}, false
		}
		delta := float64(cur.Findings - prev.Findings)
		if delta < r.Threshold {
			return Alert{}, false
		}
		a.PrevDigest = prev.Digest
		a.Value = delta
		a.Message = fmt.Sprintf("findings spiked by %d (%d -> %d) over threshold %g",
			int(delta), prev.Findings, cur.Findings, r.Threshold)
		return a, true
	case RuleDrift:
		if cur.Drift == nil {
			return Alert{}, false
		}
		moved := float64(cur.Drift.Gained + cur.Drift.Lost)
		if moved < r.Threshold {
			return Alert{}, false
		}
		if prev != nil {
			a.PrevDigest = prev.Digest
		}
		a.Value = moved
		a.Message = fmt.Sprintf("duplicate groups drifted: %d gained, %d lost (%d events) over threshold %g",
			cur.Drift.Gained, cur.Drift.Lost, cur.Drift.Events, r.Threshold)
		return a, true
	case RuleRecall:
		if cur.Recall == nil || *cur.Recall >= r.Threshold {
			return Alert{}, false
		}
		a.Value = *cur.Recall
		a.Message = fmt.Sprintf("class-4 recall %.3f fell below threshold %g", *cur.Recall, r.Threshold)
		return a, true
	default:
		return Alert{}, false
	}
}
