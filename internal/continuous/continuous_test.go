package continuous

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/rbac"
	"repro/internal/session"
)

// fakeBackend simulates the server's engine surface: a set of known
// digests with canned reports, and a "session" whose head digest the
// test moves to simulate mutation.
type fakeBackend struct {
	mu      sync.Mutex
	reports map[string]*core.Report
	head    string // digest the live session currently snapshots to
	drifts  int
}

func report(reducible int) *core.Report {
	rep := &core.Report{}
	for i := 0; i < reducible; i++ {
		rep.SameUserGroups = append(rep.SameUserGroups, core.RoleGroup{
			Roles: []rbac.RoleID{rbac.RoleID(fmt.Sprintf("r%da", i)), rbac.RoleID(fmt.Sprintf("r%db", i))},
		})
	}
	return rep
}

func (f *fakeBackend) backend() Backend {
	return Backend{
		Resolve: func(_ context.Context, ref string) (string, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			if _, ok := f.reports[ref]; !ok {
				return "", errors.New("not registered")
			}
			return ref, nil
		},
		SessionExists: func(id string) bool { return id == "sess" },
		Snapshot: func(_ context.Context, id string) (string, error) {
			if id != "sess" {
				return "", errors.New("no such session")
			}
			f.mu.Lock()
			defer f.mu.Unlock()
			return f.head, nil
		},
		Analyze: func(_ context.Context, digest string, opts core.Options) (*core.Report, Meta, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			rep, ok := f.reports[digest]
			if !ok {
				return nil, Meta{}, errors.New("unknown digest")
			}
			return rep, Meta{Fingerprint: "fp-" + digest}, nil
		},
		Drift: func(_ context.Context, before, after string) (*session.DriftReport, Meta, error) {
			f.mu.Lock()
			f.drifts++
			f.mu.Unlock()
			return &session.DriftReport{
				BeforeRef: before,
				AfterRef:  after,
				Events:    2,
				SameUser: session.DriftSide{
					Gained: [][]rbac.RoleID{{"x", "y"}},
					Lost:   [][]rbac.RoleID{},
				},
			}, Meta{Fingerprint: "fp-drift"}, nil
		},
	}
}

func newTestManager(t *testing.T, f *fakeBackend, mutate func(*Config)) *Manager {
	t.Helper()
	jm := jobs.NewManager(jobs.Options{Workers: 2, QueueDepth: 16})
	t.Cleanup(jm.Close)
	cfg := Config{
		Backend:     f.backend(),
		Jobs:        jm,
		MinInterval: 5 * time.Millisecond,
		Tick:        5 * time.Millisecond,
		Logf:        t.Logf,
		Sink:        SinkConfig{Attempts: 2, BaseDelay: time.Millisecond, Jitter: func() float64 { return 0 }},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestScheduleFiresAndTracksRuns(t *testing.T) {
	f := &fakeBackend{reports: map[string]*core.Report{"d1": report(0)}}
	m := newTestManager(t, f, nil)

	s, err := m.CreateSchedule(context.Background(), Schedule{
		DatasetRef: "d1", Interval: Duration(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("CreateSchedule: %v", err)
	}
	waitFor(t, "two fires", func() bool {
		got, _ := m.GetSchedule(s.ID)
		return got.Fires >= 2
	})
	got, ok := m.GetSchedule(s.ID)
	if !ok || got.LastRun == nil {
		t.Fatalf("schedule state missing: ok=%v %+v", ok, got)
	}
	if got.LastRun.Digest != "d1" || got.LastRun.Fingerprint != "fp-d1" {
		t.Fatalf("last run = %+v, want digest d1", got.LastRun)
	}
	if got.LastRun.Drift != nil {
		t.Fatal("unchanged digest must not compute drift")
	}
	if st := m.Stats(); st.Fires < 2 || st.Schedules != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMutationTripsDriftRuleAndDeliversWebhook(t *testing.T) {
	var mu sync.Mutex
	var received []Alert
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		var a Alert
		if err := json.Unmarshal(b, &a); err == nil {
			mu.Lock()
			received = append(received, a)
			mu.Unlock()
		}
	}))
	defer hook.Close()

	logPath := filepath.Join(t.TempDir(), "decisions.jsonl")
	dlog, err := OpenLog(LogOptions{Path: logPath, FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer dlog.Close()

	f := &fakeBackend{
		reports: map[string]*core.Report{"d1": report(0), "d2": report(3)},
		head:    "d1",
	}
	m := newTestManager(t, f, func(c *Config) { c.Log = dlog })

	sink, err := m.CreateSink(Sink{URL: hook.URL})
	if err != nil {
		t.Fatalf("CreateSink: %v", err)
	}
	sched, err := m.CreateSchedule(context.Background(), Schedule{
		DatasetRef: "d1", SessionID: "sess", Interval: Duration(10 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("CreateSchedule: %v", err)
	}
	if _, err := m.CreateRule(Rule{Type: RuleDrift, Threshold: 1, ScheduleID: sched.ID}); err != nil {
		t.Fatalf("CreateRule (drift): %v", err)
	}
	spikeRule, err := m.CreateRule(Rule{Type: RuleSpike, Threshold: 2})
	if err != nil {
		t.Fatalf("CreateRule (spike): %v", err)
	}

	// Let the schedule observe the base snapshot first.
	waitFor(t, "baseline run", func() bool {
		got, _ := m.GetSchedule(sched.ID)
		return got.Fires >= 1 && got.LastError == ""
	})

	// "Mutate the session": the next snapshot resolves to d2 (3 more
	// findings, drifted groups).
	f.mu.Lock()
	f.head = "d2"
	f.mu.Unlock()

	waitFor(t, "webhook deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(received) >= 2
	})

	mu.Lock()
	types := map[RuleType]Alert{}
	for _, a := range received {
		types[a.Type] = a
	}
	mu.Unlock()
	drift, ok := types[RuleDrift]
	if !ok {
		t.Fatalf("no drift alert delivered; got %+v", types)
	}
	if drift.ScheduleID != sched.ID || drift.Digest != "d2" || drift.PrevDigest != "d1" {
		t.Fatalf("drift alert = %+v, want d1 -> d2 on schedule %s", drift, sched.ID)
	}
	spike, ok := types[RuleSpike]
	if !ok || spike.Value != 3 || spike.RuleID != spikeRule.ID {
		t.Fatalf("spike alert = %+v (ok=%v), want value 3", spike, ok)
	}

	// The decision log recorded both runs (and the drift decision),
	// with digests and fingerprints.
	waitFor(t, "decisions", func() bool {
		ds := dlog.List(0, 0)
		var analyze, drifts int
		for _, d := range ds {
			switch {
			case d.Kind == "analyze" && d.Error == "":
				analyze++
			case d.Kind == "drift":
				drifts++
			}
		}
		return analyze >= 2 && drifts >= 1
	})
	var sawTrip bool
	for _, d := range dlog.List(0, 0) {
		if d.Kind == "analyze" && d.Dataset == "d2" {
			if d.Fingerprint != "fp-d2" {
				t.Fatalf("decision fingerprint = %q", d.Fingerprint)
			}
			if len(d.Alerts) > 0 {
				sawTrip = true
			}
		}
	}
	if !sawTrip {
		t.Fatal("no decision carries the tripped rule ids")
	}

	waitFor(t, "sink counters", func() bool {
		v, _ := m.GetSink(sink.ID)
		return v.Delivered >= 2
	})
	if st := m.Stats(); st.Trips < 2 || st.Delivered < 2 {
		t.Fatalf("stats = %+v, want >= 2 trips and deliveries", st)
	}
}

func TestCreateScheduleValidation(t *testing.T) {
	f := &fakeBackend{reports: map[string]*core.Report{"d1": report(0)}}
	m := newTestManager(t, f, nil)
	ctx := context.Background()

	_, err := m.CreateSchedule(ctx, Schedule{DatasetRef: "nope", Interval: Duration(time.Second)})
	if !errors.Is(err, ErrUnknownReference) {
		t.Fatalf("unknown ref -> %v, want ErrUnknownReference", err)
	}
	_, err = m.CreateSchedule(ctx, Schedule{DatasetRef: "d1", Interval: Duration(time.Nanosecond)})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("tiny interval -> %v, want ErrInvalid", err)
	}
	_, err = m.CreateSchedule(ctx, Schedule{DatasetRef: "d1"})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing interval -> %v, want ErrInvalid", err)
	}
	_, err = m.CreateSchedule(ctx, Schedule{DatasetRef: "d1", Interval: Duration(time.Second), SessionID: "ghost"})
	if !errors.Is(err, ErrUnknownReference) {
		t.Fatalf("unknown session -> %v, want ErrUnknownReference", err)
	}
}

func TestRuleAndSinkReferenceValidation(t *testing.T) {
	f := &fakeBackend{reports: map[string]*core.Report{"d1": report(0)}}
	m := newTestManager(t, f, nil)

	if _, err := m.CreateRule(Rule{Type: RuleSpike, Threshold: 1, ScheduleID: "ghost"}); !errors.Is(err, ErrUnknownReference) {
		t.Fatalf("rule with unknown schedule -> %v", err)
	}
	if _, err := m.CreateRule(Rule{Type: RuleSpike, Threshold: 1, SinkIDs: []string{"ghost"}}); !errors.Is(err, ErrUnknownReference) {
		t.Fatalf("rule with unknown sink -> %v", err)
	}
	if _, err := m.CreateSink(Sink{URL: "not a url"}); !errors.Is(err, ErrInvalid) {
		t.Fatal("bad sink URL accepted")
	}

	// Deletes are idempotent at the resource layer: absent ids report
	// false, present ids true.
	if m.DeleteSchedule("ghost") || m.DeleteRule("ghost") || m.DeleteSink("ghost") {
		t.Fatal("deleting absent resources reported true")
	}
	s, _ := m.CreateSchedule(context.Background(), Schedule{DatasetRef: "d1", Interval: Duration(time.Hour)})
	if !m.DeleteSchedule(s.ID) || m.DeleteSchedule(s.ID) {
		t.Fatal("schedule delete not idempotent")
	}
}

func TestPausedScheduleDoesNotFire(t *testing.T) {
	f := &fakeBackend{reports: map[string]*core.Report{"d1": report(0)}}
	m := newTestManager(t, f, nil)
	s, err := m.CreateSchedule(context.Background(), Schedule{
		DatasetRef: "d1", Interval: Duration(5 * time.Millisecond), Paused: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got, _ := m.GetSchedule(s.ID); got.Fires != 0 {
		t.Fatalf("paused schedule fired %d times", got.Fires)
	}
}

func TestListOrdering(t *testing.T) {
	f := &fakeBackend{reports: map[string]*core.Report{"d1": report(0)}}
	m := newTestManager(t, f, nil)
	var ids []string
	for i := 0; i < 3; i++ {
		s, err := m.CreateSchedule(context.Background(), Schedule{
			DatasetRef: "d1", Interval: Duration(time.Hour), Paused: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
		time.Sleep(2 * time.Millisecond) // distinct CreatedAt
	}
	list := m.ListSchedules()
	if len(list) != 3 {
		t.Fatalf("list = %d, want 3", len(list))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Fatalf("list order %v, want creation order %v", list, ids)
		}
	}
}

func TestGroupRecall(t *testing.T) {
	exact := &core.Report{SameUserGroups: []core.RoleGroup{{Roles: []rbac.RoleID{"a", "b", "c"}}}}
	approx := &core.Report{SameUserGroups: []core.RoleGroup{{Roles: []rbac.RoleID{"a", "b"}}}}
	if got := groupRecall(exact, approx); got != 1.0/3.0 {
		t.Fatalf("recall = %v, want 1/3", got)
	}
	if got := groupRecall(&core.Report{}, &core.Report{}); got != 1 {
		t.Fatalf("empty exact -> recall %v, want 1", got)
	}
	if got := groupRecall(exact, exact); got != 1 {
		t.Fatalf("perfect recall = %v, want 1", got)
	}
}
