package continuous

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/fleet"
)

// Webhook sinks receive tripped alerts as JSON POSTs. Delivery rides
// the same hardened client patterns as the fleet's peer calls: capped
// exponential backoff with full jitter and a bounded attempt count
// (fleet.RetryPolicy), a per-sink circuit breaker so a dead endpoint
// fails fast instead of burning retries on every alert, per-attempt
// timeouts, and the deterministic fault injector as the transport seam
// (-sink-fault-inject) so the failure paths are testable end to end.
// 4xx answers are permanent — the payload will not get better by
// resending it — while 5xx and transport errors retry.
//
// Deliveries are asynchronous: trips enqueue onto a bounded queue
// drained by one worker per manager, preserving per-sink ordering.
// When the queue is full the delivery is dropped and counted — alerts
// are a signal, not a ledger; the decision log is the ledger.

// Sink is one registered webhook endpoint.
type Sink struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Name is an optional human label.
	Name      string    `json:"name,omitempty"`
	CreatedAt time.Time `json:"createdAt"`

	// Delivery counters and breaker state (read-only).
	Delivered int                   `json:"delivered"`
	Failed    int                   `json:"failed"`
	Dropped   int                   `json:"dropped"`
	Breaker   fleet.BreakerSnapshot `json:"breaker"`
}

// validate checks the user-settable fields.
func (s Sink) validate() error {
	u, err := url.Parse(s.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("%w: sink url %q (want an absolute http(s) URL)", ErrInvalid, s.URL)
	}
	return nil
}

// sinkState pairs the public view with the live breaker and counters.
type sinkState struct {
	mu      sync.Mutex
	sink    Sink
	breaker *fleet.Breaker
}

// newSinkBreaker builds a sink's circuit breaker from the config.
func newSinkBreaker(cfg SinkConfig) *fleet.Breaker {
	return fleet.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
}

// view snapshots the JSON-ready state.
func (s *sinkState) view() Sink {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.sink
	v.Breaker = s.breaker.Snapshot()
	return v
}

// SinkConfig tunes the delivery client.
type SinkConfig struct {
	// Attempts bounds tries per delivery; defaults to 3.
	Attempts int
	// BaseDelay/MaxDelay shape the backoff; default 50ms/2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Timeout bounds one POST attempt; defaults to 5s.
	Timeout time.Duration
	// BreakerThreshold consecutive failed deliveries open a sink's
	// breaker; defaults to 3. BreakerCooldown is the open interval
	// before a half-open trial; defaults to 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// QueueDepth bounds undelivered trips; defaults to 128.
	QueueDepth int
	// Transport is the delivery RoundTripper — the fault-injection
	// seam; nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Jitter seeds the backoff; tests inject a deterministic one.
	Jitter func() float64
}

func (c SinkConfig) withDefaults() SinkConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	return c
}

// delivery is one queued alert-to-sink send.
type delivery struct {
	sink  *sinkState
	alert Alert
}

// deliverer owns the queue, the worker, and the HTTP client.
type deliverer struct {
	cfg    SinkConfig
	client *http.Client
	queue  chan delivery
	ctx    context.Context
	hooks  Hooks
	logf   func(format string, args ...any)
	wg     sync.WaitGroup
}

func newDeliverer(ctx context.Context, cfg SinkConfig, hooks Hooks, logf func(string, ...any)) *deliverer {
	cfg = cfg.withDefaults()
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	d := &deliverer{
		cfg:    cfg,
		client: &http.Client{Transport: transport},
		queue:  make(chan delivery, cfg.QueueDepth),
		ctx:    ctx,
		hooks:  hooks,
		logf:   logf,
	}
	d.wg.Add(1)
	go d.run()
	return d
}

// enqueue hands an alert to the worker; a full queue drops and counts.
func (d *deliverer) enqueue(s *sinkState, a Alert) {
	select {
	case d.queue <- delivery{sink: s, alert: a}:
	default:
		s.mu.Lock()
		s.sink.Dropped++
		s.mu.Unlock()
		d.logf("continuous: sink %s delivery queue full; alert %s dropped", s.sink.ID, a.RuleID)
	}
}

// run drains the queue until the base context dies.
func (d *deliverer) run() {
	defer d.wg.Done()
	for {
		select {
		case <-d.ctx.Done():
			return
		case item := <-d.queue:
			d.deliver(item.sink, item.alert)
		}
	}
}

// errBreakerOpen is the fast-fail for a sink whose circuit is open.
var errBreakerOpen = fmt.Errorf("continuous: sink breaker open")

// deliver POSTs one alert with retry/backoff, feeding the sink's
// breaker per attempt. The outcome lands on the sink's counters and
// the SinkDelivery hook.
func (d *deliverer) deliver(s *sinkState, a Alert) {
	payload, _ := json.Marshal(a)
	policy := fleet.RetryPolicy{
		MaxAttempts: d.cfg.Attempts,
		BaseDelay:   d.cfg.BaseDelay,
		MaxDelay:    d.cfg.MaxDelay,
		Jitter:      d.cfg.Jitter,
	}
	s.mu.Lock()
	sinkURL, sinkID := s.sink.URL, s.sink.ID
	s.mu.Unlock()
	err := policy.Do(d.ctx, func(ctx context.Context) error {
		if !s.breaker.Allow() {
			// Open circuit: give up on this alert without consuming
			// attempts against the endpoint; the breaker's cooldown (or
			// a later trial) reopens the path.
			return fleet.Permanent(errBreakerOpen)
		}
		attemptCtx, cancel := context.WithTimeout(ctx, d.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, sinkURL, bytes.NewReader(payload))
		if err != nil {
			s.breaker.Record(false)
			return fleet.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rolediet-Alert", string(a.Type))
		resp, err := d.client.Do(req)
		if err != nil {
			s.breaker.Record(false)
			return err
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300:
			s.breaker.Record(true)
			return nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			// The endpoint understood us and said no; resending the
			// same payload cannot succeed. Not an endpoint-health
			// signal, so the breaker stays untouched.
			return fleet.Permanent(fmt.Errorf("sink answered %s", resp.Status))
		default:
			s.breaker.Record(false)
			return fmt.Errorf("sink answered %s", resp.Status)
		}
	})
	s.mu.Lock()
	if err == nil {
		s.sink.Delivered++
	} else {
		s.sink.Failed++
	}
	s.mu.Unlock()
	if err != nil {
		d.logf("continuous: deliver alert %s to sink %s: %v", a.RuleID, sinkID, err)
	}
	if d.hooks.SinkDelivery != nil {
		d.hooks.SinkDelivery(err == nil)
	}
}

// close waits for the worker (the base context must already be done).
func (d *deliverer) close() { d.wg.Wait() }
