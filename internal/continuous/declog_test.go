package continuous

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestLog(t *testing.T, path string, opts LogOptions) *Log {
	t.Helper()
	opts.Path = path
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestLogAppendAndList(t *testing.T) {
	l := openTestLog(t, filepath.Join(t.TempDir(), "decisions.jsonl"), LogOptions{})
	for i := 0; i < 5; i++ {
		seq := l.Append(Decision{Source: "api", Kind: "analyze", Dataset: "d", Fingerprint: "f"})
		if seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	all := l.List(0, 0)
	if len(all) != 5 {
		t.Fatalf("List(0) = %d decisions, want 5", len(all))
	}
	page := l.List(2, 2)
	if len(page) != 2 || page[0].Seq != 3 || page[1].Seq != 4 {
		t.Fatalf("List(2, 2) = %+v, want seqs 3,4", page)
	}
	if got := l.Stats().Appended; got != 5 {
		t.Fatalf("Appended = %d, want 5", got)
	}
}

func TestLogReplaySurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")

	l1, err := OpenLog(LogOptions{Path: path})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 7; i++ {
		l1.Append(Decision{Source: "api", Kind: "analyze", Dataset: "d1", Fingerprint: "f1", Findings: i})
	}
	if err := l1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A new process: the log must continue the sequence and serve the
	// old decisions.
	l2 := openTestLog(t, path, LogOptions{})
	if got := l2.Stats().Replayed; got != 7 {
		t.Fatalf("Replayed = %d, want 7", got)
	}
	old := l2.List(0, 0)
	if len(old) != 7 || old[0].Seq != 1 || old[6].Findings != 6 {
		t.Fatalf("replayed window wrong: %+v", old)
	}
	if seq := l2.Append(Decision{Source: "api", Kind: "analyze", Dataset: "d2"}); seq != 8 {
		t.Fatalf("post-restart seq = %d, want 8", seq)
	}
}

func TestLogReplaySkipsTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	l1, err := OpenLog(LogOptions{Path: path})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l1.Append(Decision{Source: "api", Kind: "analyze", Dataset: "d"})
	l1.Append(Decision{Source: "api", Kind: "analyze", Dataset: "d"})
	if err := l1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-write: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"time":"torn`)
	f.Close()

	l2 := openTestLog(t, path, LogOptions{})
	if got := l2.Stats().Replayed; got != 2 {
		t.Fatalf("Replayed = %d, want 2 (torn line skipped)", got)
	}
	if seq := l2.Append(Decision{Source: "api", Kind: "analyze"}); seq != 3 {
		t.Fatalf("seq after torn replay = %d, want 3", seq)
	}
}

func TestLogRingBounded(t *testing.T) {
	l := openTestLog(t, filepath.Join(t.TempDir(), "d.jsonl"), LogOptions{Ring: 10})
	for i := 0; i < 25; i++ {
		l.Append(Decision{Source: "api", Kind: "analyze"})
	}
	window := l.List(0, 0)
	if len(window) != 10 {
		t.Fatalf("window = %d, want 10", len(window))
	}
	if window[0].Seq != 16 || window[9].Seq != 25 {
		t.Fatalf("window seqs = %d..%d, want 16..25", window[0].Seq, window[9].Seq)
	}
}

func TestLogFlushOnThresholdAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.jsonl")
	l := openTestLog(t, path, LogOptions{BufferSize: 4, FlushInterval: time.Hour})
	for i := 0; i < 4; i++ {
		l.Append(Decision{Source: "api", Kind: "analyze"})
	}
	// Threshold flush is asynchronous; poll for it.
	deadline := time.Now().Add(2 * time.Second)
	for countLines(t, path) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold flush never landed; %d lines on disk", countLines(t, path))
		}
		time.Sleep(5 * time.Millisecond)
	}
	l.Append(Decision{Source: "api", Kind: "analyze"})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := countLines(t, path); n != 5 {
		t.Fatalf("lines on disk after close = %d, want 5", n)
	}
	// Every line must be valid JSONL carrying digest+fingerprint fields.
	f, _ := os.Open(path)
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
	}
}

func TestLogDropsWhenSaturated(t *testing.T) {
	var drops int
	var mu sync.Mutex
	l := openTestLog(t, filepath.Join(t.TempDir(), "d.jsonl"), LogOptions{
		BufferSize:    2, // saturation at 8 pending
		FlushInterval: time.Hour,
		OnDrop: func() {
			mu.Lock()
			drops++
			mu.Unlock()
		},
	})
	// Deterministically stall the flusher (as a hung disk would) so
	// appends accumulate past the 4x BufferSize saturation bound.
	l.flushMu.Lock()
	for i := 0; i < 50; i++ {
		l.Append(Decision{Source: "api", Kind: "analyze"})
	}
	st := l.Stats()
	l.flushMu.Unlock()
	if st.Dropped == 0 {
		t.Fatalf("expected drops under saturation, got stats %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if int64(drops) != st.Dropped {
		t.Fatalf("OnDrop fired %d times, stats say %d", drops, st.Dropped)
	}
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
