package continuous

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The decision log: an append-only JSONL record of every analysis
// decision the daemon takes — which dataset digest, which options
// fingerprint, cache hit or engine run, how long, what it found, and
// which alert rules the result tripped. The design follows OPA's
// buffered decision logging: appends land in a bounded in-memory
// buffer, a background flusher writes batches to disk (on a size
// threshold or a timer, whichever comes first), and a bounded
// in-memory ring serves the read API so GET /v1/decisions never
// touches the file. On restart the log replays the file tail into the
// ring and continues the sequence, so decision history survives the
// process.

// Decision is one logged analysis decision.
type Decision struct {
	// Seq is the monotonically increasing decision number, unique per
	// log file; restarts continue where the file left off.
	Seq int64 `json:"seq"`
	// Time is when the decision completed.
	Time time.Time `json:"time"`
	// Source tells who initiated the run: "api" for synchronous
	// endpoints, "job" for async submissions, "schedule:<id>" for
	// continuous-audit fires.
	Source string `json:"source"`
	// Kind is the engine entry point: analyze, consolidate, suggest,
	// optimize, diff, drift.
	Kind string `json:"kind"`
	// Dataset is the content digest the decision ran over (for drift,
	// "<before>+<after>").
	Dataset string `json:"dataset"`
	// Fingerprint is the options fingerprint keying the result cache —
	// together with Dataset it makes the decision reproducible.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the result came from the cache.
	CacheHit bool `json:"cache_hit"`
	// DurationNanos is the wall time of the decision.
	DurationNanos int64 `json:"durationNanos"`
	// Error carries the failure message for failed runs.
	Error string `json:"error,omitempty"`
	// Findings is the reducible-role count of the report (0 for
	// non-analyze kinds and failures).
	Findings int `json:"findings"`
	// Alerts lists the ids of alert rules this decision tripped.
	Alerts []string `json:"alerts,omitempty"`
}

// LogOptions configures OpenLog.
type LogOptions struct {
	// Path is the JSONL file (parent directories are created). Empty
	// runs the log memory-only: the ring and counters work, nothing
	// persists, and restarts start the sequence over.
	Path string
	// BufferSize is the pending-append count that forces a flush;
	// defaults to 256. Pending appends beyond 4x this are dropped
	// oldest-first (counted in Stats) so a stalled disk cannot grow the
	// buffer without bound.
	BufferSize int
	// FlushInterval is the timer-driven flush period; defaults to 2s.
	FlushInterval time.Duration
	// Ring is the in-memory read window (latest N decisions); defaults
	// to 4096.
	Ring int
	// OnAppend and OnDrop, when set, observe every accepted append and
	// every dropped pending decision (metrics hooks).
	OnAppend func()
	OnDrop   func()
	// Logf receives flush failures; defaults to discarding them.
	Logf func(format string, args ...any)
}

func (o LogOptions) withDefaults() LogOptions {
	if o.BufferSize <= 0 {
		o.BufferSize = 256
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Second
	}
	if o.Ring <= 0 {
		o.Ring = 4096
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// LogStats counts the log's activity since open.
type LogStats struct {
	Appended int64 `json:"appended"`
	Dropped  int64 `json:"dropped"`
	Flushed  int64 `json:"flushed"`
	Replayed int64 `json:"replayed"`
	LastSeq  int64 `json:"lastSeq"`
}

// Log is the buffered decision log. All methods are safe for
// concurrent use.
type Log struct {
	opts LogOptions

	flushMu sync.Mutex // serialises flushes; taken before mu

	mu      sync.Mutex
	file    *os.File
	pending []Decision
	ring    []Decision // chronological window of the latest decisions
	seq     int64
	stats   LogStats
	closed  bool

	kick chan struct{} // wakes the flusher early on threshold
	done chan struct{}
	wg   sync.WaitGroup
}

// OpenLog opens (creating if needed) the JSONL file at opts.Path,
// replays its tail into the in-memory ring, and starts the background
// flusher. The sequence continues from the highest replayed seq. An
// empty Path skips the file entirely — the log serves reads from its
// ring but persists nothing.
func OpenLog(opts LogOptions) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{
		opts: opts,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if opts.Path != "" {
		if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
			return nil, fmt.Errorf("continuous: decision log dir: %w", err)
		}
		if err := l.replay(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("continuous: open decision log: %w", err)
		}
		l.file = f
	}
	l.wg.Add(1)
	go l.flusher()
	return l, nil
}

// replay reads the existing file, keeping the last Ring decisions and
// the highest seq. Lines that fail to parse (a torn final write from a
// crash) are skipped, not fatal — an audit log must open after a crash.
func (l *Log) replay() error {
	f, err := os.Open(l.opts.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("continuous: replay decision log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d Decision
		if err := json.Unmarshal(line, &d); err != nil {
			continue
		}
		l.ringAppendLocked(d)
		if d.Seq > l.seq {
			l.seq = d.Seq
		}
		l.stats.Replayed++
	}
	l.stats.LastSeq = l.seq
	// A torn line makes Scan stop early or Err report bufio limits;
	// either way the decisions before it are recovered, which is the
	// contract.
	return nil
}

// ringAppendLocked keeps the ring at the configured window. Callers
// hold l.mu (or run before the flusher starts).
func (l *Log) ringAppendLocked(d Decision) {
	l.ring = append(l.ring, d)
	if over := len(l.ring) - l.opts.Ring; over > 0 {
		l.ring = append(l.ring[:0], l.ring[over:]...)
	}
}

// Append assigns the next sequence number, stamps missing times, makes
// the decision readable immediately, and buffers the disk write. It
// returns the assigned seq, or 0 when the log is closed or the pending
// buffer is saturated (the decision is then dropped and counted).
func (l *Log) Append(d Decision) int64 {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0
	}
	if len(l.pending) >= 4*l.opts.BufferSize {
		// Drop the oldest pending entry rather than the new one: the
		// tail of an audit log is worth more than its middle when the
		// disk has stalled.
		l.pending = append(l.pending[:0], l.pending[1:]...)
		l.stats.Dropped++
		if l.opts.OnDrop != nil {
			defer l.opts.OnDrop()
		}
	}
	l.seq++
	d.Seq = l.seq
	if d.Time.IsZero() {
		d.Time = time.Now().UTC()
	}
	l.pending = append(l.pending, d)
	l.ringAppendLocked(d)
	l.stats.Appended++
	l.stats.LastSeq = l.seq
	needFlush := len(l.pending) >= l.opts.BufferSize
	l.mu.Unlock()
	if l.opts.OnAppend != nil {
		l.opts.OnAppend()
	}
	if needFlush {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return d.Seq
}

// List returns up to limit decisions with Seq > afterSeq, oldest
// first, from the in-memory window. limit <= 0 means the whole window.
func (l *Log) List(afterSeq int64, limit int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	// The ring is seq-ordered; binary search would work, but the window
	// is small and bounded.
	var out []Decision
	for _, d := range l.ring {
		if d.Seq <= afterSeq {
			continue
		}
		out = append(out, d)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Stats snapshots the log's counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Flush writes every pending decision to disk synchronously. On a
// write failure the batch is put back at the front of the pending
// buffer (appends only ever grow the back, so order is preserved) to
// be retried by the next flush; the saturation bound in Append is what
// eventually sheds load if the disk never recovers.
func (l *Log) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	batch := l.pending
	l.pending = nil
	file := l.file
	l.mu.Unlock()
	if len(batch) == 0 || file == nil {
		return nil
	}
	w := bufio.NewWriter(file)
	for _, d := range batch {
		// Decisions are plain data; Marshal cannot fail on them.
		b, _ := json.Marshal(d)
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		l.mu.Lock()
		l.pending = append(batch, l.pending...)
		l.mu.Unlock()
		return fmt.Errorf("continuous: flush decision log: %w", err)
	}
	l.mu.Lock()
	l.stats.Flushed += int64(len(batch))
	l.mu.Unlock()
	return nil
}

// flusher drives timer- and threshold-triggered flushes.
func (l *Log) flusher() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
		case <-l.kick:
		}
		if err := l.Flush(); err != nil {
			l.opts.Logf("continuous: %v", err)
		}
	}
}

// Close flushes what is pending and releases the file. Appends after
// Close are dropped.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	err := l.Flush()
	l.mu.Lock()
	f := l.file
	l.file = nil
	l.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
