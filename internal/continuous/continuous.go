// Package continuous is the continuous-audit subsystem: the daemon
// stops being a calculator you must remember to call and starts
// telling you when a registered snapshot regresses.
//
// Four resource kinds cooperate:
//
//   - Schedules fire analyses of a registered dataset (or the live
//     dataset of a mutation session) at a fixed interval, riding the
//     existing async jobs pool so scheduled work shares the same
//     worker budget, cancellation, and backpressure as user-submitted
//     jobs.
//   - Rules watch consecutive observations of those runs and trip on
//     thresholds: a findings spike vs the previous run, duplicate-group
//     drift between consecutive digests (the O(delta) /v1/drift
//     signal), or a recall regression of the configured approximate
//     method against the exact one.
//   - Sinks are webhook endpoints that receive tripped alerts through
//     the hardened retry/backoff/breaker client patterns of
//     internal/fleet (see sink.go).
//   - The decision Log records every analysis decision append-only as
//     JSONL with its dataset digest and options fingerprint (see
//     declog.go), so any historical decision is reproducible from the
//     content-addressed registry.
//
// The package talks to the engine exclusively through the Backend
// callbacks the HTTP layer provides, so scheduled runs share the
// server's result cache: a scheduled analysis of an unchanged digest
// is a cache hit, which is what makes tight intervals affordable.
package continuous

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/session"
)

// Sentinel errors; the HTTP layer maps them onto the v1 error codes.
var (
	// ErrInvalid marks a malformed resource (400 bad_request).
	ErrInvalid = errors.New("continuous: invalid")
	// ErrNotFound marks an unknown resource id (404 not_found).
	ErrNotFound = errors.New("continuous: not found")
	// ErrUnknownReference marks a well-formed resource pointing at a
	// dataset, session, schedule, or sink that does not exist
	// (422 unknown_reference).
	ErrUnknownReference = errors.New("continuous: unknown reference")
)

// Duration is a time.Duration that marshals as a Go duration string
// ("500ms") and unmarshals from either that or integer nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "500ms" or 500000000.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("parse duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("duration must be a Go duration string or integer nanoseconds, got %s", b)
	}
	*d = Duration(n)
	return nil
}

// Schedule is one recurring audit over a registered snapshot.
type Schedule struct {
	ID string `json:"id"`
	// DatasetRef is the registered digest the schedule audits.
	DatasetRef string `json:"dataset_ref"`
	// SessionID, when set, makes each fire snapshot the live dataset of
	// that mutation session (registering the snapshot content-addressed)
	// instead of analysing DatasetRef directly — the digest then moves
	// as the session mutates, which is what drift rules watch. The
	// schedule falls back to DatasetRef if the session expires.
	SessionID string `json:"session_id,omitempty"`
	// Interval is the fire period; floored at the manager's MinInterval.
	Interval Duration `json:"interval"`
	// Options are the analysis options; nil means server defaults.
	Options *core.Options `json:"options,omitempty"`
	// MeasureRecall additionally runs the exact method each fire and
	// records the approximate method's class-4 recall against it, so
	// recall rules have a signal.
	MeasureRecall bool `json:"measure_recall,omitempty"`
	// Paused stops firing without deleting the schedule's history.
	Paused    bool      `json:"paused,omitempty"`
	CreatedAt time.Time `json:"createdAt"`

	// Read-only run state.
	Fires     int          `json:"fires"`
	LastError string       `json:"last_error,omitempty"`
	LastRun   *Observation `json:"last_run,omitempty"`
	NextAt    time.Time    `json:"next_at,omitempty"`
}

// Meta is what the Backend reports about one engine call.
type Meta struct {
	// Fingerprint keys the result cache together with the digest.
	Fingerprint string
	// CacheHit reports whether the engine was skipped.
	CacheHit bool
}

// Backend is the engine surface the HTTP layer lends the subsystem.
// Every callback must be safe for concurrent use.
type Backend struct {
	// Resolve normalises a dataset_ref and ensures it is available
	// locally (fetch-through in a fleet), returning the bare digest.
	Resolve func(ctx context.Context, ref string) (string, error)
	// SessionExists reports whether a mutation session id is live.
	SessionExists func(id string) bool
	// Snapshot registers the current dataset of a live session
	// content-addressed and returns its digest.
	Snapshot func(ctx context.Context, sessionID string) (string, error)
	// Analyze runs (or serves from cache) a full analysis of a
	// registered digest.
	Analyze func(ctx context.Context, digest string, opts core.Options) (*core.Report, Meta, error)
	// Drift computes the O(delta) drift report between two registered
	// digests.
	Drift func(ctx context.Context, before, after string) (*session.DriftReport, Meta, error)
}

func (b Backend) validate() error {
	if b.Resolve == nil || b.SessionExists == nil || b.Snapshot == nil || b.Analyze == nil || b.Drift == nil {
		return fmt.Errorf("continuous: incomplete backend")
	}
	return nil
}

// Hooks observe subsystem events; all fields are optional. They feed
// the Prometheus counters without the package importing the metrics
// registry.
type Hooks struct {
	// ScheduleFire observes every started scheduled run.
	ScheduleFire func()
	// AlertTrip observes every rule trip, labelled by rule type.
	AlertTrip func(ruleType string)
	// SinkDelivery observes every finished delivery attempt chain.
	SinkDelivery func(ok bool)
}

// Config assembles a Manager.
type Config struct {
	Backend Backend
	// Jobs is the shared async pool scheduled runs execute on.
	Jobs *jobs.Manager
	// Log, when non-nil, receives a decision per scheduled analysis and
	// drift computation.
	Log *Log
	// Sink tunes alert delivery.
	Sink SinkConfig
	// MinInterval floors schedule intervals; defaults to 100ms.
	MinInterval time.Duration
	// Tick is the scheduler resolution; defaults to min(MinInterval, 100ms).
	Tick  time.Duration
	Hooks Hooks
	// Logf receives operational messages; defaults to discarding.
	Logf func(format string, args ...any)
	// BaseContext roots the scheduler and delivery workers; cancelling
	// it stops both. Defaults to context.Background().
	BaseContext context.Context
}

// Stats is the subsystem's counter snapshot for /v1/stats and the
// metrics gauges.
type Stats struct {
	Schedules int   `json:"schedules"`
	Rules     int   `json:"rules"`
	Sinks     int   `json:"sinks"`
	Fires     int64 `json:"fires"`
	Trips     int64 `json:"trips"`
	Delivered int64 `json:"delivered"`
	Failed    int64 `json:"failed"`
	Dropped   int64 `json:"dropped"`
	// Decisions carries the decision log's counters when a log is
	// attached.
	Decisions *LogStats `json:"decisions,omitempty"`
}

// schedState pairs a schedule with its runtime-only state.
type schedState struct {
	mu      sync.Mutex
	sched   Schedule
	running bool
	prev    *Observation
}

// Manager owns the resources and the scheduler loop.
type Manager struct {
	cfg       Config
	ctx       context.Context
	cancel    context.CancelFunc
	deliverer *deliverer
	wg        sync.WaitGroup

	mu        sync.Mutex
	schedules map[string]*schedState
	rules     map[string]*Rule
	sinks     map[string]*sinkState
	fires     int64
	trips     int64
	closed    bool
}

// NewManager validates the config and starts the scheduler and the
// delivery worker.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.Backend.validate(); err != nil {
		return nil, err
	}
	if cfg.Jobs == nil {
		return nil, fmt.Errorf("continuous: jobs manager required")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 100 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Millisecond
		if cfg.MinInterval < cfg.Tick {
			cfg.Tick = cfg.MinInterval
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	ctx, cancel := context.WithCancel(cfg.BaseContext)
	m := &Manager{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		schedules: make(map[string]*schedState),
		rules:     make(map[string]*Rule),
		sinks:     make(map[string]*sinkState),
	}
	m.deliverer = newDeliverer(ctx, cfg.Sink, cfg.Hooks, cfg.Logf)
	m.wg.Add(1)
	go m.loop()
	return m, nil
}

// Close stops the scheduler and delivery workers. In-flight scheduled
// jobs are cancelled through the jobs pool's own lifecycle.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	m.deliverer.close()
}

// newID returns a 64-bit random hex id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("continuous: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// CreateSchedule validates and registers a schedule. The dataset_ref
// must resolve (ErrUnknownReference otherwise) and is normalised to
// the bare digest; a session_id must name a live session. The first
// fire happens on the next scheduler tick.
func (m *Manager) CreateSchedule(ctx context.Context, s Schedule) (Schedule, error) {
	if s.DatasetRef == "" {
		return Schedule{}, fmt.Errorf("%w: dataset_ref required", ErrInvalid)
	}
	if time.Duration(s.Interval) <= 0 {
		return Schedule{}, fmt.Errorf("%w: interval required", ErrInvalid)
	}
	if time.Duration(s.Interval) < m.cfg.MinInterval {
		return Schedule{}, fmt.Errorf("%w: interval %s below the minimum %s",
			ErrInvalid, time.Duration(s.Interval), m.cfg.MinInterval)
	}
	digest, err := m.cfg.Backend.Resolve(ctx, s.DatasetRef)
	if err != nil {
		return Schedule{}, fmt.Errorf("%w: dataset_ref %s: %v", ErrUnknownReference, s.DatasetRef, err)
	}
	s.DatasetRef = digest
	if s.SessionID != "" && !m.cfg.Backend.SessionExists(s.SessionID) {
		return Schedule{}, fmt.Errorf("%w: session %s", ErrUnknownReference, s.SessionID)
	}
	s.ID = newID()
	s.CreatedAt = time.Now().UTC()
	s.Fires = 0
	s.LastError = ""
	s.LastRun = nil
	s.NextAt = s.CreatedAt
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Schedule{}, fmt.Errorf("continuous: manager closed")
	}
	m.schedules[s.ID] = &schedState{sched: s}
	return s, nil
}

// GetSchedule returns a schedule by id.
func (m *Manager) GetSchedule(id string) (Schedule, bool) {
	m.mu.Lock()
	st, ok := m.schedules[id]
	m.mu.Unlock()
	if !ok {
		return Schedule{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sched, true
}

// DeleteSchedule removes a schedule; an in-flight run finishes but its
// observation is discarded. Reports whether the id existed.
func (m *Manager) DeleteSchedule(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.schedules[id]
	delete(m.schedules, id)
	return ok
}

// ListSchedules returns all schedules ordered by creation time then id.
func (m *Manager) ListSchedules() []Schedule {
	m.mu.Lock()
	states := make([]*schedState, 0, len(m.schedules))
	for _, st := range m.schedules {
		states = append(states, st)
	}
	m.mu.Unlock()
	out := make([]Schedule, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		out = append(out, st.sched)
		st.mu.Unlock()
	}
	sortByCreation(out, func(s Schedule) (time.Time, string) { return s.CreatedAt, s.ID })
	return out
}

// CreateRule validates and registers an alert rule. A schedule_id or
// sink_ids naming unknown resources are ErrUnknownReference.
func (m *Manager) CreateRule(r Rule) (Rule, error) {
	if err := r.validate(); err != nil {
		return Rule{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.ScheduleID != "" {
		if _, ok := m.schedules[r.ScheduleID]; !ok {
			return Rule{}, fmt.Errorf("%w: schedule %s", ErrUnknownReference, r.ScheduleID)
		}
	}
	for _, id := range r.SinkIDs {
		if _, ok := m.sinks[id]; !ok {
			return Rule{}, fmt.Errorf("%w: sink %s", ErrUnknownReference, id)
		}
	}
	r.ID = newID()
	r.CreatedAt = time.Now().UTC()
	r.Trips = 0
	m.rules[r.ID] = &r
	return r, nil
}

// GetRule returns a rule by id.
func (m *Manager) GetRule(id string) (Rule, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rules[id]
	if !ok {
		return Rule{}, false
	}
	return *r, true
}

// DeleteRule removes a rule, reporting whether the id existed.
func (m *Manager) DeleteRule(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.rules[id]
	delete(m.rules, id)
	return ok
}

// ListRules returns all rules ordered by creation time then id.
func (m *Manager) ListRules() []Rule {
	m.mu.Lock()
	out := make([]Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, *r)
	}
	m.mu.Unlock()
	sortByCreation(out, func(r Rule) (time.Time, string) { return r.CreatedAt, r.ID })
	return out
}

// CreateSink validates and registers a webhook sink.
func (m *Manager) CreateSink(s Sink) (Sink, error) {
	if err := s.validate(); err != nil {
		return Sink{}, err
	}
	s.ID = newID()
	s.CreatedAt = time.Now().UTC()
	s.Delivered, s.Failed, s.Dropped = 0, 0, 0
	cfg := m.cfg.Sink.withDefaults()
	st := &sinkState{
		sink:    s,
		breaker: newSinkBreaker(cfg),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sinks[s.ID] = st
	return st.view(), nil
}

// GetSink returns a sink by id, with live delivery counters and
// breaker state.
func (m *Manager) GetSink(id string) (Sink, bool) {
	m.mu.Lock()
	st, ok := m.sinks[id]
	m.mu.Unlock()
	if !ok {
		return Sink{}, false
	}
	return st.view(), true
}

// DeleteSink removes a sink, reporting whether the id existed. Rules
// routing to it simply stop reaching it.
func (m *Manager) DeleteSink(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sinks[id]
	delete(m.sinks, id)
	return ok
}

// ListSinks returns all sinks ordered by creation time then id.
func (m *Manager) ListSinks() []Sink {
	m.mu.Lock()
	states := make([]*sinkState, 0, len(m.sinks))
	for _, st := range m.sinks {
		states = append(states, st)
	}
	m.mu.Unlock()
	out := make([]Sink, 0, len(states))
	for _, st := range states {
		out = append(out, st.view())
	}
	sortByCreation(out, func(s Sink) (time.Time, string) { return s.CreatedAt, s.ID })
	return out
}

// Stats snapshots the subsystem counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Schedules: len(m.schedules),
		Rules:     len(m.rules),
		Sinks:     len(m.sinks),
		Fires:     m.fires,
		Trips:     m.trips,
	}
	sinks := make([]*sinkState, 0, len(m.sinks))
	for _, st := range m.sinks {
		sinks = append(sinks, st)
	}
	m.mu.Unlock()
	for _, st := range sinks {
		v := st.view()
		s.Delivered += int64(v.Delivered)
		s.Failed += int64(v.Failed)
		s.Dropped += int64(v.Dropped)
	}
	if m.cfg.Log != nil {
		ls := m.cfg.Log.Stats()
		s.Decisions = &ls
	}
	return s
}

// sortByCreation orders resources by (CreatedAt, ID).
func sortByCreation[T any](items []T, key func(T) (time.Time, string)) {
	sort.Slice(items, func(i, j int) bool {
		ti, idi := key(items[i])
		tj, idj := key(items[j])
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return idi < idj
	})
}

// loop is the scheduler: every tick it fires due schedules onto the
// jobs pool. A schedule never overlaps itself — a run still in flight
// defers the next fire to the tick after it completes.
func (m *Manager) loop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case now := <-t.C:
			m.fireDue(now)
		}
	}
}

// fireDue submits a job per due schedule.
func (m *Manager) fireDue(now time.Time) {
	m.mu.Lock()
	due := make([]*schedState, 0)
	for _, st := range m.schedules {
		st.mu.Lock()
		if !st.sched.Paused && !st.running && !now.Before(st.sched.NextAt) {
			st.running = true
			due = append(due, st)
		}
		st.mu.Unlock()
	}
	m.mu.Unlock()
	for _, st := range due {
		st := st
		_, err := m.cfg.Jobs.Submit("schedule", func(ctx context.Context, progress func(string, float64)) (any, error) {
			defer m.finishRun(st)
			m.runOnce(ctx, st)
			return nil, nil
		})
		if err != nil {
			// Shed: the pool is saturated or closing. Push the fire out
			// one interval instead of spinning on every tick.
			st.mu.Lock()
			st.running = false
			st.sched.LastError = fmt.Sprintf("submit: %v", err)
			st.sched.NextAt = now.Add(time.Duration(st.sched.Interval))
			st.mu.Unlock()
			m.cfg.Logf("continuous: schedule %s fire shed: %v", st.sched.ID, err)
		}
	}
}

// finishRun re-arms the schedule after a run completes (or dies).
func (m *Manager) finishRun(st *schedState) {
	st.mu.Lock()
	st.running = false
	st.sched.NextAt = time.Now().Add(time.Duration(st.sched.Interval))
	st.mu.Unlock()
}

// runOnce executes one scheduled audit: resolve the target digest
// (snapshotting the session when one is attached), analyse through the
// cached backend, optionally measure recall, compute drift against the
// previous run's digest, evaluate the rules, route trips to sinks, and
// log the decision.
func (m *Manager) runOnce(ctx context.Context, st *schedState) {
	st.mu.Lock()
	sched := st.sched
	prev := st.prev
	st.mu.Unlock()
	if m.cfg.Hooks.ScheduleFire != nil {
		m.cfg.Hooks.ScheduleFire()
	}
	m.mu.Lock()
	m.fires++
	m.mu.Unlock()

	started := time.Now()
	source := "schedule:" + sched.ID

	digest, err := m.resolveTarget(ctx, sched)
	if err != nil {
		m.recordFailure(st, sched, source, "", started, err)
		return
	}
	var opts core.Options
	if sched.Options != nil {
		opts = *sched.Options
	}
	rep, meta, err := m.cfg.Backend.Analyze(ctx, digest, opts)
	if err != nil {
		m.recordFailure(st, sched, source, digest, started, err)
		return
	}
	obs := Observation{
		Run:           sched.Fires + 1,
		Time:          time.Now().UTC(),
		Digest:        digest,
		Fingerprint:   meta.Fingerprint,
		Findings:      rep.TotalReducibleRoles(),
		DupGroups:     len(rep.SameUserGroups) + len(rep.SamePermissionGroups),
		CacheHit:      meta.CacheHit,
		DurationNanos: time.Since(started).Nanoseconds(),
	}
	if sched.MeasureRecall {
		if recall, ok := m.measureRecall(ctx, digest, opts, rep); ok {
			obs.Recall = &recall
		}
	}
	if prev != nil && prev.Digest != digest {
		if ds, derr := m.driftStats(ctx, sched, source, prev.Digest, digest); derr == nil {
			obs.Drift = ds
		} else {
			m.cfg.Logf("continuous: schedule %s drift %s -> %s: %v", sched.ID, prev.Digest, digest, derr)
		}
	}

	tripped := m.evaluateRules(sched.ID, prev, obs)

	if m.cfg.Log != nil {
		m.cfg.Log.Append(Decision{
			Source:        source,
			Kind:          "analyze",
			Dataset:       digest,
			Fingerprint:   meta.Fingerprint,
			CacheHit:      meta.CacheHit,
			DurationNanos: obs.DurationNanos,
			Findings:      obs.Findings,
			Alerts:        tripped,
		})
	}

	st.mu.Lock()
	st.sched.Fires++
	st.sched.LastError = ""
	o := obs
	st.sched.LastRun = &o
	st.prev = &o
	st.mu.Unlock()
}

// resolveTarget picks the digest this fire audits.
func (m *Manager) resolveTarget(ctx context.Context, sched Schedule) (string, error) {
	if sched.SessionID != "" {
		digest, err := m.cfg.Backend.Snapshot(ctx, sched.SessionID)
		if err == nil {
			return digest, nil
		}
		// The session expired or was closed; keep the schedule alive on
		// its base snapshot rather than erroring every interval.
		m.cfg.Logf("continuous: schedule %s session %s unavailable (%v); falling back to dataset_ref",
			sched.ID, sched.SessionID, err)
	}
	return m.cfg.Backend.Resolve(ctx, sched.DatasetRef)
}

// recordFailure notes a failed fire on the schedule and the decision
// log.
func (m *Manager) recordFailure(st *schedState, sched Schedule, source, digest string, started time.Time, err error) {
	m.cfg.Logf("continuous: schedule %s run failed: %v", sched.ID, err)
	if m.cfg.Log != nil {
		m.cfg.Log.Append(Decision{
			Source:        source,
			Kind:          "analyze",
			Dataset:       digest,
			DurationNanos: time.Since(started).Nanoseconds(),
			Error:         err.Error(),
		})
	}
	st.mu.Lock()
	st.sched.Fires++
	st.sched.LastError = err.Error()
	st.mu.Unlock()
}

// driftStats runs the O(delta) drift audit between consecutive digests
// and logs it as its own decision.
func (m *Manager) driftStats(ctx context.Context, sched Schedule, source, before, after string) (*DriftStats, error) {
	rep, meta, err := m.cfg.Backend.Drift(ctx, before, after)
	if err != nil {
		return nil, err
	}
	ds := &DriftStats{
		Events: rep.Events,
		Gained: len(rep.SameUser.Gained) + len(rep.SamePermission.Gained),
		Lost:   len(rep.SameUser.Lost) + len(rep.SamePermission.Lost),
	}
	if m.cfg.Log != nil {
		m.cfg.Log.Append(Decision{
			Source:      source,
			Kind:        "drift",
			Dataset:     before + "+" + after,
			Fingerprint: meta.Fingerprint,
			CacheHit:    meta.CacheHit,
			Findings:    ds.Gained + ds.Lost,
		})
	}
	return ds, nil
}

// evaluateRules trips matching rules and routes alerts to sinks,
// returning the tripped rule ids for the decision record.
func (m *Manager) evaluateRules(scheduleID string, prev *Observation, obs Observation) []string {
	m.mu.Lock()
	rules := make([]Rule, 0, len(m.rules))
	for _, r := range m.rules {
		rules = append(rules, *r)
	}
	m.mu.Unlock()
	sortByCreation(rules, func(r Rule) (time.Time, string) { return r.CreatedAt, r.ID })

	var tripped []string
	for _, r := range rules {
		alert, ok := Evaluate(r, scheduleID, prev, obs)
		if !ok {
			continue
		}
		tripped = append(tripped, r.ID)
		m.mu.Lock()
		if live, exists := m.rules[r.ID]; exists {
			live.Trips++
		}
		m.trips++
		sinks := m.routeLocked(r)
		m.mu.Unlock()
		if m.cfg.Hooks.AlertTrip != nil {
			m.cfg.Hooks.AlertTrip(string(r.Type))
		}
		for _, st := range sinks {
			m.deliverer.enqueue(st, alert)
		}
	}
	return tripped
}

// routeLocked resolves a rule's target sinks; callers hold m.mu.
func (m *Manager) routeLocked(r Rule) []*sinkState {
	if len(r.SinkIDs) == 0 {
		out := make([]*sinkState, 0, len(m.sinks))
		ids := make([]string, 0, len(m.sinks))
		for id := range m.sinks {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			out = append(out, m.sinks[id])
		}
		return out
	}
	out := make([]*sinkState, 0, len(r.SinkIDs))
	for _, id := range r.SinkIDs {
		if st, ok := m.sinks[id]; ok {
			out = append(out, st)
		}
	}
	return out
}

// measureRecall compares the approximate method's class-4 groups
// against an exact run over the same digest (a separate cache line, so
// repeated fires of an unchanged snapshot pay for it once). Recall is
// the fraction of exact duplicate pairs the approximate method
// recovered; 1 when the schedule already runs the exact method.
func (m *Manager) measureRecall(ctx context.Context, digest string, opts core.Options, approx *core.Report) (float64, bool) {
	if opts.Method == 0 || opts.Method == core.MethodRoleDiet {
		return 1, true
	}
	exactOpts := opts
	exactOpts.Method = core.MethodRoleDiet
	exact, _, err := m.cfg.Backend.Analyze(ctx, digest, exactOpts)
	if err != nil {
		m.cfg.Logf("continuous: recall measurement for %s: %v", digest, err)
		return 0, false
	}
	return groupRecall(exact, approx), true
}

// groupRecall is the class-4 pair recall of approx against exact.
func groupRecall(exact, approx *core.Report) float64 {
	exactPairs := pairSet(exact.SameUserGroups, "u")
	for k := range pairSet(exact.SamePermissionGroups, "p") {
		exactPairs[k] = true
	}
	if len(exactPairs) == 0 {
		return 1
	}
	approxPairs := pairSet(approx.SameUserGroups, "u")
	for k := range pairSet(approx.SamePermissionGroups, "p") {
		approxPairs[k] = true
	}
	hit := 0
	for k := range exactPairs {
		if approxPairs[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(exactPairs))
}

// pairSet expands groups into their member pairs, keyed side-tagged.
func pairSet(groups []core.RoleGroup, side string) map[string]bool {
	pairs := make(map[string]bool)
	for _, g := range groups {
		ids := make([]string, len(g.Roles))
		for i, r := range g.Roles {
			ids[i] = string(r)
		}
		sort.Strings(ids)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pairs[side+"\x00"+ids[i]+"\x00"+ids[j]] = true
			}
		}
	}
	return pairs
}
