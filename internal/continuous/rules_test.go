package continuous

import (
	"strings"
	"testing"
	"time"
)

func f64(v float64) *float64 { return &v }

func TestEvaluateTable(t *testing.T) {
	base := Observation{Run: 2, Digest: "after", Findings: 10, DupGroups: 3, Time: time.Now()}
	prev := &Observation{Run: 1, Digest: "before", Findings: 4, DupGroups: 2}

	cases := []struct {
		name     string
		rule     Rule
		schedule string
		prev     *Observation
		cur      func() Observation
		trip     bool
		value    float64
		contains string
	}{
		{
			name: "spike trips on threshold delta",
			rule: Rule{ID: "r1", Type: RuleSpike, Threshold: 6},
			prev: prev, cur: func() Observation { return base },
			trip: true, value: 6, contains: "spiked by 6",
		},
		{
			name: "spike below threshold stays quiet",
			rule: Rule{ID: "r1", Type: RuleSpike, Threshold: 7},
			prev: prev, cur: func() Observation { return base },
			trip: false,
		},
		{
			name: "spike needs a previous run",
			rule: Rule{ID: "r1", Type: RuleSpike, Threshold: 1},
			prev: nil, cur: func() Observation { return base },
			trip: false,
		},
		{
			name: "improvement never spikes",
			rule: Rule{ID: "r1", Type: RuleSpike, Threshold: 1},
			prev: &Observation{Digest: "before", Findings: 50},
			cur:  func() Observation { return base },
			trip: false,
		},
		{
			name: "drift trips on gained+lost",
			rule: Rule{ID: "r2", Type: RuleDrift, Threshold: 2},
			prev: prev,
			cur: func() Observation {
				o := base
				o.Drift = &DriftStats{Events: 5, Gained: 1, Lost: 1}
				return o
			},
			trip: true, value: 2, contains: "1 gained, 1 lost",
		},
		{
			name: "drift without movement stays quiet",
			rule: Rule{ID: "r2", Type: RuleDrift, Threshold: 2},
			prev: prev,
			cur: func() Observation {
				o := base
				o.Drift = &DriftStats{Events: 5, Gained: 1, Lost: 0}
				return o
			},
			trip: false,
		},
		{
			name: "drift needs a drift signal",
			rule: Rule{ID: "r2", Type: RuleDrift, Threshold: 1},
			prev: prev, cur: func() Observation { return base },
			trip: false,
		},
		{
			name: "recall trips below threshold",
			rule: Rule{ID: "r3", Type: RuleRecall, Threshold: 0.9},
			prev: nil,
			cur: func() Observation {
				o := base
				o.Recall = f64(0.5)
				return o
			},
			trip: true, value: 0.5, contains: "recall 0.500 fell below",
		},
		{
			name: "recall at threshold stays quiet",
			rule: Rule{ID: "r3", Type: RuleRecall, Threshold: 0.9},
			prev: nil,
			cur: func() Observation {
				o := base
				o.Recall = f64(0.9)
				return o
			},
			trip: false,
		},
		{
			name: "recall without measurement stays quiet",
			rule: Rule{ID: "r3", Type: RuleRecall, Threshold: 0.9},
			prev: nil, cur: func() Observation { return base },
			trip: false,
		},
		{
			name:     "scoped rule ignores other schedules",
			rule:     Rule{ID: "r4", Type: RuleSpike, Threshold: 1, ScheduleID: "other"},
			schedule: "mine",
			prev:     prev, cur: func() Observation { return base },
			trip: false,
		},
		{
			name:     "scoped rule matches its schedule",
			rule:     Rule{ID: "r4", Type: RuleSpike, Threshold: 1, ScheduleID: "mine"},
			schedule: "mine",
			prev:     prev, cur: func() Observation { return base },
			trip: true, value: 6,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scheduleID := tc.schedule
			if scheduleID == "" {
				scheduleID = "s1"
			}
			alert, tripped := Evaluate(tc.rule, scheduleID, tc.prev, tc.cur())
			if tripped != tc.trip {
				t.Fatalf("tripped = %v, want %v", tripped, tc.trip)
			}
			if !tc.trip {
				return
			}
			if alert.Value != tc.value {
				t.Errorf("value = %v, want %v", alert.Value, tc.value)
			}
			if alert.RuleID != tc.rule.ID || alert.ScheduleID != scheduleID {
				t.Errorf("alert identity = (%s, %s), want (%s, %s)",
					alert.RuleID, alert.ScheduleID, tc.rule.ID, scheduleID)
			}
			if alert.Digest != "after" {
				t.Errorf("alert digest = %q, want after", alert.Digest)
			}
			if tc.contains != "" && !strings.Contains(alert.Message, tc.contains) {
				t.Errorf("message %q missing %q", alert.Message, tc.contains)
			}
		})
	}
}

func TestSpikeAlertCarriesPrevDigest(t *testing.T) {
	prev := &Observation{Digest: "before", Findings: 0}
	cur := Observation{Digest: "after", Findings: 5}
	alert, ok := Evaluate(Rule{ID: "r", Type: RuleSpike, Threshold: 5}, "s", prev, cur)
	if !ok {
		t.Fatal("expected trip")
	}
	if alert.PrevDigest != "before" {
		t.Fatalf("prev_digest = %q, want before", alert.PrevDigest)
	}
}

func TestRuleValidate(t *testing.T) {
	cases := []struct {
		rule Rule
		ok   bool
	}{
		{Rule{Type: RuleSpike, Threshold: 1}, true},
		{Rule{Type: RuleDrift, Threshold: 3}, true},
		{Rule{Type: RuleRecall, Threshold: 0.95}, true},
		{Rule{Type: RuleRecall, Threshold: 1}, true},
		{Rule{Type: "nope", Threshold: 1}, false},
		{Rule{Type: RuleSpike, Threshold: 0}, false},
		{Rule{Type: RuleSpike, Threshold: 0.5}, false},
		{Rule{Type: RuleRecall, Threshold: 0}, false},
		{Rule{Type: RuleRecall, Threshold: 1.5}, false},
	}
	for _, tc := range cases {
		err := tc.rule.validate()
		if (err == nil) != tc.ok {
			t.Errorf("validate(%+v) = %v, want ok=%v", tc.rule, err, tc.ok)
		}
	}
}

func TestDurationWire(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"250ms"`)); err != nil || time.Duration(d) != 250*time.Millisecond {
		t.Fatalf("string form: %v -> %v", err, time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`1000000`)); err != nil || time.Duration(d) != time.Millisecond {
		t.Fatalf("integer form: %v -> %v", err, time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("bogus duration accepted")
	}
	b, err := Duration(1500 * time.Millisecond).MarshalJSON()
	if err != nil || string(b) != `"1.5s"` {
		t.Fatalf("marshal = %s, %v", b, err)
	}
}
