package continuous

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
)

// testSinkState builds a sinkState around a URL with the given config.
func testSinkState(cfg SinkConfig, url string) *sinkState {
	return &sinkState{
		sink:    Sink{ID: "snk", URL: url},
		breaker: newSinkBreaker(cfg.withDefaults()),
	}
}

// testDeliverer builds a synchronous-use deliverer (enqueue untested
// here; deliver is called directly for determinism).
func testDeliverer(t *testing.T, cfg SinkConfig) *deliverer {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Jitter = func() float64 { return 0 } // no backoff sleeps
	if cfg.BaseDelay == 0 {
		cfg.BaseDelay = time.Millisecond
	}
	d := newDeliverer(ctx, cfg, Hooks{}, t.Logf)
	t.Cleanup(func() {
		cancel()
		d.close()
	})
	return d
}

func TestSinkDeliveryRetriesThroughInjectedFaults(t *testing.T) {
	var got atomic.Int32
	var body []byte
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		body = b
		mu.Unlock()
		got.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	// The deterministic injector drops the first two attempts before
	// any bytes reach the endpoint; the third succeeds.
	inj, err := fleet.NewInjector("drop:2", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDeliverer(t, SinkConfig{Attempts: 3, Transport: inj})
	s := testSinkState(SinkConfig{}, srv.URL)

	d.deliver(s, Alert{RuleID: "r1", Type: RuleDrift, ScheduleID: "s1", Digest: "abc", Message: "m"})

	if got.Load() != 1 {
		t.Fatalf("endpoint hit %d times, want 1 (after 2 injected drops)", got.Load())
	}
	v := s.view()
	if v.Delivered != 1 || v.Failed != 0 {
		t.Fatalf("counters = %+v, want 1 delivered", v)
	}
	if v.Breaker.State != fleet.BreakerClosed {
		t.Fatalf("breaker = %v, want closed", v.Breaker.State)
	}
	var a Alert
	mu.Lock()
	defer mu.Unlock()
	if err := json.Unmarshal(body, &a); err != nil || a.RuleID != "r1" || a.Digest != "abc" {
		t.Fatalf("payload = %s (%v), want the alert back", body, err)
	}
}

func TestSinkBreakerOpensAndFailsFast(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := SinkConfig{Attempts: 2, BreakerThreshold: 2, BreakerCooldown: time.Hour}
	d := testDeliverer(t, cfg)
	s := testSinkState(cfg, srv.URL)

	// First delivery: 2 attempts, both 500 -> 2 consecutive failures
	// reach the threshold and open the breaker.
	d.deliver(s, Alert{RuleID: "r1", Type: RuleSpike})
	if got := hits.Load(); got != 2 {
		t.Fatalf("first delivery hit endpoint %d times, want 2", got)
	}
	v := s.view()
	if v.Failed != 1 {
		t.Fatalf("failed = %d, want 1", v.Failed)
	}
	if v.Breaker.State != fleet.BreakerOpen {
		t.Fatalf("breaker = %v, want open", v.Breaker.State)
	}

	// Second delivery: the open breaker fails fast — the endpoint is
	// never contacted and no retries burn.
	d.deliver(s, Alert{RuleID: "r2", Type: RuleSpike})
	if got := hits.Load(); got != 2 {
		t.Fatalf("open breaker let a request through (%d hits)", got)
	}
	if v := s.view(); v.Failed != 2 {
		t.Fatalf("failed = %d, want 2", v.Failed)
	}
}

func TestSinkBreakerHalfOpenRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cfg := SinkConfig{Attempts: 1, BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond}
	d := testDeliverer(t, cfg)
	s := testSinkState(cfg, srv.URL)

	d.deliver(s, Alert{RuleID: "r1"})
	if s.view().Breaker.State != fleet.BreakerOpen {
		t.Fatal("breaker should open after the failure")
	}

	fail.Store(false)
	time.Sleep(20 * time.Millisecond) // past the cooldown
	d.deliver(s, Alert{RuleID: "r2"})
	v := s.view()
	if v.Delivered != 1 {
		t.Fatalf("half-open trial should deliver; counters %+v", v)
	}
	if v.Breaker.State != fleet.BreakerClosed {
		t.Fatalf("breaker = %v, want closed after successful trial", v.Breaker.State)
	}
}

func TestSink4xxIsPermanent(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	cfg := SinkConfig{Attempts: 5}
	d := testDeliverer(t, cfg)
	s := testSinkState(cfg, srv.URL)
	d.deliver(s, Alert{RuleID: "r1"})

	if got := hits.Load(); got != 1 {
		t.Fatalf("4xx retried: %d hits, want 1", got)
	}
	v := s.view()
	if v.Failed != 1 {
		t.Fatalf("failed = %d, want 1", v.Failed)
	}
	// A 4xx says nothing about endpoint health; the breaker stays closed.
	if v.Breaker.State != fleet.BreakerClosed {
		t.Fatalf("breaker = %v, want closed after 4xx", v.Breaker.State)
	}
}

func TestSinkValidate(t *testing.T) {
	cases := []struct {
		url string
		ok  bool
	}{
		{"http://localhost:9/hook", true},
		{"https://example.com/hook", true},
		{"", false},
		{"not a url", false},
		{"ftp://example.com", false},
		{"/relative/path", false},
	}
	for _, tc := range cases {
		err := Sink{URL: tc.url}.validate()
		if (err == nil) != tc.ok {
			t.Errorf("validate(%q) = %v, want ok=%v", tc.url, err, tc.ok)
		}
	}
}

func TestDelivererQueueDropsWhenFull(t *testing.T) {
	// A deliverer with no worker running: the queue fills
	// deterministically and the overflow is dropped and counted.
	d := &deliverer{
		cfg:   SinkConfig{QueueDepth: 2}.withDefaults(),
		queue: make(chan delivery, 2),
		ctx:   context.Background(),
		logf:  t.Logf,
	}
	s := testSinkState(SinkConfig{}, "http://localhost:9/hook")
	for i := 0; i < 5; i++ {
		d.enqueue(s, Alert{RuleID: "r"})
	}
	if v := s.view(); v.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3 with a 2-deep queue", v.Dropped)
	}
}
