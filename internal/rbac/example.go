package rbac

// Figure1 builds the paper's running example (Figure 1): four users,
// five roles and six permissions exhibiting every inefficiency class of
// the taxonomy —
//
//   - P01 is a standalone permission;
//   - R02 has users but no permissions, R03 has permissions but no users;
//   - R01 and R05 have a single user each;
//   - R02 and R04 share the same users, R04 and R05 the same permissions.
//
// The user-side assignments are pinned by the co-occurrence matrix
// printed in §III-C: R01={U03}, R02={U01,U02}, R03={}, R04={U01,U02},
// R05={U04}.
func Figure1() *Dataset {
	d := NewDataset()
	for _, u := range []UserID{"U01", "U02", "U03", "U04"} {
		_ = d.AddUser(u)
	}
	for _, r := range []RoleID{"R01", "R02", "R03", "R04", "R05"} {
		_ = d.AddRole(r)
	}
	for _, p := range []PermissionID{"P01", "P02", "P03", "P04", "P05", "P06"} {
		_ = d.AddPermission(p)
	}
	userEdges := []struct {
		r RoleID
		u UserID
	}{
		{"R01", "U03"},
		{"R02", "U01"}, {"R02", "U02"},
		{"R04", "U01"}, {"R04", "U02"},
		{"R05", "U04"},
	}
	for _, e := range userEdges {
		_ = d.AssignUser(e.r, e.u)
	}
	permEdges := []struct {
		r RoleID
		p PermissionID
	}{
		{"R01", "P02"},
		{"R03", "P03"}, {"R03", "P04"},
		{"R04", "P05"}, {"R04", "P06"},
		{"R05", "P05"}, {"R05", "P06"},
	}
	for _, e := range permEdges {
		_ = d.AssignPermission(e.r, e.p)
	}
	return d
}
