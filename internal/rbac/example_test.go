package rbac_test

import (
	"fmt"

	"repro/internal/rbac"
)

// Example builds a small dataset through the public API and derives the
// two assignment matrices the detection framework consumes.
func Example() {
	d := rbac.NewDataset()
	for _, u := range []rbac.UserID{"alice", "bob"} {
		if err := d.AddUser(u); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	if err := d.AddRole("viewer"); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := d.AddPermission("read"); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := d.AssignUser("viewer", "alice"); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := d.AssignPermission("viewer", "read"); err != nil {
		fmt.Println("error:", err)
		return
	}

	ruam := d.RUAM()
	rpam := d.RPAM()
	fmt.Printf("RUAM %dx%d: %s\n", ruam.Rows(), ruam.Cols(), ruam.Row(0))
	fmt.Printf("RPAM %dx%d: %s\n", rpam.Rows(), rpam.Cols(), rpam.Row(0))
	fmt.Printf("stats: %+v\n", d.Stats())
	// Output:
	// RUAM 1x2: 10
	// RPAM 1x1: 1
	// stats: {Users:2 Roles:1 Permissions:1 UserAssignments:1 PermissionAssignments:1}
}

// ExampleFigure1 exposes the paper's running example.
func ExampleFigure1() {
	d := rbac.Figure1()
	fmt.Printf("%d users, %d roles, %d permissions\n",
		d.NumUsers(), d.NumRoles(), d.NumPermissions())
	users, _ := d.RoleUsers("R04")
	fmt.Println("R04 users:", users)
	// Output:
	// 4 users, 5 roles, 6 permissions
	// R04 users: [U01 U02]
}
