package rbac

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// datasetJSON is the serialised form of a Dataset. Assignments are
// stored as explicit edge lists so the format round-trips exactly and
// stays diff-friendly.
type datasetJSON struct {
	Users           []UserID       `json:"users"`
	Roles           []RoleID       `json:"roles"`
	Permissions     []PermissionID `json:"permissions"`
	UserAssignments []userEdgeJSON `json:"userAssignments"`
	PermAssignments []permEdgeJSON `json:"permissionAssignments"`
}

type userEdgeJSON struct {
	Role RoleID `json:"role"`
	User UserID `json:"user"`
}

type permEdgeJSON struct {
	Role       RoleID       `json:"role"`
	Permission PermissionID `json:"permission"`
}

// MarshalJSON implements json.Marshaler with deterministic edge order.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	out := datasetJSON{
		Users:           d.Users(),
		Roles:           d.Roles(),
		Permissions:     d.Permissions(),
		UserAssignments: make([]userEdgeJSON, 0, d.NumUserAssignments()),
		PermAssignments: make([]permEdgeJSON, 0, d.NumPermissionAssignments()),
	}
	for ri, set := range d.roleUsers {
		uis := make([]int, 0, len(set))
		for ui := range set {
			uis = append(uis, ui)
		}
		sort.Ints(uis)
		for _, ui := range uis {
			out.UserAssignments = append(out.UserAssignments, userEdgeJSON{
				Role: d.roles[ri],
				User: d.users[ui],
			})
		}
	}
	for ri, set := range d.rolePerms {
		pis := make([]int, 0, len(set))
		for pi := range set {
			pis = append(pis, pi)
		}
		sort.Ints(pis)
		for _, pi := range pis {
			out.PermAssignments = append(out.PermAssignments, permEdgeJSON{
				Role:       d.roles[ri],
				Permission: d.perms[pi],
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var in datasetJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("rbac: decode dataset: %w", err)
	}
	fresh := NewDataset()
	for _, u := range in.Users {
		if err := fresh.AddUser(u); err != nil {
			return err
		}
	}
	for _, r := range in.Roles {
		if err := fresh.AddRole(r); err != nil {
			return err
		}
	}
	for _, p := range in.Permissions {
		if err := fresh.AddPermission(p); err != nil {
			return err
		}
	}
	for _, e := range in.UserAssignments {
		if err := fresh.AssignUser(e.Role, e.User); err != nil {
			return err
		}
	}
	for _, e := range in.PermAssignments {
		if err := fresh.AssignPermission(e.Role, e.Permission); err != nil {
			return err
		}
	}
	*d = *fresh
	return nil
}

// WriteJSON serialises the dataset to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("rbac: write dataset: %w", err)
	}
	return nil
}

// ReadJSON parses a dataset from r.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("rbac: read dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// CSV edge-list formats. Each file is a headered two-column CSV:
//
//	role,user        (user assignments)
//	role,permission  (permission assignments)
//
// Entities appearing only in one file (e.g. standalone users exported as
// a bare node list) can be added via the node CSVs, a single "id" column.

// WriteUserAssignmentsCSV writes the role,user edge list.
func (d *Dataset) WriteUserAssignmentsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"role", "user"}); err != nil {
		return fmt.Errorf("rbac: write csv header: %w", err)
	}
	for ri, set := range d.roleUsers {
		uis := make([]int, 0, len(set))
		for ui := range set {
			uis = append(uis, ui)
		}
		sort.Ints(uis)
		for _, ui := range uis {
			if err := cw.Write([]string{string(d.roles[ri]), string(d.users[ui])}); err != nil {
				return fmt.Errorf("rbac: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePermissionAssignmentsCSV writes the role,permission edge list.
func (d *Dataset) WritePermissionAssignmentsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"role", "permission"}); err != nil {
		return fmt.Errorf("rbac: write csv header: %w", err)
	}
	for ri, set := range d.rolePerms {
		pis := make([]int, 0, len(set))
		for pi := range set {
			pis = append(pis, pi)
		}
		sort.Ints(pis)
		for _, pi := range pis {
			if err := cw.Write([]string{string(d.roles[ri]), string(d.perms[pi])}); err != nil {
				return fmt.Errorf("rbac: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAssignmentsCSV loads user and permission edge lists into a new
// dataset, creating entities on first mention. Either reader may be nil
// to skip that edge type — e.g. analysing only role–permission data.
func ReadAssignmentsCSV(userEdges, permEdges io.Reader) (*Dataset, error) {
	d := NewDataset()
	if userEdges != nil {
		if err := readEdgeCSV(userEdges, "user", func(role, other string) {
			d.EnsureRole(RoleID(role))
			d.EnsureUser(UserID(other))
			_ = d.AssignUser(RoleID(role), UserID(other))
		}); err != nil {
			return nil, err
		}
	}
	if permEdges != nil {
		if err := readEdgeCSV(permEdges, "permission", func(role, other string) {
			d.EnsureRole(RoleID(role))
			d.EnsurePermission(PermissionID(other))
			_ = d.AssignPermission(RoleID(role), PermissionID(other))
		}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// readEdgeCSV parses a two-column headered CSV and feeds each edge to
// add. The header's second column must match wantKind.
func readEdgeCSV(r io.Reader, wantKind string, add func(role, other string)) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("rbac: read csv header: %w", err)
	}
	if header[0] != "role" || header[1] != wantKind {
		return fmt.Errorf("rbac: csv header %v, want [role %s]", header, wantKind)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("rbac: read csv row: %w", err)
		}
		add(rec[0], rec[1])
	}
}
