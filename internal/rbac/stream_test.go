package rbac

import (
	"bytes"
	"encoding/json"
	"io"
	"runtime"
	"strings"
	"testing"
)

// streamFixture renders a moderately sized dataset as JSON.
func streamFixture(t testing.TB, roles, users int) (*Dataset, []byte) {
	t.Helper()
	ds := NewDataset()
	for u := 0; u < users; u++ {
		ds.EnsureUser(UserID(string(rune('a'+u%26)) + string(rune('a'+u/26%26)) + string(rune('a'+u/676))))
	}
	for r := 0; r < roles; r++ {
		role := RoleID("role" + string(rune('a'+r%26)) + string(rune('a'+r/26%26)) + string(rune('a'+r/676)))
		ds.EnsureRole(role)
		for u := r % users; u < users; u += 7 {
			_ = ds.AssignUser(role, ds.User(u))
		}
	}
	ds.EnsurePermission("p0")
	for r := 0; r < roles; r += 3 {
		_ = ds.AssignPermission(ds.Role(r), "p0")
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return ds, buf.Bytes()
}

// TestReadJSONStreamMatchesBuffered: the streaming decoder must land on
// the same dataset as the buffered one for a full round-tripped export.
func TestReadJSONStreamMatchesBuffered(t *testing.T) {
	_, raw := streamFixture(t, 120, 80)
	buffered, err := ReadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadJSONStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(buffered)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bj, sj) {
		t.Fatalf("streamed decode differs from buffered decode:\n  buffered: %.200s\n  streamed: %.200s", bj, sj)
	}
}

// TestReadJSONStreamForwardReferences: edges may precede the entity
// arrays in the document; the pending buffer must resolve them.
func TestReadJSONStreamForwardReferences(t *testing.T) {
	doc := `{
		"userAssignments": [{"role":"r1","user":"u1"},{"role":"r2","user":"u1"}],
		"permissionAssignments": [{"role":"r1","permission":"p1"}],
		"users": ["u1"], "roles": ["r1","r2"], "permissions": ["p1"]
	}`
	ds, err := ReadJSONStream(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !ds.HasAssignment("r1", "u1") || !ds.HasAssignment("r2", "u1") || !ds.HasPermission("r1", "p1") {
		t.Fatalf("forward-referenced edges missing: %+v", ds.Stats())
	}
}

// TestReadJSONStreamRejectsTruncated: a body cut off mid-stream must
// error, never yield a partial dataset.
func TestReadJSONStreamRejectsTruncated(t *testing.T) {
	_, raw := streamFixture(t, 40, 30)
	for _, cut := range []int{len(raw) / 4, len(raw) / 2, len(raw) - 2} {
		if _, err := ReadJSONStream(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated at %d/%d bytes decoded without error", cut, len(raw))
		}
	}
}

// TestReadJSONStreamRejectsUnknownEdges: an edge naming an entity that
// never appears must fail validation at the end of the stream.
func TestReadJSONStreamRejectsUnknownEdges(t *testing.T) {
	doc := `{"users":["u1"],"roles":["r1"],"permissions":[],
		"userAssignments":[{"role":"ghost","user":"u1"}],"permissionAssignments":[]}`
	if _, err := ReadJSONStream(strings.NewReader(doc)); err == nil {
		t.Fatal("edge to unknown role decoded without error")
	}
}

// paddedReader serves a JSON document logically embedded in a much
// larger byte stream: leading whitespace inflates the wire size without
// changing the decoded value. It never materialises the padding as one
// allocation — each Read fills from a counter — so any large allocation
// observed by the caller belongs to the decoder under test.
type paddedReader struct {
	pad int
	doc io.Reader
}

func (p *paddedReader) Read(b []byte) (int, error) {
	if p.pad > 0 {
		n := len(b)
		if n > p.pad {
			n = p.pad
		}
		for i := 0; i < n; i++ {
			b[i] = ' '
		}
		p.pad -= n
		return n, nil
	}
	return p.doc.Read(b)
}

// TestReadJSONStreamBoundedMemory is the streaming-ingest regression
// guard: decoding a document whose wire size is tens of megabytes must
// allocate in proportion to the decoded entities, not the wire size.
// 48 MiB of leading whitespace around a small dataset has to decode in
// well under a tenth of that allocation budget — a buffered decoder
// (io.ReadAll + Unmarshal) fails this immediately.
func TestReadJSONStreamBoundedMemory(t *testing.T) {
	_, raw := streamFixture(t, 40, 30)
	const pad = 48 << 20

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ds, err := ReadJSONStream(&paddedReader{pad: pad, doc: bytes.NewReader(raw)})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRoles() != 40 {
		t.Fatalf("decoded %d roles, want 40", ds.NumRoles())
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	if allocated > pad/10 {
		t.Fatalf("decoding a %d-byte stream allocated %d bytes — decoder is buffering the body", pad+len(raw), allocated)
	}
}
