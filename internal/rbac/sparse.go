package rbac

import (
	"sort"

	"repro/internal/matrix"
)

// RUAMCSR builds the Role-User Assignment Matrix in compressed sparse
// row form, without materialising the dense bit matrix. At the paper's
// organisation scale (50k roles × 90k users) the dense RUAM needs
// ~560 MB while the CSR form needs a few megabytes — the §III-B memory
// optimisation.
func (d *Dataset) RUAMCSR() *matrix.CSR {
	return buildCSR(d.roleUsers, len(d.roles), len(d.users))
}

// RPAMCSR builds the Role-Permission Assignment Matrix in CSR form.
func (d *Dataset) RPAMCSR() *matrix.CSR {
	return buildCSR(d.rolePerms, len(d.roles), len(d.perms))
}

func buildCSR(sets []map[int]struct{}, rows, cols int) *matrix.CSR {
	c := matrix.NewCSR(rows, cols)
	nnz := 0
	for _, s := range sets {
		nnz += len(s)
	}
	c.ColIdx = make([]int, 0, nnz)
	for ri, s := range sets {
		row := make([]int, 0, len(s))
		for j := range s {
			row = append(row, j)
		}
		sort.Ints(row)
		c.ColIdx = append(c.ColIdx, row...)
		c.RowPtr[ri+1] = len(c.ColIdx)
	}
	return c
}
