package rbac

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	d := figure1Dataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != d.Stats() {
		t.Fatalf("stats after round trip: %+v vs %+v", back.Stats(), d.Stats())
	}
	if !back.RUAM().Equal(d.RUAM()) {
		t.Fatal("RUAM changed through JSON round trip")
	}
	if !back.RPAM().Equal(d.RPAM()) {
		t.Fatal("RPAM changed through JSON round trip")
	}
	// Index orders preserved.
	if back.Role(2) != "R03" || back.User(3) != "U04" || back.Permission(0) != "P01" {
		t.Fatal("entity order not preserved")
	}
}

func TestJSONDeterministic(t *testing.T) {
	d := figure1Dataset(t)
	var a, b bytes.Buffer
	if err := d.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON output not deterministic")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	// Edge referencing a missing role.
	bad := `{"users":["u"],"roles":[],"permissions":[],
	  "userAssignments":[{"role":"ghost","user":"u"}],"permissionAssignments":[]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("dangling edge accepted")
	}
	// Duplicate user entries.
	dup := `{"users":["u","u"],"roles":[],"permissions":[],
	  "userAssignments":[],"permissionAssignments":[]}`
	if _, err := ReadJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate user accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := figure1Dataset(t)
	var userBuf, permBuf bytes.Buffer
	if err := d.WriteUserAssignmentsCSV(&userBuf); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePermissionAssignmentsCSV(&permBuf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAssignmentsCSV(&userBuf, &permBuf)
	if err != nil {
		t.Fatal(err)
	}
	// CSV carries only edges, so entities without any edge (standalone
	// user-less roles appear via perm edges, but P01 and fully
	// disconnected nodes are lost). Compare edge structure per shared
	// entity instead of full stats.
	if back.NumUserAssignments() != d.NumUserAssignments() {
		t.Fatalf("user edges = %d, want %d", back.NumUserAssignments(), d.NumUserAssignments())
	}
	if back.NumPermissionAssignments() != d.NumPermissionAssignments() {
		t.Fatalf("perm edges = %d, want %d", back.NumPermissionAssignments(), d.NumPermissionAssignments())
	}
	for _, role := range back.Roles() {
		wantUsers, err := d.RoleUsers(role)
		if err != nil {
			t.Fatal(err)
		}
		gotUsers, err := back.RoleUsers(role)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantUsers) != len(gotUsers) {
			t.Fatalf("role %s users %v vs %v", role, gotUsers, wantUsers)
		}
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	bad := strings.NewReader("user,role\na,b\n")
	if _, err := ReadAssignmentsCSV(bad, nil); err == nil {
		t.Fatal("wrong header accepted")
	}
	empty := strings.NewReader("")
	if _, err := ReadAssignmentsCSV(empty, nil); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestCSVFieldCountValidation(t *testing.T) {
	bad := strings.NewReader("role,user\na,b,c\n")
	if _, err := ReadAssignmentsCSV(bad, nil); err == nil {
		t.Fatal("3-field row accepted")
	}
}

func TestReadAssignmentsCSVNilReaders(t *testing.T) {
	d, err := ReadAssignmentsCSV(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRoles() != 0 {
		t.Fatal("nil readers produced entities")
	}
	users := strings.NewReader("role,user\nr1,u1\nr1,u2\n")
	d, err = ReadAssignmentsCSV(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRoles() != 1 || d.NumUsers() != 2 || d.NumUserAssignments() != 2 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}
