package rbac

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes to the dataset decoder: it must
// either reject the input or produce a dataset that validates and
// round-trips.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := Figure1().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"users":["a"],"roles":["r"],"permissions":[],"userAssignments":[{"role":"r","user":"a"}],"permissionAssignments":[]}`)
	f.Add(`{"users":["a","a"]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := ds.WriteJSON(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if back.Stats() != ds.Stats() {
			t.Fatalf("round trip changed stats: %+v vs %+v", back.Stats(), ds.Stats())
		}
	})
}

// FuzzReadAssignmentsCSV must never panic on arbitrary CSV bytes.
func FuzzReadAssignmentsCSV(f *testing.F) {
	f.Add("role,user\nr1,u1\n", "role,permission\nr1,p1\n")
	f.Add("", "")
	f.Add("role,user\n", "role,permission\nr1\n")
	f.Add("x,y\na,b\n", "role,permission\n")
	f.Fuzz(func(t *testing.T, users, perms string) {
		ds, err := ReadAssignmentsCSV(strings.NewReader(users), strings.NewReader(perms))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted CSV dataset fails validation: %v", err)
		}
	})
}
