// Package rbac models Role-Based Access Control data as the paper
// represents it: a tripartite graph of users, roles and permissions with
// user–role and role–permission assignment edges (Figure 1), convertible
// to the RUAM and RPAM bit matrices that the detection framework and the
// clustering methods consume.
package rbac

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/matrix"
)

// Entity identifiers. Distinct types keep user, role and permission
// namespaces from being mixed up at compile time.
type (
	// UserID identifies a user.
	UserID string
	// RoleID identifies a role.
	RoleID string
	// PermissionID identifies a permission (entitlement).
	PermissionID string
)

// Sentinel errors for entity lookups and duplicate registration.
var (
	ErrUnknownUser       = errors.New("rbac: unknown user")
	ErrUnknownRole       = errors.New("rbac: unknown role")
	ErrUnknownPermission = errors.New("rbac: unknown permission")
	ErrDuplicate         = errors.New("rbac: duplicate entity")
)

// Dataset is an in-memory RBAC database: the three node sets plus the
// two edge sets. Iteration orders are insertion orders, so matrix row
// and column indices are stable and reproducible.
type Dataset struct {
	users []UserID
	roles []RoleID
	perms []PermissionID

	userIdx map[UserID]int
	roleIdx map[RoleID]int
	permIdx map[PermissionID]int

	// roleUsers[r] and rolePerms[r] are the assignment sets of role r,
	// keyed by entity index.
	roleUsers []map[int]struct{}
	rolePerms []map[int]struct{}
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		userIdx: make(map[UserID]int),
		roleIdx: make(map[RoleID]int),
		permIdx: make(map[PermissionID]int),
	}
}

// AddUser registers a user. Re-adding an existing id is an ErrDuplicate.
func (d *Dataset) AddUser(id UserID) error {
	if _, ok := d.userIdx[id]; ok {
		return fmt.Errorf("%w: user %q", ErrDuplicate, id)
	}
	d.userIdx[id] = len(d.users)
	d.users = append(d.users, id)
	return nil
}

// AddRole registers a role.
func (d *Dataset) AddRole(id RoleID) error {
	if _, ok := d.roleIdx[id]; ok {
		return fmt.Errorf("%w: role %q", ErrDuplicate, id)
	}
	d.roleIdx[id] = len(d.roles)
	d.roles = append(d.roles, id)
	d.roleUsers = append(d.roleUsers, make(map[int]struct{}))
	d.rolePerms = append(d.rolePerms, make(map[int]struct{}))
	return nil
}

// AddPermission registers a permission.
func (d *Dataset) AddPermission(id PermissionID) error {
	if _, ok := d.permIdx[id]; ok {
		return fmt.Errorf("%w: permission %q", ErrDuplicate, id)
	}
	d.permIdx[id] = len(d.perms)
	d.perms = append(d.perms, id)
	return nil
}

// EnsureUser registers the user if absent and returns its index.
func (d *Dataset) EnsureUser(id UserID) int {
	if i, ok := d.userIdx[id]; ok {
		return i
	}
	_ = d.AddUser(id)
	return d.userIdx[id]
}

// EnsureRole registers the role if absent and returns its index.
func (d *Dataset) EnsureRole(id RoleID) int {
	if i, ok := d.roleIdx[id]; ok {
		return i
	}
	_ = d.AddRole(id)
	return d.roleIdx[id]
}

// EnsurePermission registers the permission if absent and returns its
// index.
func (d *Dataset) EnsurePermission(id PermissionID) int {
	if i, ok := d.permIdx[id]; ok {
		return i
	}
	_ = d.AddPermission(id)
	return d.permIdx[id]
}

// AssignUser adds a user–role edge. Both entities must already exist.
// Assigning twice is a no-op.
func (d *Dataset) AssignUser(role RoleID, user UserID) error {
	ri, ok := d.roleIdx[role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	ui, ok := d.userIdx[user]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	d.roleUsers[ri][ui] = struct{}{}
	return nil
}

// AssignPermission adds a role–permission edge.
func (d *Dataset) AssignPermission(role RoleID, perm PermissionID) error {
	ri, ok := d.roleIdx[role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	pi, ok := d.permIdx[perm]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPermission, perm)
	}
	d.rolePerms[ri][pi] = struct{}{}
	return nil
}

// RevokeUser removes a user–role edge if present.
func (d *Dataset) RevokeUser(role RoleID, user UserID) error {
	ri, ok := d.roleIdx[role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	ui, ok := d.userIdx[user]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	delete(d.roleUsers[ri], ui)
	return nil
}

// RevokePermission removes a role–permission edge if present.
func (d *Dataset) RevokePermission(role RoleID, perm PermissionID) error {
	ri, ok := d.roleIdx[role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	pi, ok := d.permIdx[perm]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPermission, perm)
	}
	delete(d.rolePerms[ri], pi)
	return nil
}

// RemoveRole deletes a role and all its edges. Indices of later roles
// shift down by one, exactly like deleting a matrix row.
func (d *Dataset) RemoveRole(role RoleID) error {
	ri, ok := d.roleIdx[role]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	d.roles = append(d.roles[:ri], d.roles[ri+1:]...)
	d.roleUsers = append(d.roleUsers[:ri], d.roleUsers[ri+1:]...)
	d.rolePerms = append(d.rolePerms[:ri], d.rolePerms[ri+1:]...)
	delete(d.roleIdx, role)
	for i := ri; i < len(d.roles); i++ {
		d.roleIdx[d.roles[i]] = i
	}
	return nil
}

// NumUsers returns the user count.
func (d *Dataset) NumUsers() int { return len(d.users) }

// NumRoles returns the role count.
func (d *Dataset) NumRoles() int { return len(d.roles) }

// NumPermissions returns the permission count.
func (d *Dataset) NumPermissions() int { return len(d.perms) }

// Users returns the user ids in index order (copy).
func (d *Dataset) Users() []UserID {
	out := make([]UserID, len(d.users))
	copy(out, d.users)
	return out
}

// Roles returns the role ids in index order (copy).
func (d *Dataset) Roles() []RoleID {
	out := make([]RoleID, len(d.roles))
	copy(out, d.roles)
	return out
}

// Permissions returns the permission ids in index order (copy).
func (d *Dataset) Permissions() []PermissionID {
	out := make([]PermissionID, len(d.perms))
	copy(out, d.perms)
	return out
}

// User returns the user id at index i.
func (d *Dataset) User(i int) UserID { return d.users[i] }

// Role returns the role id at index i.
func (d *Dataset) Role(i int) RoleID { return d.roles[i] }

// Permission returns the permission id at index i.
func (d *Dataset) Permission(i int) PermissionID { return d.perms[i] }

// RoleIndex returns the index of a role id.
func (d *Dataset) RoleIndex(id RoleID) (int, bool) {
	i, ok := d.roleIdx[id]
	return i, ok
}

// UserIndex returns the index of a user id.
func (d *Dataset) UserIndex(id UserID) (int, bool) {
	i, ok := d.userIdx[id]
	return i, ok
}

// PermissionIndex returns the index of a permission id.
func (d *Dataset) PermissionIndex(id PermissionID) (int, bool) {
	i, ok := d.permIdx[id]
	return i, ok
}

// HasAssignment reports whether the user–role edge exists.
func (d *Dataset) HasAssignment(role RoleID, user UserID) bool {
	ri, ok := d.roleIdx[role]
	if !ok {
		return false
	}
	ui, ok := d.userIdx[user]
	if !ok {
		return false
	}
	_, ok = d.roleUsers[ri][ui]
	return ok
}

// HasPermission reports whether the role–permission edge exists.
func (d *Dataset) HasPermission(role RoleID, perm PermissionID) bool {
	ri, ok := d.roleIdx[role]
	if !ok {
		return false
	}
	pi, ok := d.permIdx[perm]
	if !ok {
		return false
	}
	_, ok = d.rolePerms[ri][pi]
	return ok
}

// RoleUsers returns the sorted user ids assigned to a role.
func (d *Dataset) RoleUsers(role RoleID) ([]UserID, error) {
	ri, ok := d.roleIdx[role]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	out := make([]UserID, 0, len(d.roleUsers[ri]))
	for ui := range d.roleUsers[ri] {
		out = append(out, d.users[ui])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RolePermissions returns the sorted permission ids assigned to a role.
func (d *Dataset) RolePermissions(role RoleID) ([]PermissionID, error) {
	ri, ok := d.roleIdx[role]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	out := make([]PermissionID, 0, len(d.rolePerms[ri]))
	for pi := range d.rolePerms[ri] {
		out = append(out, d.perms[pi])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ForEachRoleUser calls fn with the index of every user assigned to
// role index ri, in unspecified order, stopping early when fn returns
// false. It is the allocation-free, index-space counterpart of
// RoleUsers for hot paths that must not round-trip through sorted id
// slices.
func (d *Dataset) ForEachRoleUser(ri int, fn func(ui int) bool) {
	for ui := range d.roleUsers[ri] {
		if !fn(ui) {
			return
		}
	}
}

// ForEachRolePermission calls fn with the index of every permission
// assigned to role index ri, in unspecified order, stopping early when
// fn returns false.
func (d *Dataset) ForEachRolePermission(ri int, fn func(pi int) bool) {
	for pi := range d.rolePerms[ri] {
		if !fn(pi) {
			return
		}
	}
}

// NumUserAssignments returns the total number of user–role edges.
func (d *Dataset) NumUserAssignments() int {
	n := 0
	for _, s := range d.roleUsers {
		n += len(s)
	}
	return n
}

// NumPermissionAssignments returns the total number of role–permission
// edges.
func (d *Dataset) NumPermissionAssignments() int {
	n := 0
	for _, s := range d.rolePerms {
		n += len(s)
	}
	return n
}

// RUAM builds the Role-User Assignment Matrix: one row per role (in
// index order), one column per user.
func (d *Dataset) RUAM() *matrix.BitMatrix {
	m := matrix.NewBitMatrix(len(d.roles), len(d.users))
	for ri, set := range d.roleUsers {
		for ui := range set {
			m.Set(ri, ui)
		}
	}
	return m
}

// RPAM builds the Role-Permission Assignment Matrix: one row per role,
// one column per permission.
func (d *Dataset) RPAM() *matrix.BitMatrix {
	m := matrix.NewBitMatrix(len(d.roles), len(d.perms))
	for ri, set := range d.rolePerms {
		for pi := range set {
			m.Set(ri, pi)
		}
	}
	return m
}

// UserRow returns role ri's user assignments as a bit vector, equal to
// RUAM row ri without building the full matrix.
func (d *Dataset) UserRow(ri int) *bitvec.Vector {
	v := bitvec.New(len(d.users))
	for ui := range d.roleUsers[ri] {
		v.Set(ui)
	}
	return v
}

// PermRow returns role ri's permission assignments as a bit vector.
func (d *Dataset) PermRow(ri int) *bitvec.Vector {
	v := bitvec.New(len(d.perms))
	for pi := range d.rolePerms[ri] {
		v.Set(pi)
	}
	return v
}

// EffectivePermissions returns, for every user index, the set of
// permission indices reachable through any of the user's roles. It is
// the semantic ground truth the consolidation planner must preserve.
func (d *Dataset) EffectivePermissions() []map[int]struct{} {
	out := make([]map[int]struct{}, len(d.users))
	for i := range out {
		out[i] = make(map[int]struct{})
	}
	for ri := range d.roles {
		for ui := range d.roleUsers[ri] {
			for pi := range d.rolePerms[ri] {
				out[ui][pi] = struct{}{}
			}
		}
	}
	return out
}

// Stats summarises dataset shape for reports and logs.
type Stats struct {
	Users                 int `json:"users"`
	Roles                 int `json:"roles"`
	Permissions           int `json:"permissions"`
	UserAssignments       int `json:"userAssignments"`
	PermissionAssignments int `json:"permissionAssignments"`
}

// Stats returns the dataset shape.
func (d *Dataset) Stats() Stats {
	return Stats{
		Users:                 d.NumUsers(),
		Roles:                 d.NumRoles(),
		Permissions:           d.NumPermissions(),
		UserAssignments:       d.NumUserAssignments(),
		PermissionAssignments: d.NumPermissionAssignments(),
	}
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := NewDataset()
	for _, u := range d.users {
		_ = out.AddUser(u)
	}
	for _, p := range d.perms {
		_ = out.AddPermission(p)
	}
	for _, r := range d.roles {
		_ = out.AddRole(r)
	}
	for ri, set := range d.roleUsers {
		for ui := range set {
			out.roleUsers[ri][ui] = struct{}{}
		}
	}
	for ri, set := range d.rolePerms {
		for pi := range set {
			out.rolePerms[ri][pi] = struct{}{}
		}
	}
	return out
}

// Validate checks internal consistency (index maps in sync with slices,
// assignment indices in range). A dataset mutated only through the
// public API always validates; the check guards hand-built test data
// and deserialised inputs.
func (d *Dataset) Validate() error {
	if len(d.users) != len(d.userIdx) {
		return fmt.Errorf("rbac: user index map has %d entries for %d users", len(d.userIdx), len(d.users))
	}
	if len(d.roles) != len(d.roleIdx) {
		return fmt.Errorf("rbac: role index map has %d entries for %d roles", len(d.roleIdx), len(d.roles))
	}
	if len(d.perms) != len(d.permIdx) {
		return fmt.Errorf("rbac: permission index map has %d entries for %d permissions", len(d.permIdx), len(d.perms))
	}
	if len(d.roleUsers) != len(d.roles) || len(d.rolePerms) != len(d.roles) {
		return fmt.Errorf("rbac: assignment tables sized %d/%d for %d roles",
			len(d.roleUsers), len(d.rolePerms), len(d.roles))
	}
	for id, i := range d.roleIdx {
		if i < 0 || i >= len(d.roles) || d.roles[i] != id {
			return fmt.Errorf("rbac: role index map entry %q -> %d inconsistent", id, i)
		}
	}
	for ri, set := range d.roleUsers {
		for ui := range set {
			if ui < 0 || ui >= len(d.users) {
				return fmt.Errorf("rbac: role %q assigned out-of-range user index %d", d.roles[ri], ui)
			}
		}
	}
	for ri, set := range d.rolePerms {
		for pi := range set {
			if pi < 0 || pi >= len(d.perms) {
				return fmt.Errorf("rbac: role %q assigned out-of-range permission index %d", d.roles[ri], pi)
			}
		}
	}
	return nil
}
