package rbac

import (
	"errors"
	"reflect"
	"testing"
)

// figure1Dataset builds the paper's Figure 1 example: 4 users, 5 roles,
// 6 permissions, with R01={U03}, R02={U01,U02}, R03={}, R04={U01,U02},
// R05={U04} on the user side; on the permission side R02 has no
// permissions, R04 and R05 share the same permission set, and P01 is a
// standalone permission.
func figure1Dataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	for _, u := range []UserID{"U01", "U02", "U03", "U04"} {
		if err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []RoleID{"R01", "R02", "R03", "R04", "R05"} {
		if err := d.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []PermissionID{"P01", "P02", "P03", "P04", "P05", "P06"} {
		if err := d.AddPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	assignU := map[RoleID][]UserID{
		"R01": {"U03"},
		"R02": {"U01", "U02"},
		"R04": {"U01", "U02"},
		"R05": {"U04"},
	}
	for r, us := range assignU {
		for _, u := range us {
			if err := d.AssignUser(r, u); err != nil {
				t.Fatal(err)
			}
		}
	}
	assignP := map[RoleID][]PermissionID{
		"R01": {"P02"},
		"R03": {"P03", "P04"},
		"R04": {"P05", "P06"},
		"R05": {"P05", "P06"},
	}
	for r, ps := range assignP {
		for _, p := range ps {
			if err := d.AssignPermission(r, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestAddDuplicates(t *testing.T) {
	d := NewDataset()
	if err := d.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddUser("u"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate user err = %v", err)
	}
	if err := d.AddRole("r"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRole("r"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate role err = %v", err)
	}
	if err := d.AddPermission("p"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPermission("p"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate permission err = %v", err)
	}
}

func TestAssignUnknownEntities(t *testing.T) {
	d := NewDataset()
	if err := d.AddRole("r"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPermission("p"); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignUser("ghost", "u"); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("err = %v, want ErrUnknownRole", err)
	}
	if err := d.AssignUser("r", "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("err = %v, want ErrUnknownUser", err)
	}
	if err := d.AssignPermission("ghost", "p"); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("err = %v, want ErrUnknownRole", err)
	}
	if err := d.AssignPermission("r", "ghost"); !errors.Is(err, ErrUnknownPermission) {
		t.Errorf("err = %v, want ErrUnknownPermission", err)
	}
}

func TestAssignIdempotent(t *testing.T) {
	d := figure1Dataset(t)
	before := d.NumUserAssignments()
	if err := d.AssignUser("R01", "U03"); err != nil {
		t.Fatal(err)
	}
	if d.NumUserAssignments() != before {
		t.Fatal("re-assigning an edge changed the count")
	}
}

func TestCounts(t *testing.T) {
	d := figure1Dataset(t)
	if d.NumUsers() != 4 || d.NumRoles() != 5 || d.NumPermissions() != 6 {
		t.Fatalf("counts = %d/%d/%d", d.NumUsers(), d.NumRoles(), d.NumPermissions())
	}
	if d.NumUserAssignments() != 6 {
		t.Fatalf("user assignments = %d, want 6", d.NumUserAssignments())
	}
	if d.NumPermissionAssignments() != 7 {
		t.Fatalf("perm assignments = %d, want 7", d.NumPermissionAssignments())
	}
	s := d.Stats()
	if s.Users != 4 || s.Roles != 5 || s.Permissions != 6 || s.UserAssignments != 6 || s.PermissionAssignments != 7 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestLookupsAndMembership(t *testing.T) {
	d := figure1Dataset(t)
	if !d.HasAssignment("R02", "U01") || d.HasAssignment("R02", "U03") {
		t.Fatal("HasAssignment wrong")
	}
	if !d.HasPermission("R04", "P05") || d.HasPermission("R02", "P05") {
		t.Fatal("HasPermission wrong")
	}
	if d.HasAssignment("ghost", "U01") || d.HasPermission("R04", "ghost") {
		t.Fatal("unknown entities reported as members")
	}
	if i, ok := d.RoleIndex("R03"); !ok || i != 2 {
		t.Fatalf("RoleIndex(R03) = (%d, %v)", i, ok)
	}
	if i, ok := d.UserIndex("U04"); !ok || i != 3 {
		t.Fatalf("UserIndex(U04) = (%d, %v)", i, ok)
	}
	if i, ok := d.PermissionIndex("P06"); !ok || i != 5 {
		t.Fatalf("PermissionIndex(P06) = (%d, %v)", i, ok)
	}
	if _, ok := d.RoleIndex("nope"); ok {
		t.Fatal("RoleIndex found ghost")
	}
}

func TestRoleUsersAndPermissionsSorted(t *testing.T) {
	d := figure1Dataset(t)
	us, err := d.RoleUsers("R04")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(us, []UserID{"U01", "U02"}) {
		t.Fatalf("RoleUsers(R04) = %v", us)
	}
	ps, err := d.RolePermissions("R03")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, []PermissionID{"P03", "P04"}) {
		t.Fatalf("RolePermissions(R03) = %v", ps)
	}
	if _, err := d.RoleUsers("ghost"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("RoleUsers ghost err = %v", err)
	}
	if _, err := d.RolePermissions("ghost"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("RolePermissions ghost err = %v", err)
	}
}

func TestRUAMMatchesPaper(t *testing.T) {
	d := figure1Dataset(t)
	ruam := d.RUAM()
	if ruam.Rows() != 5 || ruam.Cols() != 4 {
		t.Fatalf("RUAM shape %dx%d", ruam.Rows(), ruam.Cols())
	}
	wantSums := []int{1, 2, 0, 2, 1}
	if got := ruam.RowSums(); !reflect.DeepEqual(got, wantSums) {
		t.Fatalf("RUAM row sums = %v, want %v", got, wantSums)
	}
	// R02 and R04 rows identical.
	if !ruam.Row(1).Equal(ruam.Row(3)) {
		t.Fatal("R02 and R04 RUAM rows differ")
	}
}

func TestRPAMMatchesPaper(t *testing.T) {
	d := figure1Dataset(t)
	rpam := d.RPAM()
	if rpam.Rows() != 5 || rpam.Cols() != 6 {
		t.Fatalf("RPAM shape %dx%d", rpam.Rows(), rpam.Cols())
	}
	// P01 is standalone: all-zero column 0.
	if got := rpam.ZeroCols(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("RPAM zero cols = %v, want [0]", got)
	}
	// R04 and R05 share the same permissions.
	if !rpam.Row(3).Equal(rpam.Row(4)) {
		t.Fatal("R04 and R05 RPAM rows differ")
	}
	// R02 has no permissions.
	if rpam.RowSum(1) != 0 {
		t.Fatalf("R02 RPAM row sum = %d, want 0", rpam.RowSum(1))
	}
}

func TestUserRowPermRowMatchMatrices(t *testing.T) {
	d := figure1Dataset(t)
	ruam, rpam := d.RUAM(), d.RPAM()
	for ri := 0; ri < d.NumRoles(); ri++ {
		if !d.UserRow(ri).Equal(ruam.Row(ri)) {
			t.Fatalf("UserRow(%d) != RUAM row", ri)
		}
		if !d.PermRow(ri).Equal(rpam.Row(ri)) {
			t.Fatalf("PermRow(%d) != RPAM row", ri)
		}
	}
}

func TestRevoke(t *testing.T) {
	d := figure1Dataset(t)
	if err := d.RevokeUser("R02", "U01"); err != nil {
		t.Fatal(err)
	}
	if d.HasAssignment("R02", "U01") {
		t.Fatal("edge survived revoke")
	}
	if err := d.RevokePermission("R04", "P05"); err != nil {
		t.Fatal(err)
	}
	if d.HasPermission("R04", "P05") {
		t.Fatal("permission survived revoke")
	}
	if err := d.RevokeUser("ghost", "U01"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("revoke ghost role err = %v", err)
	}
	if err := d.RevokeUser("R02", "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("revoke ghost user err = %v", err)
	}
	if err := d.RevokePermission("R02", "ghost"); !errors.Is(err, ErrUnknownPermission) {
		t.Fatalf("revoke ghost perm err = %v", err)
	}
	if err := d.RevokePermission("ghost", "P05"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("revoke perm ghost role err = %v", err)
	}
}

func TestRemoveRole(t *testing.T) {
	d := figure1Dataset(t)
	if err := d.RemoveRole("R02"); err != nil {
		t.Fatal(err)
	}
	if d.NumRoles() != 4 {
		t.Fatalf("NumRoles = %d, want 4", d.NumRoles())
	}
	if _, ok := d.RoleIndex("R02"); ok {
		t.Fatal("removed role still indexed")
	}
	// Later roles shifted down; R04 is now index 2 and keeps its users.
	i, ok := d.RoleIndex("R04")
	if !ok || i != 2 {
		t.Fatalf("RoleIndex(R04) = (%d, %v), want (2, true)", i, ok)
	}
	us, err := d.RoleUsers("R04")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(us, []UserID{"U01", "U02"}) {
		t.Fatalf("R04 users after removal = %v", us)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
	if err := d.RemoveRole("ghost"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("remove ghost err = %v", err)
	}
}

func TestEnsureHelpers(t *testing.T) {
	d := NewDataset()
	i := d.EnsureUser("u1")
	if j := d.EnsureUser("u1"); j != i {
		t.Fatal("EnsureUser not idempotent")
	}
	if d.EnsureRole("r1") != 0 || d.EnsureRole("r2") != 1 {
		t.Fatal("EnsureRole index assignment wrong")
	}
	if d.EnsurePermission("p1") != 0 {
		t.Fatal("EnsurePermission wrong index")
	}
	if d.NumUsers() != 1 || d.NumRoles() != 2 || d.NumPermissions() != 1 {
		t.Fatal("Ensure helpers created wrong counts")
	}
}

func TestEffectivePermissions(t *testing.T) {
	d := figure1Dataset(t)
	eff := d.EffectivePermissions()
	// U01 is in R02 (no perms) and R04 (P05, P06).
	u01, _ := d.UserIndex("U01")
	p05, _ := d.PermissionIndex("P05")
	p06, _ := d.PermissionIndex("P06")
	if len(eff[u01]) != 2 {
		t.Fatalf("U01 effective perms = %v", eff[u01])
	}
	if _, ok := eff[u01][p05]; !ok {
		t.Fatal("U01 missing P05")
	}
	if _, ok := eff[u01][p06]; !ok {
		t.Fatal("U01 missing P06")
	}
	// U03 is only in R01 -> P02.
	u03, _ := d.UserIndex("U03")
	p02, _ := d.PermissionIndex("P02")
	if len(eff[u03]) != 1 {
		t.Fatalf("U03 effective perms = %v", eff[u03])
	}
	if _, ok := eff[u03][p02]; !ok {
		t.Fatal("U03 missing P02")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := figure1Dataset(t)
	c := d.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.RevokeUser("R02", "U01"); err != nil {
		t.Fatal(err)
	}
	if !d.HasAssignment("R02", "U01") {
		t.Fatal("mutating clone mutated original")
	}
	if !c.RUAM().Equal(c.RUAM()) {
		t.Fatal("clone RUAM unstable")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	d := figure1Dataset(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.roleUsers[0][99] = struct{}{} // out-of-range user index
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range assignment")
	}
}
