package rbac

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRemoveUser(t *testing.T) {
	d := figure1Dataset(t)
	if err := d.RemoveUser("U02"); err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", d.NumUsers())
	}
	if _, ok := d.UserIndex("U02"); ok {
		t.Fatal("removed user still indexed")
	}
	// Later users shifted; U04 now index 2 and R05 still points at it.
	i, ok := d.UserIndex("U04")
	if !ok || i != 2 {
		t.Fatalf("UserIndex(U04) = (%d, %v)", i, ok)
	}
	if !d.HasAssignment("R05", "U04") {
		t.Fatal("R05-U04 edge lost after unrelated removal")
	}
	// R02 and R04 had U01+U02; they must now hold only U01.
	us, err := d.RoleUsers("R02")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(us, []UserID{"U01"}) {
		t.Fatalf("R02 users = %v", us)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveUser("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("remove ghost user err = %v", err)
	}
}

func TestRemovePermission(t *testing.T) {
	d := figure1Dataset(t)
	if err := d.RemovePermission("P05"); err != nil {
		t.Fatal(err)
	}
	if d.NumPermissions() != 5 {
		t.Fatalf("NumPermissions = %d", d.NumPermissions())
	}
	ps, err := d.RolePermissions("R04")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, []PermissionID{"P06"}) {
		t.Fatalf("R04 perms = %v", ps)
	}
	if !d.HasPermission("R05", "P06") {
		t.Fatal("P06 edge lost after P05 removal")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.RemovePermission("ghost"); !errors.Is(err, ErrUnknownPermission) {
		t.Fatalf("remove ghost perm err = %v", err)
	}
}

func TestPropertyRemovePreservesOtherEdges(t *testing.T) {
	// Removing one user never changes any other user's membership in
	// any role, and the dataset always validates.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDataset()
		nu, nr := 2+r.Intn(6), 2+r.Intn(6)
		for i := 0; i < nu; i++ {
			_ = d.AddUser(UserID(rune('a' + i)))
		}
		for i := 0; i < nr; i++ {
			_ = d.AddRole(RoleID(rune('A' + i)))
		}
		for i := 0; i < nr; i++ {
			for j := 0; j < nu; j++ {
				if r.Intn(2) == 0 {
					_ = d.AssignUser(RoleID(rune('A'+i)), UserID(rune('a'+j)))
				}
			}
		}
		victim := UserID(rune('a' + r.Intn(nu)))
		type membership struct {
			role RoleID
			user UserID
		}
		var before []membership
		for i := 0; i < nr; i++ {
			role := RoleID(rune('A' + i))
			us, _ := d.RoleUsers(role)
			for _, u := range us {
				if u != victim {
					before = append(before, membership{role, u})
				}
			}
		}
		if err := d.RemoveUser(victim); err != nil {
			return false
		}
		if err := d.Validate(); err != nil {
			return false
		}
		for _, m := range before {
			if !d.HasAssignment(m.role, m.user) {
				return false
			}
		}
		// And the victim is fully gone.
		for i := 0; i < nr; i++ {
			us, _ := d.RoleUsers(RoleID(rune('A' + i)))
			for _, u := range us {
				if u == victim {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
