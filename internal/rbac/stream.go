package rbac

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ReadJSONStream parses a dataset from r incrementally, token by
// token, so memory stays proportional to the dataset's entity and edge
// counts — never to the byte length of the input. It accepts the exact
// schema ReadJSON accepts (users/roles/permissions arrays plus
// userAssignments/permissionAssignments edge lists) and produces an
// identical Dataset: entity insertion order per kind is the array
// order, so DigestOf over the result matches a buffered decode of the
// same document.
//
// Two deliberate strictness differences from the buffered path:
//
//   - A repeated top-level field is rejected (encoding/json's
//     last-wins rule would silently drop the earlier array, which for
//     an ingest endpoint means silently dropping data).
//   - The top-level value must be an object (ReadJSON would fail later
//     on a non-object too, just with a vaguer error).
//
// Edges may reference entities declared later in the document (any
// field order is legal JSON); such edges are buffered and applied once
// the whole document has streamed past. Edges whose entities never
// appear fail with the usual ErrUnknown* error.
func ReadJSONStream(r io.Reader) (*Dataset, error) {
	// encoding/json's Decoder does not discard inter-token whitespace
	// until it finds the next token, so a run of whitespace grows its
	// buffer to the run's full length — a padding bomb. Collapsing
	// whitespace runs outside strings up front keeps the decoder's
	// buffer proportional to the largest real token instead.
	dec := json.NewDecoder(&spaceSqueezer{r: r})
	d := NewDataset()

	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("rbac: read dataset: %w", err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '{' {
		return nil, fmt.Errorf("rbac: read dataset: top-level value is %v, want an object", tok)
	}

	// Edges seen before their endpoints; applied after the full
	// document has streamed past.
	var pendingUsers []userEdgeJSON
	var pendingPerms []permEdgeJSON

	seen := make(map[string]bool, 5)
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("rbac: read dataset: %w", err)
		}
		key, _ := keyTok.(string)
		if seen[key] {
			return nil, fmt.Errorf("rbac: read dataset: field %q appears twice", key)
		}
		seen[key] = true

		switch key {
		case "users":
			err = decodeArray(dec, func() error {
				var u UserID
				if err := dec.Decode(&u); err != nil {
					return err
				}
				return d.AddUser(u)
			})
		case "roles":
			err = decodeArray(dec, func() error {
				var id RoleID
				if err := dec.Decode(&id); err != nil {
					return err
				}
				return d.AddRole(id)
			})
		case "permissions":
			err = decodeArray(dec, func() error {
				var p PermissionID
				if err := dec.Decode(&p); err != nil {
					return err
				}
				return d.AddPermission(p)
			})
		case "userAssignments":
			err = decodeArray(dec, func() error {
				var e userEdgeJSON
				if err := dec.Decode(&e); err != nil {
					return err
				}
				if aerr := d.AssignUser(e.Role, e.User); aerr != nil {
					if errors.Is(aerr, ErrUnknownRole) || errors.Is(aerr, ErrUnknownUser) {
						pendingUsers = append(pendingUsers, e)
						return nil
					}
					return aerr
				}
				return nil
			})
		case "permissionAssignments":
			err = decodeArray(dec, func() error {
				var e permEdgeJSON
				if err := dec.Decode(&e); err != nil {
					return err
				}
				if aerr := d.AssignPermission(e.Role, e.Permission); aerr != nil {
					if errors.Is(aerr, ErrUnknownRole) || errors.Is(aerr, ErrUnknownPermission) {
						pendingPerms = append(pendingPerms, e)
						return nil
					}
					return aerr
				}
				return nil
			})
		default:
			err = skipValue(dec)
		}
		if err != nil {
			return nil, fmt.Errorf("rbac: read dataset: field %q: %w", key, err)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, fmt.Errorf("rbac: read dataset: %w", err)
	}

	for _, e := range pendingUsers {
		if err := d.AssignUser(e.Role, e.User); err != nil {
			return nil, fmt.Errorf("rbac: read dataset: userAssignments: %w", err)
		}
	}
	for _, e := range pendingPerms {
		if err := d.AssignPermission(e.Role, e.Permission); err != nil {
			return nil, fmt.Errorf("rbac: read dataset: permissionAssignments: %w", err)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// decodeArray consumes one JSON array (or null), calling elem once per
// element with dec positioned at that element.
func decodeArray(dec *json.Decoder, elem func() error) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil { // null field value, same as absent
		return nil
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return fmt.Errorf("got %v, want an array", tok)
	}
	for dec.More() {
		if err := elem(); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing ']'
	return err
}

// skipValue consumes one JSON value of any shape without materialising
// it: unknown fields stream past in bounded memory too.
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	delim, ok := tok.(json.Delim)
	if !ok || (delim != '[' && delim != '{') {
		return nil
	}
	for dec.More() {
		if err := skipValue(dec); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing delimiter
	return err
}

// spaceSqueezer collapses every run of JSON whitespace outside string
// literals to a single space as the stream passes through. Inter-token
// whitespace is semantically void, so the transform preserves the
// document's value exactly (string contents pass through untouched,
// escape sequences included); it only denies whitespace padding the
// ability to grow the downstream decoder's buffer.
type spaceSqueezer struct {
	r        io.Reader
	buf      [4096]byte
	pending  []byte // unconsumed tail of the last fill
	inStr    bool
	escaped  bool
	wasSpace bool
}

func (s *spaceSqueezer) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if len(s.pending) == 0 {
			n, err := s.r.Read(s.buf[:])
			s.pending = s.buf[:n]
			if n == 0 {
				return 0, err
			}
		}
		out := 0
		for len(s.pending) > 0 && out < len(p) {
			b := s.pending[0]
			s.pending = s.pending[1:]
			if s.inStr {
				switch {
				case s.escaped:
					s.escaped = false
				case b == '\\':
					s.escaped = true
				case b == '"':
					s.inStr = false
				}
				p[out] = b
				out++
				continue
			}
			if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
				if s.wasSpace {
					continue
				}
				s.wasSpace = true
				p[out] = ' '
				out++
				continue
			}
			s.wasSpace = false
			if b == '"' {
				s.inStr = true
			}
			p[out] = b
			out++
		}
		// A chunk of pure run-continuation whitespace can squeeze to
		// nothing; keep filling rather than returning a zero-byte read.
		if out > 0 {
			return out, nil
		}
	}
}
