package rbac

import "fmt"

// RemoveUser deletes a user and every assignment referencing it.
// Indices of later users shift down by one, like deleting a RUAM
// column.
func (d *Dataset) RemoveUser(user UserID) error {
	ui, ok := d.userIdx[user]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	d.users = append(d.users[:ui], d.users[ui+1:]...)
	delete(d.userIdx, user)
	for i := ui; i < len(d.users); i++ {
		d.userIdx[d.users[i]] = i
	}
	for ri, set := range d.roleUsers {
		if _, had := set[ui]; had {
			delete(set, ui)
		}
		// Shift indices above the removed one.
		shifted := make(map[int]struct{}, len(set))
		for idx := range set {
			if idx > ui {
				shifted[idx-1] = struct{}{}
			} else {
				shifted[idx] = struct{}{}
			}
		}
		d.roleUsers[ri] = shifted
	}
	return nil
}

// RemovePermission deletes a permission and every assignment
// referencing it.
func (d *Dataset) RemovePermission(perm PermissionID) error {
	pi, ok := d.permIdx[perm]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPermission, perm)
	}
	d.perms = append(d.perms[:pi], d.perms[pi+1:]...)
	delete(d.permIdx, perm)
	for i := pi; i < len(d.perms); i++ {
		d.permIdx[d.perms[i]] = i
	}
	for ri, set := range d.rolePerms {
		if _, had := set[pi]; had {
			delete(set, pi)
		}
		shifted := make(map[int]struct{}, len(set))
		for idx := range set {
			if idx > pi {
				shifted[idx-1] = struct{}{}
			} else {
				shifted[idx] = struct{}{}
			}
		}
		d.rolePerms[ri] = shifted
	}
	return nil
}
