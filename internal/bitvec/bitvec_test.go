package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	v := New(0)
	if v.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", v.Count())
	}
	if v.Any() {
		t.Fatal("Any() = true on empty vector")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130) // spans three words
	positions := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, p := range positions {
		v.Set(p)
	}
	for _, p := range positions {
		if !v.Get(p) {
			t.Errorf("Get(%d) = false after Set", p)
		}
	}
	if got := v.Count(); got != len(positions) {
		t.Fatalf("Count() = %d, want %d", got, len(positions))
	}
	for _, p := range positions {
		v.Clear(p)
		if v.Get(p) {
			t.Errorf("Get(%d) = true after Clear", p)
		}
	}
	if v.Any() {
		t.Fatal("Any() = true after clearing all bits")
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	if !v.Get(3) {
		t.Fatal("SetTo(3, true) did not set")
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Fatal("SetTo(3, false) did not clear")
	}
}

func TestIndexPanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFromBoolsAndIndices(t *testing.T) {
	bools := []bool{true, false, true, true, false}
	v := FromBools(bools)
	w := FromIndices(5, []int{0, 2, 3})
	if !v.Equal(w) {
		t.Fatalf("FromBools %v != FromIndices: %v vs %v", bools, v, w)
	}
	if got := v.Indices(); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("Indices() = %v, want [0 2 3]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromIndices(70, []int{1, 65})
	c := v.Clone()
	c.Set(2)
	if v.Get(2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Get(65) {
		t.Fatal("clone lost bit 65")
	}
}

func TestReset(t *testing.T) {
	v := FromIndices(100, []int{5, 50, 99})
	v.Reset()
	if v.Any() {
		t.Fatal("Reset left set bits")
	}
	if v.Len() != 100 {
		t.Fatal("Reset changed length")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(8, []int{0, 1, 2, 3})
	b := FromIndices(8, []int{2, 3, 4, 5})

	and := a.Clone()
	and.And(b)
	if got := and.Indices(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("And = %v, want [2 3]", got)
	}

	or := a.Clone()
	or.Or(b)
	if got := or.Indices(); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("Or = %v, want [0..5]", got)
	}

	xor := a.Clone()
	xor.Xor(b)
	if got := xor.Indices(); !reflect.DeepEqual(got, []int{0, 1, 4, 5}) {
		t.Errorf("Xor = %v, want [0 1 4 5]", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Indices(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("AndNot = %v, want [0 1]", got)
	}
}

func TestAlgebraLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(5).And(New(6))
}

func TestCounts(t *testing.T) {
	a := FromIndices(200, []int{0, 64, 128, 199})
	b := FromIndices(200, []int{0, 65, 128, 198})
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Errorf("UnionCount = %d, want 6", got)
	}
	if got := a.Hamming(b); got != 4 {
		t.Errorf("Hamming = %d, want 4", got)
	}
}

func TestHammingAtMost(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3})
	b := FromIndices(100, []int{1, 2, 4})
	tests := []struct {
		k    int
		want bool
	}{
		{-1, false},
		{0, false},
		{1, false},
		{2, true},
		{3, true},
		{100, true},
	}
	for _, tt := range tests {
		if got := a.HammingAtMost(b, tt.k); got != tt.want {
			t.Errorf("HammingAtMost(k=%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
	if !a.HammingAtMost(a, 0) {
		t.Error("HammingAtMost(self, 0) = false")
	}
}

func TestIsSubsetOf(t *testing.T) {
	a := FromIndices(70, []int{1, 65})
	b := FromIndices(70, []int{1, 5, 65})
	if !a.IsSubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Error("a should be subset of itself")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	v := FromIndices(100, []int{1, 5, 80})
	var seen []int
	v.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 5}) {
		t.Fatalf("ForEach early stop saw %v, want [1 5]", seen)
	}
}

func TestNextSet(t *testing.T) {
	v := FromIndices(200, []int{3, 64, 190})
	tests := []struct {
		from   int
		want   int
		wantOK bool
	}{
		{0, 3, true},
		{3, 3, true},
		{4, 64, true},
		{65, 190, true},
		{191, 0, false},
		{-5, 3, true},
		{1000, 0, false},
	}
	for _, tt := range tests {
		got, ok := v.NextSet(tt.from)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("NextSet(%d) = (%d, %v), want (%d, %v)", tt.from, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestHashEqualVectors(t *testing.T) {
	a := FromIndices(100, []int{1, 50, 99})
	b := FromIndices(100, []int{1, 50, 99})
	if a.Hash() != b.Hash() {
		t.Fatal("equal vectors hash differently")
	}
	b.Set(2)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct vectors hash equally (possible but astronomically unlikely for this pair)")
	}
}

func TestHashLengthSensitivity(t *testing.T) {
	// Same words, different logical length, must hash differently.
	a := New(10)
	b := New(12)
	if a.Hash() == b.Hash() {
		t.Fatal("vectors of different lengths with zero words hash equally")
	}
}

func TestFloats(t *testing.T) {
	v := FromIndices(4, []int{1, 3})
	want := []float64{0, 1, 0, 1}
	if got := v.Floats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Floats() = %v, want %v", got, want)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	v := FromIndices(9, []int{0, 4, 8})
	s := v.String()
	if s != "100010001" {
		t.Fatalf("String() = %q", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !v.Equal(back) {
		t.Fatal("Parse(String()) round trip failed")
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("01x"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
}

// randVector builds a deterministic pseudo-random vector for property tests.
func randVector(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestPropertyHammingIdentity(t *testing.T) {
	// Hamming(a,b) == |a| + |b| - 2*|a AND b| for all binary vectors.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randVector(r, n)
		b := randVector(r, n)
		return a.Hamming(b) == a.Count()+b.Count()-2*a.IntersectionCount(b)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionInclusionExclusion(t *testing.T) {
	// |a OR b| == |a| + |b| - |a AND b|.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randVector(r, n)
		b := randVector(r, n)
		return a.UnionCount(b) == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyXorMatchesHamming(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randVector(r, n)
		b := randVector(r, n)
		x := a.Clone()
		x.Xor(b)
		return x.Count() == a.Hamming(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randVector(r, n)
		return a.Equal(FromIndices(n, a.Indices()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHammingSymmetricAndTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a := randVector(r, n)
		b := randVector(r, n)
		c := randVector(r, n)
		if a.Hamming(b) != b.Hamming(a) {
			return false
		}
		if a.Hamming(a) != 0 {
			return false
		}
		return a.Hamming(c) <= a.Hamming(b)+b.Hamming(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHamming1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randVector(r, 1000)
	y := randVector(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Hamming(y)
	}
}

func BenchmarkIntersectionCount1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randVector(r, 1000)
	y := randVector(r, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionCount(y)
	}
}

func TestHammingBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Widths straddle word boundaries and the 4-way unroll remainder:
	// 0-3 trailing words and mid-word tails.
	for _, width := range []int{1, 7, 63, 64, 65, 128, 130, 191, 192, 256, 257, 300, 1000} {
		rows := make([]*Vector, 9)
		for i := range rows {
			rows[i] = randVector(r, width)
		}
		q := randVector(r, width)
		dst := make([]int, len(rows))
		HammingBatch(dst, rows, q)
		for i, row := range rows {
			if want := q.Hamming(row); dst[i] != want {
				t.Fatalf("width %d row %d: batch %d != scalar %d", width, i, dst[i], want)
			}
		}
	}
}

func TestHammingBatchEmptyRows(t *testing.T) {
	q := New(100)
	HammingBatch(nil, nil, q) // no rows: must not touch dst
}

func TestHammingBatchPanics(t *testing.T) {
	q := New(64)
	rows := []*Vector{New(64), New(64)}
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("short dst", func() { HammingBatch(make([]int, 1), rows, q) })
	assertPanics("width mismatch", func() { HammingBatch(make([]int, 2), []*Vector{New(65), New(64)}, q) })
}

func BenchmarkHammingBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const (
		width = 1000
		n     = 512
	)
	rows := make([]*Vector, n)
	for i := range rows {
		rows[i] = randVector(r, width)
	}
	q := randVector(r, width)
	dst := make([]int, n)
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HammingBatch(dst, rows, q)
		}
	})
	b.Run("scalar-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, row := range rows {
				dst[j] = q.Hamming(row)
			}
		}
	})
}
